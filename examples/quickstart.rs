//! Quickstart: boot the full LMS architecture (paper Fig. 1) in-process,
//! run a job, and look at what the stack collected.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Set `LMS_DATA_DIR=/some/dir` to run with the persistent storage engine:
//! the run ends by restarting the stack on the same directory and showing
//! that the collected history survives (WAL replay + sealed segments).

use lms::apps::AppProfile;
use lms::core::{LmsStack, StackConfig};
use std::time::Duration;

fn main() {
    // 4 dual-socket nodes, FLOPS_DP + MEM performance groups, everything
    // wired over real TCP: agents → router → database.
    let data_dir = std::env::var_os("LMS_DATA_DIR").map(std::path::PathBuf::from);
    let config = StackConfig { data_dir: data_dir.clone(), ..Default::default() };
    let mut stack = LmsStack::start(config.clone()).expect("stack boots");
    println!("database  : http://{}", stack.db_addr());
    println!("router    : http://{}", stack.router_addr());
    println!(
        "cluster   : {} nodes of {} ({} cores each)\n",
        4,
        stack.topology().name(),
        stack.topology().num_cores()
    );

    // A user submits a 30-minute 2-node job; the scheduler signals the
    // router, the router tags all metrics from those hosts with the job.
    let job = stack.submit_job(
        "alice",
        "md-production",
        2,
        Duration::from_secs(1800),
        AppProfile::MiniMd,
    );
    println!("submitted job {job} (alice, 2 nodes, 30 min)\n");

    // Run 35 virtual minutes in 1-minute collection ticks. Wall time: ~ms.
    stack.run_for(Duration::from_secs(35 * 60), Duration::from_secs(60));

    let stats = stack.stats();
    println!("--- stack statistics after 35 virtual minutes ---");
    println!("router lines in       : {}", stats.router.lines_in);
    println!("router lines enriched : {}", stats.router.lines_enriched);
    println!("job signals           : {}", stats.router.signals);
    println!("batches delivered     : {}", stats.router.forward.delivered);
    println!("db points             : {}", stats.db_points);
    println!("db series             : {}", stats.db_series);

    // Ask the database questions any Grafana panel would ask.
    let r = stack
        .influx()
        .query("lms", &format!("SELECT mean(dp_mflop_s) FROM hpm_flops_dp WHERE jobid = '{job}'"))
        .expect("query");
    if let Some(series) = r.series.first() {
        println!(
            "\nmean DP FLOP rate of job {job}: {:.0} MFLOP/s",
            series.values[0][1].as_f64().unwrap_or(0.0)
        );
    }

    // The online evaluation the dashboard shows as its header (Fig. 2).
    let evaluation = stack.evaluate_job(job).expect("evaluation");
    println!("\n{}", evaluation.render_table());

    // With persistence on, prove the history survives a full restart.
    if data_dir.is_some() {
        let points = stack.stats().db_points;
        let s = stack.influx().storage_stats();
        println!("\n--- persistence ---");
        println!("wal bytes         : {}", s.wal_bytes);
        println!("sealed blocks     : {}", s.sealed_blocks);
        println!("segment files     : {}", s.segment_files);
        drop(stack); // stops the stack, flushing heads to disk

        let stack = LmsStack::start(config).expect("restart on same data dir");
        let s = stack.influx().storage_stats();
        println!("restarted: {} points served from disk ({} before shutdown)",
            stack.stats().db_points, points);
        println!("recovered: {} segment files, {} wal records, {:.1}x compression",
            s.segment_files, s.recovered_records, s.compression_ratio());
        assert_eq!(stack.stats().db_points, points, "history must survive the restart");
    }
}
