//! Quickstart: boot the full LMS architecture (paper Fig. 1) in-process,
//! run a job, and look at what the stack collected.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use lms::apps::AppProfile;
use lms::core::{LmsStack, StackConfig};
use std::time::Duration;

fn main() {
    // 4 dual-socket nodes, FLOPS_DP + MEM performance groups, everything
    // wired over real TCP: agents → router → database.
    let mut stack = LmsStack::start(StackConfig::default()).expect("stack boots");
    println!("database  : http://{}", stack.db_addr());
    println!("router    : http://{}", stack.router_addr());
    println!(
        "cluster   : {} nodes of {} ({} cores each)\n",
        4,
        stack.topology().name(),
        stack.topology().num_cores()
    );

    // A user submits a 30-minute 2-node job; the scheduler signals the
    // router, the router tags all metrics from those hosts with the job.
    let job = stack.submit_job(
        "alice",
        "md-production",
        2,
        Duration::from_secs(1800),
        AppProfile::MiniMd,
    );
    println!("submitted job {job} (alice, 2 nodes, 30 min)\n");

    // Run 35 virtual minutes in 1-minute collection ticks. Wall time: ~ms.
    stack.run_for(Duration::from_secs(35 * 60), Duration::from_secs(60));

    let stats = stack.stats();
    println!("--- stack statistics after 35 virtual minutes ---");
    println!("router lines in       : {}", stats.router.lines_in);
    println!("router lines enriched : {}", stats.router.lines_enriched);
    println!("job signals           : {}", stats.router.signals);
    println!("batches delivered     : {}", stats.router.forward.delivered);
    println!("db points             : {}", stats.db_points);
    println!("db series             : {}", stats.db_series);

    // Ask the database questions any Grafana panel would ask.
    let r = stack
        .influx()
        .query("lms", &format!("SELECT mean(dp_mflop_s) FROM hpm_flops_dp WHERE jobid = '{job}'"))
        .expect("query");
    if let Some(series) = r.series.first() {
        println!(
            "\nmean DP FLOP rate of job {job}: {:.0} MFLOP/s",
            series.values[0][1].as_f64().unwrap_or(0.0)
        );
    }

    // The online evaluation the dashboard shows as its header (Fig. 2).
    let evaluation = stack.evaluate_job(job).expect("evaluation");
    println!("\n{}", evaluation.render_table());
}
