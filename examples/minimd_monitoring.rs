//! Application-level monitoring of miniMD — reproduces paper Fig. 3.
//!
//! "Four metrics (runtime for 100 iterations, pressure, temperature and
//! energy) of a run with Mantevo's miniMD proxy application are displayed
//! versus the runtime. Moreover, two events are supplied before starting
//! and after finishing the execution of miniMD and are represented as dark
//! dashed lines."
//!
//! A real Lennard-Jones MD simulation runs here, instrumented with
//! `libusermetric`; its batched messages travel through the router (where
//! they pick up the job tags) into the database, and the dashboard panels
//! are rendered as ASCII charts with the events as dashed `¦` lines.
//!
//! ```text
//! cargo run --release --example minimd_monitoring
//! ```

use lms::apps::{AppProfile, MiniMd, MiniMdConfig};
use lms::core::{LmsStack, StackConfig};
use lms::dashboard::render::{render_panel, RenderOptions};
use lms::dashboard::{Panel, Target};
use lms::http::HttpClient;
use lms::topology::Topology;
use lms::usermetric::{UserMetric, UserMetricConfig};
use std::time::Duration;

fn main() {
    let config = StackConfig {
        nodes: 2,
        topology: Topology::preset_desktop_4c(),
        ..Default::default()
    };
    let mut stack = LmsStack::start(config).expect("stack boots");
    let job = stack.submit_job("alice", "minimd", 1, Duration::from_secs(3600), AppProfile::MiniMd);
    stack.tick(Duration::from_secs(1)); // allocate the job

    // libusermetric client with the default tags an MPI rank would set.
    let um = UserMetric::to_http(
        UserMetricConfig {
            default_tags: vec![("hostname".into(), "h1".into()), ("rank".into(), "0".into())],
            flush_lines: 16,
            thread_tag: false,
        },
        stack.clock().clone(),
        stack.router_addr(),
        "lms",
    )
    .expect("usermetric connects");

    // The start/end events around the run are sent "with the libusermetric
    // command line tool" — same wire request the `umetric` binary makes.
    let mut cli = HttpClient::connect(stack.router_addr()).expect("cli connects");
    let event = |cli: &mut HttpClient, stack: &LmsStack, text: &str| {
        let line = format!(
            "run,hostname=h1 text=\"{text}\" {}",
            stack.clock().now().nanos()
        );
        cli.post_text("/write?db=lms", &line).expect("event sent");
    };
    event(&mut cli, &stack, "miniMD start");

    // A real MD run: 4000-atom FCC lattice, 1500 steps, reporting the four
    // Fig. 3 metrics every 100 iterations. Between reports the virtual
    // cluster advances 60 s, so the series spread over the job timeline.
    let mut md = MiniMd::new(MiniMdConfig { nx: 10, ny: 10, nz: 10, threads: 4, ..Default::default() });
    println!("running miniMD: {} atoms, 1500 steps on 4 threads…", md.natoms());
    for _chunk in 0..15 {
        md.run(100, 100, Some(&um));
        um.flush();
        stack.tick(Duration::from_secs(60));
    }
    event(&mut cli, &stack, "miniMD end");
    stack.flush();

    let thermo = md.thermo();
    println!(
        "final state: T* = {:.3}  P* = {:.3}  E/atom = {:.4}\n",
        thermo.temperature,
        thermo.pressure,
        thermo.total_energy()
    );

    // Render the four application-metric panels, Fig. 3 style: left
    // runtime + pressure, right temperature + energy, events as ¦ lines.
    let info = stack.job_info(job).expect("job info");
    let (from, to) = (info.start.nanos(), stack.clock().now().nanos());
    let mut source = stack.influx().clone();
    for (title, measurement, unit) in [
        ("Runtime of 100 iterations", "minimd_runtime", "s"),
        ("Pressure", "minimd_pressure", "reduced"),
        ("Temperature", "minimd_temperature", "reduced"),
        ("Energy", "minimd_energy", "per atom"),
    ] {
        let panel = Panel {
            annotation_measurement: Some("run".into()),
            ..Panel::graph(
                title,
                Target {
                    db: "lms".into(),
                    query: format!(
                        "SELECT value FROM {measurement} WHERE time >= {from} AND time <= {to}"
                    ),
                    alias: "rank 0".into(),
                    column: "value".into(),
                },
                unit,
            )
        };
        let text = render_panel(&panel, &mut source, RenderOptions { width: 64, height: 10 })
            .expect("render");
        println!("{text}");
    }

    // The user metrics were tagged with the job by the router.
    let r = stack
        .influx()
        .query("lms", &format!("SELECT count(value) FROM minimd_pressure WHERE jobid = '{job}'"))
        .expect("query");
    let tagged = r
        .series
        .first()
        .and_then(|s| s.values.first())
        .and_then(|row| row[1].as_i64())
        .unwrap_or(0);
    println!("pressure samples tagged with job {job}: {tagged}");
}
