//! A fuller cluster simulation: queueing with backfill, the ZeroMQ-style
//! stream analyzer attached to the router's publisher, per-user database
//! duplication, and the Ganglia pull-proxy integration path.
//!
//! This exercises the loose-coupling claims of the paper's Sec. II/III:
//! legacy sources (gmond) integrate through a proxy, stream analyzers
//! attach over the message queue, and everything else is plain HTTP.
//!
//! ```text
//! cargo run --release --example cluster_sim
//! ```
//!
//! Set `LMS_DATA_DIR=/some/dir` to persist the database across runs: a
//! second invocation on the same directory starts from the first run's
//! history instead of an empty store.
//!
//! Set `LMS_CLUSTER_NODES=3` to run the database as a 3-node cluster:
//! the router places each series on `LMS_REPLICATION` (default 2) nodes
//! via its rendezvous hash ring and scatter-gathers queries across all of
//! them, deduplicating replicas on read.

use lms::analysis::rules::Rule;
use lms::analysis::stream::{StreamAnalyzer, StreamRule};
use lms::apps::AppProfile;
use lms::core::{LmsStack, StackConfig};
use lms::router::proxy::GangliaProxy;
use lms::sysmon::ganglia::GmondServer;
use std::time::Duration;

fn main() {
    let data_dir = std::env::var_os("LMS_DATA_DIR").map(std::path::PathBuf::from);
    let db_nodes: usize = std::env::var("LMS_CLUSTER_NODES")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1);
    let replication: usize = std::env::var("LMS_REPLICATION")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| 2.min(db_nodes));
    let config = StackConfig {
        nodes: 8,
        db_nodes,
        replication,
        per_user: true,
        publish: true,
        data_dir: data_dir.clone(),
        ..Default::default()
    };
    let mut stack = LmsStack::start(config).expect("stack boots");
    if db_nodes > 1 {
        println!("database cluster: {db_nodes} nodes, replication {replication}\n");
    }
    if data_dir.is_some() {
        let carried = stack.stats().db_points;
        if carried > 0 {
            println!("persistent store carried {carried} points from a previous run\n");
        }
    }

    // A stream analyzer subscribes to the router's live feed and watches
    // for hosts whose FP rate collapses (3 consecutive low samples).
    let analyzer = StreamAnalyzer::start(
        stack.publisher_addr().expect("publisher on"),
        vec![StreamRule {
            measurement: "hpm_flops_dp".into(),
            field: "dp_mflop_s".into(),
            rule: Rule::below("live low FP rate", 100.0, Duration::ZERO),
            samples: 3,
        }],
    )
    .expect("analyzer attaches");

    // A legacy Ganglia gmond somewhere on the network; the router's pull
    // proxy converts its XML dump into line protocol.
    let gmond = GmondServer::start("127.0.0.1:0", "legacy-partition").expect("gmond");
    gmond.update("fileserver1", stack.clock().now().secs(), "load_one", 0.42, "float", "");
    gmond.update("fileserver1", stack.clock().now().secs(), "mem_free", 12_345_678u64, "uint32", "KB");
    let proxy = GangliaProxy::new(gmond.addr()).expect("proxy");

    // Work: a stream of jobs of varying size/length; the 6-node job at the
    // head forces the scheduler to backfill the small ones around it.
    let jobs = [
        stack.submit_job("anna", "big-solver", 6, Duration::from_secs(40 * 60), AppProfile::Dgemm),
        stack.submit_job("bert", "wide", 8, Duration::from_secs(20 * 60), AppProfile::Stream),
        stack.submit_job("carl", "short-1", 2, Duration::from_secs(10 * 60), AppProfile::MiniMd),
        stack.submit_job("dora", "short-2", 2, Duration::from_secs(10 * 60), AppProfile::CheckpointHeavy),
        stack.submit_job("erik", "staller", 1, Duration::from_secs(30 * 60),
            AppProfile::ComputeWithBreak { busy: Duration::from_secs(300), gap: Duration::from_secs(900) }),
    ];

    println!("submitted {} jobs to an 8-node cluster\n", jobs.len());
    let mut proxied_points = 0;
    for minute in 0..75u64 {
        stack.tick(Duration::from_secs(60));
        // The pull proxy polls gmond every 5 minutes.
        if minute % 5 == 0 {
            proxied_points += proxy.pull_once(stack.router()).unwrap_or(0);
        }
        if minute % 15 == 0 {
            let running: Vec<String> =
                stack.scheduler().running().map(|j| format!("{}({})", j.id, j.spec.user)).collect();
            println!(
                "t+{minute:>3} min: {} free nodes, running: [{}], queued: {}",
                stack.scheduler().free_nodes(),
                running.join(", "),
                stack.scheduler().queued()
            );
        }
    }
    stack.flush();

    // Live alerts raised while the staller was in its gap.
    let alerts = analyzer.drain();
    println!("\nstream analyzer raised {} live alert(s):", alerts.len());
    for a in alerts.iter().take(5) {
        println!("  {} on {} ({} = {:.1})", a.rule, a.hostname, a.measurement, a.value);
    }
    assert!(!alerts.is_empty(), "the stalling job must trip the live rule");

    // Proxied legacy metrics are in the database — read through the
    // router's scatter-gather path, which merges every database node.
    let r = stack
        .router()
        .handle_query("lms", "SELECT value FROM ganglia_load_one")
        .expect("query");
    let n = r.series.first().map(|s| s.values.len()).unwrap_or(0);
    println!("\nganglia-proxied samples stored: {n} (pulled {proxied_points} points total)");
    assert!(n > 0);

    // Per-user duplication created user databases (on the nodes owning
    // that user's series, in cluster mode).
    let mut dbs: Vec<String> = (0..stack.db_node_count())
        .flat_map(|i| stack.influx_node(i).database_names())
        .collect();
    dbs.sort();
    dbs.dedup();
    println!("databases: {dbs:?}");
    assert!(dbs.iter().any(|d| d == "user_anna"));

    // Final accounting.
    let stats = stack.stats();
    println!("\n--- final statistics ---");
    println!("jobs completed : {}", stack.scheduler().jobs().iter().filter(|j| j.state.is_completed()).count());
    println!("lines in       : {}", stats.router.lines_in);
    println!("lines enriched : {}", stats.router.lines_enriched);
    println!("db points      : {}", stats.db_points);
    println!("db series      : {}", stats.db_series);
    if data_dir.is_some() {
        let s = stack.influx().storage_stats();
        println!(
            "storage        : {} sealed blocks, {} segment files, {:.1}x compression",
            s.sealed_blocks,
            s.segment_files,
            s.compression_ratio()
        );
    }
}
