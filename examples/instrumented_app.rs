//! Every application-level monitoring facility of Sec. IV in one program:
//! explicit libusermetric annotations, the transparent allocation and
//! affinity monitors (the LD_PRELOAD analogs), and the MPI/OpenMP tooling
//! interfaces the paper plans ("further information is planned to be
//! gathered through the tooling interfaces of common parallelization
//! solutions like MPI or OpenMP").
//!
//! The "application" is a toy 4-rank stencil solver: each rank smooths its
//! slab, exchanges halos (recorded via the MPI shim), and joins a parallel
//! region (recorded via the OpenMP shim), while a counting allocator
//! watches every heap byte.
//!
//! ```text
//! cargo run --release --example instrumented_app
//! ```

use lms::apps::AppProfile;
use lms::core::{LmsStack, StackConfig};
use lms::topology::{CpuSet, Topology};
use lms::usermetric::paramon::MpiCall;
use lms::usermetric::{
    AffinityRegistry, CountingAlloc, MpiProfiler, OmpProfiler, UserMetric, UserMetricConfig,
};
use std::alloc::System;
use std::time::{Duration, Instant};

// The transparent allocation monitor: installed for the whole process,
// exactly like an LD_PRELOAD malloc shim.
#[global_allocator]
static ALLOC: CountingAlloc<System> = CountingAlloc::new(System);

fn main() {
    let topo = Topology::preset_desktop_4c();
    let config = StackConfig { nodes: 1, topology: topo.clone(), ..Default::default() };
    let mut stack = LmsStack::start(config).expect("stack boots");
    let job = stack.submit_job("dora", "stencil", 1, Duration::from_secs(3600), AppProfile::MiniMd);
    stack.tick(Duration::from_secs(1));

    let um = UserMetric::to_http(
        UserMetricConfig {
            default_tags: vec![("hostname".into(), "h1".into())],
            flush_lines: 32,
            thread_tag: false,
        },
        stack.clock().clone(),
        stack.router_addr(),
        "lms",
    )
    .expect("usermetric connects");

    // The affinity monitor records where each "rank" is pinned.
    let affinity = AffinityRegistry::new();
    let ranks = 4usize;
    for r in 0..ranks {
        let cpus = CpuSet::parse(&format!("{r}"), &topo).expect("cpuset");
        affinity.record_pin(&format!("rank-{r}"), cpus);
    }

    let omp = OmpProfiler::new();
    let mut profilers: Vec<MpiProfiler> =
        (0..ranks).map(|r| MpiProfiler::new(r as u32, ranks as u32)).collect();

    um.event("run", "stencil solver start");
    let n = 256usize; // slab width
    let mut slabs: Vec<Vec<f64>> = (0..ranks)
        .map(|r| (0..n * n).map(|i| ((i + r * 7) % 13) as f64).collect())
        .collect();

    for iteration in 0..20 {
        // "Parallel region": each rank smooths its slab; the OMP shim
        // records per-thread busy time.
        let mut per_thread = Vec::with_capacity(ranks);
        for slab in slabs.iter_mut() {
            let t0 = Instant::now();
            for i in n..(n * n - n) {
                slab[i] = 0.25 * (slab[i - 1] + slab[i + 1] + slab[i - n] + slab[i + n]);
            }
            per_thread.push(t0.elapsed());
        }
        omp.record_region(&per_thread);

        // "Halo exchange": each rank sends its boundary rows both ways.
        let halo_bytes = (n * std::mem::size_of::<f64>()) as u64;
        for p in &mut profilers {
            let t0 = Instant::now();
            p.record(MpiCall::Send, 2 * halo_bytes, t0.elapsed() + Duration::from_micros(8));
            p.record(MpiCall::Recv, 2 * halo_bytes, Duration::from_micros(9));
        }
        // Global residual: one allreduce per iteration.
        for p in &mut profilers {
            p.record(MpiCall::Reduce, 8, Duration::from_micros(40));
        }

        let residual: f64 =
            slabs.iter().flat_map(|s| s.iter()).map(|v| v.abs()).sum::<f64>() / (ranks * n * n) as f64;
        um.metric("stencil_residual", residual);
        stack.tick(Duration::from_secs(30));

        if iteration == 9 {
            // Mid-run reports from all transparent monitors.
            ALLOC.report(&um);
            affinity.report(&um);
            for p in &profilers {
                p.report(&um);
            }
            omp.report(&um);
        }
    }
    um.event("run", "stencil solver end");
    um.flush();
    stack.flush();

    // What landed in the database, all tagged with the job:
    println!("--- application-level measurements stored for job {job} ---");
    for (measurement, field, description) in [
        ("stencil_residual", "value", "explicit annotations"),
        ("memory_alloc", "allocs", "transparent allocation monitor"),
        ("thread_affinity", "text", "transparent affinity monitor (events)"),
        ("mpi_comm_bytes", "value", "MPI tooling interface"),
        ("omp_parallel", "regions", "OpenMP tooling interface"),
    ] {
        let q = format!("SELECT count({field}) FROM {measurement} WHERE jobid = '{job}'");
        let n = stack
            .influx()
            .query("lms", &q)
            .ok()
            .and_then(|r| r.series.first().and_then(|s| s.values.first()).and_then(|v| v[1].as_i64()))
            .unwrap_or(0);
        println!("{measurement:<20} {n:>4} points   ({description})");
        assert!(n > 0, "{measurement} must be stored");
    }

    // The allocator saw the slabs.
    let snapshot = ALLOC.snapshot();
    println!(
        "\nallocator: {} allocations, peak {}, live {}",
        snapshot.allocs,
        lms::util::fmt::bytes(snapshot.peak_bytes as u64),
        lms::util::fmt::bytes(snapshot.live_bytes as u64)
    );

    // Per-rank communication profile summary.
    println!("\nper-rank MPI communication:");
    for p in &profilers {
        let s = p.stats(MpiCall::Send);
        println!(
            "  rank {}: {} sends, {} total, {} in reduce",
            p.rank(),
            s.calls,
            lms::util::fmt::bytes(s.bytes),
            lms::util::fmt::duration(Duration::from_nanos(p.stats(MpiCall::Reduce).time_nanos)),
        );
    }
    println!("\nOpenMP: {} regions, imbalance {:.1}%", omp.regions(), omp.imbalance() * 100.0);
}
