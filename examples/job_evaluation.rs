//! Online job evaluation and the admin view — reproduces paper Fig. 2.
//!
//! "Output of the online job evaluation with data from the start of the
//! job until the loading of the Grafana dashboard. The four rightmost
//! columns represent the nodes on which the job is running." Plus "the
//! main view for administrators contains all currently running jobs with
//! small thumbnails of the job's graphs".
//!
//! ```text
//! cargo run --release --example job_evaluation
//! ```

use lms::apps::AppProfile;
use lms::core::{LmsStack, StackConfig};
use std::time::Duration;

fn main() {
    let config = StackConfig { nodes: 8, ..Default::default() };
    let mut stack = LmsStack::start(config).expect("stack boots");

    // Three concurrent jobs with very different characters.
    let healthy = stack.submit_job(
        "anna",
        "gemm-sweep",
        4,
        Duration::from_secs(7200),
        AppProfile::Dgemm,
    );
    let bandwidth = stack.submit_job(
        "bert",
        "stencil",
        2,
        Duration::from_secs(7200),
        AppProfile::Stream,
    );
    let idle = stack.submit_job(
        "carl",
        "waiting-for-license",
        2,
        Duration::from_secs(7200),
        AppProfile::IdleJob,
    );

    println!("running 3 jobs on 8 nodes for 30 virtual minutes…\n");
    stack.run_for(Duration::from_secs(30 * 60), Duration::from_secs(60));

    // Fig. 2: the per-node evaluation table shown as the dashboard header,
    // one column per node, for each job.
    for job in [healthy, bandwidth, idle] {
        let evaluation = stack.evaluate_job(job).expect("evaluation");
        println!("{}", evaluation.render_table());
        println!();
    }

    // The administrators' main view with job thumbnails.
    let admin = stack.admin_view().expect("admin view");
    println!("{}", admin.text);

    // Let the jobs finish, then the statistical usage report — the paper's
    // "statistical foundation about application specific system usage".
    stack.run_for(Duration::from_secs(95 * 60), Duration::from_secs(60));
    let usage = stack.usage_report().expect("usage report");
    println!("{}", usage.render());

    // Sanity: the idle job must be flagged.
    let ev = stack.evaluate_job(idle).expect("evaluation");
    assert!(
        ev.findings
            .iter()
            .any(|f| matches!(f.kind, lms::analysis::FindingKind::IdleJob)),
        "idle job detected"
    );
    println!("idle job {idle} correctly flagged: {:?}", ev.pattern);
}
