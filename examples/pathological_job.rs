//! Pathological-job detection — reproduces paper Fig. 4.
//!
//! "Timeline of the DP FP rate and memory bandwidth of an four-node (h1,
//! h2, h3 and h4) job run revealing a longer break in computation with FP
//! rate and memory bandwidth below thresholds for more than 10 minutes."
//!
//! A 4-node job computes for 20 minutes, stalls for 18 minutes (the
//! pathological break), then resumes. The threshold+timeout rules of
//! `lms-analysis` find the break from the stored HPM data.
//!
//! ```text
//! cargo run --release --example pathological_job
//! ```

use lms::analysis::pathology::{FindingKind, PathologyDetector};
use lms::apps::AppProfile;
use lms::core::{LmsStack, StackConfig};
use lms::dashboard::render::{render_panel, RenderOptions};
use lms::dashboard::{Panel, Target};
use std::time::Duration;

fn main() {
    let mut stack = LmsStack::start(StackConfig::default()).expect("stack boots");

    // The Fig. 4 job: 4 nodes, one hour, with an 18-minute break after
    // 20 minutes of computation.
    let job = stack.submit_job(
        "erik",
        "stalled-solver",
        4,
        Duration::from_secs(3600),
        AppProfile::ComputeWithBreak {
            busy: Duration::from_secs(20 * 60),
            gap: Duration::from_secs(18 * 60),
        },
    );
    println!("running a 60-minute 4-node job with an 18-minute mid-run stall…\n");
    stack.run_for(Duration::from_secs(61 * 60), Duration::from_secs(60));

    let info = stack.job_info(job).expect("job info");
    let end = info.end.unwrap_or_else(|| stack.clock().now());

    // Fig. 4's two timelines, all four hosts overlaid per chart.
    let mut source = stack.influx().clone();
    for (title, measurement, field, unit) in [
        ("DP FP rate", "hpm_flops_dp", "dp_mflop_s", "MFLOP/s"),
        ("Memory bandwidth", "hpm_mem", "memory_bandwidth_mbytes_s", "MBytes/s"),
    ] {
        let panel = Panel {
            annotation_measurement: Some("events".into()),
            ..Panel::graph(
                title,
                Target {
                    db: "lms".into(),
                    query: format!(
                        "SELECT mean({field}) FROM {measurement} WHERE time >= {} AND time <= {} GROUP BY time(2m), hostname",
                        info.start.nanos(),
                        end.nanos()
                    ),
                    alias: "all hosts".into(),
                    column: "mean".into(),
                },
                unit,
            )
        };
        let text = render_panel(&panel, &mut source, RenderOptions { width: 64, height: 10 })
            .expect("render");
        println!("{text}");
    }

    // The detection the paper describes: thresholds + 10-minute timeout.
    let detector = PathologyDetector::new("lms");
    println!(
        "thresholds: FP rate < {} MFLOP/s AND bandwidth < {} MBytes/s for > {} min\n",
        detector.thresholds.fp_rate_mflops,
        detector.thresholds.membw_mbytes,
        detector.thresholds.break_timeout.as_secs() / 60
    );
    let findings = detector
        .detect(&mut source, &info.hosts, info.start, end)
        .expect("detection");

    let mut breaks = 0;
    for finding in &findings {
        println!("[{:?}] {}", finding.kind, finding.detail);
        if finding.kind == FindingKind::ComputationBreak {
            breaks += 1;
            if let Some(w) = finding.window {
                println!(
                    "        window: {} → {}  ({})",
                    w.start,
                    w.end,
                    lms::util::fmt::duration(w.duration())
                );
            }
        }
    }
    println!(
        "\n{} computation break(s) detected on {} hosts — paper Fig. 4 expects one per host.",
        breaks,
        info.hosts.len()
    );
    assert_eq!(breaks, info.hosts.len(), "every node shows the synchronized break");
}
