//! Pipeline round-trip property: random points pushed through the real
//! agent→router→database path (TCP, enrichment, batching) come back from
//! queries bit-identical in value and timestamp, with exactly the job tags
//! added and nothing else changed.

use lms::http::HttpClient;
use lms::influx::{Influx, InfluxServer};
use lms::lineproto::{BatchBuilder, Point};
use lms::router::{JobSignal, Router, RouterConfig, RouterServer};
use lms::util::{Clock, Timestamp};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

struct Pipeline {
    influx: Influx,
    router: Arc<Router>,
    client: HttpClient,
    _db: InfluxServer,
    _rs: RouterServer,
}

fn pipeline() -> Pipeline {
    let clock = Clock::simulated(Timestamp::from_secs(50_000));
    let influx = Influx::new(clock.clone());
    let db = InfluxServer::start("127.0.0.1:0", influx.clone()).unwrap();
    let router = Arc::new(Router::new(db.addr(), RouterConfig::default(), clock, None).unwrap());
    let rs = RouterServer::start("127.0.0.1:0", router.clone()).unwrap();
    let client = HttpClient::connect(rs.addr()).unwrap();
    router.handle_job_start(JobSignal {
        job_id: "777".into(),
        user: "prop".into(),
        hosts: vec!["tagged-host".into()],
        extra_tags: vec![],
    });
    Pipeline { influx, router, client, _db: db, _rs: rs }
}

/// `(measurement index, hostname index, value, seconds offset)` tuples:
/// a constrained but varied point population.
fn points_strategy() -> impl Strategy<Value = Vec<(u8, bool, f64, u32)>> {
    proptest::collection::vec(
        (0u8..4, any::<bool>(), -1.0e6..1.0e6f64, 0u32..3600),
        1..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    #[test]
    fn values_and_timestamps_survive_the_full_path(raw in points_strategy()) {
        let mut p = pipeline();
        // Unique (measurement, host, ts) per point — duplicates overwrite
        // by design, which would make the comparison ambiguous.
        let mut seen = std::collections::HashSet::new();
        let mut expected: Vec<(String, String, f64, i64)> = Vec::new();
        let mut batch = BatchBuilder::new();
        for (m, tagged, value, secs) in raw {
            let measurement = format!("prop_m{m}");
            let host = if tagged { "tagged-host" } else { "plain-host" };
            let ts = secs as i64 * 1_000_000_000;
            if !seen.insert((measurement.clone(), host, ts)) {
                continue;
            }
            let mut point = Point::new(&measurement);
            point.add_tag("hostname", host).add_field("value", value).set_timestamp(ts);
            batch.push(&point);
            expected.push((measurement, host.to_string(), value, ts));
        }
        let resp = p.client.post_text("/write?db=lms", batch.as_str()).unwrap();
        prop_assert_eq!(resp.status, 204);
        prop_assert!(p.router.flush(Duration::from_secs(10)));

        for (measurement, host, value, ts) in &expected {
            let q = format!(
                "SELECT value FROM {measurement} WHERE hostname = '{host}' AND time >= {ts} AND time <= {ts}",
                ts = ts
            );
            // `time >= ts AND time <= ts` is an inclusive single-instant
            // range; exactly one row must come back with the exact value.
            let r = p.influx.query("lms", &q).unwrap();
            let rows: Vec<&Vec<lms::util::Json>> =
                r.series.iter().flat_map(|s| &s.values).collect();
            prop_assert_eq!(rows.len(), 1, "{} {} {}", measurement, host, ts);
            prop_assert_eq!(rows[0][0].as_i64(), Some(*ts));
            prop_assert_eq!(rows[0][1].as_f64(), Some(*value), "exact f64 round-trip");
        }

        // Enrichment: tagged-host rows carry the job tags, plain-host rows
        // carry none.
        let tagged_count = expected.iter().filter(|(_, h, _, _)| h == "tagged-host").count();
        if tagged_count > 0 {
            let mut found = 0usize;
            for m in 0..4 {
                let q = format!("SELECT count(value) FROM prop_m{m} WHERE jobid = '777' AND user = 'prop'");
                let r = p.influx.query("lms", &q).unwrap();
                if let Some(row) = r.series.first().and_then(|s| s.values.first()) {
                    found += row[1].as_i64().unwrap_or(0) as usize;
                }
            }
            prop_assert_eq!(found, tagged_count);
        }
        let plain = expected.iter().filter(|(_, h, _, _)| h == "plain-host").count();
        if plain > 0 {
            for m in 0..4 {
                let q = format!("SELECT count(value) FROM prop_m{m} WHERE hostname = 'plain-host' AND jobid = '777'");
                let r = p.influx.query("lms", &q).unwrap();
                let n = r
                    .series
                    .first()
                    .and_then(|s| s.values.first())
                    .and_then(|row| row[1].as_i64())
                    .unwrap_or(0);
                prop_assert_eq!(n, 0, "plain host must not inherit job tags");
            }
        }
    }
}
