//! Supervision suite: injected panics in the background workers
//! (the database's storage worker and the router's spool drainer) must
//! self-heal — restart with backoff, flip the health gauges through
//! `restarting` back to `healthy` — and repeated panics must exhaust the
//! restart budget, marking the worker `failed` and the component
//! not-ready instead of restart-looping forever.
//!
//! The panic-injection hooks are deterministic counters (each worker
//! iteration consumes one pending panic), so the tests are seed-stable;
//! `LMS_CHAOS_SEED` only varies the supervisor's backoff jitter.

use lms::http::HttpClient;
use lms::influx::{Influx, InfluxServer, StorageConfig};
use lms::router::{Router, RouterConfig, RouterServer};
use lms::spool::SpoolConfig;
use lms::util::{Clock, SupervisorConfig, Timestamp, WorkerHealth, WorkerReport};
use lms::util::rng::chaos_seed;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "lms-superv-{}-{tag}-{}",
        std::process::id(),
        chaos_seed()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Polls `f` until it returns true or the deadline passes.
fn wait_for(what: &str, timeout: Duration, mut f: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if f() {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("timed out waiting for {what}");
}

fn report_of<'a>(reports: &'a [WorkerReport], name: &str) -> Option<&'a WorkerReport> {
    reports.iter().find(|r| r.name == name)
}

#[test]
fn storage_worker_panic_self_heals_and_budget_opens() {
    let dir = tmp_dir("storage");
    let influx =
        Influx::open(Clock::simulated(Timestamp::from_secs(8_000_000)), 4, StorageConfig::new(&dir))
            .unwrap();
    influx.create_database("lms");
    let sup = SupervisorConfig {
        max_restarts: 3,
        backoff_base: Duration::from_millis(10),
        backoff_cap: Duration::from_millis(50),
        reset_after: Duration::from_secs(600), // panics in this test are always "consecutive"
        seed: chaos_seed(),
    };
    let _worker = influx.spawn_storage_worker_with(sup).expect("persistent database");
    let server = InfluxServer::start("127.0.0.1:0", influx.clone()).unwrap();
    let mut c = HttpClient::connect(server.addr()).unwrap();

    // Healthy baseline.
    assert_eq!(c.get("/health/ready").unwrap().status, 204);
    assert!(influx.workers_ready());

    // One injected panic: the supervisor restarts the worker with backoff
    // and the health gauge returns to `healthy`.
    influx.inject_storage_worker_panics(1);
    wait_for("storage worker restart", Duration::from_secs(10), || {
        report_of(&influx.worker_reports(), "storage").is_some_and(|r| r.restarts >= 1)
    });
    wait_for("readiness after self-heal", Duration::from_secs(10), || influx.workers_ready());
    assert_eq!(c.get("/health/ready").unwrap().status, 204);
    let report = influx.worker_reports();
    let storage = report_of(&report, "storage").unwrap();
    assert_eq!(storage.health, WorkerHealth::Healthy, "{report:?}");
    assert!(storage.last_panic.as_deref().unwrap().contains("injected"), "{report:?}");

    // The restarted worker still does its job: writes flush to disk.
    influx.write_lines("lms", "heal v=1 1", lms::influx::WriteOptions::default()).unwrap();
    wait_for("restarted worker flushes", Duration::from_secs(15), || {
        let s = influx.storage_stats();
        s.wal_bytes > 0 || s.segment_files > 0
    });

    // A panic storm exhausts the restart budget: the worker is marked
    // `failed` (no more restarts) and readiness goes 503 with detail.
    influx.inject_storage_worker_panics(1_000);
    wait_for("restart budget opens", Duration::from_secs(30), || {
        report_of(&influx.worker_reports(), "storage")
            .is_some_and(|r| r.health == WorkerHealth::Failed)
    });
    assert!(!influx.workers_ready());
    let resp = c.get("/health/ready").unwrap();
    assert_eq!(resp.status, 503);
    assert!(resp.body_str().contains("failed"), "{}", resp.body_str());
    // Liveness is unaffected: the process still serves requests.
    assert_eq!(c.get("/health/live").unwrap().status, 204);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn spool_drainer_panic_self_heals_and_budget_opens() {
    let clock = Clock::simulated(Timestamp::from_secs(8_100_000));
    let influx = Influx::new(clock.clone());
    let db = InfluxServer::start("127.0.0.1:0", influx.clone()).unwrap();
    let config = RouterConfig {
        spool: Some(SpoolConfig::new(tmp_dir("drainer"))),
        ..Default::default()
    };
    let router = Arc::new(Router::new(db.addr(), config, clock, None).unwrap());
    let rs = RouterServer::start("127.0.0.1:0", router.clone()).unwrap();
    let mut c = HttpClient::connect(rs.addr()).unwrap();

    assert_eq!(c.get("/health/ready").unwrap().status, 204);

    // One injected panic: the drainer restarts and readiness recovers.
    router.inject_drainer_panics(1);
    wait_for("drainer restart", Duration::from_secs(10), || {
        report_of(&router.worker_reports(), "spool-drainer").is_some_and(|r| r.restarts >= 1)
    });
    wait_for("readiness after drainer self-heal", Duration::from_secs(10), || {
        router.workers_ready()
    });
    assert_eq!(c.get("/health/ready").unwrap().status, 204);

    // Delivery still works end-to-end after the restart.
    assert_eq!(c.post_text("/write", "heal,hostname=h1 v=1 1").unwrap().status, 204);
    assert!(router.flush(Duration::from_secs(10)));
    assert_eq!(influx.point_count("lms"), 1);

    // Panic storm: the drainer's restart budget (default 5) opens; the
    // router reports not-ready with the per-worker detail, while the
    // forwarder workers keep delivering (they are supervised separately).
    router.inject_drainer_panics(1_000);
    wait_for("drainer budget opens", Duration::from_secs(60), || {
        report_of(&router.worker_reports(), "spool-drainer")
            .is_some_and(|r| r.health == WorkerHealth::Failed)
    });
    let resp = c.get("/health/ready").unwrap();
    assert_eq!(resp.status, 503);
    assert!(resp.body_str().contains("spool-drainer"), "{}", resp.body_str());
    assert_eq!(c.get("/health/live").unwrap().status, 204);
    // Direct delivery (queue → worker → db) is unaffected by the dead drainer.
    assert_eq!(c.post_text("/write", "heal,hostname=h1 v=2 2").unwrap().status, 204);
    assert!(router.flush(Duration::from_secs(10)));
    assert_eq!(influx.point_count("lms"), 2);

    rs.shutdown();
    db.shutdown();
}
