//! Chaos suite: deterministic fault injection between the router's
//! forwarder and the database, proving **lossless** end-to-end delivery
//! through outages, flaps, and restarts.
//!
//! Every test routes forwarder traffic through a seeded
//! [`FaultProxy`](lms::http::FaultProxy); the seed comes from
//! `LMS_CHAOS_SEED` (default 1), so CI can sweep a seed matrix and any
//! failure reproduces exactly by exporting the same seed.
//!
//! Points carry unique timestamps, and the database overwrites on
//! identical series+timestamp — so at-least-once replay still yields an
//! exact final count, and `point_count` is a loss detector.

use lms::http::{FaultConfig, FaultProxy, HttpClient};
use lms::influx::{Influx, InfluxServer};
use lms::router::{Router, RouterConfig, RouterServer};
use lms::spool::SpoolConfig;
use lms::util::{Clock, Timestamp};
use lms::util::rng::chaos_seed;
use std::sync::Arc;
use std::time::Duration;

fn clock() -> Clock {
    Clock::simulated(Timestamp::from_secs(7_000_000))
}

fn tmp_spool(tag: &str) -> SpoolConfig {
    let dir = std::env::temp_dir().join(format!(
        "lms-chaos-{}-{tag}-{}",
        std::process::id(),
        chaos_seed()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    SpoolConfig::new(dir)
}

struct Rig {
    db: InfluxServer,
    influx: Influx,
    proxy: FaultProxy,
    router: Arc<Router>,
    rs: RouterServer,
    agent: HttpClient,
}

fn rig(tag: &str, fault: FaultConfig) -> Rig {
    let clock = clock();
    let influx = Influx::new(clock.clone());
    let db = InfluxServer::start("127.0.0.1:0", influx.clone()).unwrap();
    let proxy = FaultProxy::start(db.addr(), fault).unwrap();
    let config = RouterConfig {
        max_retries: 1,
        spool: Some(tmp_spool(tag)),
        ..Default::default()
    };
    let router = Arc::new(Router::new(proxy.addr(), config, clock, None).unwrap());
    let rs = RouterServer::start("127.0.0.1:0", router.clone()).unwrap();
    let agent = HttpClient::connect(rs.addr()).unwrap();
    Rig { db, influx, proxy, router, rs, agent }
}

/// A multi-second hard outage in the middle of a steady write stream:
/// every point written before, during, and after the outage must be in
/// the database once `flush()` returns — zero loss, no settling sleeps.
#[test]
fn hard_outage_mid_stream_loses_nothing() {
    let mut r = rig("outage", FaultConfig { seed: chaos_seed(), ..FaultConfig::default() });
    const N: usize = 150;
    for i in 1..=N {
        let resp = r
            .agent
            .post_text("/write", &format!("chaos,hostname=h1 v={i} {i}"))
            .unwrap();
        assert_eq!(resp.status, 204, "the router must keep accepting during the outage");
        if i == N / 3 {
            r.proxy.set_down(); // ~2 s outage, mid-stream
        }
        if i == N - N / 3 {
            r.proxy.set_up();
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(
        r.router.flush(Duration::from_secs(60)),
        "flush must drain queue, in-flight and spool: {:?}",
        r.router.stats().forward
    );
    let f = r.router.stats().forward;
    assert_eq!(r.influx.point_count("lms"), N, "zero point loss, {f:?}");
    assert_eq!(f.dropped, 0, "{f:?}");
    assert!(f.spooled > 0, "the outage must have exercised the spool: {f:?}");
    assert!(f.replayed >= f.spooled, "{f:?}");
    assert_eq!(f.spool_pending, 0, "{f:?}");
    r.rs.shutdown();
    r.proxy.shutdown();
    r.db.shutdown();
}

/// A flapping destination: every request gets a seeded coin flip between
/// clean forwarding, an injected 503, a dropped connection, and a delay.
/// Retries, the breaker and the spool together must still deliver all.
#[test]
fn flapping_database_delivers_every_point() {
    let mut r = rig(
        "flap",
        FaultConfig {
            seed: chaos_seed(),
            error_prob: 0.3,
            drop_prob: 0.2,
            delay_prob: 0.2,
            delay: Duration::from_millis(20),
        },
    );
    const N: usize = 100;
    for i in 1..=N {
        let resp = r
            .agent
            .post_text("/write", &format!("flap,hostname=h2 v={i} {i}"))
            .unwrap();
        assert_eq!(resp.status, 204);
    }
    assert!(
        r.router.flush(Duration::from_secs(60)),
        "{:?}",
        r.router.stats().forward
    );
    let f = r.router.stats().forward;
    assert_eq!(r.influx.point_count("lms"), N, "zero point loss, {f:?}");
    assert_eq!(f.dropped, 0, "{f:?}");
    let (_, errors, dropped, _) = r.proxy.stats();
    assert!(errors + dropped > 0, "the schedule must have injected faults");
    r.rs.shutdown();
    r.proxy.shutdown();
    r.db.shutdown();
}

/// The spool is durable across a router crash: batches spooled during an
/// outage are replayed by a **new** router process pointed at the same
/// directory.
#[test]
fn spool_survives_router_restart() {
    let spool_cfg = tmp_spool("restart");
    let clk = clock();
    let influx = Influx::new(clk.clone());
    let db = InfluxServer::start("127.0.0.1:0", influx.clone()).unwrap();
    let proxy = FaultProxy::start(db.addr(), FaultConfig { seed: chaos_seed(), ..Default::default() })
        .unwrap();
    proxy.set_down(); // destination dead from the start

    const N: usize = 20;
    {
        let config = RouterConfig {
            max_retries: 1,
            spool: Some(spool_cfg.clone()),
            ..Default::default()
        };
        let router =
            Arc::new(Router::new(proxy.addr(), config, clk.clone(), None).unwrap());
        let rs = RouterServer::start("127.0.0.1:0", router.clone()).unwrap();
        let mut agent = HttpClient::connect(rs.addr()).unwrap();
        for i in 1..=N {
            assert_eq!(
                agent.post_text("/write", &format!("dur,hostname=h3 v={i} {i}")).unwrap().status,
                204
            );
        }
        // Nothing can drain: flush times out with the backlog intact.
        assert!(!router.flush(Duration::from_secs(2)));
        rs.shutdown();
    } // router drops — workers drain the queue into the spool on the way out

    // "Restart": a new router on the same spool directory, destination up.
    proxy.set_up();
    let config = RouterConfig { spool: Some(spool_cfg), ..Default::default() };
    let router = Arc::new(Router::new(proxy.addr(), config, clk, None).unwrap());
    assert!(router.flush(Duration::from_secs(30)), "{:?}", router.stats().forward);
    let f = router.stats().forward;
    assert_eq!(influx.point_count("lms"), N, "all pre-crash points recovered, {f:?}");
    assert_eq!(f.replayed, N as u64, "{f:?}");
    proxy.shutdown();
    db.shutdown();
}

/// `flush()` returning true means *delivered* — not merely dequeued.
/// With every request delayed, a flush racing the in-flight batch must
/// still only return once the point is in the database.
#[test]
fn flush_waits_for_in_flight_batches() {
    let mut r = rig(
        "inflight",
        FaultConfig {
            seed: chaos_seed(),
            delay_prob: 1.0,
            delay: Duration::from_millis(300),
            ..FaultConfig::default()
        },
    );
    for i in 1..=3u32 {
        assert_eq!(
            r.agent.post_text("/write", &format!("slow,hostname=h4 v={i} {i}")).unwrap().status,
            204
        );
    }
    // No sleep: the batches are at best mid-delay inside workers now.
    assert!(r.router.flush(Duration::from_secs(30)));
    assert_eq!(r.influx.point_count("lms"), 3, "flush returned before delivery finished");
    r.rs.shutdown();
    r.proxy.shutdown();
    r.db.shutdown();
}
