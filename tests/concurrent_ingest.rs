//! Concurrency contract of the sharded ingest path.
//!
//! The sharded engine must behave observably like the old single-lock one:
//! no lost or duplicated points under parallel writers, last-write-wins on
//! timestamp collisions, and byte-identical query output regardless of the
//! shard count.

use lms_influx::{Influx, WriteOptions};
use lms_util::{Clock, Timestamp};
use std::time::Duration;

fn engine(shards: usize) -> Influx {
    Influx::with_shards(Clock::simulated(Timestamp::from_secs(1000)), shards)
}

/// N writer threads × M batches × P points each: every point is counted
/// exactly once, across both thread-private and cross-thread series.
#[test]
fn concurrent_writers_lose_no_points() {
    const THREADS: usize = 8;
    const BATCHES: usize = 16;
    const POINTS: usize = 32;

    let ix = engine(16);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let ix = ix.clone();
            s.spawn(move || {
                for b in 0..BATCHES {
                    let mut body = String::new();
                    for p in 0..POINTS {
                        // Half the points go to a thread-private series, half
                        // to series shared by all threads (distinct ts per
                        // thread so nothing overwrites).
                        let ts = (t * BATCHES * POINTS + b * POINTS + p + 1) as i64;
                        if p % 2 == 0 {
                            body.push_str(&format!("cpu,hostname=h{t} value={p} {ts}\n"));
                        } else {
                            body.push_str(&format!("mem,hostname=shared,slot=s{p} used={b} {ts}\n"));
                        }
                    }
                    let outcome = ix.write_lines("lms", &body, WriteOptions::default()).unwrap();
                    assert_eq!(outcome.written, POINTS);
                    assert_eq!(outcome.rejected, 0);
                }
            });
        }
    });

    assert_eq!(ix.point_count("lms"), THREADS * BATCHES * POINTS);
    // THREADS private cpu series + POINTS/2 shared mem series.
    assert_eq!(ix.series_count("lms"), THREADS + POINTS / 2);
}

/// The pathological hot-series workload from `BENCH_ingest.json`: every
/// writer hammers the SAME series. The staged append buffers turn the
/// old per-series write-lock convoy into briefly-locked pushes, but the
/// contract is unchanged — all-unique timestamps in, exactly that set
/// out, nothing lost or applied twice.
#[test]
fn hot_series_concurrent_writers_lose_nothing_and_duplicate_nothing() {
    const THREADS: usize = 8;
    const BATCHES: usize = 16;
    const POINTS: usize = 32;

    let ix = engine(16);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let ix = ix.clone();
            s.spawn(move || {
                for b in 0..BATCHES {
                    let mut body = String::new();
                    for p in 0..POINTS {
                        // One shared series; value == timestamp makes the
                        // checksum below detect any loss or duplication.
                        let ts = (t * BATCHES * POINTS + b * POINTS + p + 1) as i64;
                        body.push_str(&format!("hot,hostname=h1 v={ts}i {ts}\n"));
                    }
                    let outcome = ix.write_lines("lms", &body, WriteOptions::default()).unwrap();
                    assert_eq!(outcome.written, POINTS);
                    assert_eq!(outcome.rejected, 0);
                }
            });
        }
    });

    let n = (THREADS * BATCHES * POINTS) as i64;
    assert_eq!(ix.point_count("lms"), n as usize);
    assert_eq!(ix.series_count("lms"), 1);
    let r = ix.query("lms", "SELECT count(v), sum(v) FROM hot").unwrap();
    let row = &r.series[0].values[0];
    assert_eq!(row[1].as_i64(), Some(n));
    assert_eq!(row[2].as_i64(), Some(n * (n + 1) / 2), "point set is not exactly 1..=n");
}

/// All threads hammer the same series at the same timestamp: exactly one
/// point survives and its value is one that was actually written.
#[test]
fn timestamp_collisions_resolve_last_write_wins() {
    const THREADS: i64 = 8;

    let ix = engine(16);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let ix = ix.clone();
            s.spawn(move || {
                for round in 0..50 {
                    let body = format!("clash,hostname=h1 v={} 424242", t * 1000 + round);
                    ix.write_lines("lms", &body, WriteOptions::default()).unwrap();
                }
            });
        }
    });

    assert_eq!(ix.point_count("lms"), 1);
    let r = ix.query("lms", "SELECT v FROM clash").unwrap();
    assert_eq!(r.series.len(), 1);
    assert_eq!(r.series[0].values.len(), 1);
    assert_eq!(r.series[0].values[0][0].as_i64(), Some(424_242));
    let v = r.series[0].values[0][1].as_f64().expect("field value");
    let written = (0..THREADS).flat_map(|t| (0..50).map(move |r| (t * 1000 + r) as f64));
    assert!(written.clone().any(|w| w == v), "value {v} was never written");
}

/// Out-of-order backfill followed by retention: the sharded engine evicts
/// exactly what the single-lock engine evicts, and the surviving data
/// queries byte-identically.
#[test]
fn backfill_and_retention_match_single_shard_engine() {
    let sharded = engine(16);
    let single = engine(1);

    // Interleaved out-of-order writes: new data first, then backfill older
    // timestamps, on several series.
    let batches = [
        "cpu,hostname=h1 v=5 5000000000000\ncpu,hostname=h2 v=6 6000000000000",
        "cpu,hostname=h1 v=1 1000000000000\nmem,hostname=h1 used=2 2000000000000",
        "cpu,hostname=h2 v=3 3000000000000\ncpu,hostname=h1 v=4 4500000000000",
        "mem,hostname=h1 used=9 999000000000000\nmem,hostname=h2 used=1 1500000000000",
    ];
    for ix in [&sharded, &single] {
        for batch in &batches {
            ix.write_lines("lms", batch, WriteOptions::default()).unwrap();
        }
        ix.set_retention("lms", Some(Duration::from_secs(10_000)));
        // now = 1000s; advance so timestamps below 4000s fall out of the
        // 10 000 s window ending at 14 000 s.
        ix.clock().advance(Duration::from_secs(13_000));
    }

    let evicted_sharded = sharded.enforce_retention();
    let evicted_single = single.enforce_retention();
    assert_eq!(evicted_sharded, evicted_single);
    assert!(evicted_sharded > 0, "expected the backfilled points to age out");
    assert_eq!(sharded.point_count("lms"), single.point_count("lms"));

    for q in [
        "SELECT v FROM cpu",
        "SELECT used FROM mem",
        "SELECT v FROM cpu WHERE hostname = 'h1'",
        "SHOW MEASUREMENTS",
        "SHOW FIELD KEYS FROM cpu",
    ] {
        let a = sharded.query("lms", q).unwrap().to_json().to_string();
        let b = single.query("lms", q).unwrap().to_json().to_string();
        assert_eq!(a, b, "query `{q}` diverged between shard counts");
    }
}

/// The same concurrent workload lands in identical query output for a
/// 1-shard and a 16-shard engine (ordering is deterministic, not
/// scheduling-dependent): run the writes twice and compare JSON.
#[test]
fn concurrent_workload_queries_identically_across_shard_counts() {
    const THREADS: usize = 4;

    let run = |shards: usize| {
        let ix = engine(shards);
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let ix = ix.clone();
                s.spawn(move || {
                    for i in 0..100usize {
                        let ts = (i + 1) as i64 * 1_000;
                        let body =
                            format!("flops,hostname=h{t},cpu=c{} value={i} {ts}", i % 4);
                        ix.write_lines("lms", &body, WriteOptions::default()).unwrap();
                    }
                });
            }
        });
        ix
    };

    let sharded = run(16);
    let single = run(1);
    assert_eq!(sharded.point_count("lms"), single.point_count("lms"));
    for q in [
        "SELECT value FROM flops WHERE hostname = 'h2'",
        "SELECT value FROM flops WHERE cpu = 'c3' AND hostname = 'h0'",
        "SHOW TAG VALUES FROM flops WITH KEY = hostname",
    ] {
        let a = sharded.query("lms", q).unwrap().to_json().to_string();
        let b = single.query("lms", q).unwrap().to_json().to_string();
        assert_eq!(a, b, "query `{q}` diverged between shard counts");
    }
}
