//! Overload + graceful-shutdown chaos suite.
//!
//! Drives the router at a sustained multiple of its delivery capacity
//! (tiny queue, single worker, seeded fault flaps on the database link)
//! and proves the paper-stack's overload contract:
//!
//! - bulk writes are *shed* with `503` + `Retry-After` when the pipeline
//!   is saturated — never silently dropped after acceptance;
//! - job signals are **always** admitted, even at peak overload;
//! - every *acknowledged* (`204`) write survives a graceful shutdown and
//!   router restart with zero loss (the spool carries the backlog).
//!
//! Fault schedules are seeded from `LMS_CHAOS_SEED` (default 1) so CI can
//! sweep a seed matrix and failures reproduce exactly.

use lms::http::{FaultConfig, FaultProxy, HttpClient};
use lms::influx::{Influx, InfluxServer};
use lms::router::{Router, RouterConfig, RouterServer};
use lms::spool::SpoolConfig;
use lms::util::{Clock, Timestamp};
use lms::util::rng::chaos_seed;
use std::sync::Arc;
use std::time::Duration;

fn tmp_spool(tag: &str) -> SpoolConfig {
    let dir = std::env::temp_dir().join(format!(
        "lms-overload-{}-{tag}-{}",
        std::process::id(),
        chaos_seed()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    SpoolConfig::new(dir)
}

/// 2x-capacity write load against a flapping database: writes are either
/// acknowledged (204) or shed (503 + Retry-After); signals always land;
/// after a graceful shutdown and a restart on the same spool directory,
/// the database holds exactly the acknowledged points — zero loss.
#[test]
fn overload_sheds_cleanly_and_acknowledged_points_survive_restart() {
    let clock = Clock::simulated(Timestamp::from_secs(7_500_000));
    let influx = Influx::new(clock.clone());
    let db = InfluxServer::start("127.0.0.1:0", influx.clone()).unwrap();
    let proxy = FaultProxy::start(
        db.addr(),
        FaultConfig {
            seed: chaos_seed(),
            error_prob: 0.25,
            drop_prob: 0.15,
            delay_prob: 0.2,
            delay: Duration::from_millis(10),
        },
    )
    .unwrap();
    let spool_cfg = tmp_spool("shed");
    // Tiny queue + single worker: the tight write loop below runs far
    // beyond delivery capacity, so the admission gate must trip.
    let config = RouterConfig {
        queue_capacity: 2,
        forward_workers: 1,
        max_retries: 2,
        spool: Some(spool_cfg.clone()),
        ..Default::default()
    };
    let router = Arc::new(Router::new(proxy.addr(), config.clone(), clock.clone(), None).unwrap());
    let rs = RouterServer::start("127.0.0.1:0", router.clone()).unwrap();
    let mut agent = HttpClient::connect(rs.addr()).unwrap();

    const N: usize = 300;
    let mut acked: Vec<usize> = Vec::new();
    let mut shed = 0usize;
    let mut signals = 0usize;
    for i in 1..=N {
        // A hard outage in the middle of the stream on top of the flaps.
        if i == N / 3 {
            proxy.set_down();
        }
        if i == 2 * N / 3 {
            proxy.set_up();
        }
        // Unique timestamp per request: the final point count is an exact
        // loss detector even under at-least-once spool replay.
        let resp = agent
            .post_text("/write?db=metrics", &format!("over,hostname=h1 v={i} {i}"))
            .unwrap();
        match resp.status {
            204 => acked.push(i),
            503 => {
                assert!(
                    resp.header("retry-after").is_some(),
                    "shed responses must carry Retry-After"
                );
                shed += 1;
            }
            s => panic!("write {i}: unexpected status {s}"),
        }
        // Job signals must be admitted at any load level.
        if i % 50 == 0 {
            signals += 1;
            let r = agent.post(&format!("/signal/start?job=j{i}&user=u&hosts=h1"), b"").unwrap();
            assert_eq!(r.status, 204, "job signals must never be shed");
            let r = agent.post(&format!("/signal/end?job=j{i}"), b"").unwrap();
            assert_eq!(r.status, 204, "job signals must never be shed");
        }
    }
    assert_eq!(acked.len() + shed, N);
    assert!(shed > 0, "the load must have saturated the pipeline at least once");
    assert!(!acked.is_empty(), "some writes must get through");
    let stats = router.stats();
    assert_eq!(stats.writes_shed, shed as u64, "shed counter must match observed 503s");
    assert_eq!(stats.signals, signals as u64 * 2);

    // Graceful shutdown: stop accepting, give the pipeline a short drain
    // window (intentionally not enough for the whole backlog), then drop
    // the router. Accepted-but-undelivered batches persist in the spool.
    rs.shutdown();
    let _ = router.flush(Duration::from_secs(3));
    let pre_restart = router.stats().forward;
    assert_eq!(pre_restart.dropped, 0, "acknowledged writes must never be dropped: {pre_restart:?}");
    drop(router);

    // Restart on the same spool, destination healthy: replay finishes the
    // job. Exactly the acknowledged points (plus the signal events in the
    // default db) are present — nothing lost, nothing invented.
    let router2 = Arc::new(
        Router::new(db.addr(), RouterConfig { spool: Some(spool_cfg), ..Default::default() }, clock, None)
            .unwrap(),
    );
    assert!(router2.flush(Duration::from_secs(60)), "{:?}", router2.stats().forward);
    let f = router2.stats().forward;
    assert_eq!(
        influx.point_count("metrics"),
        acked.len(),
        "acknowledged writes must survive shutdown + restart exactly, {f:?}"
    );
    // Each signal produced one event point per host (1 host) for start and end.
    assert_eq!(influx.point_count("lms"), signals * 2, "signal events must never be lost, {f:?}");
    assert_eq!(f.dropped, 0, "{f:?}");

    proxy.shutdown();
    db.shutdown();
}

/// Under overload with a *healthy* database, shedding still engages and
/// recovery is immediate: once the client backs off (heeding Retry-After),
/// subsequent writes are admitted again.
#[test]
fn shedding_recovers_once_load_subsides() {
    let clock = Clock::simulated(Timestamp::from_secs(7_600_000));
    let influx = Influx::new(clock.clone());
    let db = InfluxServer::start("127.0.0.1:0", influx.clone()).unwrap();
    let proxy = FaultProxy::start(
        db.addr(),
        FaultConfig {
            seed: chaos_seed(),
            delay_prob: 1.0,
            delay: Duration::from_millis(50),
            ..Default::default()
        },
    )
    .unwrap();
    let config = RouterConfig {
        queue_capacity: 2,
        forward_workers: 1,
        spool: Some(tmp_spool("recover")),
        ..Default::default()
    };
    let router = Arc::new(Router::new(proxy.addr(), config, clock, None).unwrap());
    let rs = RouterServer::start("127.0.0.1:0", router.clone()).unwrap();
    let mut agent = HttpClient::connect(rs.addr()).unwrap();

    // Burst far past capacity: with every delivery delayed 50 ms, the
    // 2-slot queue saturates and the tail of the burst is shed.
    let mut shed = 0usize;
    for i in 1..=50usize {
        let resp = agent.post_text("/write?db=m2", &format!("burst v={i} {i}")).unwrap();
        if resp.status == 503 {
            shed += 1;
        }
    }
    assert!(shed > 0, "burst must trigger shedding");

    // Back off like a well-behaved client, then write again: admitted.
    assert!(router.flush(Duration::from_secs(30)));
    let resp = agent.post_text("/write?db=m2", "after v=1 9999999").unwrap();
    assert_eq!(resp.status, 204, "admission must recover after the queue drains");
    assert!(router.flush(Duration::from_secs(30)));

    rs.shutdown();
    proxy.shutdown();
    db.shutdown();
}
