//! Integrity chaos suite: silent on-disk corruption is injected into a
//! replicated cluster of persistent database nodes, then the self-healing
//! pipeline runs end to end — **bit-flip → scrub → quarantine →
//! anti-entropy repair** — proving the data-integrity contract:
//!
//! - **detection** — the background scrubber finds the flipped bit on its
//!   next cycle and quarantines exactly the damaged segment, never a
//!   healthy one;
//! - **containment** — the damaged node stops serving the affected range
//!   and exposes `quarantined_segments` / `damaged_ranges` over `/stats`,
//!   while every other partition keeps serving;
//! - **repair** — the router's anti-entropy pass diffs `/integrity`
//!   digests, replays the divergent hour from the surviving replica
//!   through the normal write path, and the cluster reconverges: every
//!   acknowledged point is back on both of its owners and a second pass
//!   finds nothing to do.
//!
//! The corruption site is seeded from `LMS_CHAOS_SEED` (default 1), so CI
//! sweeps a seed matrix and any failure reproduces exactly by exporting
//! the same seed.

use lms::http::HttpClient;
use lms::influx::{Influx, InfluxServer, StorageConfig};
use lms::router::{ClusterConfig, Router, RouterConfig, RouterServer};
use lms::influx::tsm::scrub::inject_bit_flip;
use lms::util::rng::{chaos_seed, XorShift64};
use lms::util::{Clock, Json, Timestamp};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn clock() -> Clock {
    Clock::simulated(Timestamp::from_secs(8_000_000))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "lms-integrity-chaos-{}-{}-{tag}",
        std::process::id(),
        chaos_seed()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A 3-node persistent database cluster (R = 2, W = 1) fronted by a
/// replicating router. Unlike the delivery chaos rig there is no fault
/// proxy: every node stays reachable, the fault lives *on disk*.
struct Rig {
    dirs: Vec<PathBuf>,
    nodes: Vec<(Influx, InfluxServer)>,
    router: Arc<Router>,
    rs: RouterServer,
    agent: HttpClient,
}

fn rig(tag: &str) -> Rig {
    let clk = clock();
    let mut dirs = Vec::new();
    let mut nodes = Vec::new();
    for i in 0..3 {
        let dir = tmp_dir(&format!("{tag}-n{i}"));
        let influx = Influx::open(clk.clone(), 8, StorageConfig::new(&dir)).unwrap();
        let server = InfluxServer::start("127.0.0.1:0", influx.clone()).unwrap();
        dirs.push(dir);
        nodes.push((influx, server));
    }
    let cluster = ClusterConfig {
        nodes: nodes.iter().map(|(_, s)| s.addr()).collect(),
        replication: 2,
        write_quorum: 1,
        seed: chaos_seed(),
    };
    let router =
        Arc::new(Router::new_cluster(cluster, RouterConfig::default(), clk, None).unwrap());
    let rs = RouterServer::start("127.0.0.1:0", router.clone()).unwrap();
    let agent = HttpClient::connect(rs.addr()).unwrap();
    Rig { dirs, nodes, router, rs, agent }
}

impl Rig {
    /// Distinct queryable point copies across all nodes, measured through
    /// the integrity-digest protocol itself (digest counts deduplicate
    /// overlapping head/sealed versions, so repair over-delivery does not
    /// inflate the total).
    fn total_copies(&self) -> u64 {
        self.nodes
            .iter()
            .map(|(ix, _)| {
                ix.integrity_digests("lms", 3, 2, chaos_seed())
                    .unwrap()
                    .iter()
                    .map(|d| d.count)
                    .sum::<u64>()
            })
            .sum()
    }

    fn shutdown(self) {
        self.rs.shutdown();
        for (_, server) in self.nodes {
            server.shutdown();
        }
        for dir in self.dirs {
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// The headline invariant: flip one bit in one sealed segment, scrub,
/// repair — afterwards every acknowledged point again lives on exactly
/// its R = 2 owners and the merged read returns the exact acknowledged
/// set.
#[test]
fn bit_flip_scrub_quarantine_repair_restores_every_copy() {
    let mut r = rig("heal");
    const N: u64 = 64;
    for i in 1..=N {
        // 16 hostnames spread series over the whole ring; all timestamps
        // land in one digest hour (and one 2h storage partition).
        let line = format!("ic,hostname=h{} v={i} {i}000000000", i % 16);
        assert_eq!(r.agent.post_text("/write", &line).unwrap().status, 204);
    }
    assert!(r.router.flush(Duration::from_secs(30)), "{:?}", r.router.stats().forward);
    for (ix, _) in &r.nodes {
        ix.flush_storage().unwrap();
    }
    assert_eq!(r.total_copies(), 2 * N, "each point must start on exactly its 2 owners");
    let o = r.router.run_repair_pass(&["lms"]);
    assert_eq!(o.divergent, 0, "a healthy cluster must have nothing to repair: {o:?}");

    // Seeded bit flip inside the first frame payload of a sealed segment
    // on the first node that holds one.
    let mut rng = XorShift64::new(chaos_seed());
    let (victim, hit) = r
        .dirs
        .iter()
        .enumerate()
        .find_map(|(i, d)| inject_bit_flip(&d.join("lms"), &mut rng).map(|hit| (i, hit)))
        .expect("some node must hold a sealed segment");

    // Scrub one full cycle: exactly the damaged segment is quarantined.
    let ix = &r.nodes[victim].0;
    let mut quarantined = 0;
    loop {
        let out = ix.scrub_storage(u64::MAX).unwrap();
        quarantined += out.quarantined.len();
        if out.cycle_completed {
            break;
        }
    }
    assert_eq!(quarantined, 1, "seed {}: flip at {hit:?} must quarantine", chaos_seed());
    let stats = ix.storage_stats();
    assert_eq!(stats.quarantined_segments, 1, "{stats:?}");
    assert!(stats.damaged_ranges >= 1, "{stats:?}");
    assert!(stats.corrupt_frames >= 1, "{stats:?}");

    // Containment is observable over HTTP on the damaged node.
    let mut node_agent = HttpClient::connect(r.nodes[victim].1.addr()).unwrap();
    let s = Json::parse(&node_agent.get("/stats").unwrap().body_str()).unwrap();
    assert!(s.get("quarantined_segments").unwrap().as_i64().unwrap() >= 1);
    assert!(s.get("damaged_ranges").unwrap().as_i64().unwrap() >= 1);

    let lost = r.total_copies();
    assert!(lost < 2 * N, "quarantine must surface as missing copies ({lost} of {})", 2 * N);

    // Anti-entropy: the router diffs digests and replays the divergent
    // hour from the surviving replica through the normal write path.
    let o = r.router.run_repair_pass(&["lms"]);
    assert!(o.divergent >= 1, "{o:?}");
    assert!(o.repaired_ranges >= 1, "{o:?}");
    assert_eq!(o.errors, 0, "{o:?}");
    assert_eq!(o.nodes_unreachable, 0, "{o:?}");
    assert!(r.router.flush(Duration::from_secs(30)), "{:?}", r.router.stats().forward);

    // Zero loss, zero fabrication: both owners hold every point again...
    assert_eq!(r.total_copies(), 2 * N, "repair must restore every lost copy");
    // ...and the merged read returns the exact acknowledged set, once.
    let merged = r.router.handle_query("lms", "SELECT v FROM ic").unwrap();
    assert!(!merged.partial, "{merged:?}");
    let rows: Vec<i64> = merged
        .series
        .iter()
        .flat_map(|s| s.values.iter())
        .map(|row| row[1].as_i64().unwrap())
        .collect();
    assert_eq!(rows.len(), N as usize, "merged read must return each point once");
    assert_eq!(rows.iter().sum::<i64>(), (N * (N + 1) / 2) as i64);

    // Convergence: a second pass finds nothing, and the router's /stats
    // expose the repair counters.
    let o2 = r.router.run_repair_pass(&["lms"]);
    assert_eq!(o2.divergent, 0, "the cluster must converge after one repair: {o2:?}");
    let s = Json::parse(&r.agent.get("/stats").unwrap().body_str()).unwrap();
    assert_eq!(s.get("repair_passes").unwrap().as_i64(), Some(3));
    assert!(s.get("repaired_ranges").unwrap().as_i64().unwrap() >= 1);
    r.shutdown();
}

/// The scrubber's byte budget bounds each pass's I/O burst, not its
/// eventual coverage: with a budget far below the segment size, repeated
/// passes must still walk the whole file set and find the damage.
#[test]
fn budgeted_scrub_still_reaches_the_damage() {
    let dir = tmp_dir("budget");
    let ix = Influx::open(clock(), 8, StorageConfig::new(&dir)).unwrap();
    let mut batch = String::new();
    for i in 1..=200u64 {
        batch.push_str(&format!("b,hostname=h{} v={i} {i}000000000\n", i % 8));
    }
    ix.write_lines("lms", &batch, Default::default()).unwrap();
    ix.flush_storage().unwrap();

    let mut rng = XorShift64::new(chaos_seed());
    inject_bit_flip(&dir.join("lms"), &mut rng).expect("a sealed segment must exist");

    let mut quarantined = 0;
    let mut passes = 0u32;
    while quarantined == 0 && passes < 10_000 {
        quarantined += ix.scrub_storage(4096).unwrap().quarantined.len();
        passes += 1;
    }
    assert_eq!(quarantined, 1, "a 4 KiB/pass budget must still reach the damage");
    assert_eq!(ix.storage_stats().quarantined_segments, 1);
    drop(ix);
    let _ = std::fs::remove_dir_all(&dir);
}
