//! Storage-engine crash recovery: the database is killed at arbitrary
//! WAL offsets (torn tails) and seal offsets (mid-segment-write), then
//! reopened — **no acknowledged-and-checkpointed point may be silently
//! lost**, and recovered state is always a clean record-boundary prefix.
//!
//! Like `chaos_recovery.rs`, the fault schedule derives from
//! `LMS_CHAOS_SEED` (default 1), so CI sweeps a seed matrix and any
//! failure reproduces exactly by exporting the same seed.

use lms::influx::{Influx, StorageConfig};
use lms::util::rng::{chaos_seed, XorShift64};
use lms::util::{Clock, Timestamp};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "lms-storage-recovery-{}-{tag}-{}-{}",
        std::process::id(),
        chaos_seed(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed),
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open(dir: &PathBuf) -> Influx {
    Influx::open(Clock::simulated(Timestamp::from_secs(9_000)), 4, StorageConfig::new(dir))
        .expect("open persistent influx")
}

/// Writes points `1..=n` (one WAL record each: unique timestamps,
/// value == index) to measurement `m`.
fn write_points(ix: &Influx, n: usize) {
    for i in 1..=n {
        let line = format!("m,hostname=h1 v={i}i {}", i as i64 * 1_000_000_000);
        ix.write_lines("lms", &line, Default::default()).expect("write");
    }
}

/// Returns (count, sum(v)) for measurement `m` — the loss detector.
fn count_and_sum(ix: &Influx) -> (i64, i64) {
    let r = ix.query("lms", "SELECT count(v), sum(v) FROM m").expect("query");
    if r.series.is_empty() {
        return (0, 0);
    }
    let row = &r.series[0].values[0];
    (row[1].as_i64().unwrap_or(0), row[2].as_i64().unwrap_or(0))
}

/// The largest-sequence (active) WAL file under `<dir>/lms/wal`.
fn active_wal(dir: &std::path::Path) -> PathBuf {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir.join("lms").join("wal"))
        .expect("wal dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "wal"))
        .collect();
    files.sort();
    files.pop().expect("an active WAL file")
}

/// Kill at an arbitrary WAL offset: the process dies before the tail of
/// the log reaches disk. Recovery must keep exactly the longest intact
/// record prefix — never a torn record, never dropping an earlier one.
#[test]
fn torn_wal_tail_recovers_to_record_boundary_prefix() {
    let mut rng = XorShift64::new(chaos_seed());
    for round in 0..8 {
        let dir = tmp_dir(&format!("torn-{round}"));
        let n = 5 + rng.below(40) as usize;
        {
            let ix = open(&dir);
            write_points(&ix, n);
            // Dropped without flush: every point lives only in the WAL.
        }
        let wal = active_wal(&dir);
        let len = std::fs::metadata(&wal).expect("wal meta").len();
        let cut = rng.below(len + 1); // 0..=len bytes survive the crash
        std::fs::OpenOptions::new()
            .write(true)
            .open(&wal)
            .expect("open wal")
            .set_len(cut)
            .expect("truncate");

        let ix = open(&dir);
        let (count, sum) = count_and_sum(&ix);
        // Prefix-consistent: the first `count` points, nothing else.
        assert!(count <= n as i64, "more points than written: {count} > {n}");
        assert_eq!(sum, count * (count + 1) / 2, "recovered set is not the write prefix");
        let stats = ix.storage_stats();
        assert_eq!(stats.recovered_records, count as u64, "every intact record replayed");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Kill mid-group: concurrent writers push batches through the grouped
/// WAL (fsync on, a real commit window), then the process dies with a
/// torn tail that may split a commit group in half. Group commit amplifies
/// the blast radius of a torn byte — one bad offset can now cut through a
/// multi-batch record run — so recovery must still yield an exact prefix
/// of each writer's acknowledged batches: no holes, no reordering, no
/// duplicates.
#[test]
fn torn_group_commit_recovers_exact_prefix_of_acked_batches() {
    const WRITERS: usize = 8;
    const BATCHES: usize = 10;
    let mut rng = XorShift64::new(chaos_seed() ^ 0x6c0b);
    for round in 0..3 {
        let dir = tmp_dir(&format!("group-{round}"));
        {
            let mut cfg = StorageConfig::new(&dir);
            cfg.wal_fsync = true;
            cfg.wal_group_commit = Duration::from_millis(3);
            let ix = Influx::open(Clock::simulated(Timestamp::from_secs(9_000)), 4, cfg)
                .expect("open persistent influx");
            std::thread::scope(|s| {
                for t in 0..WRITERS {
                    let ix = ix.clone();
                    s.spawn(move || {
                        for i in 1..=BATCHES {
                            // A write returning Ok is an acknowledged
                            // batch: its WAL group has been fsynced.
                            let ts = (t * BATCHES + i) as i64 * 1_000_000_000;
                            let line = format!("m{t},hostname=h{t} v={i}i {ts}");
                            ix.write_lines("lms", &line, Default::default()).expect("acked write");
                        }
                    });
                }
            });
            // The test is only meaningful if batches actually coalesced
            // into shared commit groups.
            let stats = ix.storage_stats();
            assert!(
                stats.group_commits < (WRITERS * BATCHES) as u64,
                "no coalescing happened: {} commits for {} acked batches",
                stats.group_commits,
                WRITERS * BATCHES
            );
        }
        let wal = active_wal(&dir);
        let len = std::fs::metadata(&wal).expect("wal meta").len();
        let cut = rng.below(len + 1); // 0..=len bytes survive the crash
        std::fs::OpenOptions::new()
            .write(true)
            .open(&wal)
            .expect("open wal")
            .set_len(cut)
            .expect("truncate");

        let ix = open(&dir);
        let mut total = 0;
        for t in 0..WRITERS {
            let r =
                ix.query("lms", &format!("SELECT count(v), sum(v) FROM m{t}")).expect("query");
            let (count, sum) = if r.series.is_empty() {
                (0, 0)
            } else {
                let row = &r.series[0].values[0];
                (row[1].as_i64().unwrap_or(0), row[2].as_i64().unwrap_or(0))
            };
            // Each writer issued batch i+1 only after batch i was acked,
            // so its WAL sequence numbers are increasing: a torn-tail cut
            // must leave each writer an exact prefix 1..=count.
            assert!(count <= BATCHES as i64, "writer {t} gained batches: {count}");
            assert_eq!(
                sum,
                count * (count + 1) / 2,
                "writer {t}: recovered set is not its acknowledged prefix (round {round})"
            );
            total += count;
        }
        assert_eq!(
            ix.storage_stats().recovered_records,
            total as u64,
            "every intact record replayed (round {round})"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Kill mid-seal: the segment write dies after a random byte count. The
/// flush must fail without losing anything — all points stay queryable,
/// survive a reopen (WAL not checkpointed), and the next flush succeeds.
#[test]
fn seal_crash_at_arbitrary_offset_loses_nothing() {
    let mut rng = XorShift64::new(chaos_seed() ^ 0xabcd);
    for round in 0..6 {
        let dir = tmp_dir(&format!("seal-{round}"));
        let n = 10 + rng.below(50) as usize;
        let expect_sum = (n as i64) * (n as i64 + 1) / 2;
        {
            let ix = open(&dir);
            write_points(&ix, n);
            let engine = ix.database("lms").unwrap().engine().unwrap().clone();
            engine.inject_segment_write_failure(rng.below(256));
            assert!(ix.flush_storage().is_err(), "injected seal fault must surface");
            // Nothing lost in the running instance...
            assert_eq!(count_and_sum(&ix), (n as i64, expect_sum));
        }
        // ...nor across the simulated crash (WAL was not checkpointed).
        {
            let ix = open(&dir);
            assert_eq!(count_and_sum(&ix), (n as i64, expect_sum), "round {round}");
            assert!(ix.flush_storage().is_ok(), "flush recovers after the fault clears");
        }
        // And the sealed, checkpointed state serves the same data.
        let ix = open(&dir);
        assert_eq!(count_and_sum(&ix), (n as i64, expect_sum));
        assert!(ix.storage_stats().sealed_blocks > 0, "data is in sealed blocks now");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Kill between segment write and WAL checkpoint: both the segments and
/// the stale WAL survive. Replay over sealed blocks must deduplicate
/// (last-write-wins), not double-count.
#[test]
fn crash_between_seal_and_checkpoint_does_not_duplicate() {
    let mut rng = XorShift64::new(chaos_seed() ^ 0x5eed);
    let dir = tmp_dir("dup");
    let n = 10 + rng.below(50) as usize;
    let expect_sum = (n as i64) * (n as i64 + 1) / 2;
    {
        let ix = open(&dir);
        write_points(&ix, n);
        let engine = ix.database("lms").unwrap().engine().unwrap().clone();
        engine.set_fail_wal_remove(true);
        assert!(ix.flush_storage().is_err(), "checkpoint fault must surface");
        assert_eq!(count_and_sum(&ix), (n as i64, expect_sum));
    }
    let ix = open(&dir);
    // Segments AND the un-removed WAL both hold the points; LWW replay
    // must yield each exactly once.
    assert_eq!(count_and_sum(&ix), (n as i64, expect_sum));
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    /// Property form of the torn-tail invariant: for ANY batch count and
    /// ANY crash offset, recovery yields the exact write prefix.
    #[test]
    fn recovery_is_prefix_consistent(n in 1usize..30, frac in 0.0f64..1.0) {
        let dir = tmp_dir("prop");
        {
            let ix = open(&dir);
            write_points(&ix, n);
        }
        let wal = active_wal(&dir);
        let len = std::fs::metadata(&wal).unwrap().len();
        let cut = (len as f64 * frac) as u64;
        std::fs::OpenOptions::new().write(true).open(&wal).unwrap().set_len(cut).unwrap();

        let ix = open(&dir);
        let (count, sum) = count_and_sum(&ix);
        prop_assert!(count <= n as i64);
        prop_assert_eq!(sum, count * (count + 1) / 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
