//! End-to-end integration of the full architecture (paper Fig. 1):
//! agents → router → database → viewer, with scheduler signals, over real
//! TCP sockets — exercised through the public facade only.

use lms::apps::AppProfile;
use lms::core::{LmsStack, StackConfig};
use lms::influx::{InfluxClient, QuerySource};
use lms::topology::Topology;
use std::time::Duration;

fn small() -> StackConfig {
    StackConfig { nodes: 4, topology: Topology::preset_desktop_4c(), ..Default::default() }
}

#[test]
fn architecture_fig1_full_pipeline() {
    let mut stack = LmsStack::start(small()).expect("stack boots");

    // The database is reachable over its HTTP API like a real InfluxDB.
    let mut db = InfluxClient::connect(stack.db_addr()).expect("db client");
    db.ping().expect("db pings");

    let job = stack.submit_job("alice", "solver", 2, Duration::from_secs(20 * 60), AppProfile::Dgemm);
    stack.run_for(Duration::from_secs(25 * 60), Duration::from_secs(60));

    // 1. System metrics flowed: every node reports cpu/memory/load/....
    for host in ["h1", "h2", "h3", "h4"] {
        let r = db
            .query("lms", &format!("SELECT count(busy) FROM cpu_total WHERE hostname = '{host}'"))
            .expect("query");
        let n = r.series[0].values[0][1].as_i64().unwrap();
        assert!(n >= 20, "{host} reported {n} cpu samples");
    }

    // 2. HPM metrics flowed through the same path.
    let r = db.query("lms", "SHOW MEASUREMENTS").expect("query");
    let names: Vec<&str> = r.series[0].values.iter().map(|v| v[0].as_str().unwrap()).collect();
    assert!(names.contains(&"hpm_flops_dp"));
    assert!(names.contains(&"hpm_mem"));

    // 3. The job's metrics are tagged with jobid and user during, and only
    //    during, the job window.
    let r = db
        .query("lms", &format!("SELECT count(busy) FROM cpu_total WHERE jobid = '{job}' AND user = 'alice'"))
        .expect("query");
    let tagged = r.series[0].values[0][1].as_i64().unwrap();
    assert!(tagged >= 30, "tagged samples: {tagged}"); // 2 hosts × ~20 min

    // 4. Signals became annotation events.
    let r = db
        .query("lms", &format!("SELECT text FROM events WHERE jobid = '{job}' AND kind = 'job_end'"))
        .expect("query");
    let ends: usize = r.series.iter().map(|s| s.values.len()).sum();
    assert_eq!(ends, 2, "one end event per host");

    // 5. The viewer generates a dashboard whose panels query real data.
    let text = stack.render_job_dashboard(job).expect("dashboard renders");
    assert!(text.contains("--- Evaluation ---"));
    assert!(text.contains("DP FLOP rate"));
    assert!(text.contains('*'), "charts have data");

    // 6. The compute-bound job reads as compute-bound in the evaluation.
    let ev = stack.evaluate_job(job).expect("evaluation");
    assert!(ev.signature.flops_frac > 0.3, "flops frac {}", ev.signature.flops_frac);
    assert!(ev.findings.is_empty(), "healthy job: {:?}", ev.findings);
}

#[test]
fn restart_with_data_dir_serves_identical_query_results() {
    // Acceptance: a stack started on a `data_dir`, shut down, and started
    // again on the same directory answers the same queries with the same
    // results — WAL replay plus sealed-segment reads reproduce history.
    let dir = std::env::temp_dir().join(format!("lms-e2e-persist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut config = small();
    config.data_dir = Some(dir.clone());

    let queries = [
        "SELECT count(busy) FROM cpu_total",
        "SELECT mean(busy) FROM cpu_total GROUP BY time(5m)",
        "SELECT busy FROM cpu_total WHERE hostname = 'h1' LIMIT 20",
        "SHOW MEASUREMENTS",
    ];

    let before: Vec<String> = {
        let mut stack = LmsStack::start(config.clone()).expect("first boot");
        stack.submit_job("alice", "solver", 2, Duration::from_secs(600), AppProfile::Dgemm);
        stack.run_for(Duration::from_secs(900), Duration::from_secs(60));
        queries
            .iter()
            .map(|q| stack.influx().query("lms", q).unwrap().to_json().to_string())
            .collect()
        // Drop flushes outstanding heads and stops the servers.
    };

    let stack = LmsStack::start(config).expect("restart on same data_dir");
    let mut db = InfluxClient::connect(stack.db_addr()).expect("db client");
    for (q, expect) in queries.iter().zip(&before) {
        let got = db.query("lms", q).expect("query after restart").to_json().to_string();
        assert_eq!(&got, expect, "divergent result after restart for `{q}`");
    }
    drop(stack);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn queued_jobs_wait_and_backfill_through_the_stack() {
    let mut stack = LmsStack::start(small()).expect("stack boots");
    let wide = stack.submit_job("u", "wide", 4, Duration::from_secs(600), AppProfile::Stream);
    stack.tick(Duration::from_secs(60));
    // Cluster is full: the next wide job queues, a short narrow one backfills.
    let blocked = stack.submit_job("u", "blocked", 4, Duration::from_secs(600), AppProfile::Stream);
    stack.tick(Duration::from_secs(60));
    assert!(stack.scheduler().job(wide).unwrap().state.is_running());
    assert_eq!(stack.scheduler().queued(), 1);

    stack.run_for(Duration::from_secs(11 * 60), Duration::from_secs(60));
    assert!(stack.scheduler().job(wide).unwrap().state.is_completed());
    assert!(stack.scheduler().job(blocked).unwrap().state.is_running());

    // The second job's metrics carry its own id, not the first one's.
    stack.run_for(Duration::from_secs(120), Duration::from_secs(60));
    let mut src = stack.influx().clone();
    let r = src
        .query_source("lms", &format!("SELECT count(busy) FROM cpu_total WHERE jobid = '{blocked}'"))
        .expect("query");
    assert!(r.series[0].values[0][1].as_i64().unwrap() > 0);
}

#[test]
fn umetric_cli_wire_path_lands_tagged() {
    // The CLI tool's wire request (a single line POSTed to /write) passes
    // through tagging like any agent batch.
    let mut stack = LmsStack::start(small()).expect("stack boots");
    let job = stack.submit_job("bob", "x", 1, Duration::from_secs(600), AppProfile::IdleJob);
    stack.tick(Duration::from_secs(60));
    let host = stack.job_info(job).unwrap().hosts[0].clone();

    let mut c = lms::http::HttpClient::connect(stack.router_addr()).unwrap();
    let line = format!("progress,hostname={host} value=0.5 {}", stack.clock().now().nanos());
    let resp = c.post_text("/write?db=lms", &line).unwrap();
    assert_eq!(resp.status, 204);
    stack.flush();

    let r = stack
        .influx()
        .query("lms", &format!("SELECT value FROM progress WHERE jobid = '{job}'"))
        .unwrap();
    assert_eq!(r.series[0].values.len(), 1);
}

#[test]
fn per_user_database_supports_user_scoped_viewing() {
    // "It offers live job performance profiling on the system level or
    // per user" — the router duplicates alice's metrics into user_alice,
    // and a viewer agent pointed at that database sees only her data.
    use lms::analysis::evaluation::NodePeaks;
    use lms::dashboard::{TemplateStore, ViewerAgent};

    let mut config = small();
    config.per_user = true;
    let mut stack = LmsStack::start(config).expect("stack boots");
    let job = stack.submit_job("alice", "mine", 2, Duration::from_secs(1200), AppProfile::Dgemm);
    stack.submit_job("mallory", "other", 2, Duration::from_secs(1200), AppProfile::Stream);
    stack.run_for(Duration::from_secs(600), Duration::from_secs(60));

    // SHOW DATABASES reveals the per-user stores.
    let r = stack.influx().query("", "SHOW DATABASES").expect("query");
    let names: Vec<&str> = r.series[0].values.iter().map(|v| v[0].as_str().unwrap()).collect();
    assert!(names.contains(&"user_alice") && names.contains(&"user_mallory"), "{names:?}");

    // user_alice holds only alice's hosts.
    let r = stack
        .influx()
        .query("user_alice", "SHOW TAG VALUES FROM cpu_total WITH KEY = user")
        .expect("query");
    let users: Vec<&str> = r.series[0].values.iter().map(|v| v[1].as_str().unwrap()).collect();
    assert_eq!(users, vec!["alice"]);

    // A user-scoped viewer agent renders a dashboard from her database.
    let topo = stack.topology();
    let peaks = NodePeaks {
        flops_mflops: topo.peak_flops_dp() / 1e6,
        membw_mbytes: topo.peak_mem_bw() / 1e6,
    };
    let agent = ViewerAgent::new("user_alice", TemplateStore::builtin(), peaks);
    let info = stack.job_info(job).expect("job info");
    let now = stack.clock().now();
    let mut src = stack.influx().clone();
    let dashboard = agent.job_dashboard(&mut src, &info, now).expect("dashboard");
    assert!(dashboard.rows.len() >= 3, "user DB drives full dashboard");
}

#[test]
fn admin_view_tracks_running_set() {
    let mut stack = LmsStack::start(small()).expect("stack boots");
    let a = stack.submit_job("anna", "a", 2, Duration::from_secs(1200), AppProfile::MiniMd);
    let b = stack.submit_job("bert", "b", 2, Duration::from_secs(300), AppProfile::MiniMd);
    stack.run_for(Duration::from_secs(120), Duration::from_secs(60));

    let view = stack.admin_view().expect("admin view");
    assert_eq!(view.jobs, 2);
    assert!(view.text.contains("anna") && view.text.contains("bert"));

    // After b completes, only a remains.
    stack.run_for(Duration::from_secs(300), Duration::from_secs(60));
    let view = stack.admin_view().expect("admin view");
    assert_eq!(view.jobs, 1);
    assert!(view.text.contains("anna"));
    let _ = (a, b);
}
