//! Tiered-retention recovery suite: raw segments are reclaimed on
//! schedule while the rollup tiers keep serving the full history — and
//! a crash between rollup passes never loses a window.
//!
//! The seed comes from `LMS_CHAOS_SEED` (default 1), so CI sweeps a
//! seed matrix and any failure reproduces exactly by exporting the same
//! seed. The seed varies the flush cadence and the crash point.

use lms::influx::{Influx, RollupPolicy, StorageConfig, Tier};
use lms::util::rng::chaos_seed;
use lms::util::{Clock, Timestamp};
use std::path::PathBuf;
use std::time::Duration;

const SEC: i64 = 1_000_000_000;
/// Virtual epoch of the run (seconds).
const T0: i64 = 9_000_000;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "lms-rollup-recovery-{}-{tag}-{}",
        std::process::id(),
        chaos_seed()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open(clock: &Clock, dir: &std::path::Path) -> Influx {
    Influx::open(clock.clone(), 4, StorageConfig::new(dir)).unwrap()
}

fn policy() -> RollupPolicy {
    RollupPolicy {
        retention_raw: Some(Duration::from_secs(2 * 3600)),
        retention_1m: None,
        retention_1h: None,
    }
}

/// Writes one simulated minute of 1s-cadence points on two series and
/// advances the clock past them.
fn write_minute(ix: &Influx, clock: &Clock, minute: i64) {
    let base = T0 + minute * 60;
    let body: String = (0..60i64)
        .map(|s| {
            let ts = base + s;
            format!("m,hostname=g{} v={} {}\n", ts % 2, ts % 50, ts * SEC)
        })
        .collect();
    ix.write_lines("lms", &body, Default::default()).unwrap();
    clock.advance(Duration::from_secs(60));
}

#[test]
fn tiered_retention_reclaims_raw_without_losing_coverage() {
    let seed = chaos_seed();
    let dir = tmp_dir("coverage");
    let clock = Clock::simulated(Timestamp::from_secs(T0));
    // xorshift over the chaos seed: flush cadence and crash point differ
    // per seed but reproduce exactly.
    let mut rng = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };

    const MINUTES: i64 = 6 * 60;
    let crash_at = 60 + (next() % 180) as i64; // somewhere in hours 2–4

    // Phase 1: ingest up to the crash, flushing (and thereby rolling up)
    // on a seeded cadence, retention sweeping every simulated hour.
    {
        let ix = open(&clock, &dir);
        ix.enable_rollups(policy()).unwrap();
        for minute in 0..crash_at {
            write_minute(&ix, &clock, minute);
            if next() % 7 == 0 {
                ix.flush_storage().unwrap();
            }
            if minute % 60 == 59 {
                ix.enforce_retention();
            }
        }
        // Crash: dropped without a final flush — recent raw lives only in
        // the WAL, the newest rollup windows may not have run yet.
    }

    // Phase 2: recover and ingest the rest.
    let ix = open(&clock, &dir);
    ix.enable_rollups(policy()).unwrap();
    for minute in crash_at..MINUTES {
        write_minute(&ix, &clock, minute);
        if next() % 7 == 0 {
            ix.flush_storage().unwrap();
        }
        if minute % 60 == 59 {
            ix.enforce_retention();
        }
    }
    ix.flush_storage().unwrap();
    let evicted = ix.enforce_retention();

    let total = MINUTES * 60;
    // Raw segments were reclaimed on schedule: with a 2h raw retention
    // over a 6h run, well over half the raw points must be gone.
    assert!(evicted > 0 || ix.point_count("lms") < total as usize, "retention never ran");
    let raw_left = {
        ix.set_query_tiers(Some(vec![]));
        let r = ix.query("lms", "SELECT count(v) FROM m").unwrap();
        r.series[0].values[0][1].as_i64().unwrap()
    };
    assert!(
        raw_left < total,
        "seed {seed}: no raw eviction (raw {raw_left} of {total})"
    );

    // ... but the tiers still serve the *full* history: every written
    // point is accounted for in the stitched count, and per-minute
    // windows over the evicted region are complete.
    ix.set_query_tiers(None);
    let r = ix.query("lms", "SELECT count(v) FROM m").unwrap();
    let covered = r.series[0].values[0][1].as_i64().unwrap();
    assert_eq!(
        covered, total,
        "seed {seed}: rollup coverage lost points (tiered {covered} of {total}, raw {raw_left})"
    );

    // Windowed read entirely inside the evicted region, served from the
    // 1m tier: every minute is present and full.
    let (lo, hi) = (T0 * SEC, (T0 + 3600) * SEC);
    let q = format!(
        "SELECT count(v) FROM m WHERE time >= {lo} AND time < {hi} GROUP BY time(60s)"
    );
    ix.set_query_tiers(Some(vec![Tier::Minute]));
    let r = ix.query("lms", &q).unwrap();
    let rows = &r.series[0].values;
    assert_eq!(rows.len(), 60, "seed {seed}: missing minutes in evicted region");
    for row in rows {
        assert_eq!(
            row[1].as_i64().unwrap(),
            60,
            "seed {seed}: partial minute window in evicted region: {row:?}"
        );
    }
    ix.set_query_tiers(None);

    drop(ix);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rollup_watermark_survives_restart_without_rescanning_history() {
    // A restarted database recovers its watermark from the 1m tier and
    // resumes rolling where it left off; the tier row count stays
    // consistent (idempotent recomputation, no duplicates).
    let dir = tmp_dir("watermark");
    let clock = Clock::simulated(Timestamp::from_secs(T0));
    let rows_before = {
        let ix = open(&clock, &dir);
        ix.enable_rollups(policy()).unwrap();
        for minute in 0..120 {
            write_minute(&ix, &clock, minute);
        }
        ix.flush_storage().unwrap();
        let (passes, _) = ix.rollup_counters();
        assert!(passes > 0);
        ix.point_count("lms__rollup_1m")
    };
    assert!(rows_before > 0);

    let ix = open(&clock, &dir);
    ix.enable_rollups(policy()).unwrap();
    // Recomputation after recovery is idempotent: same windows, same rows.
    assert_eq!(ix.point_count("lms__rollup_1m"), rows_before);
    // And rolling continues from the recovered watermark.
    for minute in 120..130 {
        write_minute(&ix, &clock, minute);
    }
    ix.flush_storage().unwrap();
    assert!(ix.point_count("lms__rollup_1m") > rows_before);
    drop(ix);
    let _ = std::fs::remove_dir_all(&dir);
}
