//! Cluster chaos suite: a database node is killed and rejoined mid-ingest
//! while the router keeps accepting writes, proving the cluster delivery
//! contract end to end:
//!
//! - **zero acknowledged-point loss** — every write the router answered
//!   `204` to is queryable after the node rejoins and handoff replays;
//! - **no duplicates** — replica copies land exactly on each series' R
//!   owner nodes, and scatter-gather reads return each sample once;
//! - **graceful degradation** — reads during the outage succeed with the
//!   partial flag (and `X-Lms-Partial` header) instead of failing.
//!
//! The dead node sits behind a seeded [`FaultProxy`](lms::http::FaultProxy);
//! the seed comes from `LMS_CHAOS_SEED` (default 1), so CI sweeps a seed
//! matrix and any failure reproduces exactly by exporting the same seed.

use lms::http::{FaultConfig, FaultProxy, HttpClient};
use lms::influx::{Influx, InfluxServer};
use lms::router::{ClusterConfig, Router, RouterConfig, RouterServer};
use lms::spool::SpoolConfig;
use lms::util::rng::chaos_seed;
use lms::util::{Clock, Json, Timestamp};
use std::sync::Arc;
use std::time::Duration;

fn clock() -> Clock {
    Clock::simulated(Timestamp::from_secs(8_000_000))
}

fn tmp_spool(tag: &str) -> SpoolConfig {
    let dir = std::env::temp_dir().join(format!(
        "lms-cluster-chaos-{}-{tag}-{}",
        std::process::id(),
        chaos_seed()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    SpoolConfig::new(dir)
}

/// A 3-node database cluster with node 1 behind a fault proxy, fronted by
/// a replicating router (R = 2, W = 1, per-node hinted-handoff spools).
struct Rig {
    nodes: Vec<(Influx, InfluxServer)>,
    proxy: FaultProxy,
    router: Arc<Router>,
    rs: RouterServer,
    agent: HttpClient,
}

fn rig(tag: &str, fault: FaultConfig) -> Rig {
    let clk = clock();
    let mut nodes = Vec::new();
    for _ in 0..3 {
        let influx = Influx::new(clk.clone());
        let server = InfluxServer::start("127.0.0.1:0", influx.clone()).unwrap();
        nodes.push((influx, server));
    }
    let proxy = FaultProxy::start(nodes[1].1.addr(), fault).unwrap();
    let cluster = ClusterConfig {
        nodes: vec![nodes[0].1.addr(), proxy.addr(), nodes[2].1.addr()],
        replication: 2,
        write_quorum: 1,
        seed: chaos_seed(),
    };
    let config = RouterConfig {
        max_retries: 1,
        spool: Some(tmp_spool(tag)),
        ..Default::default()
    };
    let router = Arc::new(Router::new_cluster(cluster, config, clk, None).unwrap());
    let rs = RouterServer::start("127.0.0.1:0", router.clone()).unwrap();
    let agent = HttpClient::connect(rs.addr()).unwrap();
    Rig { nodes, proxy, router, rs, agent }
}

impl Rig {
    fn shutdown(self) {
        self.rs.shutdown();
        self.proxy.shutdown();
        for (_, server) in self.nodes {
            server.shutdown();
        }
    }

    /// Total point copies across all database nodes.
    fn total_copies(&self, db: &str) -> usize {
        self.nodes.iter().map(|(ix, _)| ix.point_count(db)).sum()
    }
}

/// The headline invariant: kill a node mid-ingest, keep writing, rejoin
/// it — after handoff replay, every acknowledged point exists on exactly
/// its R = 2 owner nodes (zero loss, zero duplicates), and a merged read
/// returns the exact acknowledged set.
#[test]
fn node_kill_and_rejoin_mid_ingest_loses_nothing() {
    let mut r = rig("rejoin", FaultConfig { seed: chaos_seed(), ..FaultConfig::default() });
    const N: usize = 150;
    for i in 1..=N {
        // 16 hostnames spread series over the whole ring, so the killed
        // node owns a share of the key space under any seed.
        let line = format!("chaos,hostname=h{} v={i} {i}", i % 16);
        let resp = r.agent.post_text("/write", &line).unwrap();
        assert_eq!(resp.status, 204, "the router must keep acking during the outage (i={i})");
        if i == N / 3 {
            r.proxy.set_down(); // node 1 dies mid-ingest
        }
        if i == N - N / 3 {
            r.proxy.set_up(); // node 1 rejoins
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        r.router.flush(Duration::from_secs(60)),
        "flush must drain queues, in-flight batches and handoff spools: {:?}",
        r.router.stats().forward
    );

    // Zero loss AND zero duplicates in one equation: every point on both
    // of its owners and nowhere else.
    assert_eq!(r.total_copies("lms"), 2 * N, "each point must live on exactly its 2 owners");
    // Every node took a share (the ring actually spread the keys).
    for (i, (ix, _)) in r.nodes.iter().enumerate() {
        assert!(ix.point_count("lms") > 0, "node {i} owns no series");
    }

    // The merged read sees the exact acknowledged set, once each.
    let merged = r.router.handle_query("lms", "SELECT v FROM chaos").unwrap();
    assert!(!merged.partial, "all nodes are back; the answer must be complete");
    let rows: Vec<i64> = merged
        .series
        .iter()
        .flat_map(|s| s.values.iter())
        .map(|row| row[1].as_i64().unwrap())
        .collect();
    assert_eq!(rows.len(), N, "merged read must return each acknowledged point once");
    assert_eq!(rows.iter().sum::<i64>(), (N as i64) * (N as i64 + 1) / 2);

    // The outage actually exercised the hinted-handoff path.
    let f = r.router.stats().forward;
    assert_eq!(f.dropped, 0, "{f:?}");
    assert!(f.spooled > 0, "the outage must have spooled hints: {f:?}");
    assert!(f.replayed >= f.spooled, "{f:?}");
    assert_eq!(f.spool_pending, 0, "{f:?}");
    let dest = &r.router.stats().destinations[1];
    assert!(dest.stats.spooled > 0, "hints must be attributed to the dead node: {dest:?}");
    assert!(dest.stats.replayed > 0, "{dest:?}");
    r.shutdown();
}

/// While a node is down, reads degrade instead of failing: the merged
/// answer arrives with `partial` set and the HTTP response carries the
/// `X-Lms-Partial` header. After the node rejoins and replay drains, the
/// same query is complete again.
#[test]
fn reads_degrade_to_partial_during_outage_and_heal_after() {
    let mut r = rig("partial", FaultConfig { seed: chaos_seed(), ..FaultConfig::default() });
    const N: usize = 30;
    for i in 1..=N {
        let line = format!("deg,hostname=h{} v={i} {i}", i % 8);
        assert_eq!(r.agent.post_text("/write", &line).unwrap().status, 204);
    }
    assert!(r.router.flush(Duration::from_secs(30)), "{:?}", r.router.stats().forward);
    r.proxy.set_down();

    // Over HTTP: still 200, flagged partial, header present.
    let resp = r.agent.get("/query?db=lms&q=SELECT%20v%20FROM%20deg").unwrap();
    assert_eq!(resp.status, 200, "reads must degrade, not fail: {}", resp.body_str());
    assert!(
        resp.headers.iter().any(|(k, v)| k == "x-lms-partial" && v == "true"),
        "missing X-Lms-Partial header: {:?}",
        resp.headers
    );
    let body = Json::parse(&resp.body_str()).unwrap();
    assert_eq!(body.get("partial").and_then(Json::as_bool), Some(true));
    // Surviving replicas still answer: R = 2 means every series has a
    // live copy, so the partial answer is actually the full set here.
    assert_eq!(r.router.stats().partial_queries, 1);

    r.proxy.set_up();
    assert!(r.router.flush(Duration::from_secs(30)));
    // Healed: the breaker recovers after successful replay probes.
    let merged = r.router.handle_query("lms", "SELECT v FROM deg").unwrap();
    let rows: usize = merged.series.iter().map(|s| s.values.len()).sum();
    assert_eq!(rows, N);
    assert!(!merged.partial, "all nodes reachable again: {merged:?}");
    r.shutdown();
}

/// Graceful drain must wait for hinted-handoff replay that is already in
/// flight: once the dead node rejoins, a `flush()` racing the drainer may
/// only return `true` after every hint is delivered — never while a
/// replayed batch is still mid-flight.
#[test]
fn drain_waits_for_in_flight_handoff_replay() {
    let mut r = rig(
        "drain",
        FaultConfig {
            seed: chaos_seed(),
            // Every proxied request crawls: replay of each hint takes
            // ~300 ms, so a premature flush would win the race visibly.
            delay_prob: 1.0,
            delay: Duration::from_millis(300),
            ..FaultConfig::default()
        },
    );
    r.proxy.set_down();
    const N: usize = 24;
    for i in 1..=N {
        let line = format!("drain,hostname=h{} v={i} {i}", i % 8);
        assert_eq!(r.agent.post_text("/write", &line).unwrap().status, 204);
    }
    // Let the outage push node 1's share into its hint spool.
    assert!(
        r.router.delivery().flush_or_hinted(Duration::from_secs(30)),
        "everything must be delivered or durably hinted: {:?}",
        r.router.stats().forward
    );
    let hinted = r.router.stats().destinations[1].stats.spooled;
    assert!(hinted > 0, "the dead node's share must be hinted");

    // Rejoin, then immediately drain. No settling sleeps: flush must
    // block through the slow replay and only report success when the
    // node holds its full share.
    r.proxy.set_up();
    assert!(r.router.flush(Duration::from_secs(60)), "{:?}", r.router.stats().forward);
    assert_eq!(r.total_copies("lms"), 2 * N, "flush returned before replay finished");
    let f = r.router.stats().forward;
    assert_eq!(f.spool_pending, 0, "{f:?}");
    assert_eq!(f.replay_in_flight, 0, "{f:?}");
    r.shutdown();
}

/// Write-quorum accounting under total outage of one owner: with W = 1
/// and a durable spool, writes stay acknowledged; the `/stats` endpoint
/// exposes the per-destination breaker and spool depth while degraded.
#[test]
fn stats_expose_per_destination_state_during_outage() {
    let mut r = rig("stats", FaultConfig { seed: chaos_seed(), ..FaultConfig::default() });
    r.proxy.set_down();
    const N: usize = 20;
    for i in 1..=N {
        let line = format!("st,hostname=h{} v={i} {i}", i % 8);
        assert_eq!(r.agent.post_text("/write", &line).unwrap().status, 204);
    }
    assert!(r.router.delivery().flush_or_hinted(Duration::from_secs(30)));

    let resp = r.agent.get("/stats").unwrap();
    assert_eq!(resp.status, 200);
    let stats = Json::parse(&resp.body_str()).unwrap();
    let dests = stats.get("destinations").unwrap();
    // Three destinations, each with its own breaker state and counters.
    let states: Vec<String> = (0..3)
        .map(|i| {
            let d = dests.idx(i).unwrap();
            d.get("breaker").unwrap().as_str().unwrap().to_string()
        })
        .collect();
    assert_eq!(states.iter().filter(|s| s.as_str() == "open").count(), 1, "{states:?}");
    let dead = dests.idx(1).unwrap();
    assert!(dead.get("spooled").unwrap().as_i64().unwrap() > 0);
    assert!(dead.get("spool_pending").unwrap().as_i64().unwrap() > 0);
    assert!(dead.get("breaker_opens").unwrap().as_i64().unwrap() >= 1);
    // And the healthy nodes never spooled a hint.
    for i in [0usize, 2] {
        assert_eq!(dests.idx(i).unwrap().get("spooled").unwrap().as_i64(), Some(0));
    }
    r.shutdown();
}
