//! The paper's loose-coupling claim: "Due to simple standardized
//! interfaces, all its components can be used also as standalone tools."
//! These tests compose subsets of the stack by hand — no `LmsStack` — the
//! way a site integrating LMS into existing infrastructure would.

use lms::http::HttpClient;
use lms::influx::{Influx, InfluxClient, InfluxServer};
use lms::router::proxy::GangliaProxy;
use lms::router::{Router, RouterServer};
use lms::sysmon::ganglia::GmondServer;
use lms::sysmon::{HostAgent, NodeActivity, SimProc};
use lms::util::{Clock, Timestamp};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn database_alone_serves_an_external_collector() {
    // A site keeps its database and just points a curl-style collector at
    // it — no router involved.
    let influx = Influx::new(Clock::simulated(Timestamp::from_secs(500)));
    let server = InfluxServer::start("127.0.0.1:0", influx.clone()).unwrap();
    let mut curl = HttpClient::connect(server.addr()).unwrap();
    // "cronjobs sending metrics with curl" (paper Sec. III-A).
    let resp = curl
        .post_text("/write?db=site&precision=s", "temperature,hostname=rack7 value=28.5 480")
        .unwrap();
    assert_eq!(resp.status, 204);

    let mut client = InfluxClient::connect(server.addr()).unwrap();
    let r = client.query("site", "SELECT value FROM temperature").unwrap();
    assert_eq!(r.series[0].values[0][1].as_f64(), Some(28.5));
    server.shutdown();
}

#[test]
fn agent_plus_database_without_router() {
    // Direct agent → database wiring: the agent doesn't care that no
    // tagging happens (the interfaces are identical).
    let clock = Clock::simulated(Timestamp::from_secs(100));
    let influx = Influx::new(clock.clone());
    let server = InfluxServer::start("127.0.0.1:0", influx.clone()).unwrap();

    let mut agent = HostAgent::new("standalone1", clock.clone()).with_standard_collectors();
    agent.send_to(server.addr(), "nodes").unwrap();
    let mut proc_fs = SimProc::new(4, 1 << 20, 9);
    proc_fs.set_activity(NodeActivity::busy_compute(4));
    for _ in 0..5 {
        agent.tick(&proc_fs);
        proc_fs.advance(Duration::from_secs(30));
        clock.advance(Duration::from_secs(30));
    }
    assert!(influx.point_count("nodes") > 10);
    let r = influx
        .query("nodes", "SELECT mean(busy) FROM cpu_total WHERE hostname = 'standalone1'")
        .unwrap();
    assert!(r.series[0].values[0][1].as_f64().unwrap() > 0.9);
    server.shutdown();
}

#[test]
fn ganglia_to_router_to_database_integration_path() {
    // "existing monitoring solution" (gmond) → pull proxy → router → DB:
    // the legacy integration path of Fig. 1, assembled by hand.
    let clock = Clock::simulated(Timestamp::from_secs(2000));
    let influx = Influx::new(clock.clone());
    let db = InfluxServer::start("127.0.0.1:0", influx.clone()).unwrap();
    let router = Arc::new(Router::new(db.addr(), Default::default(), clock.clone(), None).unwrap());

    let gmond = GmondServer::start("127.0.0.1:0", "legacy").unwrap();
    gmond.update("old-node-1", 1990, "load_one", 1.25, "float", "");
    gmond.update("old-node-1", 1990, "swap_free", 0u32, "uint32", "KB");
    gmond.update("old-node-2", 1995, "load_one", 0.75, "float", "");

    let proxy = GangliaProxy::new(gmond.addr()).unwrap();
    let n = proxy.pull_once(&router).unwrap();
    assert_eq!(n, 3);
    assert!(router.flush(Duration::from_secs(5)));

    let r = influx
        .query("lms", "SELECT value FROM ganglia_load_one WHERE hostname = 'old-node-1'")
        .unwrap();
    assert_eq!(r.series[0].values[0][1].as_f64(), Some(1.25));
    // Ganglia's report time became the point timestamp.
    assert_eq!(r.series[0].values[0][0].as_i64(), Some(1990 * 1_000_000_000));
    db.shutdown();
}

#[test]
fn router_in_front_of_existing_database_is_transparent() {
    // An agent written for InfluxDB talks to the router unchanged — the
    // router "mimics the HTTP interface of an InfluxDB database".
    let clock = Clock::simulated(Timestamp::from_secs(3000));
    let influx = Influx::new(clock.clone());
    let db = InfluxServer::start("127.0.0.1:0", influx.clone()).unwrap();
    let router = Arc::new(Router::new(db.addr(), Default::default(), clock.clone(), None).unwrap());
    let rs = RouterServer::start("127.0.0.1:0", router).unwrap();

    // The same InfluxClient used against the DB works against the router
    // for writes (and /ping).
    let mut through_router = InfluxClient::connect(rs.addr()).unwrap();
    through_router.ping().unwrap();
    through_router.write("lms", "m,hostname=h1 v=7 7").unwrap();
    rs.router().flush(Duration::from_secs(5));
    assert_eq!(influx.point_count("lms"), 1);
    rs.shutdown();
    db.shutdown();
}

#[test]
fn hpm_stack_standalone_likwid_perfctr_style() {
    // likwid-perfctr-like usage with no monitoring stack at all: measure a
    // phase of a "program" on selected threads and print derived metrics.
    use lms::hpm::groups::builtin;
    use lms::hpm::perfmon::Perfmon;
    use lms::hpm::simulate::{Simulator, WorkloadPreset};
    use lms::topology::{CpuSet, Topology};

    let topo = Topology::preset_dual_socket_10c();
    let mut sim = Simulator::new(&topo, 3);
    sim.set_jitter(0.0);
    let pin = CpuSet::parse("S0:0-9", &topo).unwrap();
    sim.assign(pin.iter(), WorkloadPreset::MemoryBound.model(&topo));

    let mut pm = Perfmon::new(topo.clone());
    pm.set_threads(pin.ids().to_vec()).unwrap();
    pm.add_group(builtin("MEM", &topo).unwrap()).unwrap();
    pm.start(&sim);
    sim.advance(Duration::from_secs(5));
    let m = pm.stop_and_read(&sim).unwrap();

    let bw = m.metric_aggregate("Memory bandwidth [MBytes/s]").unwrap();
    // 10 memory-bound cores saturate socket 0 (~42 GB/s ≈ 42000 MB/s).
    assert!(bw > 0.85 * 42_000.0, "bw = {bw}");
    assert!(bw < 1.05 * 42_000.0, "bw = {bw} exceeds the socket cap");
}
