//! Failure injection across component boundaries: the stack must degrade
//! gracefully, never wedge, and recover — the operational concerns the
//! paper raises for continuous system-wide monitoring.

use lms::http::HttpClient;
use lms::influx::{Influx, InfluxServer};
use lms::router::{Router, RouterConfig, RouterServer};
use lms::spool::SpoolConfig;
use lms::util::{Clock, Timestamp};
use std::sync::Arc;
use std::time::Duration;

fn clock() -> Clock {
    Clock::simulated(Timestamp::from_secs(1_000_000))
}

fn tmp_spool(tag: &str) -> SpoolConfig {
    let dir = std::env::temp_dir().join(format!("lms-fi-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    SpoolConfig::new(dir)
}

#[test]
fn router_buffers_through_database_outage() {
    let clock = clock();
    let influx = Influx::new(clock.clone());
    let db = InfluxServer::start("127.0.0.1:0", influx.clone()).unwrap();
    let db_addr = db.addr();
    let config = RouterConfig {
        max_retries: 8,
        spool: Some(tmp_spool("outage")),
        ..Default::default()
    };
    let router = Arc::new(Router::new(db_addr, config, clock.clone(), None).unwrap());
    let rs = RouterServer::start("127.0.0.1:0", router.clone()).unwrap();
    let mut agent = HttpClient::connect(rs.addr()).unwrap();

    // Normal delivery.
    agent.post_text("/write", "m,hostname=h1 v=1 1").unwrap();
    assert!(router.flush(Duration::from_secs(5)));
    assert_eq!(influx.point_count("lms"), 1);

    // Database goes down; the agent keeps writing and gets 204 (the
    // router accepts and buffers — collectors must never block).
    db.shutdown();
    let resp = agent.post_text("/write", "m,hostname=h1 v=2 2").unwrap();
    assert_eq!(resp.status, 204);

    // Database returns on the same port. flush() blocks until the queue,
    // every in-flight batch, AND the spool have drained — no poll loop.
    std::thread::sleep(Duration::from_millis(150));
    let influx2 = Influx::new(clock.clone());
    let db2 = InfluxServer::start(db_addr, influx2.clone()).unwrap();
    assert!(router.flush(Duration::from_secs(10)), "{:?}", router.stats().forward);
    assert_eq!(influx2.point_count("lms"), 1, "buffered point delivered after recovery");
    let f = router.stats().forward;
    assert!(f.retries > 0 || f.spooled > 0, "{f:?}");
    assert_eq!(f.dropped, 0, "{f:?}");
    rs.shutdown();
    db2.shutdown();
}

#[test]
fn malformed_batches_never_poison_the_pipeline() {
    let clock = clock();
    let influx = Influx::new(clock.clone());
    let db = InfluxServer::start("127.0.0.1:0", influx.clone()).unwrap();
    let router = Arc::new(Router::new(db.addr(), Default::default(), clock, None).unwrap());
    let rs = RouterServer::start("127.0.0.1:0", router.clone()).unwrap();
    let mut agent = HttpClient::connect(rs.addr()).unwrap();

    // A batch mixing garbage with good lines: good lines land.
    let batch = "good,hostname=h1 v=1 1\n\
                 this is not line protocol\n\
                 ,=,= ,=\n\
                 good,hostname=h1 v=2 2\n\
                 trailing garbage \u{1}\u{2}\n";
    let resp = agent.post_text("/write", batch).unwrap();
    assert_eq!(resp.status, 204);
    assert!(router.flush(Duration::from_secs(5)));
    assert_eq!(influx.point_count("lms"), 2);
    assert_eq!(router.stats().lines_rejected, 3);

    // An all-garbage batch answers 400 but the next good one still works.
    assert_eq!(agent.post_text("/write", "total nonsense").unwrap().status, 400);
    assert_eq!(agent.post_text("/write", "good,hostname=h1 v=3 3").unwrap().status, 204);
    assert!(router.flush(Duration::from_secs(5)));
    assert_eq!(influx.point_count("lms"), 3);
    rs.shutdown();
    db.shutdown();
}

#[test]
fn binary_garbage_on_http_port_is_survivable() {
    use std::io::Write as _;
    let clock = clock();
    let influx = Influx::new(clock.clone());
    let db = InfluxServer::start("127.0.0.1:0", influx.clone()).unwrap();

    // Raw binary straight at the HTTP socket.
    let mut s = std::net::TcpStream::connect(db.addr()).unwrap();
    s.write_all(&[0xde, 0xad, 0xbe, 0xef, 0x0d, 0x0a, 0x0d, 0x0a]).unwrap();
    drop(s);

    // The server still serves the next client.
    let mut c = HttpClient::connect(db.addr()).unwrap();
    assert_eq!(c.get("/ping").unwrap().status, 204);
    db.shutdown();
}

#[test]
fn dead_subscriber_does_not_stall_publishing() {
    use lms::mq::{Publisher, Subscriber};
    let publisher = Publisher::bind_with_hwm("127.0.0.1:0", 8).unwrap();
    let mut sub = Subscriber::connect(publisher.addr()).unwrap();
    sub.subscribe("").unwrap();
    publisher.wait_for_subscribers(1, Duration::from_secs(5)).unwrap();
    drop(sub); // subscriber dies without unsubscribing

    // Publishing goes on; the dead subscriber is reaped.
    let start = std::time::Instant::now();
    for i in 0..1000 {
        publisher.publish("t", format!("{i}").as_bytes());
    }
    assert!(start.elapsed() < Duration::from_secs(5), "publish never blocks");
    for _ in 0..100 {
        if publisher.subscriber_count() == 0 {
            return;
        }
        publisher.publish("t", b"poke");
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("dead subscriber never reaped");
}

#[test]
fn scheduler_signals_survive_router_outage() {
    use lms::jobsched::{HttpSignaler, JobSpec, Scheduler};
    let clock = clock();
    // Router exists only long enough to learn its port, then dies.
    let influx = Influx::new(clock.clone());
    let db = InfluxServer::start("127.0.0.1:0", influx).unwrap();
    let router = Arc::new(Router::new(db.addr(), Default::default(), clock.clone(), None).unwrap());
    let rs = RouterServer::start("127.0.0.1:0", router).unwrap();
    let router_addr = rs.addr();
    rs.shutdown();

    let mut sched = Scheduler::new(["n1"], clock.clone());
    sched.add_hook(Box::new(HttpSignaler::new(router_addr).unwrap()));
    let id = sched.submit(JobSpec::new("u", "x", 1, Duration::from_secs(10)));
    // tick() must not wedge even though every signal delivery fails.
    sched.tick();
    clock.advance(Duration::from_secs(11));
    sched.tick();
    assert!(sched.job(id).unwrap().state.is_completed());
    db.shutdown();
}

#[test]
fn usermetric_over_dead_router_degrades_to_error_counts() {
    use lms::usermetric::{UserMetric, UserMetricConfig};
    let dead = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap()
    };
    let um = UserMetric::to_http(UserMetricConfig::default(), clock(), dead, "lms").unwrap();
    for i in 0..250 {
        um.metric("m", i as f64); // crosses the flush threshold twice
    }
    um.flush();
    let (flushes, errors) = um.stats();
    assert!(flushes >= 3);
    assert_eq!(errors, flushes, "every flush failed, none panicked");
}
