//! Regression tests pinning the paper-figure reproductions: compact
//! versions of the `examples/` scenarios with assertions on the *shape*
//! of each result (who is detected, where, for how long).

use lms::analysis::pathology::{FindingKind, PathologyDetector};
use lms::analysis::Pattern;
use lms::apps::{AppProfile, MiniMd, MiniMdConfig};
use lms::core::{LmsStack, StackConfig};
use lms::topology::Topology;
use lms::usermetric::{UserMetric, UserMetricConfig};
use std::time::Duration;

/// Fig. 2: the online evaluation table has one column per node and flags
/// the badly behaving job on the initial view.
#[test]
fn fig2_online_job_evaluation() {
    let config = StackConfig { nodes: 4, topology: Topology::preset_desktop_4c(), ..Default::default() };
    let mut stack = LmsStack::start(config).unwrap();
    let good = stack.submit_job("anna", "gemm", 2, Duration::from_secs(3600), AppProfile::Dgemm);
    let bad = stack.submit_job("carl", "idle", 2, Duration::from_secs(3600), AppProfile::IdleJob);
    stack.run_for(Duration::from_secs(20 * 60), Duration::from_secs(60));

    let table = stack.evaluate_job(good).unwrap().render_table();
    let header = table.lines().find(|l| l.starts_with("metric")).unwrap();
    assert!(header.contains("h1") && header.contains("h2"));
    assert!(table.contains("Findings: none"), "{table}");

    let bad_eval = stack.evaluate_job(bad).unwrap();
    assert_eq!(bad_eval.pattern, Pattern::Idle);
    assert!(bad_eval.findings.iter().any(|f| f.kind == FindingKind::IdleJob));
    let bad_table = bad_eval.render_table();
    assert!(bad_table.contains("IdleJob"), "{bad_table}");
}

/// Fig. 3: miniMD instrumented with libusermetric produces the four
/// metric series plus bracketing events, all landing in the database
/// tagged with the job.
#[test]
fn fig3_minimd_application_monitoring() {
    let config = StackConfig { nodes: 1, topology: Topology::preset_desktop_4c(), ..Default::default() };
    let mut stack = LmsStack::start(config).unwrap();
    let job = stack.submit_job("alice", "minimd", 1, Duration::from_secs(3600), AppProfile::MiniMd);
    stack.tick(Duration::from_secs(1));

    let um = UserMetric::to_http(
        UserMetricConfig {
            default_tags: vec![("hostname".into(), "h1".into())],
            flush_lines: 8,
            thread_tag: false,
        },
        stack.clock().clone(),
        stack.router_addr(),
        "lms",
    )
    .unwrap();
    um.event("run", "miniMD start");
    let mut md = MiniMd::new(MiniMdConfig { nx: 3, ny: 3, nz: 3, threads: 2, ..Default::default() });
    for _ in 0..5 {
        md.run(20, 20, Some(&um));
        um.flush();
        stack.tick(Duration::from_secs(60));
    }
    um.event("run", "miniMD end");
    um.flush();
    stack.flush();

    // Four metric series with 5 samples each, tagged with the job.
    for metric in ["minimd_runtime", "minimd_pressure", "minimd_temperature", "minimd_energy"] {
        let r = stack
            .influx()
            .query("lms", &format!("SELECT count(value) FROM {metric} WHERE jobid = '{job}'"))
            .unwrap();
        assert_eq!(
            r.series[0].values[0][1].as_i64().unwrap(),
            5,
            "{metric} samples"
        );
    }
    // The two bracketing events.
    let r = stack.influx().query("lms", "SELECT text FROM run").unwrap();
    let texts: Vec<&str> =
        r.series.iter().flat_map(|s| &s.values).map(|row| row[1].as_str().unwrap()).collect();
    assert_eq!(texts, vec!["miniMD start", "miniMD end"]);

    // Physics sanity: the reported temperatures are plausible LJ values.
    let r = stack
        .influx()
        .query("lms", "SELECT mean(value) FROM minimd_temperature")
        .unwrap();
    let t = r.series[0].values[0][1].as_f64().unwrap();
    assert!((0.3..1.6).contains(&t), "T* = {t}");
}

/// Fig. 4: a four-node job with an 18-minute mid-run stall is detected on
/// every node, with the right window, by the threshold+timeout rules.
#[test]
fn fig4_computation_break_detection() {
    let mut stack = LmsStack::start(StackConfig::default()).unwrap();
    let job = stack.submit_job(
        "erik",
        "staller",
        4,
        Duration::from_secs(3600),
        AppProfile::ComputeWithBreak {
            busy: Duration::from_secs(20 * 60),
            gap: Duration::from_secs(18 * 60),
        },
    );
    stack.run_for(Duration::from_secs(61 * 60), Duration::from_secs(60));

    let info = stack.job_info(job).unwrap();
    let end = info.end.unwrap();
    let mut src = stack.influx().clone();
    let findings =
        PathologyDetector::new("lms").detect(&mut src, &info.hosts, info.start, end).unwrap();
    let breaks: Vec<_> =
        findings.iter().filter(|f| f.kind == FindingKind::ComputationBreak).collect();
    assert_eq!(breaks.len(), 4, "one break per node: {findings:?}");
    for b in &breaks {
        let w = b.window.unwrap();
        // The stall runs [20, 38) minutes into the job; sampling at the
        // 2-minute group rotation blurs edges by a couple of minutes.
        assert!(
            w.duration() >= Duration::from_secs(12 * 60),
            "window {:?} too short",
            w.duration()
        );
        assert!(
            w.duration() <= Duration::from_secs(20 * 60),
            "window {:?} too long",
            w.duration()
        );
    }
    // And a healthy compute job of the same length yields no break.
    let good = stack.submit_job("anna", "ok", 4, Duration::from_secs(1800), AppProfile::Dgemm);
    stack.run_for(Duration::from_secs(35 * 60), Duration::from_secs(60));
    let ginfo = stack.job_info(good).unwrap();
    let gend = ginfo.end.unwrap();
    let gfindings = PathologyDetector::new("lms")
        .detect(&mut src, &ginfo.hosts, ginfo.start, gend)
        .unwrap();
    assert!(
        gfindings.iter().all(|f| f.kind != FindingKind::ComputationBreak),
        "{gfindings:?}"
    );
}
