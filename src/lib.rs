//! # lms — the LIKWID Monitoring Stack, reproduced in Rust
//!
//! A full reimplementation of the system described in *"LIKWID Monitoring
//! Stack: A flexible framework enabling job specific performance monitoring
//! for the masses"* (Röhl, Eitzinger, Hager, Wellein — IEEE CLUSTER 2017),
//! including every substrate it depends on: a LIKWID-like hardware
//! performance monitoring layer, system-metric collectors over a simulated
//! procfs, an InfluxDB-compatible time-series database, the metrics router
//! with its job tag store, a ZeroMQ-style message queue, the libusermetric
//! application instrumentation library, a batch job scheduler, a
//! Grafana-style dashboard agent, and the data-analysis methodology
//! (threshold/timeout rules and the performance-pattern decision tree).
//!
//! This crate is a facade: each subsystem lives in its own crate under
//! `crates/` and is fully usable standalone (the paper's "components can be
//! used … standalone or in parts" design goal). Start with
//! [`core::LmsStack`] for the assembled stack, or see `examples/`.

/// The assembled monitoring stack (`lms-core`).
pub use lms_core as core;

/// Shared substrate: clocks, hashing, JSON, config (`lms-util`).
pub use lms_util as util;

/// InfluxDB line protocol (`lms-lineproto`).
pub use lms_lineproto as lineproto;

/// Node hardware topology and cpuset expressions (`lms-topology`).
pub use lms_topology as topology;

/// LIKWID-like hardware performance monitoring (`lms-hpm`).
pub use lms_hpm as hpm;

/// System metric collection over simulated procfs (`lms-sysmon`).
pub use lms_sysmon as sysmon;

/// The time-series database (`lms-influx`).
pub use lms_influx as influx;

/// Downsampling: rollup tiers, window aggregation (`lms-rollup`).
pub use lms_rollup as rollup;

/// Minimal HTTP/1.1 (`lms-http`).
pub use lms_http as http;

/// PUB/SUB message queue (`lms-mq`).
pub use lms_mq as mq;

/// The metrics router (`lms-router`).
pub use lms_router as router;

/// Durable spill-to-disk spool for the delivery path (`lms-spool`).
pub use lms_spool as spool;

/// libusermetric application instrumentation (`lms-usermetric`).
pub use lms_usermetric as usermetric;

/// Batch job scheduler (`lms-jobsched`).
pub use lms_jobsched as jobsched;

/// Proxy applications: miniMD and workload profiles (`lms-apps`).
pub use lms_apps as apps;

/// Data analysis: rules, pathology, patterns, evaluation (`lms-analysis`).
pub use lms_analysis as analysis;

/// Dashboards, templates, viewer agent, rendering (`lms-dashboard`).
pub use lms_dashboard as dashboard;
