//! Seeded rendezvous hashing — re-exported from `lms-util`.
//!
//! The ring moved down into `lms-util` so that storage nodes (which do not
//! depend on `lms-cluster`) can recompute owner sets when building
//! integrity digests. This module keeps the historical
//! `lms_cluster::ring::HashRing` path working.

pub use lms_util::ring::HashRing;
