//! # lms-cluster
//!
//! Series placement and result merging for the router's cluster mode.
//!
//! One embedded `lms-influx` node caps the whole stack and is a single
//! point of loss. Cluster mode spreads series across N database nodes with
//! R-way replication: the router hashes each line's **series key** (db +
//! measurement + canonical tag set) onto a seeded rendezvous ring
//! ([`ring::HashRing`]) and fans the line to its R owners. Writes ack at a
//! configurable write quorum W; a down replica's share lands in that
//! replica's on-disk spool as a *hinted handoff* and replays once the node
//! answers `/ping` again. Reads scatter to every node and merge through the
//! same last-write-wins rule the storage engine uses for overlapping block
//! generations ([`merge::merge_results`]), degrading to a partial result
//! instead of failing when a replica is unreachable.
//!
//! The crate is deliberately mechanism-only — placement, quorum arithmetic
//! and merging. The delivery machinery (queues, spools, breakers,
//! drainers) lives in `lms-router`, which instantiates one forwarder per
//! cluster node.

pub mod merge;
pub mod partial;
pub mod ring;

/// Anti-entropy digest vocabulary — lives in `lms-util` (so storage nodes
/// can compute digests without a cluster dependency), re-exported here
/// because the repair protocol is cluster machinery.
pub use lms_util::digest;

pub use digest::{diff_digests, BucketDigest, RepairTask, DIGEST_BUCKET_NS};
pub use merge::merge_results;
pub use partial::{partial_plan, PartialPlan};
pub use ring::HashRing;

use lms_util::{Error, Result};
use std::net::SocketAddr;

/// Cluster-mode configuration: the database nodes, the replication factor
/// and the write quorum.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// The database nodes, in ring-slot order. Order matters: the seeded
    /// ring assigns per-node salts by index, so every router configured
    /// with the same node list and seed computes the same placement.
    pub nodes: Vec<SocketAddr>,
    /// Copies of every series (R). Clamped to the node count by
    /// [`validate`](Self::validate).
    pub replication: usize,
    /// Node-batches that must be *accepted* (queued or durably spooled)
    /// before a write is acknowledged (W). With W=1 (the default) a write
    /// acks as soon as one owner has it; durability for the rest comes
    /// from the per-node hinted-handoff spool.
    pub write_quorum: usize,
    /// Seed for the per-node ring salts. All routers of a deployment must
    /// share it.
    pub seed: u64,
}

impl ClusterConfig {
    /// A degenerate single-node cluster — the classic one-database stack.
    pub fn single(addr: SocketAddr) -> Self {
        ClusterConfig { nodes: vec![addr], replication: 1, write_quorum: 1, seed: 0 }
    }

    /// A cluster over `nodes` with replication `r` and the default write
    /// quorum of 1.
    pub fn new(nodes: Vec<SocketAddr>, replication: usize) -> Self {
        ClusterConfig { nodes, replication, write_quorum: 1, seed: 0 }
    }

    /// Validates the quorum arithmetic: at least one node, and
    /// `1 ≤ W ≤ R ≤ nodes.len()`.
    pub fn validate(&self) -> Result<()> {
        if self.nodes.is_empty() {
            return Err(Error::config("cluster: at least one node required"));
        }
        if self.replication == 0 || self.replication > self.nodes.len() {
            return Err(Error::config(format!(
                "cluster: replication {} out of range 1..={}",
                self.replication,
                self.nodes.len()
            )));
        }
        if self.write_quorum == 0 || self.write_quorum > self.replication {
            return Err(Error::config(format!(
                "cluster: write quorum {} out of range 1..={}",
                self.write_quorum, self.replication
            )));
        }
        Ok(())
    }

    /// Node-batch failures a write can absorb and still meet the quorum:
    /// `R − W`.
    pub fn tolerated_failures(&self) -> usize {
        self.replication - self.write_quorum
    }

    /// The placement ring for this configuration.
    pub fn ring(&self) -> HashRing {
        HashRing::new(self.nodes.len(), self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(port: u16) -> SocketAddr {
        format!("127.0.0.1:{port}").parse().unwrap()
    }

    #[test]
    fn single_node_config_is_valid() {
        let c = ClusterConfig::single(addr(8086));
        c.validate().unwrap();
        assert_eq!(c.tolerated_failures(), 0);
    }

    #[test]
    fn validate_rejects_bad_quorums() {
        let nodes = vec![addr(1), addr(2), addr(3)];
        assert!(ClusterConfig { nodes: vec![], ..ClusterConfig::new(vec![], 1) }
            .validate()
            .is_err());
        assert!(ClusterConfig::new(nodes.clone(), 0).validate().is_err());
        assert!(ClusterConfig::new(nodes.clone(), 4).validate().is_err());
        let mut c = ClusterConfig::new(nodes.clone(), 2);
        c.write_quorum = 0;
        assert!(c.validate().is_err());
        c.write_quorum = 3;
        assert!(c.validate().is_err());
        c.write_quorum = 2;
        c.validate().unwrap();
        assert_eq!(c.tolerated_failures(), 0);
        c.write_quorum = 1;
        assert_eq!(c.tolerated_failures(), 1);
    }
}
