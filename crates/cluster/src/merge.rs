//! Scatter-gather result merging for cluster reads.
//!
//! A cluster query fans out to every node and gets back per-node
//! [`QueryResult`]s covering disjoint-to-overlapping slices of the data
//! (each series lives on R of the N nodes). The merge must
//!
//! 1. **union** series that only one node returned,
//! 2. **deduplicate** series that R nodes returned identically, and
//! 3. resolve genuine divergence (a replica that missed an overwrite)
//!    deterministically — which is exactly the storage engine's
//!    last-write-wins rule, so the merge reuses [`lms_influx::lww_dedup`]
//!    with the part index standing in for the block generation.
//!
//! Time-series results (first column `time`) merge row-wise. *Tagged*
//! series (GROUP BY answers — the tag set pins one underlying series, so a
//! timestamp identifies a row) dedupe by timestamp with the LWW rule.
//! *Untagged* series (flat selects interleave every matching underlying
//! series, so timestamps legitimately repeat) carry no series identity per
//! row; they merge as a content multiset where each distinct row keeps the
//! maximum multiplicity any single node reported — replica copies collapse
//! to one while equal-valued rows from different series survive.
//! Meta results (`SHOW MEASUREMENTS`, `SHOW TAG VALUES`, …) have no time
//! axis; their rows are unioned, sorted and deduplicated wholesale.
//!
//! Cross-node **aggregates** (`SELECT mean(...)`) do not go through this
//! merge at all: the router decomposes them into per-node partials
//! (`count`/`sum`/`min`/`max` per series) and recombines algebraically via
//! [`crate::partial`], which is exact at any replication factor R ≤ N.
//! Only non-decomposable aggregates (`first`/`last`/`stddev`, or a
//! non-default `FILL`) still land here and resolve by the LWW rule —
//! exact when R = N, last-part-wins otherwise.

use lms_influx::{lww_dedup, QueryResult, ResultSeries};
use lms_util::Json;
use std::collections::BTreeMap;

/// Merges per-node query results into one, LWW per `(series, timestamp)`.
///
/// `parts` holds each reachable node's answer; `partial` in the output is
/// the OR of the inputs' flags (a caller that skipped an unreachable node
/// passes the information by setting `partial` on any part, or by setting
/// it on the merged result afterwards).
pub fn merge_results(parts: Vec<QueryResult>) -> QueryResult {
    type SeriesKey = (String, Vec<(String, String)>);
    let partial = parts.iter().any(|p| p.partial);
    // Group by (name, tags); BTreeMap gives a stable output order.
    let mut groups: BTreeMap<SeriesKey, Vec<(usize, ResultSeries)>> = BTreeMap::new();
    for (part_idx, part) in parts.into_iter().enumerate() {
        for series in part.series {
            groups
                .entry((series.name.clone(), series.tags.clone()))
                .or_default()
                .push((part_idx, series));
        }
    }
    let mut out = QueryResult { series: Vec::with_capacity(groups.len()), partial };
    for ((name, tags), members) in groups {
        out.series.push(merge_group(name, tags, members));
    }
    out
}

fn merge_group(
    name: String,
    tags: Vec<(String, String)>,
    mut members: Vec<(usize, ResultSeries)>,
) -> ResultSeries {
    if members.len() == 1 {
        return members.pop().expect("non-empty group").1;
    }
    // Columns: take them from the widest member (replicas of the same
    // query agree on columns; an empty replica answer may omit them).
    let columns = members
        .iter()
        .map(|(_, s)| &s.columns)
        .max_by_key(|c| c.len())
        .cloned()
        .unwrap_or_default();
    let time_series = columns.first().map(String::as_str) == Some("time");
    if time_series && !tags.is_empty() {
        // Grouped result: the tag set pins one underlying series, so a
        // timestamp identifies a row. Row timestamp + part index → the LWW
        // rule of the storage engine: later parts win on identical
        // timestamps, so divergent replicas resolve deterministically and
        // true duplicates collapse to one.
        let mut versions: Vec<(i64, u64, Vec<Json>)> = Vec::new();
        for (part_idx, s) in members {
            for row in s.values {
                let ts = row.first().and_then(Json::as_i64).unwrap_or(i64::MIN);
                versions.push((ts, part_idx as u64, row));
            }
        }
        let values = lww_dedup(versions).into_iter().map(|(_, row)| row).collect();
        ResultSeries { name, tags, columns, values }
    } else if time_series {
        // Flat (ungrouped) result: every matching underlying series is
        // interleaved into this one answer, so timestamps legitimately
        // repeat (two hosts sampled in the same second) and rows carry no
        // series identity. Merge as a content multiset: each distinct row
        // keeps the max multiplicity any single node reported — a node
        // holding k co-resident series with identical rows reports k, while
        // replica copies of the same series never inflate the count.
        let mut counts: BTreeMap<String, (i64, Vec<Json>, usize)> = BTreeMap::new();
        for (_, s) in members {
            let mut local: BTreeMap<String, (i64, Vec<Json>, usize)> = BTreeMap::new();
            for row in s.values {
                let ts = row.first().and_then(Json::as_i64).unwrap_or(i64::MIN);
                let key = Json::arr(row.iter().cloned()).to_string();
                local.entry(key).and_modify(|e| e.2 += 1).or_insert((ts, row, 1));
            }
            for (key, (ts, row, n)) in local {
                counts.entry(key).and_modify(|e| e.2 = e.2.max(n)).or_insert((ts, row, n));
            }
        }
        let mut rows: Vec<(i64, String, Vec<Json>, usize)> =
            counts.into_iter().map(|(key, (ts, row, n))| (ts, key, row, n)).collect();
        rows.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
        let mut values = Vec::with_capacity(rows.iter().map(|r| r.3).sum());
        for (_, _, row, n) in rows {
            for _ in 1..n {
                values.push(row.clone());
            }
            values.push(row);
        }
        ResultSeries { name, tags, columns, values }
    } else {
        // Meta result: union of whole rows, sorted, deduplicated. Rows are
        // small JSON tuples; compare by rendered form (Json is not Ord).
        let mut rows: Vec<(String, Vec<Json>)> = members
            .into_iter()
            .flat_map(|(_, s)| s.values)
            .map(|row| (Json::arr(row.iter().cloned()).to_string(), row))
            .collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        rows.dedup_by(|a, b| a.0 == b.0);
        ResultSeries { name, tags, columns, values: rows.into_iter().map(|(_, r)| r).collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts_series(name: &str, tags: &[(&str, &str)], rows: &[(i64, f64)]) -> ResultSeries {
        ResultSeries {
            name: name.into(),
            tags: tags.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
            columns: vec!["time".into(), "value".into()],
            values: rows
                .iter()
                .map(|&(t, v)| vec![Json::Int(t), Json::Num(v)])
                .collect(),
        }
    }

    fn result(series: Vec<ResultSeries>) -> QueryResult {
        QueryResult { series, partial: false }
    }

    fn times(s: &ResultSeries) -> Vec<i64> {
        s.values.iter().map(|r| r[0].as_i64().unwrap()).collect()
    }

    #[test]
    fn replicated_series_dedupe_to_one_copy() {
        let a = result(vec![ts_series("cpu", &[("hostname", "h1")], &[(1, 0.1), (2, 0.2)])]);
        let b = result(vec![ts_series("cpu", &[("hostname", "h1")], &[(1, 0.1), (2, 0.2)])]);
        let m = merge_results(vec![a, b]);
        assert_eq!(m.series.len(), 1);
        assert_eq!(times(&m.series[0]), vec![1, 2]);
        assert!(!m.partial);
    }

    #[test]
    fn disjoint_series_union() {
        let a = result(vec![ts_series("cpu", &[("hostname", "h1")], &[(1, 0.1)])]);
        let b = result(vec![ts_series("cpu", &[("hostname", "h2")], &[(1, 0.9)])]);
        let m = merge_results(vec![a, b]);
        assert_eq!(m.series.len(), 2);
    }

    #[test]
    fn interleaved_timestamps_merge_sorted() {
        let a = result(vec![ts_series("m", &[], &[(1, 1.0), (3, 3.0)])]);
        let b = result(vec![ts_series("m", &[], &[(2, 2.0), (4, 4.0)])]);
        let m = merge_results(vec![a, b]);
        assert_eq!(times(&m.series[0]), vec![1, 2, 3, 4]);
    }

    #[test]
    fn divergent_replicas_resolve_by_part_order() {
        // Same tagged series, same timestamp, different value (a replica
        // missed an overwrite): the later part wins — deterministic, and
        // matching the storage engine's higher-generation-wins rule.
        let a = result(vec![ts_series("m", &[("hostname", "h1")], &[(5, 1.0)])]);
        let b = result(vec![ts_series("m", &[("hostname", "h1")], &[(5, 2.0)])]);
        let m = merge_results(vec![a, b]);
        assert_eq!(m.series[0].values.len(), 1);
        assert_eq!(m.series[0].values[0][1].as_f64(), Some(2.0));
    }

    #[test]
    fn flat_result_keeps_same_timestamp_rows_from_different_series() {
        // An ungrouped select interleaves h1 and h2 into one untagged
        // series; both sampled at t=1. Node A owns h1, node B owns both,
        // node C owns h2 (R = 2 over 3 nodes). The merge must yield each
        // sample exactly once — not collapse them by timestamp.
        let a = result(vec![ts_series("cpu", &[], &[(1, 0.1)])]);
        let b = result(vec![ts_series("cpu", &[], &[(1, 0.1), (1, 0.9)])]);
        let c = result(vec![ts_series("cpu", &[], &[(1, 0.9)])]);
        let m = merge_results(vec![a, b, c]);
        let vals: Vec<f64> = m.series[0].values.iter().map(|r| r[1].as_f64().unwrap()).collect();
        assert_eq!(vals, vec![0.1, 0.9]);
    }

    #[test]
    fn flat_result_keeps_identical_rows_coresident_on_one_node() {
        // Two series with *identical* rows both live on node B: B's local
        // multiplicity (2) is the truth, and replica copies on A must not
        // push it to 3.
        let a = result(vec![ts_series("cpu", &[], &[(1, 0.5)])]);
        let b = result(vec![ts_series("cpu", &[], &[(1, 0.5), (1, 0.5)])]);
        let m = merge_results(vec![a, b]);
        assert_eq!(m.series[0].values.len(), 2);
    }

    #[test]
    fn empty_replica_answer_is_harmless() {
        let a = result(vec![ts_series("m", &[], &[(1, 1.0)])]);
        let empty = QueryResult::empty();
        let m = merge_results(vec![a, empty]);
        assert_eq!(m.series.len(), 1);
        assert_eq!(times(&m.series[0]), vec![1]);
    }

    #[test]
    fn partial_flag_propagates() {
        let mut a = result(vec![ts_series("m", &[], &[(1, 1.0)])]);
        a.partial = true;
        let m = merge_results(vec![a, QueryResult::empty()]);
        assert!(m.partial);
    }

    #[test]
    fn meta_results_union_and_dedupe() {
        let meta = |names: &[&str]| {
            result(vec![ResultSeries {
                name: "measurements".into(),
                tags: Vec::new(),
                columns: vec!["name".into()],
                values: names.iter().map(|n| vec![Json::str(*n)]).collect(),
            }])
        };
        let m = merge_results(vec![meta(&["cpu", "mem"]), meta(&["mem", "net"])]);
        assert_eq!(m.series.len(), 1);
        let names: Vec<&str> =
            m.series[0].values.iter().map(|r| r[0].as_str().unwrap()).collect();
        assert_eq!(names, vec!["cpu", "mem", "net"]);
    }

    #[test]
    fn single_part_passes_through() {
        let a = result(vec![ts_series("m", &[], &[(2, 1.0), (1, 0.5)])]);
        let m = merge_results(vec![a.clone()]);
        // One member: passed through untouched (no re-sort) — the node
        // already ordered its own answer.
        assert_eq!(m.series, a.series);
    }
}
