//! Exact cross-node aggregates: decompose, scatter, recombine.
//!
//! A cluster aggregate (`SELECT mean(v) FROM cpu ... GROUP BY time(1m)`)
//! cannot be answered by merging per-node *final* answers: with R < N each
//! node aggregates only the series it owns, and a mean of means is not the
//! mean. The router therefore rewrites decomposable aggregates into
//! **partial** queries and recombines algebraically:
//!
//! 1. **Decompose** — every projected field is replaced by the quadruple
//!    `count(f), sum(f), min(f), max(f)`, and `GROUP BY *` is added so each
//!    node answers one series per *underlying* series it holds (the full
//!    tag set is the series identity).
//! 2. **Scatter** — the rewritten query fans out like any other read.
//! 3. **Dedupe** — a series is wholly stored on each of its R owners, so
//!    for every `(series, window)` exactly one node's partial row is kept
//!    (highest part index wins, the same LWW rule [`crate::merge`] uses —
//!    divergent replicas resolve deterministically, never mix).
//! 4. **Recombine** — rows are re-grouped by the *original* GROUP BY key
//!    and folded: counts and sums add, min/max fold, `mean = Σsum/Σcount`.
//!    The fold is exact for `count`/`sum`/`min`/`max`/`mean` at any R ≤ N.
//!
//! A query stays on the legacy whole-result merge when it is not
//! decomposable: raw projections, `first`/`last`/`stddev` (order- or
//! variance-carrying), or a non-default `FILL(...)` (fill rows are
//! synthesized per node over node-local window ranges and cannot be told
//! apart from real all-null windows after the fact).
//!
//! One visible edge: an ungrouped aggregate over a measurement whose
//! series hold no in-range points returns an *empty* result through this
//! path (the per-series partial groups are all empty and skipped), where a
//! single node would emit one all-null row.

use lms_influx::query::{AggFunc, Fill, Projection, Select, Statement};
use lms_influx::{QueryResult, ResultSeries};
use lms_util::Json;
use std::collections::BTreeMap;

/// A series' tag set as sorted `(key, value)` pairs.
type TagSet = Vec<(String, String)>;

/// A decomposed aggregate query: the rewritten per-node statement plus
/// everything needed to recombine the partial answers exactly.
#[derive(Debug, Clone)]
pub struct PartialPlan {
    /// The rewritten statement sent to every node.
    partial_query: String,
    /// One entry per original projection: the aggregate and the index of
    /// its field in the per-field quadruple layout.
    outputs: Vec<(AggFunc, usize)>,
    /// Number of distinct projected fields (quadruples per row).
    n_fields: usize,
    measurement: String,
    group_tags: Vec<String>,
    group_all: bool,
    order_desc: bool,
    limit: Option<usize>,
}

/// Plans a decomposition for a raw query string. `None` when the query is
/// not a decomposable aggregate SELECT (including unparsable input — the
/// caller forwards the original string and lets the nodes answer).
pub fn partial_plan(q: &str) -> Option<PartialPlan> {
    match Statement::parse(q) {
        Ok(Statement::Select(sel)) => PartialPlan::for_select(&sel),
        _ => None,
    }
}

impl PartialPlan {
    /// Plans a decomposition for a parsed SELECT; `None` when any
    /// projection is raw or order/variance-carrying, or the fill policy
    /// is not the default `FILL(none)`.
    pub fn for_select(sel: &Select) -> Option<PartialPlan> {
        if sel.fill != Fill::None {
            return None;
        }
        let mut fields: Vec<&str> = Vec::new();
        let mut outputs = Vec::new();
        for p in &sel.projections {
            let Projection::Agg(func, field) = p else { return None };
            if !matches!(
                func,
                AggFunc::Mean | AggFunc::Sum | AggFunc::Min | AggFunc::Max | AggFunc::Count
            ) {
                return None;
            }
            let fi = fields.iter().position(|f| f == field).unwrap_or_else(|| {
                fields.push(field);
                fields.len() - 1
            });
            outputs.push((*func, fi));
        }
        if outputs.is_empty() {
            return None;
        }
        let mut partial = sel.clone();
        partial.projections = fields
            .iter()
            .flat_map(|f| {
                [AggFunc::Count, AggFunc::Sum, AggFunc::Min, AggFunc::Max]
                    .map(|func| Projection::Agg(func, f.to_string()))
            })
            .collect();
        partial.group_all = true;
        // Ordering and truncation apply to the *recombined* rows; a
        // per-node LIMIT would drop windows other nodes still need.
        partial.order_desc = false;
        partial.limit = None;
        Some(PartialPlan {
            partial_query: partial.render(),
            outputs,
            n_fields: fields.len(),
            measurement: sel.measurement.clone(),
            group_tags: sel.group_tags.clone(),
            group_all: sel.group_all,
            order_desc: sel.order_desc,
            limit: sel.limit,
        })
    }

    /// The rewritten statement to send to every node.
    pub fn partial_query(&self) -> &str {
        &self.partial_query
    }

    /// Recombines per-node partial answers into the final result. `parts`
    /// holds each reachable node's answer in node order; the output
    /// `partial` flag is the OR of the inputs'.
    pub fn merge(&self, parts: Vec<QueryResult>) -> QueryResult {
        let partial = parts.iter().any(|p| p.partial);
        // (series tags, window ts) → one node's row; later parts win on
        // replica copies, matching the LWW rule of the plain merge.
        let mut rows: BTreeMap<(TagSet, i64), Vec<Json>> = BTreeMap::new();
        for part in parts {
            for series in part.series {
                for row in series.values {
                    let ts = row.first().and_then(Json::as_i64).unwrap_or(i64::MIN);
                    rows.insert((series.tags.clone(), ts), row);
                }
            }
        }
        // Re-group by the original GROUP BY key and fold the quadruples.
        let mut groups: BTreeMap<TagSet, BTreeMap<i64, Vec<PartialAcc>>> = BTreeMap::new();
        for ((tags, ts), row) in rows {
            let key: Vec<(String, String)> = if self.group_all {
                tags
            } else {
                self.group_tags
                    .iter()
                    .map(|t| {
                        let v = tags
                            .iter()
                            .find(|(k, _)| k == t)
                            .map(|(_, v)| v.clone())
                            .unwrap_or_default();
                        (t.clone(), v)
                    })
                    .collect()
            };
            let accs = groups
                .entry(key)
                .or_default()
                .entry(ts)
                .or_insert_with(|| vec![PartialAcc::default(); self.n_fields]);
            for (fi, acc) in accs.iter_mut().enumerate() {
                acc.fold(&row, 1 + fi * 4);
            }
        }
        let columns: Vec<String> = std::iter::once("time".to_string())
            .chain(self.outputs.iter().map(|(func, _)| func.column_name().to_string()))
            .collect();
        let mut out = QueryResult { series: Vec::with_capacity(groups.len()), partial };
        for (tags, by_ts) in groups {
            let mut values: Vec<Vec<Json>> = by_ts
                .into_iter()
                .map(|(ts, accs)| {
                    std::iter::once(Json::Int(ts))
                        .chain(self.outputs.iter().map(|&(func, fi)| accs[fi].finalize(func)))
                        .collect()
                })
                .collect();
            if self.order_desc {
                values.reverse();
            }
            if let Some(limit) = self.limit {
                values.truncate(limit);
            }
            out.series.push(ResultSeries {
                name: self.measurement.clone(),
                tags,
                columns: columns.clone(),
                values,
            });
        }
        out
    }
}

/// One field's folded partials across series. Mirrors the executor's
/// accumulator exactly: `count` covers every point (numeric or not), the
/// numeric stats only fold when the node reported them (non-null).
#[derive(Debug, Clone, Copy)]
struct PartialAcc {
    count: i64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for PartialAcc {
    fn default() -> Self {
        PartialAcc { count: 0, sum: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }
}

impl PartialAcc {
    /// Folds one quadruple starting at column `base` of a partial row.
    fn fold(&mut self, row: &[Json], base: usize) {
        self.count += row.get(base).and_then(Json::as_i64).unwrap_or(0);
        if let Some(s) = row.get(base + 1).and_then(Json::as_f64) {
            self.sum += s;
        }
        if let Some(m) = row.get(base + 2).and_then(Json::as_f64) {
            self.min = self.min.min(m);
        }
        if let Some(m) = row.get(base + 3).and_then(Json::as_f64) {
            self.max = self.max.max(m);
        }
    }

    /// Finalizes one aggregate — the same rules as the single-node
    /// executor: `count == 0` answers null, numeric aggregates over
    /// non-numeric values answer null.
    fn finalize(&self, func: AggFunc) -> Json {
        if self.count == 0 {
            return Json::Null;
        }
        let numeric = self.min.is_finite();
        match func {
            AggFunc::Count => Json::Int(self.count),
            AggFunc::Mean if numeric => Json::Num(self.sum / self.count as f64),
            AggFunc::Sum if numeric => Json::Num(self.sum),
            AggFunc::Min if numeric => Json::Num(self.min),
            AggFunc::Max if numeric => Json::Num(self.max),
            _ => Json::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(tags: &[(&str, &str)], rows: Vec<Vec<Json>>) -> ResultSeries {
        ResultSeries {
            name: "cpu".into(),
            tags: tags.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
            columns: vec![
                "time".into(),
                "count".into(),
                "sum".into(),
                "min".into(),
                "max".into(),
            ],
            values: rows,
        }
    }

    fn quad(ts: i64, count: i64, sum: f64, min: f64, max: f64) -> Vec<Json> {
        vec![Json::Int(ts), Json::Int(count), Json::Num(sum), Json::Num(min), Json::Num(max)]
    }

    #[test]
    fn plans_only_decomposable_aggregates() {
        assert!(partial_plan("SELECT mean(v), count(v) FROM cpu").is_some());
        assert!(partial_plan("SELECT sum(v) FROM cpu GROUP BY time(1m), host").is_some());
        assert!(partial_plan("SELECT v FROM cpu").is_none(), "raw projection");
        assert!(partial_plan("SELECT first(v) FROM cpu").is_none(), "order-carrying");
        assert!(partial_plan("SELECT stddev(v) FROM cpu").is_none(), "variance-carrying");
        assert!(
            partial_plan("SELECT mean(v) FROM cpu GROUP BY time(1m) FILL(null)").is_none(),
            "non-default fill"
        );
        assert!(partial_plan("SHOW MEASUREMENTS").is_none());
        assert!(partial_plan("not even influxql").is_none());
    }

    #[test]
    fn partial_query_carries_quadruples_and_group_star() {
        let plan = partial_plan(
            "SELECT mean(v) FROM cpu WHERE time >= 0 GROUP BY time(1m), \"host\" LIMIT 3",
        )
        .unwrap();
        let q = plan.partial_query();
        for piece in ["count(\"v\")", "sum(\"v\")", "min(\"v\")", "max(\"v\")", "*"] {
            assert!(q.contains(piece), "missing {piece} in {q}");
        }
        assert!(!q.contains("LIMIT"), "limit must apply after recombination: {q}");
    }

    #[test]
    fn mean_recombines_exactly_across_nodes() {
        // h1 (3 points, sum 30) on node 0; h2 (1 point, sum 10) on node 1.
        // mean = 40/4 = 10, NOT the mean of means (15 + 10)/2 = 12.5.
        let plan = partial_plan("SELECT mean(v), count(v) FROM cpu").unwrap();
        let a = QueryResult {
            series: vec![series(&[("host", "h1")], vec![quad(0, 3, 30.0, 5.0, 20.0)])],
            partial: false,
        };
        let b = QueryResult {
            series: vec![series(&[("host", "h2")], vec![quad(0, 1, 10.0, 10.0, 10.0)])],
            partial: false,
        };
        let m = plan.merge(vec![a, b]);
        assert_eq!(m.series.len(), 1);
        assert!(m.series[0].tags.is_empty());
        assert_eq!(m.series[0].columns, vec!["time", "mean", "count"]);
        assert_eq!(m.series[0].values[0][1].as_f64(), Some(10.0));
        assert_eq!(m.series[0].values[0][2].as_i64(), Some(4));
    }

    #[test]
    fn replica_copies_collapse_before_folding() {
        // The same series answered by both of its owners must count once.
        let plan = partial_plan("SELECT sum(v) FROM cpu").unwrap();
        let row = || series(&[("host", "h1")], vec![quad(0, 2, 8.0, 3.0, 5.0)]);
        let m = plan.merge(vec![
            QueryResult { series: vec![row()], partial: false },
            QueryResult { series: vec![row()], partial: false },
        ]);
        assert_eq!(m.series[0].values[0][1].as_f64(), Some(8.0));
    }

    #[test]
    fn divergent_replicas_resolve_by_part_order_not_mixing() {
        let plan = partial_plan("SELECT count(v) FROM cpu").unwrap();
        let a = QueryResult {
            series: vec![series(&[("host", "h1")], vec![quad(0, 5, 5.0, 1.0, 1.0)])],
            partial: false,
        };
        let b = QueryResult {
            series: vec![series(&[("host", "h1")], vec![quad(0, 7, 7.0, 1.0, 1.0)])],
            partial: false,
        };
        let m = plan.merge(vec![a, b]);
        assert_eq!(m.series[0].values[0][1].as_i64(), Some(7), "later part wins whole row");
    }

    #[test]
    fn grouped_windows_union_and_order() {
        // GROUP BY time + host: windows from different nodes union per
        // group; order_desc and limit apply after recombination.
        let plan = partial_plan(
            "SELECT max(v) FROM cpu GROUP BY time(60), \"host\" ORDER BY time DESC LIMIT 1",
        )
        .unwrap();
        let a = QueryResult {
            series: vec![series(&[("host", "h1"), ("socket", "0")], vec![
                quad(0, 1, 1.0, 1.0, 1.0),
                quad(60, 1, 2.0, 2.0, 2.0),
            ])],
            partial: false,
        };
        let b = QueryResult {
            series: vec![series(&[("host", "h1"), ("socket", "1")], vec![
                quad(60, 1, 9.0, 9.0, 9.0),
            ])],
            partial: false,
        };
        let m = plan.merge(vec![a, b]);
        assert_eq!(m.series.len(), 1, "both series share host=h1");
        assert_eq!(m.series[0].tags, vec![("host".to_string(), "h1".to_string())]);
        // DESC + LIMIT 1: only the latest window, max folded across series.
        assert_eq!(m.series[0].values.len(), 1);
        assert_eq!(m.series[0].values[0][0].as_i64(), Some(60));
        assert_eq!(m.series[0].values[0][1].as_f64(), Some(9.0));
    }

    #[test]
    fn non_numeric_series_answer_null_but_count() {
        let plan = partial_plan("SELECT mean(v), count(v) FROM cpu").unwrap();
        let a = QueryResult {
            series: vec![series(&[("host", "h1")], vec![vec![
                Json::Int(0),
                Json::Int(3),
                Json::Null,
                Json::Null,
                Json::Null,
            ]])],
            partial: false,
        };
        let m = plan.merge(vec![a]);
        assert_eq!(m.series[0].values[0][1], Json::Null, "mean over text is null");
        assert_eq!(m.series[0].values[0][2].as_i64(), Some(3), "count still exact");
    }
}
