//! Job-level pathological-behaviour detection.
//!
//! The paper's motivating detections (Sec. I and V): idle jobs, exceeded
//! memory capacity, unreasonable strong scaling (load imbalance), and the
//! Fig. 4 computation break (FP rate *and* memory bandwidth below their
//! thresholds for more than the timeout). Each detector queries the
//! database for the job's hosts and time range, so the same code runs
//! online (against the live DB) and offline (against an archive).

use crate::rules::{evaluate_all, Rule, Violation};
use crate::series::TimeSeries;
use lms_influx::QuerySource;
use lms_util::{Result, Timestamp};
use std::time::Duration;

/// Detection thresholds.
#[derive(Debug, Clone)]
pub struct PathologyThresholds {
    /// DP FLOP rate below this (MFLOP/s, node aggregate) counts as "not
    /// computing".
    pub fp_rate_mflops: f64,
    /// Memory bandwidth below this (MBytes/s, node aggregate) counts as
    /// "not moving data".
    pub membw_mbytes: f64,
    /// Minimum length of a combined break before it is reported (the
    /// paper's Fig. 4 uses 10 minutes).
    pub break_timeout: Duration,
    /// Mean CPU busy fraction below this makes an idle job.
    pub idle_busy: f64,
    /// Peak memory used fraction above this reports exceeded memory.
    pub mem_used_frac: f64,
    /// `(max − min) / mean` of per-node busy above this reports imbalance.
    pub imbalance: f64,
}

impl Default for PathologyThresholds {
    fn default() -> Self {
        PathologyThresholds {
            fp_rate_mflops: 100.0,
            membw_mbytes: 1000.0,
            break_timeout: Duration::from_secs(600),
            idle_busy: 0.10,
            mem_used_frac: 0.95,
            imbalance: 0.50,
        }
    }
}

/// The kind of pathological behaviour found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingKind {
    /// The whole job never did real work.
    IdleJob,
    /// FP rate and memory bandwidth simultaneously below thresholds for
    /// longer than the timeout (Fig. 4).
    ComputationBreak,
    /// Node memory nearly exhausted.
    MemoryExceeded,
    /// Strong imbalance between the job's nodes.
    LoadImbalance,
}

/// One detection result.
#[derive(Debug, Clone)]
pub struct Finding {
    /// What was found.
    pub kind: FindingKind,
    /// The affected host (`None` = job-wide).
    pub host: Option<String>,
    /// The violating window, where applicable.
    pub window: Option<Violation>,
    /// Human-readable detail for the dashboard header.
    pub detail: String,
}

/// The detector: thresholds + the database to ask.
#[derive(Debug, Clone)]
pub struct PathologyDetector {
    /// Database holding the job's metrics.
    pub db: String,
    /// Detection thresholds.
    pub thresholds: PathologyThresholds,
}

impl PathologyDetector {
    /// A detector over database `db` with default thresholds.
    pub fn new(db: &str) -> Self {
        PathologyDetector { db: db.to_string(), thresholds: PathologyThresholds::default() }
    }

    fn range_clause(start: Timestamp, end: Timestamp) -> String {
        format!("time >= {} AND time <= {}", start.nanos(), end.nanos())
    }

    /// Runs every detector for one job.
    pub fn detect(
        &self,
        source: &mut dyn QuerySource,
        hosts: &[String],
        start: Timestamp,
        end: Timestamp,
    ) -> Result<Vec<Finding>> {
        let mut findings = Vec::new();
        self.detect_idle_and_imbalance(source, hosts, start, end, &mut findings)?;
        self.detect_memory(source, hosts, start, end, &mut findings)?;
        self.detect_breaks(source, hosts, start, end, &mut findings)?;
        Ok(findings)
    }

    /// Idle-job and load-imbalance detection from per-host busy fractions.
    fn detect_idle_and_imbalance(
        &self,
        source: &mut dyn QuerySource,
        hosts: &[String],
        start: Timestamp,
        end: Timestamp,
        findings: &mut Vec<Finding>,
    ) -> Result<()> {
        let mut busys = Vec::with_capacity(hosts.len());
        for host in hosts {
            let q = format!(
                "SELECT mean(busy) FROM cpu_total WHERE hostname = '{host}' AND {}",
                Self::range_clause(start, end)
            );
            let ts = TimeSeries::from_result(&source.query_source(&self.db, &q)?, "mean");
            busys.push(ts.points.first().map(|&(_, v)| v).unwrap_or(0.0));
        }
        if busys.is_empty() {
            return Ok(());
        }
        let mean = busys.iter().sum::<f64>() / busys.len() as f64;
        if mean < self.thresholds.idle_busy {
            findings.push(Finding {
                kind: FindingKind::IdleJob,
                host: None,
                window: None,
                detail: format!("mean CPU busy {:.1}% across all nodes", mean * 100.0),
            });
        } else if busys.len() > 1 && mean > 0.0 {
            let max = busys.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let min = busys.iter().copied().fold(f64::INFINITY, f64::min);
            let imbalance = (max - min) / mean;
            if imbalance > self.thresholds.imbalance {
                findings.push(Finding {
                    kind: FindingKind::LoadImbalance,
                    host: None,
                    window: None,
                    detail: format!(
                        "busy fraction spread {:.0}%–{:.0}% (imbalance {:.2})",
                        min * 100.0,
                        max * 100.0,
                        imbalance
                    ),
                });
            }
        }
        Ok(())
    }

    /// Exceeded-memory detection from the peak used fraction per host.
    fn detect_memory(
        &self,
        source: &mut dyn QuerySource,
        hosts: &[String],
        start: Timestamp,
        end: Timestamp,
        findings: &mut Vec<Finding>,
    ) -> Result<()> {
        for host in hosts {
            let q = format!(
                "SELECT max(used_frac) FROM memory WHERE hostname = '{host}' AND {}",
                Self::range_clause(start, end)
            );
            let ts = TimeSeries::from_result(&source.query_source(&self.db, &q)?, "max");
            if let Some(&(_, peak)) = ts.points.first() {
                if peak > self.thresholds.mem_used_frac {
                    findings.push(Finding {
                        kind: FindingKind::MemoryExceeded,
                        host: Some(host.clone()),
                        window: None,
                        detail: format!("peak memory use {:.1}% on {host}", peak * 100.0),
                    });
                }
            }
        }
        Ok(())
    }

    /// Fig. 4: combined FP-rate + bandwidth break per host.
    fn detect_breaks(
        &self,
        source: &mut dyn QuerySource,
        hosts: &[String],
        start: Timestamp,
        end: Timestamp,
        findings: &mut Vec<Finding>,
    ) -> Result<()> {
        let range = Self::range_clause(start, end);
        let fp_rule = Rule::below("DP FP rate", self.thresholds.fp_rate_mflops, self.thresholds.break_timeout);
        let bw_rule =
            Rule::below("memory bandwidth", self.thresholds.membw_mbytes, self.thresholds.break_timeout);
        for host in hosts {
            let q = format!(
                "SELECT mean(dp_mflop_s) FROM hpm_flops_dp WHERE hostname = '{host}' AND {range} GROUP BY time(1m)"
            );
            let fp = TimeSeries::from_result(&source.query_source(&self.db, &q)?, "mean");
            let q = format!(
                "SELECT mean(memory_bandwidth_mbytes_s) FROM hpm_mem WHERE hostname = '{host}' AND {range} GROUP BY time(1m)"
            );
            let bw = TimeSeries::from_result(&source.query_source(&self.db, &q)?, "mean");
            if fp.is_empty() || bw.is_empty() {
                continue;
            }
            for window in
                evaluate_all(&[(&fp_rule, &fp), (&bw_rule, &bw)], self.thresholds.break_timeout)
            {
                findings.push(Finding {
                    kind: FindingKind::ComputationBreak,
                    host: Some(host.clone()),
                    window: Some(window),
                    detail: format!(
                        "FP rate and memory bandwidth below thresholds for {} on {host}",
                        lms_util::fmt::duration(window.duration())
                    ),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lms_influx::Influx;
    use lms_util::Clock;

    /// Builds a DB with a 60-minute 2-node job: h1 computes throughout,
    /// h2 has an 18-minute break in the middle; h2 also spikes memory.
    fn fixture() -> (Influx, Vec<String>, Timestamp, Timestamp) {
        let start = Timestamp::from_secs(0);
        let end = Timestamp::from_secs(3600);
        let ix = Influx::new(Clock::simulated(end));
        let mut batch = String::new();
        for minute in 0..60i64 {
            let ts = minute * 60 * 1_000_000_000;
            for host in ["h1", "h2"] {
                let in_break = host == "h2" && (20..38).contains(&minute);
                let (fp, bw, busy) =
                    if in_break { (5.0, 80.0, 0.03) } else { (2500.0, 28_000.0, 0.97) };
                batch.push_str(&format!(
                    "hpm_flops_dp,hostname={host} dp_mflop_s={fp} {ts}\n\
                     hpm_mem,hostname={host} memory_bandwidth_mbytes_s={bw} {ts}\n\
                     cpu_total,hostname={host} busy={busy} {ts}\n"
                ));
                let mem = if host == "h2" && minute == 45 { 0.99 } else { 0.5 };
                batch.push_str(&format!("memory,hostname={host} used_frac={mem} {ts}\n"));
            }
        }
        ix.write_lines("lms", &batch, Default::default()).unwrap();
        (ix, vec!["h1".into(), "h2".into()], start, end)
    }

    #[test]
    fn detects_fig4_break_on_the_right_host() {
        let (mut ix, hosts, start, end) = fixture();
        let det = PathologyDetector::new("lms");
        let findings = det.detect(&mut ix, &hosts, start, end).unwrap();
        let breaks: Vec<&Finding> =
            findings.iter().filter(|f| f.kind == FindingKind::ComputationBreak).collect();
        assert_eq!(breaks.len(), 1, "{findings:?}");
        assert_eq!(breaks[0].host.as_deref(), Some("h2"));
        let w = breaks[0].window.unwrap();
        assert_eq!(w.start, Timestamp::from_secs(20 * 60));
        assert_eq!(w.end, Timestamp::from_secs(37 * 60));
        assert!(w.duration() >= Duration::from_secs(600));
        assert!(breaks[0].detail.contains("h2"));
    }

    #[test]
    fn detects_memory_spike() {
        let (mut ix, hosts, start, end) = fixture();
        let findings =
            PathologyDetector::new("lms").detect(&mut ix, &hosts, start, end).unwrap();
        let mem: Vec<&Finding> =
            findings.iter().filter(|f| f.kind == FindingKind::MemoryExceeded).collect();
        assert_eq!(mem.len(), 1);
        assert_eq!(mem[0].host.as_deref(), Some("h2"));
    }

    #[test]
    fn healthy_host_produces_no_break() {
        let (mut ix, _, start, end) = fixture();
        let findings = PathologyDetector::new("lms")
            .detect(&mut ix, &["h1".to_string()], start, end)
            .unwrap();
        assert!(
            findings.iter().all(|f| f.kind != FindingKind::ComputationBreak),
            "{findings:?}"
        );
    }

    #[test]
    fn detects_idle_job() {
        let ix = Influx::new(Clock::simulated(Timestamp::from_secs(1000)));
        let mut batch = String::new();
        for s in (0..1000).step_by(60) {
            batch.push_str(&format!(
                "cpu_total,hostname=h1 busy=0.02 {}\n",
                s * 1_000_000_000i64
            ));
        }
        ix.write_lines("lms", &batch, Default::default()).unwrap();
        let mut src = ix;
        let findings = PathologyDetector::new("lms")
            .detect(&mut src, &["h1".to_string()], Timestamp::from_secs(0), Timestamp::from_secs(1000))
            .unwrap();
        assert!(findings.iter().any(|f| f.kind == FindingKind::IdleJob), "{findings:?}");
    }

    #[test]
    fn detects_load_imbalance() {
        let ix = Influx::new(Clock::simulated(Timestamp::from_secs(1000)));
        let mut batch = String::new();
        for s in (0..1000).step_by(60) {
            let ts = s * 1_000_000_000i64;
            batch.push_str(&format!("cpu_total,hostname=h1 busy=0.95 {ts}\n"));
            batch.push_str(&format!("cpu_total,hostname=h2 busy=0.20 {ts}\n"));
        }
        ix.write_lines("lms", &batch, Default::default()).unwrap();
        let mut src = ix;
        let findings = PathologyDetector::new("lms")
            .detect(
                &mut src,
                &["h1".to_string(), "h2".to_string()],
                Timestamp::from_secs(0),
                Timestamp::from_secs(1000),
            )
            .unwrap();
        assert!(findings.iter().any(|f| f.kind == FindingKind::LoadImbalance), "{findings:?}");
    }

    #[test]
    fn empty_database_no_findings() {
        let mut ix = Influx::new(Clock::simulated(Timestamp::from_secs(10)));
        ix.create_database("lms");
        let findings = PathologyDetector::new("lms")
            .detect(&mut ix, &["h1".to_string()], Timestamp::from_secs(0), Timestamp::from_secs(10))
            .unwrap();
        // No cpu data → busy defaults to 0 → flagged idle; but no breaks
        // or memory findings without data.
        assert!(findings.iter().all(|f| f.kind == FindingKind::IdleJob));
    }
}
