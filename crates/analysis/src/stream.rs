//! The MQ-attached stream analyzer.
//!
//! "In order to attach other tools like aggregators and stream analyzers to
//! the router, the meta information (job starts, tags, ...) and the metrics
//! can be published via ZeroMQ." This module is such a stream analyzer: it
//! subscribes to the router's `metrics.` topics and applies instantaneous
//! threshold rules online, raising one alert per (host, rule) violation
//! streak — live detection without touching the database.

use crate::rules::Rule;
use crossbeam_channel::{unbounded, Receiver};
use lms_lineproto::parse_line;
use lms_mq::Subscriber;
use lms_util::{FxHashMap, Result};
use std::net::ToSocketAddrs;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A live alert raised by the analyzer.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// The rule that fired.
    pub rule: String,
    /// The violating host.
    pub hostname: String,
    /// The measurement the value came from.
    pub measurement: String,
    /// The violating value (the streak's last sample).
    pub value: f64,
    /// Length of the violation streak in samples.
    pub streak: u32,
}

/// A rule bound to a measurement/field on the stream.
#[derive(Debug, Clone)]
pub struct StreamRule {
    /// Measurement to watch (topic `metrics.<measurement>`).
    pub measurement: String,
    /// Field to check.
    pub field: String,
    /// The threshold rule (its timeout is interpreted in *samples* here:
    /// `samples` consecutive violations raise the alert).
    pub rule: Rule,
    /// Consecutive violating samples before alerting.
    pub samples: u32,
}

/// Handle to a running stream analyzer.
pub struct StreamAnalyzer {
    alerts: Receiver<Alert>,
    stop: Arc<AtomicBool>,
    worker: Option<std::thread::JoinHandle<()>>,
}

impl StreamAnalyzer {
    /// Connects to a publisher and starts analyzing in a background thread.
    pub fn start<A: ToSocketAddrs>(publisher: A, rules: Vec<StreamRule>) -> Result<Self> {
        let mut sub = Subscriber::connect(publisher)?;
        // Subscribe per measurement (topic prefix filtering on the wire).
        let mut prefixes: Vec<String> =
            rules.iter().map(|r| format!("metrics.{}", r.measurement)).collect();
        prefixes.sort();
        prefixes.dedup();
        for p in &prefixes {
            sub.subscribe(p)?;
        }
        let (tx, rx) = unbounded();
        let stop = Arc::new(AtomicBool::new(false));
        let worker = {
            let stop = stop.clone();
            std::thread::Builder::new()
                .name("lms-stream-analyzer".into())
                .spawn(move || {
                    // (hostname, rule index) → current violation streak.
                    let mut streaks: FxHashMap<(String, usize), u32> = FxHashMap::default();
                    while !stop.load(Ordering::Acquire) {
                        let msg = match sub.recv_timeout(Duration::from_millis(100)) {
                            Ok(Some(m)) => m,
                            Ok(None) => continue,
                            Err(_) => return, // publisher gone
                        };
                        let Ok(text) = std::str::from_utf8(&msg.payload) else { continue };
                        let Ok(line) = parse_line(text) else { continue };
                        let Some(host) = line.hostname() else { continue };
                        for (ri, srule) in rules.iter().enumerate() {
                            if line.measurement != srule.measurement.as_str() {
                                continue;
                            }
                            let Some(value) =
                                line.field(&srule.field).and_then(|v| v.as_f64())
                            else {
                                continue;
                            };
                            let key = (host.to_string(), ri);
                            if srule.rule.violates(value) {
                                let streak = streaks.entry(key).or_insert(0);
                                *streak += 1;
                                if *streak == srule.samples {
                                    let _ = tx.send(Alert {
                                        rule: srule.rule.name.clone(),
                                        hostname: host.to_string(),
                                        measurement: srule.measurement.clone(),
                                        value,
                                        streak: *streak,
                                    });
                                }
                            } else {
                                streaks.remove(&key);
                            }
                        }
                    }
                })
                .expect("spawn stream analyzer")
        };
        Ok(StreamAnalyzer { alerts: rx, stop, worker: Some(worker) })
    }

    /// Receives the next alert, waiting up to `timeout`.
    pub fn recv_alert(&self, timeout: Duration) -> Option<Alert> {
        self.alerts.recv_timeout(timeout).ok()
    }

    /// Drains all currently pending alerts.
    pub fn drain(&self) -> Vec<Alert> {
        self.alerts.try_iter().collect()
    }
}

impl Drop for StreamAnalyzer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lms_mq::Publisher;

    fn low_fp_rule(samples: u32) -> StreamRule {
        StreamRule {
            measurement: "hpm_flops_dp".into(),
            field: "dp_mflop_s".into(),
            rule: Rule::below("low DP FP rate", 100.0, Duration::ZERO),
            samples,
        }
    }

    #[test]
    fn alerts_after_streak() {
        let publisher = Publisher::bind("127.0.0.1:0").unwrap();
        let analyzer =
            StreamAnalyzer::start(publisher.addr(), vec![low_fp_rule(3)]).unwrap();
        publisher.wait_for_subscribers(1, Duration::from_secs(5)).unwrap();

        // Two violations, a recovery, then three violations → one alert.
        for (i, v) in [5.0, 8.0, 5000.0, 2.0, 3.0, 4.0].iter().enumerate() {
            publisher.publish(
                "metrics.hpm_flops_dp",
                format!("hpm_flops_dp,hostname=h1 dp_mflop_s={v} {i}").as_bytes(),
            );
        }
        let alert = analyzer.recv_alert(Duration::from_secs(5)).expect("one alert");
        assert_eq!(alert.rule, "low DP FP rate");
        assert_eq!(alert.hostname, "h1");
        assert_eq!(alert.streak, 3);
        assert_eq!(alert.value, 4.0);
        assert!(analyzer.drain().is_empty(), "no second alert for the same streak");
    }

    #[test]
    fn streaks_tracked_per_host() {
        let publisher = Publisher::bind("127.0.0.1:0").unwrap();
        let analyzer =
            StreamAnalyzer::start(publisher.addr(), vec![low_fp_rule(2)]).unwrap();
        publisher.wait_for_subscribers(1, Duration::from_secs(5)).unwrap();
        // Alternating hosts: each violates twice overall.
        for i in 0..4 {
            let host = if i % 2 == 0 { "h1" } else { "h2" };
            publisher.publish(
                "metrics.hpm_flops_dp",
                format!("hpm_flops_dp,hostname={host} dp_mflop_s=1 {i}").as_bytes(),
            );
        }
        let a = analyzer.recv_alert(Duration::from_secs(5)).unwrap();
        let b = analyzer.recv_alert(Duration::from_secs(5)).unwrap();
        let mut hosts = vec![a.hostname, b.hostname];
        hosts.sort();
        assert_eq!(hosts, vec!["h1", "h2"]);
    }

    #[test]
    fn irrelevant_measurements_ignored() {
        let publisher = Publisher::bind("127.0.0.1:0").unwrap();
        let analyzer =
            StreamAnalyzer::start(publisher.addr(), vec![low_fp_rule(1)]).unwrap();
        publisher.wait_for_subscribers(1, Duration::from_secs(5)).unwrap();
        publisher.publish("metrics.cpu_total", b"cpu_total,hostname=h1 busy=0.01 1");
        publisher.publish("metrics.hpm_flops_dp", b"not a valid line at all");
        assert!(analyzer.recv_alert(Duration::from_millis(300)).is_none());
    }
}
