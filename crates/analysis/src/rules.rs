//! The threshold + timeout rule engine.
//!
//! "The detection of pathological jobs is based on simple rules for the
//! resource utilization metrics using thresholds and timeouts" — a rule
//! fires when a metric stays on the wrong side of a threshold for longer
//! than a timeout (Fig. 4: DP FP rate *and* memory bandwidth below their
//! thresholds for more than 10 minutes).
//!
//! Rules evaluate over [`TimeSeries`]; compound rules combine the violation
//! windows of several metrics by intersection (AND) — the Fig. 4 shape.

use crate::series::TimeSeries;
use lms_util::Timestamp;
use std::time::Duration;

/// Direction of a threshold comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleOp {
    /// Condition holds while `value < threshold`.
    Below,
    /// Condition holds while `value > threshold`.
    Above,
}

/// One threshold+timeout rule.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Human-readable name for reports.
    pub name: String,
    /// Comparison direction.
    pub op: RuleOp,
    /// The threshold.
    pub threshold: f64,
    /// Minimum continuous violation length before the rule fires.
    pub timeout: Duration,
}

/// A continuous interval in which a rule's condition held.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Violation {
    /// Interval start (first violating sample).
    pub start: Timestamp,
    /// Interval end (last violating sample).
    pub end: Timestamp,
}

impl Violation {
    /// Interval length.
    pub fn duration(&self) -> Duration {
        self.end.since(self.start)
    }

    /// Intersection with another interval, if non-empty.
    pub fn intersect(&self, other: &Violation) -> Option<Violation> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        (start <= end).then_some(Violation { start, end })
    }
}

impl Rule {
    /// A `metric < threshold for ≥ timeout` rule.
    pub fn below(name: &str, threshold: f64, timeout: Duration) -> Self {
        Rule { name: name.to_string(), op: RuleOp::Below, threshold, timeout }
    }

    /// A `metric > threshold for ≥ timeout` rule.
    pub fn above(name: &str, threshold: f64, timeout: Duration) -> Self {
        Rule { name: name.to_string(), op: RuleOp::Above, threshold, timeout }
    }

    /// True when one sample violates the threshold.
    #[inline]
    pub fn violates(&self, value: f64) -> bool {
        match self.op {
            RuleOp::Below => value < self.threshold,
            RuleOp::Above => value > self.threshold,
        }
    }

    /// All continuous violation windows in `series` (before applying the
    /// timeout filter).
    pub fn windows(&self, series: &TimeSeries) -> Vec<Violation> {
        let mut out = Vec::new();
        let mut open: Option<Violation> = None;
        for &(ts, v) in &series.points {
            if self.violates(v) {
                match &mut open {
                    Some(w) => w.end = ts,
                    None => open = Some(Violation { start: ts, end: ts }),
                }
            } else if let Some(w) = open.take() {
                out.push(w);
            }
        }
        if let Some(w) = open {
            out.push(w);
        }
        out
    }

    /// The violation windows lasting at least the rule's timeout.
    pub fn evaluate(&self, series: &TimeSeries) -> Vec<Violation> {
        self.windows(series).into_iter().filter(|w| w.duration() >= self.timeout).collect()
    }
}

/// Evaluates the AND of several rules over their respective series: the
/// intersected windows that satisfy **every** rule simultaneously for at
/// least `timeout` (the Fig. 4 compound condition).
pub fn evaluate_all(
    rules_and_series: &[(&Rule, &TimeSeries)],
    timeout: Duration,
) -> Vec<Violation> {
    let mut iter = rules_and_series.iter();
    let Some((first_rule, first_series)) = iter.next() else { return Vec::new() };
    let mut current = first_rule.windows(first_series);
    for (rule, series) in iter {
        let windows = rule.windows(series);
        let mut next = Vec::new();
        for a in &current {
            for b in &windows {
                if let Some(i) = a.intersect(b) {
                    next.push(i);
                }
            }
        }
        current = next;
        if current.is_empty() {
            return Vec::new();
        }
    }
    current.retain(|w| w.duration() >= timeout);
    current
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(values: &[(i64, f64)]) -> TimeSeries {
        TimeSeries {
            points: values.iter().map(|&(s, v)| (Timestamp::from_secs(s), v)).collect(),
        }
    }

    #[test]
    fn below_rule_windows() {
        let rule = Rule::below("low fp", 10.0, Duration::from_secs(100));
        // Violating 0..300 (samples every 60s), clean 360, violating 420..480.
        let s = series(&[
            (0, 1.0),
            (60, 2.0),
            (120, 3.0),
            (180, 1.0),
            (240, 0.5),
            (300, 2.0),
            (360, 50.0),
            (420, 1.0),
            (480, 1.0),
        ]);
        let wins = rule.windows(&s);
        assert_eq!(wins.len(), 2);
        assert_eq!(wins[0].start, Timestamp::from_secs(0));
        assert_eq!(wins[0].end, Timestamp::from_secs(300));
        assert_eq!(wins[1].duration(), Duration::from_secs(60));
        // Timeout filter keeps only the long one.
        let fired = rule.evaluate(&s);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].duration(), Duration::from_secs(300));
    }

    #[test]
    fn above_rule() {
        let rule = Rule::above("mem high", 0.9, Duration::from_secs(10));
        let s = series(&[(0, 0.95), (10, 0.99), (20, 0.5)]);
        let fired = rule.evaluate(&s);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].end, Timestamp::from_secs(10));
    }

    #[test]
    fn no_violation_no_windows() {
        let rule = Rule::below("x", 1.0, Duration::ZERO);
        assert!(rule.evaluate(&series(&[(0, 5.0), (10, 2.0)])).is_empty());
        assert!(rule.evaluate(&TimeSeries::default()).is_empty());
    }

    #[test]
    fn violation_running_to_the_end_is_reported() {
        let rule = Rule::below("x", 1.0, Duration::from_secs(50));
        let s = series(&[(0, 5.0), (60, 0.1), (120, 0.1), (180, 0.2)]);
        let fired = rule.evaluate(&s);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].start, Timestamp::from_secs(60));
        assert_eq!(fired[0].end, Timestamp::from_secs(180));
    }

    #[test]
    fn fig4_compound_and_condition() {
        // FP rate and memory bandwidth, samples every minute over an hour.
        // Both low in minutes 20..35 → one 15-minute compound violation
        // (> 10-minute timeout). FP alone is also low in 40..45 but
        // bandwidth is fine there → no violation.
        let fp: Vec<(i64, f64)> = (0..60)
            .map(|m| {
                let low = (20..=35).contains(&m) || (40..=45).contains(&m);
                (m * 60, if low { 5.0 } else { 2000.0 })
            })
            .collect();
        let bw: Vec<(i64, f64)> = (0..60)
            .map(|m| {
                let low = (18..=35).contains(&m);
                (m * 60, if low { 50.0 } else { 30_000.0 })
            })
            .collect();
        let fp_rule = Rule::below("DP FP rate", 100.0, Duration::from_secs(600));
        let bw_rule = Rule::below("memory bandwidth", 1000.0, Duration::from_secs(600));
        let fp_series = series(&fp);
        let bw_series = series(&bw);
        let found = evaluate_all(
            &[(&fp_rule, &fp_series), (&bw_rule, &bw_series)],
            Duration::from_secs(600),
        );
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].start, Timestamp::from_secs(20 * 60));
        assert_eq!(found[0].end, Timestamp::from_secs(35 * 60));
        assert_eq!(found[0].duration(), Duration::from_secs(900));
    }

    #[test]
    fn compound_without_overlap_is_empty() {
        let a = series(&[(0, 0.0), (100, 0.0), (200, 9.0)]);
        let b = series(&[(0, 9.0), (100, 9.0), (200, 0.0)]);
        let rule = Rule::below("x", 1.0, Duration::ZERO);
        assert!(evaluate_all(&[(&rule, &a), (&rule, &b)], Duration::ZERO).is_empty());
        assert!(evaluate_all(&[], Duration::ZERO).is_empty());
    }

    #[test]
    fn intersect_math() {
        let a = Violation { start: Timestamp::from_secs(10), end: Timestamp::from_secs(20) };
        let b = Violation { start: Timestamp::from_secs(15), end: Timestamp::from_secs(30) };
        let i = a.intersect(&b).unwrap();
        assert_eq!(i.start, Timestamp::from_secs(15));
        assert_eq!(i.end, Timestamp::from_secs(20));
        let c = Violation { start: Timestamp::from_secs(21), end: Timestamp::from_secs(22) };
        assert!(a.intersect(&c).is_none());
    }
}
