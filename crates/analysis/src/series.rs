//! Time-series extraction from query results.
//!
//! The analysis modules work on plain `(timestamp, value)` vectors; this
//! module pulls them out of the database's [`QueryResult`] shape.

use lms_influx::{QueryResult, QuerySource};
use lms_util::{Result, Timestamp};

/// A numeric time series.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeries {
    /// `(time, value)` pairs in ascending time order.
    pub points: Vec<(Timestamp, f64)>,
}

impl TimeSeries {
    /// Extracts column `column` of the first result series.
    pub fn from_result(result: &QueryResult, column: &str) -> TimeSeries {
        let mut points = Vec::new();
        if let Some(series) = result.series.first() {
            if let Some(ci) = series.columns.iter().position(|c| c == column) {
                for row in &series.values {
                    let (Some(ts), Some(v)) = (
                        row.first().and_then(|t| t.as_i64()),
                        row.get(ci).and_then(|v| v.as_f64()),
                    ) else {
                        continue;
                    };
                    points.push((Timestamp(ts), v));
                }
            }
        }
        TimeSeries { points }
    }

    /// Extracts one series per GROUP BY tag value:
    /// `(tag value, series)` pairs in result order.
    pub fn per_tag(result: &QueryResult, tag: &str, column: &str) -> Vec<(String, TimeSeries)> {
        result
            .series
            .iter()
            .map(|s| {
                let tag_value = s
                    .tags
                    .iter()
                    .find(|(k, _)| k == tag)
                    .map(|(_, v)| v.clone())
                    .unwrap_or_default();
                let single = QueryResult { series: vec![s.clone()], partial: false };
                (tag_value, TimeSeries::from_result(&single, column))
            })
            .collect()
    }

    /// Runs a query and extracts `column` (convenience).
    pub fn query(
        source: &mut dyn QuerySource,
        db: &str,
        q: &str,
        column: &str,
    ) -> Result<TimeSeries> {
        Ok(Self::from_result(&source.query_source(db, q)?, column))
    }

    /// The values only.
    pub fn values(&self) -> Vec<f64> {
        self.points.iter().map(|&(_, v)| v).collect()
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Mean value (NaN-free); `None` on empty.
    pub fn mean(&self) -> Option<f64> {
        let s = crate::stats::summarize(&self.values());
        (s.count > 0).then_some(s.mean)
    }

    /// Latest value.
    pub fn last(&self) -> Option<(Timestamp, f64)> {
        self.points.last().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lms_influx::Influx;
    use lms_util::Clock;

    fn fixture() -> Influx {
        let ix = Influx::new(Clock::simulated(Timestamp::from_secs(100)));
        ix.write_lines(
            "lms",
            "m,hostname=h1 v=1 10000000000\n\
             m,hostname=h1 v=3 20000000000\n\
             m,hostname=h2 v=10 10000000000",
            Default::default(),
        )
        .unwrap();
        ix
    }

    #[test]
    fn extracts_single_series() {
        let mut ix = fixture();
        let ts =
            TimeSeries::query(&mut ix, "lms", "SELECT v FROM m WHERE hostname = 'h1'", "v")
                .unwrap();
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.points[0], (Timestamp::from_secs(10), 1.0));
        assert_eq!(ts.mean(), Some(2.0));
        assert_eq!(ts.last(), Some((Timestamp::from_secs(20), 3.0)));
    }

    #[test]
    fn extracts_aggregate_column() {
        let mut ix = fixture();
        let ts = TimeSeries::query(
            &mut ix,
            "lms",
            "SELECT mean(v) FROM m WHERE hostname = 'h1'",
            "mean",
        )
        .unwrap();
        assert_eq!(ts.len(), 1);
        assert_eq!(ts.points[0].1, 2.0);
    }

    #[test]
    fn per_tag_split() {
        let mut ix = fixture();
        let r = ix.query_source("lms", "SELECT mean(v) FROM m GROUP BY hostname").unwrap();
        let by_host = TimeSeries::per_tag(&r, "hostname", "mean");
        assert_eq!(by_host.len(), 2);
        assert_eq!(by_host[0].0, "h1");
        assert_eq!(by_host[0].1.points[0].1, 2.0);
        assert_eq!(by_host[1].0, "h2");
        assert_eq!(by_host[1].1.points[0].1, 10.0);
    }

    #[test]
    fn missing_column_or_measurement_is_empty() {
        let mut ix = fixture();
        let ts = TimeSeries::query(&mut ix, "lms", "SELECT v FROM m", "nope").unwrap();
        assert!(ts.is_empty());
        assert_eq!(ts.mean(), None);
        let ts = TimeSeries::query(&mut ix, "lms", "SELECT v FROM ghost", "v").unwrap();
        assert!(ts.is_empty());
    }
}
