//! The performance-pattern decision tree.
//!
//! "For marking applications with significant optimization potential we use
//! the performance pattern systematic initially described in \[17\] and later
//! refined as part of the FEPA project using a decision tree \[8\]."
//!
//! A job's HPM-derived signature (fractions of peak, IPC, vectorization,
//! stalls, imbalance) walks an explicit decision tree to one of the
//! patterns of Treibig/Hager/Wellein's performance-pattern systematic,
//! each carrying a recommendation for the user-support teams the paper
//! targets.

/// The HPM-derived signature of one job (node-aggregated means).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfSignature {
    /// Achieved DP FLOP/s as a fraction of node peak, `0..=1`.
    pub flops_frac: f64,
    /// Memory bandwidth as a fraction of node peak, `0..=1`.
    pub membw_frac: f64,
    /// Instructions per cycle (per core).
    pub ipc: f64,
    /// Fraction of FP µops that were packed (vectorized), `0..=1`.
    pub vectorization: f64,
    /// Branch misprediction ratio (mispredicted / all branches).
    pub branch_misp_ratio: f64,
    /// Fraction of cycles stalled, `0..=1`.
    pub stall_frac: f64,
    /// Load imbalance across the job's nodes: `(max − min) / mean` of
    /// per-node busy fractions.
    pub imbalance: f64,
    /// Mean CPU busy fraction across the job, `0..=1`.
    pub cpu_busy: f64,
}

/// The classified performance pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pattern {
    /// Node mostly idle — scheduling/configuration problem, not a code one.
    Idle,
    /// Severe imbalance between nodes (e.g. unreasonable strong scaling).
    LoadImbalance,
    /// Memory bandwidth saturated: the code is at the roofline's slanted
    /// part; data-locality work needed, more cores won't help.
    BandwidthSaturation,
    /// High stall fraction at low bandwidth: latency-bound access pattern
    /// (pointer chasing, strided/irregular access).
    MemoryLatencyBound,
    /// Scalar FP code: vectorization potential.
    ScalarCode,
    /// Branchy code with high misprediction.
    BranchLimited,
    /// High IPC but low FP fraction: instruction overhead (abstraction
    /// penalty, excessive scalar integer work).
    InstructionOverhead,
    /// Near-peak FLOP/s: compute-bound and healthy.
    ComputeBoundHealthy,
    /// Nothing stands out; moderate utilization everywhere.
    Unremarkable,
}

impl Pattern {
    /// A one-line recommendation for user support.
    pub fn recommendation(self) -> &'static str {
        match self {
            Pattern::Idle => "job is idle: check input staging, deadlock or license waits",
            Pattern::LoadImbalance => {
                "severe node imbalance: reduce node count or rebalance decomposition"
            }
            Pattern::BandwidthSaturation => {
                "memory bandwidth saturated: improve data locality / blocking; more cores will not help"
            }
            Pattern::MemoryLatencyBound => {
                "latency-bound memory access: restructure data layout, prefetch, avoid pointer chasing"
            }
            Pattern::ScalarCode => "scalar FP code: enable/verify SIMD vectorization",
            Pattern::BranchLimited => "branch mispredictions dominate: simplify control flow",
            Pattern::InstructionOverhead => {
                "instruction overhead: reduce abstraction penalty in hot loops"
            }
            Pattern::ComputeBoundHealthy => "compute-bound near peak: well optimized",
            Pattern::Unremarkable => "no dominant pattern: profile in depth",
        }
    }

    /// Whether the pattern marks significant optimization potential.
    pub fn has_potential(self) -> bool {
        !matches!(self, Pattern::ComputeBoundHealthy | Pattern::Unremarkable)
    }
}

/// Tunable thresholds of the tree (defaults follow the FEPA-style rules of
/// thumb for the simulated node).
#[derive(Debug, Clone, Copy)]
pub struct TreeThresholds {
    /// Below this busy fraction the job counts as idle.
    pub idle_busy: f64,
    /// Above this imbalance the job is imbalance-dominated.
    pub imbalance: f64,
    /// Bandwidth fraction counting as saturated.
    pub membw_saturated: f64,
    /// FLOP fraction counting as near peak.
    pub flops_high: f64,
    /// Stall fraction counting as latency-dominated.
    pub stall_high: f64,
    /// Vectorization ratio below which FP code counts as scalar.
    pub vector_low: f64,
    /// Branch misprediction ratio counting as branch-limited.
    pub branch_misp_high: f64,
    /// IPC above which non-FP work counts as instruction overhead.
    pub ipc_high: f64,
    /// FLOP fraction below which FP work is "insignificant".
    pub flops_low: f64,
}

impl Default for TreeThresholds {
    fn default() -> Self {
        TreeThresholds {
            idle_busy: 0.10,
            imbalance: 0.50,
            membw_saturated: 0.80,
            flops_high: 0.50,
            stall_high: 0.50,
            vector_low: 0.50,
            branch_misp_high: 0.05,
            ipc_high: 1.5,
            flops_low: 0.05,
        }
    }
}

/// Walks the decision tree with default thresholds.
pub fn classify(sig: &PerfSignature) -> Pattern {
    classify_with(sig, &TreeThresholds::default())
}

/// Walks the decision tree with explicit thresholds.
///
/// Order matters and mirrors the FEPA refinement: disqualifying system
/// conditions first (idle, imbalance), then the roofline split (bandwidth
/// vs compute), then µarchitectural patterns.
pub fn classify_with(sig: &PerfSignature, t: &TreeThresholds) -> Pattern {
    if sig.cpu_busy < t.idle_busy {
        return Pattern::Idle;
    }
    if sig.imbalance > t.imbalance {
        return Pattern::LoadImbalance;
    }
    if sig.membw_frac > t.membw_saturated {
        return Pattern::BandwidthSaturation;
    }
    if sig.flops_frac > t.flops_high {
        return Pattern::ComputeBoundHealthy;
    }
    if sig.stall_frac > t.stall_high {
        return Pattern::MemoryLatencyBound;
    }
    if sig.flops_frac > t.flops_low && sig.vectorization < t.vector_low {
        return Pattern::ScalarCode;
    }
    if sig.branch_misp_ratio > t.branch_misp_high {
        return Pattern::BranchLimited;
    }
    if sig.ipc > t.ipc_high && sig.flops_frac < t.flops_low {
        return Pattern::InstructionOverhead;
    }
    Pattern::Unremarkable
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> PerfSignature {
        PerfSignature {
            flops_frac: 0.2,
            membw_frac: 0.3,
            ipc: 1.0,
            vectorization: 0.9,
            branch_misp_ratio: 0.01,
            stall_frac: 0.2,
            imbalance: 0.1,
            cpu_busy: 0.95,
        }
    }

    #[test]
    fn idle_wins_over_everything() {
        let sig = PerfSignature { cpu_busy: 0.02, membw_frac: 0.95, ..base() };
        assert_eq!(classify(&sig), Pattern::Idle);
        assert!(Pattern::Idle.has_potential());
    }

    #[test]
    fn imbalance_before_roofline() {
        let sig = PerfSignature { imbalance: 0.8, flops_frac: 0.9, ..base() };
        assert_eq!(classify(&sig), Pattern::LoadImbalance);
    }

    #[test]
    fn bandwidth_saturation() {
        let sig = PerfSignature { membw_frac: 0.9, ..base() };
        assert_eq!(classify(&sig), Pattern::BandwidthSaturation);
        assert!(classify(&sig).recommendation().contains("bandwidth"));
    }

    #[test]
    fn compute_bound_healthy() {
        let sig = PerfSignature { flops_frac: 0.7, ..base() };
        assert_eq!(classify(&sig), Pattern::ComputeBoundHealthy);
        assert!(!classify(&sig).has_potential());
    }

    #[test]
    fn latency_bound() {
        let sig = PerfSignature { stall_frac: 0.7, membw_frac: 0.2, ..base() };
        assert_eq!(classify(&sig), Pattern::MemoryLatencyBound);
    }

    #[test]
    fn scalar_code() {
        let sig = PerfSignature { vectorization: 0.1, flops_frac: 0.2, ..base() };
        assert_eq!(classify(&sig), Pattern::ScalarCode);
    }

    #[test]
    fn branch_limited() {
        let sig = PerfSignature { branch_misp_ratio: 0.12, flops_frac: 0.01, ..base() };
        assert_eq!(classify(&sig), Pattern::BranchLimited);
    }

    #[test]
    fn instruction_overhead() {
        let sig = PerfSignature {
            ipc: 2.5,
            flops_frac: 0.01,
            branch_misp_ratio: 0.001,
            ..base()
        };
        assert_eq!(classify(&sig), Pattern::InstructionOverhead);
    }

    #[test]
    fn unremarkable_fallthrough() {
        assert_eq!(classify(&base()), Pattern::Unremarkable);
        assert!(!Pattern::Unremarkable.has_potential());
    }

    #[test]
    fn custom_thresholds_shift_boundaries() {
        let t = TreeThresholds { flops_high: 0.15, ..Default::default() };
        assert_eq!(classify_with(&base(), &t), Pattern::ComputeBoundHealthy);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The tree is total: every signature classifies, and every
            /// leaf has a recommendation.
            #[test]
            fn total_over_signature_space(
                flops in 0.0..1.0f64, membw in 0.0..1.0f64, ipc in 0.0..4.0f64,
                vec_ratio in 0.0..1.0f64, misp in 0.0..0.5f64, stall in 0.0..1.0f64,
                imb in 0.0..3.0f64, busy in 0.0..1.0f64,
            ) {
                let sig = PerfSignature {
                    flops_frac: flops, membw_frac: membw, ipc,
                    vectorization: vec_ratio, branch_misp_ratio: misp,
                    stall_frac: stall, imbalance: imb, cpu_busy: busy,
                };
                let p = classify(&sig);
                prop_assert!(!p.recommendation().is_empty());
                // Idle dominates: if busy is tiny the answer must be Idle.
                if busy < 0.10 {
                    prop_assert_eq!(p, Pattern::Idle);
                }
            }
        }
    }
}
