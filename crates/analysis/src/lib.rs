//! # lms-analysis
//!
//! The **data analysis methodology** of the paper (Sec. V): elementary
//! resource-utilization metrics, threshold+timeout rules for pathological
//! jobs, and the performance-pattern decision tree for spotting
//! optimization potential.
//!
//! - [`stats`] — descriptive statistics (mean, stddev, percentiles,
//!   histograms) shared by the other modules,
//! - [`series`] — time-series extraction from query results,
//! - [`rules`] — the threshold/timeout rule engine (Fig. 4: "FP rate and
//!   memory bandwidth below thresholds for more than 10 minutes"),
//! - [`pathology`] — job-level detectors: idle job, exceeded memory,
//!   computation break, load imbalance,
//! - [`patterns`] — the performance-pattern decision tree (after Treibig
//!   et al. \[17\] and the FEPA refinement \[8\]),
//! - [`evaluation`] — the online job evaluation that renders the Fig. 2
//!   header table (one column per node),
//! - [`stream`] — the MQ-attached stream analyzer for live detection.

pub mod evaluation;
pub mod pathology;
pub mod patterns;
pub mod rules;
pub mod series;
pub mod stats;
pub mod stream;
pub mod usage;

pub use evaluation::{JobEvaluation, NodeEvaluation};
pub use pathology::{Finding, FindingKind, PathologyDetector};
pub use patterns::{classify, Pattern, PerfSignature};
pub use rules::{Rule, RuleOp, Violation};
pub use series::TimeSeries;
pub use usage::{CompletedJob, UsageReport};
