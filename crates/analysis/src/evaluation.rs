//! Online job evaluation — the Fig. 2 header.
//!
//! "As a header, analysis results of the job are presented to see badly
//! behaving jobs on the initial view" — a table with one column per node
//! (Fig. 2's "four rightmost columns represent the nodes on which the job
//! is running") covering the elementary resource-utilization metrics of
//! Sec. V, plus the pathological findings and the performance-pattern
//! classification.

use crate::pathology::{Finding, PathologyDetector};
use crate::patterns::{classify, Pattern, PerfSignature};
use crate::series::TimeSeries;
use lms_influx::QuerySource;
use lms_util::fmt::{pad, si_rate};
use lms_util::{Result, Timestamp};

/// Node peaks used to normalize the signature (from the node's topology).
#[derive(Debug, Clone, Copy)]
pub struct NodePeaks {
    /// Peak DP MFLOP/s per node.
    pub flops_mflops: f64,
    /// Peak memory bandwidth per node in MBytes/s.
    pub membw_mbytes: f64,
}

/// Per-node evaluation row data.
#[derive(Debug, Clone)]
pub struct NodeEvaluation {
    /// Hostname.
    pub hostname: String,
    /// Mean 1-minute load.
    pub load1: f64,
    /// Mean CPU busy fraction.
    pub cpu_busy: f64,
    /// Mean IPC.
    pub ipc: f64,
    /// Mean DP MFLOP/s.
    pub dp_mflops: f64,
    /// Mean memory bandwidth (MBytes/s).
    pub membw_mbytes: f64,
    /// Mean memory used fraction.
    pub mem_used_frac: f64,
    /// Mean network traffic (bytes/s, rx+tx).
    pub net_bytes: f64,
    /// Mean file I/O (bytes/s, read+write).
    pub file_bytes: f64,
    /// Mean vectorization ratio (0..=1).
    pub vectorization: f64,
}

/// The complete evaluation of one job.
#[derive(Debug, Clone)]
pub struct JobEvaluation {
    /// Job identifier.
    pub jobid: String,
    /// Per-node rows.
    pub nodes: Vec<NodeEvaluation>,
    /// Pathology findings.
    pub findings: Vec<Finding>,
    /// Decision-tree classification of the whole job.
    pub pattern: Pattern,
    /// The signature the pattern was derived from.
    pub signature: PerfSignature,
}

impl JobEvaluation {
    /// Evaluates a job from the database.
    pub fn evaluate(
        source: &mut dyn QuerySource,
        db: &str,
        jobid: &str,
        hosts: &[String],
        start: Timestamp,
        end: Timestamp,
        peaks: NodePeaks,
    ) -> Result<JobEvaluation> {
        let range = format!("time >= {} AND time <= {}", start.nanos(), end.nanos());
        let mean_of = |source: &mut dyn QuerySource,
                       measurement: &str,
                       field: &str,
                       host: &str|
         -> Result<f64> {
            let q = format!(
                "SELECT mean({field}) FROM {measurement} WHERE hostname = '{host}' AND {range}"
            );
            let ts = TimeSeries::from_result(&source.query_source(db, &q)?, "mean");
            Ok(ts.points.first().map(|&(_, v)| v).unwrap_or(0.0))
        };

        let mut nodes = Vec::with_capacity(hosts.len());
        for host in hosts {
            let rx = mean_of(source, "network", "rx_bytes_per_s", host)?;
            let tx = mean_of(source, "network", "tx_bytes_per_s", host)?;
            let rd = mean_of(source, "disk", "read_bytes_per_s", host)?;
            let wr = mean_of(source, "disk", "write_bytes_per_s", host)?;
            nodes.push(NodeEvaluation {
                hostname: host.clone(),
                load1: mean_of(source, "load", "load1", host)?,
                cpu_busy: mean_of(source, "cpu_total", "busy", host)?,
                ipc: mean_of(source, "hpm_flops_dp", "ipc", host)?,
                dp_mflops: mean_of(source, "hpm_flops_dp", "dp_mflop_s", host)?,
                membw_mbytes: mean_of(source, "hpm_mem", "memory_bandwidth_mbytes_s", host)?,
                mem_used_frac: mean_of(source, "memory", "used_frac", host)?,
                net_bytes: rx + tx,
                file_bytes: rd + wr,
                vectorization: mean_of(source, "hpm_flops_dp", "vectorization_ratio", host)?
                    / 100.0,
            });
        }

        let findings = PathologyDetector::new(db).detect(source, hosts, start, end)?;

        // Job-wide signature from node means.
        let n = nodes.len().max(1) as f64;
        let mean = |f: fn(&NodeEvaluation) -> f64| nodes.iter().map(f).sum::<f64>() / n;
        let busys: Vec<f64> = nodes.iter().map(|e| e.cpu_busy).collect();
        let busy_mean = mean(|e| e.cpu_busy);
        let imbalance = if nodes.len() > 1 && busy_mean > 0.0 {
            let max = busys.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let min = busys.iter().copied().fold(f64::INFINITY, f64::min);
            (max - min) / busy_mean
        } else {
            0.0
        };
        // The BRANCH and CYCLE_STALLS groups are optional in the
        // collector rotation; when a site enables them their metrics feed
        // the corresponding tree inputs, otherwise those stay 0 (the tree
        // orders its checks so absent signals never misclassify).
        let mut branch_misp_ratio = 0.0;
        let mut stall_frac = 0.0;
        for host in hosts {
            branch_misp_ratio +=
                mean_of(source, "hpm_branch", "branch_misprediction_ratio", host)?;
            stall_frac += mean_of(source, "hpm_cycle_stalls", "stall_rate", host)? / 100.0;
        }
        branch_misp_ratio /= n;
        stall_frac /= n;

        let signature = PerfSignature {
            flops_frac: mean(|e| e.dp_mflops) / peaks.flops_mflops.max(1.0),
            membw_frac: mean(|e| e.membw_mbytes) / peaks.membw_mbytes.max(1.0),
            ipc: mean(|e| e.ipc),
            vectorization: mean(|e| e.vectorization),
            branch_misp_ratio,
            stall_frac,
            imbalance,
            cpu_busy: busy_mean,
        };
        let pattern = classify(&signature);

        Ok(JobEvaluation { jobid: jobid.to_string(), nodes, findings, pattern, signature })
    }

    /// Renders the Fig. 2-style table: metric rows, one column per node,
    /// findings and classification as the header lines.
    pub fn render_table(&self) -> String {
        const LABEL_W: usize = 22;
        const COL_W: usize = 14;
        let mut out = String::new();
        out.push_str(&format!("Job {} evaluation\n", self.jobid));
        out.push_str(&format!(
            "Pattern: {:?} — {}\n",
            self.pattern,
            self.pattern.recommendation()
        ));
        if self.findings.is_empty() {
            out.push_str("Findings: none\n");
        } else {
            out.push_str("Findings:\n");
            for f in &self.findings {
                out.push_str(&format!("  [{:?}] {}\n", f.kind, f.detail));
            }
        }
        out.push('\n');
        // Header row: node names.
        out.push_str(&pad("metric", LABEL_W));
        for node in &self.nodes {
            out.push_str(&pad(&node.hostname, COL_W));
        }
        out.push('\n');
        let mut row = |label: &str, f: &dyn Fn(&NodeEvaluation) -> String| {
            out.push_str(&pad(label, LABEL_W));
            for node in &self.nodes {
                out.push_str(&pad(&f(node), COL_W));
            }
            out.push('\n');
        };
        row("load (1m)", &|e| format!("{:.2}", e.load1));
        row("cpu busy [%]", &|e| format!("{:.1}", e.cpu_busy * 100.0));
        row("IPC", &|e| format!("{:.2}", e.ipc));
        row("DP [MFLOP/s]", &|e| format!("{:.0}", e.dp_mflops));
        row("mem bw [MB/s]", &|e| format!("{:.0}", e.membw_mbytes));
        row("mem used [%]", &|e| format!("{:.1}", e.mem_used_frac * 100.0));
        row("network", &|e| si_rate(e.net_bytes, "B/s"));
        row("file i/o", &|e| si_rate(e.file_bytes, "B/s"));
        row("vectorized [%]", &|e| format!("{:.0}", e.vectorization * 100.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lms_influx::Influx;
    use lms_util::Clock;

    fn fixture() -> (Influx, Vec<String>) {
        let ix = Influx::new(Clock::simulated(Timestamp::from_secs(4000)));
        let mut batch = String::new();
        for s in (0..3600).step_by(60) {
            let ts = s as i64 * 1_000_000_000;
            for (host, fp) in [("h1", 2000.0), ("h2", 1800.0)] {
                batch.push_str(&format!(
                    "cpu_total,hostname={host} busy=0.95 {ts}\n\
                     load,hostname={host} load1=7.8 {ts}\n\
                     memory,hostname={host} used_frac=0.55 {ts}\n\
                     network,hostname={host} rx_bytes_per_s=40000000,tx_bytes_per_s=38000000 {ts}\n\
                     disk,hostname={host} read_bytes_per_s=100000,write_bytes_per_s=800000 {ts}\n\
                     hpm_flops_dp,hostname={host} dp_mflop_s={fp},ipc=2.1,vectorization_ratio=95 {ts}\n\
                     hpm_mem,hostname={host} memory_bandwidth_mbytes_s=15000 {ts}\n"
                ));
            }
        }
        ix.write_lines("lms", &batch, Default::default()).unwrap();
        (ix, vec!["h1".into(), "h2".into()])
    }

    fn peaks() -> NodePeaks {
        NodePeaks { flops_mflops: 350_000.0, membw_mbytes: 84_000.0 }
    }

    #[test]
    fn evaluates_all_node_metrics() {
        let (mut ix, hosts) = fixture();
        let ev = JobEvaluation::evaluate(
            &mut ix,
            "lms",
            "42",
            &hosts,
            Timestamp::from_secs(0),
            Timestamp::from_secs(3600),
            peaks(),
        )
        .unwrap();
        assert_eq!(ev.nodes.len(), 2);
        let h1 = &ev.nodes[0];
        assert_eq!(h1.hostname, "h1");
        assert!((h1.cpu_busy - 0.95).abs() < 1e-9);
        assert!((h1.dp_mflops - 2000.0).abs() < 1e-6);
        assert!((h1.ipc - 2.1).abs() < 1e-9);
        assert!((h1.net_bytes - 78e6).abs() < 1.0);
        assert!((h1.vectorization - 0.95).abs() < 1e-9);
        assert!(ev.findings.is_empty(), "{:?}", ev.findings);
    }

    #[test]
    fn signature_and_pattern_derived() {
        let (mut ix, hosts) = fixture();
        let ev = JobEvaluation::evaluate(
            &mut ix,
            "lms",
            "42",
            &hosts,
            Timestamp::from_secs(0),
            Timestamp::from_secs(3600),
            peaks(),
        )
        .unwrap();
        assert!(ev.signature.cpu_busy > 0.9);
        assert!(ev.signature.imbalance < 0.1);
        // IPC 2.1 at 0.5% of FP peak: the tree flags instruction overhead
        // (lots of retired work, almost none of it floating point).
        assert_eq!(ev.pattern, Pattern::InstructionOverhead);
        assert!(ev.pattern.has_potential());
    }

    #[test]
    fn table_renders_one_column_per_node() {
        let (mut ix, hosts) = fixture();
        let ev = JobEvaluation::evaluate(
            &mut ix,
            "lms",
            "42",
            &hosts,
            Timestamp::from_secs(0),
            Timestamp::from_secs(3600),
            peaks(),
        )
        .unwrap();
        let table = ev.render_table();
        let header = table.lines().find(|l| l.starts_with("metric")).unwrap();
        assert!(header.contains("h1") && header.contains("h2"));
        assert!(table.contains("DP [MFLOP/s]"));
        assert!(table.contains("Findings: none"));
        assert!(table.contains("Pattern:"));
        // Every metric row has a value under each node column.
        let row = table.lines().find(|l| l.starts_with("cpu busy")).unwrap();
        assert!(row.contains("95.0"));
    }

    #[test]
    fn optional_groups_feed_the_tree_when_present() {
        let (ix, hosts) = fixture();
        // Add CYCLE_STALLS data showing a latency-bound job.
        let mut batch = String::new();
        for s in (0..3600).step_by(60) {
            let ts = s as i64 * 1_000_000_000;
            for host in ["h1", "h2"] {
                batch.push_str(&format!(
                    "hpm_cycle_stalls,hostname={host} stall_rate=72.0 {ts}\n"
                ));
            }
        }
        ix.write_lines("lms", &batch, Default::default()).unwrap();
        let mut src = ix;
        let ev = JobEvaluation::evaluate(
            &mut src,
            "lms",
            "42",
            &hosts,
            Timestamp::from_secs(0),
            Timestamp::from_secs(3600),
            peaks(),
        )
        .unwrap();
        assert!((ev.signature.stall_frac - 0.72).abs() < 1e-9);
        assert_eq!(ev.pattern, Pattern::MemoryLatencyBound);
    }

    #[test]
    fn missing_data_defaults_to_zero_and_flags_idle() {
        let mut ix = Influx::new(Clock::simulated(Timestamp::from_secs(10)));
        ix.create_database("lms");
        let ev = JobEvaluation::evaluate(
            &mut ix,
            "lms",
            "7",
            &["ghost".to_string()],
            Timestamp::from_secs(0),
            Timestamp::from_secs(10),
            peaks(),
        )
        .unwrap();
        assert_eq!(ev.nodes[0].dp_mflops, 0.0);
        assert_eq!(ev.pattern, Pattern::Idle);
    }
}
