//! Statistical system-usage analysis across completed jobs.
//!
//! The paper's fourth motivation bullet: "Enable application-specific
//! statistical performance analysis of system usage for optimizing
//! operational settings and guiding future procurements." This module
//! aggregates per-job evaluations into per-user and per-application usage
//! statistics: node-hours, achieved FLOP/bandwidth fractions, and the
//! distribution of performance patterns — the data a center's procurement
//! discussion starts from.

use crate::evaluation::{JobEvaluation, NodePeaks};
use crate::patterns::Pattern;
use lms_influx::QuerySource;
use lms_util::fmt::pad;
use lms_util::{FxHashMap, Result, Timestamp};

/// Identity and extent of one finished job (from the scheduler's records).
#[derive(Debug, Clone)]
pub struct CompletedJob {
    /// Job id.
    pub jobid: String,
    /// Owning user.
    pub user: String,
    /// Application name (the scheduler's job name).
    pub app: String,
    /// Hosts used.
    pub hosts: Vec<String>,
    /// Start time.
    pub start: Timestamp,
    /// End time.
    pub end: Timestamp,
}

/// Aggregated statistics for one group (user or application).
#[derive(Debug, Clone, Default)]
pub struct GroupUsage {
    /// Jobs in the group.
    pub jobs: usize,
    /// Σ nodes × runtime, in node-hours.
    pub node_hours: f64,
    /// Node-hour-weighted mean fraction of DP peak.
    pub mean_flops_frac: f64,
    /// Node-hour-weighted mean fraction of bandwidth peak.
    pub mean_membw_frac: f64,
    /// Pattern → occurrence count.
    pub patterns: FxHashMap<&'static str, usize>,
}

impl GroupUsage {
    fn add(&mut self, node_hours: f64, ev: &JobEvaluation) {
        let prev = self.node_hours;
        self.jobs += 1;
        self.node_hours += node_hours;
        if self.node_hours > 0.0 {
            // Running node-hour-weighted means.
            self.mean_flops_frac = (self.mean_flops_frac * prev
                + ev.signature.flops_frac * node_hours)
                / self.node_hours;
            self.mean_membw_frac = (self.mean_membw_frac * prev
                + ev.signature.membw_frac * node_hours)
                / self.node_hours;
        }
        *self.patterns.entry(pattern_name(ev.pattern)).or_insert(0) += 1;
    }

    /// The most frequent pattern in the group.
    pub fn dominant_pattern(&self) -> Option<&'static str> {
        self.patterns.iter().max_by_key(|(_, &n)| n).map(|(&p, _)| p)
    }
}

fn pattern_name(p: Pattern) -> &'static str {
    match p {
        Pattern::Idle => "Idle",
        Pattern::LoadImbalance => "LoadImbalance",
        Pattern::BandwidthSaturation => "BandwidthSaturation",
        Pattern::MemoryLatencyBound => "MemoryLatencyBound",
        Pattern::ScalarCode => "ScalarCode",
        Pattern::BranchLimited => "BranchLimited",
        Pattern::InstructionOverhead => "InstructionOverhead",
        Pattern::ComputeBoundHealthy => "ComputeBoundHealthy",
        Pattern::Unremarkable => "Unremarkable",
    }
}

/// The aggregated usage report.
#[derive(Debug, Clone, Default)]
pub struct UsageReport {
    /// Per-user statistics, sorted by node-hours descending.
    pub by_user: Vec<(String, GroupUsage)>,
    /// Per-application statistics, sorted by node-hours descending.
    pub by_app: Vec<(String, GroupUsage)>,
    /// Total node-hours accounted.
    pub total_node_hours: f64,
}

impl UsageReport {
    /// Builds the report by evaluating every completed job against the
    /// database. Jobs whose data has been evicted evaluate to zeros and
    /// still count toward node-hours (accounting is scheduler truth).
    pub fn build(
        source: &mut dyn QuerySource,
        db: &str,
        jobs: &[CompletedJob],
        peaks: NodePeaks,
    ) -> Result<UsageReport> {
        let mut by_user: FxHashMap<String, GroupUsage> = FxHashMap::default();
        let mut by_app: FxHashMap<String, GroupUsage> = FxHashMap::default();
        let mut total = 0.0;
        for job in jobs {
            let hours = job.end.since(job.start).as_secs_f64() / 3600.0;
            let node_hours = hours * job.hosts.len() as f64;
            total += node_hours;
            let ev = JobEvaluation::evaluate(
                source, db, &job.jobid, &job.hosts, job.start, job.end, peaks,
            )?;
            by_user.entry(job.user.clone()).or_default().add(node_hours, &ev);
            by_app.entry(job.app.clone()).or_default().add(node_hours, &ev);
        }
        let sort = |m: FxHashMap<String, GroupUsage>| {
            let mut v: Vec<(String, GroupUsage)> = m.into_iter().collect();
            v.sort_by(|a, b| {
                b.1.node_hours.partial_cmp(&a.1.node_hours).expect("finite").then(a.0.cmp(&b.0))
            });
            v
        };
        Ok(UsageReport { by_user: sort(by_user), by_app: sort(by_app), total_node_hours: total })
    }

    /// Renders the report as the procurement-meeting table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "SYSTEM USAGE REPORT — {:.1} node-hours accounted\n\n",
            self.total_node_hours
        ));
        for (title, groups) in [("by user", &self.by_user), ("by application", &self.by_app)] {
            out.push_str(&format!("--- {title} ---\n"));
            out.push_str(&pad("group", 16));
            out.push_str(&pad("jobs", 6));
            out.push_str(&pad("node-h", 10));
            out.push_str(&pad("%peak FP", 10));
            out.push_str(&pad("%peak BW", 10));
            out.push_str("dominant pattern\n");
            for (name, g) in groups {
                out.push_str(&pad(name, 16));
                out.push_str(&pad(&g.jobs.to_string(), 6));
                out.push_str(&pad(&format!("{:.1}", g.node_hours), 10));
                out.push_str(&pad(&format!("{:.1}", g.mean_flops_frac * 100.0), 10));
                out.push_str(&pad(&format!("{:.1}", g.mean_membw_frac * 100.0), 10));
                out.push_str(g.dominant_pattern().unwrap_or("-"));
                out.push('\n');
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lms_influx::Influx;
    use lms_util::Clock;

    fn peaks() -> NodePeaks {
        NodePeaks { flops_mflops: 100_000.0, membw_mbytes: 50_000.0 }
    }

    /// Two users: anna runs two compute jobs, bert one idle job.
    fn fixture() -> (Influx, Vec<CompletedJob>) {
        let ix = Influx::new(Clock::simulated(Timestamp::from_secs(20_000)));
        let mut batch = String::new();
        // Job 1: h1+h2, 0..3600s, busy.
        // Job 2: h1, 4000..5800s, busy.
        // Job 3: h3, 0..7200s, idle.
        for s in (0..7200).step_by(60) {
            let ts = s as i64 * 1_000_000_000;
            for host in ["h1", "h2"] {
                batch.push_str(&format!(
                    "cpu_total,hostname={host} busy=0.95 {ts}\n\
                     hpm_flops_dp,hostname={host} dp_mflop_s=60000,ipc=2.0,vectorization_ratio=95 {ts}\n\
                     hpm_mem,hostname={host} memory_bandwidth_mbytes_s=10000 {ts}\n"
                ));
            }
            batch.push_str(&format!("cpu_total,hostname=h3 busy=0.01 {ts}\n"));
        }
        ix.write_lines("lms", &batch, Default::default()).unwrap();
        let jobs = vec![
            CompletedJob {
                jobid: "1".into(),
                user: "anna".into(),
                app: "gemm".into(),
                hosts: vec!["h1".into(), "h2".into()],
                start: Timestamp::from_secs(0),
                end: Timestamp::from_secs(3600),
            },
            CompletedJob {
                jobid: "2".into(),
                user: "anna".into(),
                app: "gemm".into(),
                hosts: vec!["h1".into()],
                start: Timestamp::from_secs(4000),
                end: Timestamp::from_secs(5800),
            },
            CompletedJob {
                jobid: "3".into(),
                user: "bert".into(),
                app: "idler".into(),
                hosts: vec!["h3".into()],
                start: Timestamp::from_secs(0),
                end: Timestamp::from_secs(7200),
            },
        ];
        (ix, jobs)
    }

    #[test]
    fn aggregates_node_hours_and_fractions() {
        let (mut ix, jobs) = fixture();
        let report = UsageReport::build(&mut ix, "lms", &jobs, peaks()).unwrap();
        // anna: 2 nodes×1h + 1 node×0.5h = 2.5; bert: 1×2h = 2.
        assert!((report.total_node_hours - 4.5).abs() < 1e-9);
        assert_eq!(report.by_user[0].0, "anna");
        let anna = &report.by_user[0].1;
        assert_eq!(anna.jobs, 2);
        assert!((anna.node_hours - 2.5).abs() < 1e-9);
        // 60000/100000 = 60% of FP peak on busy nodes.
        assert!((anna.mean_flops_frac - 0.6).abs() < 0.01, "{}", anna.mean_flops_frac);
        assert_eq!(anna.dominant_pattern(), Some("ComputeBoundHealthy"));

        let bert = &report.by_user[1].1;
        assert_eq!(bert.dominant_pattern(), Some("Idle"));
        assert_eq!(bert.jobs, 1);
    }

    #[test]
    fn groups_by_application_too() {
        let (mut ix, jobs) = fixture();
        let report = UsageReport::build(&mut ix, "lms", &jobs, peaks()).unwrap();
        let apps: Vec<&str> = report.by_app.iter().map(|(a, _)| a.as_str()).collect();
        assert_eq!(apps, vec!["gemm", "idler"]);
        assert_eq!(report.by_app[0].1.jobs, 2);
    }

    #[test]
    fn render_produces_both_tables() {
        let (mut ix, jobs) = fixture();
        let report = UsageReport::build(&mut ix, "lms", &jobs, peaks()).unwrap();
        let text = report.render();
        assert!(text.contains("by user"));
        assert!(text.contains("by application"));
        assert!(text.contains("anna"));
        assert!(text.contains("ComputeBoundHealthy"));
        assert!(text.contains("4.5 node-hours"));
    }

    #[test]
    fn empty_input_is_empty_report() {
        let mut ix = Influx::new(Clock::simulated(Timestamp::from_secs(1)));
        ix.create_database("lms");
        let report = UsageReport::build(&mut ix, "lms", &[], peaks()).unwrap();
        assert_eq!(report.total_node_hours, 0.0);
        assert!(report.by_user.is_empty());
        assert!(report.render().contains("0.0 node-hours"));
    }
}
