//! Descriptive statistics used across the analysis layer.

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

/// Computes summary statistics; empty input yields the default (zeros).
pub fn summarize(values: &[f64]) -> Summary {
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return Summary::default();
    }
    let n = finite.len() as f64;
    let mean = finite.iter().sum::<f64>() / n;
    let var = finite.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    Summary {
        count: finite.len(),
        mean,
        stddev: var.sqrt(),
        min: finite.iter().copied().fold(f64::INFINITY, f64::min),
        max: finite.iter().copied().fold(f64::NEG_INFINITY, f64::max),
    }
}

/// The `q`-th percentile (0–100) by linear interpolation. Returns `None`
/// on an empty sample.
pub fn percentile(values: &[f64], q: f64) -> Option<f64> {
    let mut finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return None;
    }
    finite.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let q = q.clamp(0.0, 100.0) / 100.0;
    let pos = q * (finite.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(finite[lo] + (finite[hi] - finite[lo]) * frac)
}

/// A fixed-width histogram over `[lo, hi)` with out-of-range counters.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    /// Samples below `lo`.
    pub underflow: u64,
    /// Samples at or above `hi`.
    pub overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo && bins > 0, "bad histogram range");
        Histogram { lo, hi, bins: vec![0; bins], underflow: 0, overflow: 0 }
    }

    /// Adds a sample.
    pub fn add(&mut self, v: f64) {
        if !v.is_finite() || v < self.lo {
            self.underflow += 1;
        } else if v >= self.hi {
            self.overflow += 1;
        } else {
            let n = self.bins.len();
            let i = ((v - self.lo) / (self.hi - self.lo) * n as f64) as usize;
            self.bins[i.min(n - 1)] += 1;
        }
    }

    /// Bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Total in-range samples.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// `(bin center, count)` pairs — dashboard histogram panels plot these.
    pub fn centers(&self) -> Vec<(f64, u64)> {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + w * (i as f64 + 0.5), c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.stddev - 1.118033988749895).abs() < 1e-12);
    }

    #[test]
    fn summary_skips_non_finite_and_handles_empty() {
        let s = summarize(&[1.0, f64::NAN, 3.0, f64::INFINITY]);
        assert_eq!(s.count, 2);
        assert_eq!(s.mean, 2.0);
        assert_eq!(summarize(&[]), Summary::default());
    }

    #[test]
    fn percentiles() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 50.0), Some(3.0));
        assert_eq!(percentile(&v, 100.0), Some(5.0));
        assert_eq!(percentile(&v, 25.0), Some(2.0));
        assert_eq!(percentile(&v, 10.0), Some(1.4));
        assert_eq!(percentile(&[], 50.0), None);
        // Out-of-range q clamps.
        assert_eq!(percentile(&v, 150.0), Some(5.0));
    }

    #[test]
    fn histogram_binning() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for v in [0.0, 1.9, 2.0, 5.5, 9.99, -1.0, 10.0, f64::NAN] {
            h.add(v);
        }
        assert_eq!(h.bins(), &[2, 1, 1, 0, 1]);
        assert_eq!(h.underflow, 2); // -1.0 and NaN
        assert_eq!(h.overflow, 1);
        assert_eq!(h.total(), 5);
        let centers = h.centers();
        assert_eq!(centers[0], (1.0, 2));
        assert_eq!(centers[4], (9.0, 1));
    }

    #[test]
    #[should_panic(expected = "bad histogram range")]
    fn histogram_rejects_degenerate_range() {
        Histogram::new(5.0, 5.0, 4);
    }
}
