//! [`LmsStack`]: the in-process deployment of the full monitoring stack.

use lms_analysis::evaluation::{JobEvaluation, NodePeaks};
use lms_apps::AppProfile;
use lms_dashboard::render::RenderOptions;
use lms_dashboard::server::SourceFactory;
use lms_dashboard::{
    AdminView, Dashboard, JobDirectory, JobInfo, TemplateStore, ViewerAgent, ViewerServer,
};
use lms_influx::QuerySource;
use parking_lot::RwLock;
use lms_hpm::collector::HpmCollector;
use lms_hpm::simulate::Simulator;
use lms_http::HttpClient;
use lms_influx::{Influx, InfluxServer, RollupPolicy, StorageConfig, StorageWorker};
use lms_jobsched::{HttpSignaler, JobId, JobSpec, JobState, Scheduler};
use lms_lineproto::BatchBuilder;
use lms_mq::Publisher;
use lms_router::{ClusterConfig, Router, RouterConfig, RouterServer, RouterStats};
use lms_sysmon::{HostAgent, SimProc};
use lms_topology::Topology;
use lms_util::{Clock, Error, FxHashMap, Result, Timestamp};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Configuration of a stack deployment.
#[derive(Debug, Clone)]
pub struct StackConfig {
    /// Number of compute nodes to simulate (named `h1`, `h2`, …).
    pub nodes: usize,
    /// Number of database nodes. With more than one, the router places
    /// each series on `replication` nodes via a seeded rendezvous hash
    /// ring, acknowledges writes at `write_quorum`, and scatter-gathers
    /// queries across all nodes (see `lms-router::delivery`).
    pub db_nodes: usize,
    /// Copies of each series across the database nodes (`R`).
    pub replication: usize,
    /// Node-batches that must be queued or durably spooled before a
    /// write is acknowledged (`W`, `1 ≤ W ≤ R`).
    pub write_quorum: usize,
    /// Node hardware model.
    pub topology: Topology,
    /// HPM performance groups the node collectors rotate through.
    pub hpm_groups: Vec<String>,
    /// Duplicate tagged metrics into per-user databases.
    pub per_user: bool,
    /// Publish metrics/signals on the message queue.
    pub publish: bool,
    /// Database retention window (None = keep everything).
    pub retention: Option<Duration>,
    /// Tiered retention: when set, the database nodes run the continuous
    /// downsampling pipeline (raw → 1m → 1h rollup siblings, each with its
    /// own retention) and the agents emit a second, pre-aggregated 60s
    /// stream alongside the 1s raw stream.
    pub rollup: Option<RollupPolicy>,
    /// Persist the database under this directory (WAL + compressed
    /// segment files); a stack restarted on the same directory serves
    /// its pre-restart history. None = memory-only.
    pub data_dir: Option<PathBuf>,
    /// Virtual start time.
    pub start_time: Timestamp,
    /// Simulation seed.
    pub seed: u64,
    /// Graceful-drain budget on shutdown: how long to wait for the
    /// router's delivery pipeline (queue + spool) to empty into the
    /// database before the final storage flush.
    pub drain_timeout: Duration,
    /// Background CRC-scrub cadence on persistent database nodes
    /// (`Duration::ZERO` disables scrubbing).
    pub scrub_interval: Duration,
    /// Byte budget per scrub cycle (`0` disables scrubbing).
    pub scrub_rate_bytes: u64,
    /// Anti-entropy repair cadence for the router (None = disabled; only
    /// meaningful with `db_nodes ≥ 2` and `replication ≥ 2`). The stack
    /// exposes [`LmsStack::run_repair_pass`] for manual passes either way.
    pub repair_interval: Option<Duration>,
}

impl Default for StackConfig {
    fn default() -> Self {
        StackConfig {
            nodes: 4,
            db_nodes: 1,
            replication: 1,
            write_quorum: 1,
            topology: Topology::preset_dual_socket_10c(),
            hpm_groups: vec!["FLOPS_DP".into(), "MEM".into()],
            per_user: false,
            publish: false,
            retention: None,
            rollup: None,
            data_dir: None,
            // The paper's arXiv date makes a recognizable epoch in plots.
            start_time: Timestamp::from_secs(1_501_804_800),
            seed: 42,
            drain_timeout: Duration::from_secs(10),
            scrub_interval: Duration::from_secs(60),
            scrub_rate_bytes: 8 * 1024 * 1024,
            repair_interval: None,
        }
    }
}

impl StackConfig {
    /// Loads a configuration from INI text (the deployment format every
    /// LMS daemon uses; see `lms-util::config`):
    ///
    /// ```ini
    /// [cluster]
    /// nodes = 8
    /// topology = dual_socket_10c   ; or desktop_4c
    /// seed = 7
    /// db_nodes = 3        ; database nodes behind the router (default 1)
    /// replication = 2     ; copies of each series (R)
    /// write_quorum = 1    ; node-batches required to ack a write (W)
    ///
    /// [monitoring]
    /// hpm_groups = FLOPS_DP, MEM, ENERGY
    /// per_user = yes
    /// publish = on
    /// retention_hours = 48
    /// data_dir = /var/lib/lms    ; persist the database (omit = memory-only)
    /// drain_timeout_secs = 10    ; graceful-drain budget on shutdown
    ///
    /// [retention]
    /// raw = 7d      ; tiered retention: any key enables downsampling
    /// 1m  = 90d     ; durations use the query literal grammar (90d, 6h, 30m)
    /// 1h  = 52w
    ///
    /// [integrity]
    /// scrub_interval_secs = 60      ; CRC-scrub cadence (0 = off)
    /// scrub_rate_bytes = 8388608    ; scrub byte budget per cycle (0 = off)
    /// repair_interval_secs = 300    ; anti-entropy repair cadence (0 = off)
    /// ```
    pub fn from_ini(text: &str) -> Result<Self> {
        let ini = lms_util::config::Config::parse(text)?;
        let mut config = StackConfig::default();
        if let Some(n) = ini.get_i64("cluster", "nodes")? {
            if n < 1 {
                return Err(Error::config("cluster.nodes must be >= 1"));
            }
            config.nodes = n as usize;
        }
        match ini.get_or("cluster", "topology", "dual_socket_10c") {
            "dual_socket_10c" => config.topology = Topology::preset_dual_socket_10c(),
            "desktop_4c" => config.topology = Topology::preset_desktop_4c(),
            other => {
                return Err(Error::config(format!("unknown topology preset `{other}`")))
            }
        }
        if let Some(seed) = ini.get_i64("cluster", "seed")? {
            config.seed = seed as u64;
        }
        if let Some(n) = ini.get_i64("cluster", "db_nodes")? {
            if n < 1 {
                return Err(Error::config("cluster.db_nodes must be >= 1"));
            }
            config.db_nodes = n as usize;
        }
        if let Some(r) = ini.get_i64("cluster", "replication")? {
            if r < 1 {
                return Err(Error::config("cluster.replication must be >= 1"));
            }
            config.replication = r as usize;
        }
        if let Some(w) = ini.get_i64("cluster", "write_quorum")? {
            if w < 1 {
                return Err(Error::config("cluster.write_quorum must be >= 1"));
            }
            config.write_quorum = w as usize;
        }
        let groups = ini.get_list("monitoring", "hpm_groups");
        if !groups.is_empty() {
            for g in &groups {
                if lms_hpm::groups::builtin_text(g).is_none() {
                    return Err(Error::config(format!("unknown performance group `{g}`")));
                }
            }
            config.hpm_groups = groups;
        }
        if let Some(v) = ini.get_bool("monitoring", "per_user")? {
            config.per_user = v;
        }
        if let Some(v) = ini.get_bool("monitoring", "publish")? {
            config.publish = v;
        }
        if let Some(h) = ini.get_i64("monitoring", "retention_hours")? {
            if h < 1 {
                return Err(Error::config("retention_hours must be >= 1"));
            }
            config.retention = Some(Duration::from_secs(h as u64 * 3600));
        }
        if let Some(dir) = ini.get("monitoring", "data_dir") {
            config.data_dir = Some(PathBuf::from(dir));
        }
        if let Some(s) = ini.get_i64("monitoring", "drain_timeout_secs")? {
            if s < 0 {
                return Err(Error::config("drain_timeout_secs must be >= 0"));
            }
            config.drain_timeout = Duration::from_secs(s as u64);
        }
        // Tiered retention: any `[retention]` key turns the downsampling
        // pipeline on; values use the query duration grammar (`90d`, `6h`).
        let parse_tier_retention = |key: &str| -> Result<Option<Duration>> {
            let Some(raw) = ini.get("retention", key) else { return Ok(None) };
            let ns = lms_influx::query::parse_duration_ns(raw).map_err(|_| {
                Error::config(format!("bad retention.{key} `{raw}`: expected e.g. 90d, 6h, 30m"))
            })?;
            if ns <= 0 {
                return Err(Error::config(format!("retention.{key} must be positive")));
            }
            Ok(Some(Duration::from_nanos(ns as u64)))
        };
        let policy = RollupPolicy {
            retention_raw: parse_tier_retention("raw")?,
            retention_1m: parse_tier_retention("1m")?,
            retention_1h: parse_tier_retention("1h")?,
        };
        if policy.retention_raw.is_some()
            || policy.retention_1m.is_some()
            || policy.retention_1h.is_some()
        {
            config.rollup = Some(policy);
        }
        // Self-healing knobs; zeros disable the corresponding loop.
        if let Some(s) = ini.get_i64("integrity", "scrub_interval_secs")? {
            if s < 0 {
                return Err(Error::config("integrity.scrub_interval_secs must be >= 0"));
            }
            config.scrub_interval = Duration::from_secs(s as u64);
        }
        if let Some(b) = ini.get_i64("integrity", "scrub_rate_bytes")? {
            if b < 0 {
                return Err(Error::config("integrity.scrub_rate_bytes must be >= 0"));
            }
            config.scrub_rate_bytes = b as u64;
        }
        if let Some(s) = ini.get_i64("integrity", "repair_interval_secs")? {
            if s < 0 {
                return Err(Error::config("integrity.repair_interval_secs must be >= 0"));
            }
            config.repair_interval = (s > 0).then(|| Duration::from_secs(s as u64));
        }
        Ok(config)
    }
}

/// Aggregate statistics of a running stack.
#[derive(Debug, Clone)]
pub struct StackStats {
    /// Router counters.
    pub router: RouterStats,
    /// Points stored in the global database.
    pub db_points: usize,
    /// Series in the global database.
    pub db_series: usize,
    /// Completed ticks.
    pub ticks: u64,
}

/// One simulated compute node.
struct NodeSim {
    hostname: String,
    sim: Simulator,
    proc_fs: SimProc,
    agent: HostAgent,
    hpm: HpmCollector,
    /// Connection used to POST HPM batches to the router.
    hpm_client: HttpClient,
}

/// One database node: the embedded engine, its HTTP server, and its
/// background storage worker (persistent configurations only).
struct DbNode {
    influx: Influx,
    server: Option<InfluxServer>,
    storage_worker: Option<StorageWorker>,
}

/// The assembled monitoring stack.
pub struct LmsStack {
    config: StackConfig,
    clock: Clock,
    /// Database nodes; single-node stacks are a one-element vector.
    db: Vec<DbNode>,
    router: Arc<Router>,
    router_server: Option<RouterServer>,
    publisher_addr: Option<SocketAddr>,
    scheduler: Scheduler,
    nodes: Vec<NodeSim>,
    /// JobId → (profile, virtual start) for workload reconciliation.
    active: FxHashMap<JobId, (AppProfile, Timestamp)>,
    profiles: FxHashMap<JobId, AppProfile>,
    ticks: u64,
    /// Job snapshot shared with the webviewer (refreshed every tick).
    directory: Arc<SnapshotDirectory>,
    viewer_server: Option<ViewerServer>,
}

/// A [`JobDirectory`] backed by a per-tick snapshot of the scheduler.
#[derive(Default)]
struct SnapshotDirectory {
    jobs: RwLock<Vec<JobInfo>>,
}

impl JobDirectory for SnapshotDirectory {
    fn running_jobs(&self) -> Vec<JobInfo> {
        self.jobs.read().iter().filter(|j| j.end.is_none()).cloned().collect()
    }

    fn job(&self, jobid: &str) -> Option<JobInfo> {
        self.jobs.read().iter().find(|j| j.jobid == jobid).cloned()
    }
}

impl LmsStack {
    /// Starts every component and wires them together.
    pub fn start(config: StackConfig) -> Result<Self> {
        let clock = Clock::simulated(config.start_time);

        // Database nodes: persistent (WAL + segment files, replaying any
        // prior history) when `data_dir` is set, memory-only otherwise.
        // Multi-node stacks split `data_dir` into `node-<i>` subtrees so a
        // restart on the same directory rehydrates every node.
        if config.db_nodes < 1 {
            return Err(Error::config("db_nodes must be >= 1"));
        }
        let mut db = Vec::with_capacity(config.db_nodes);
        for i in 0..config.db_nodes {
            let influx = match &config.data_dir {
                Some(dir) => {
                    let dir =
                        if config.db_nodes == 1 { dir.clone() } else { dir.join(format!("node-{i}")) };
                    let mut storage = StorageConfig::new(dir);
                    storage.scrub_interval = config.scrub_interval;
                    storage.scrub_rate_bytes = config.scrub_rate_bytes;
                    Influx::open(clock.clone(), 8, storage)?
                }
                None => Influx::new(clock.clone()),
            };
            influx.create_database("lms");
            if let Some(retention) = config.retention {
                influx.set_retention("lms", Some(retention));
            }
            if let Some(policy) = &config.rollup {
                influx.enable_rollups(policy.clone())?;
            }
            let storage_worker = influx.spawn_storage_worker();
            let server = InfluxServer::start("127.0.0.1:0", influx.clone())?;
            db.push(DbNode { influx, server: Some(server), storage_worker });
        }
        let cluster = ClusterConfig {
            nodes: db.iter().map(|n| n.server.as_ref().expect("running").addr()).collect(),
            replication: config.replication,
            write_quorum: config.write_quorum,
            seed: config.seed,
        };

        // Optional MQ publisher for stream analyzers.
        let (publisher, publisher_addr) = if config.publish {
            let p = Publisher::bind("127.0.0.1:0")?;
            let addr = p.addr();
            (Some(p), Some(addr))
        } else {
            (None, None)
        };

        // Router.
        let router_config = RouterConfig {
            global_db: "lms".into(),
            per_user: config.per_user,
            ..Default::default()
        };
        let router =
            Arc::new(Router::new_cluster(cluster, router_config, clock.clone(), publisher)?);
        let router_server = RouterServer::start("127.0.0.1:0", router.clone())?;
        let router_addr = router_server.addr();

        // Scheduler with signal hook into the router.
        let hostnames: Vec<String> = (1..=config.nodes).map(|i| format!("h{i}")).collect();
        let mut scheduler = Scheduler::new(hostnames.clone(), clock.clone());
        scheduler.add_hook(Box::new(HttpSignaler::new(router_addr)?));

        // Compute nodes.
        let ncpu = config.topology.num_hw_threads();
        let mem_kb = 64 * 1024 * 1024; // 64 GiB nodes
        let mut nodes = Vec::with_capacity(config.nodes);
        for (i, hostname) in hostnames.iter().enumerate() {
            let sim = Simulator::new(&config.topology, config.seed.wrapping_add(i as u64));
            let proc_fs = SimProc::new(ncpu, mem_kb, config.seed.wrapping_add(1000 + i as u64));
            let mut agent =
                HostAgent::new(hostname.clone(), clock.clone()).with_standard_collectors();
            agent.send_to(router_addr, "lms")?;
            let mut hpm = HpmCollector::new(config.topology.clone(), hostname.clone(), clock.clone());
            for group in &config.hpm_groups {
                hpm.add_group(group)?;
            }
            if config.rollup.is_some() {
                // Agent-side pre-aggregation: both collectors additionally
                // ship closed 60s windows to the router tagged for the 1m
                // tier (`/write?db=lms&tier=1m`).
                agent.enable_pre_aggregation();
                hpm.enable_pre_aggregation();
            }
            nodes.push(NodeSim {
                hostname: hostname.clone(),
                sim,
                proc_fs,
                agent,
                hpm,
                hpm_client: HttpClient::connect(router_addr)?,
            });
        }

        Ok(LmsStack {
            config,
            clock,
            db,
            router,
            router_server: Some(router_server),
            publisher_addr,
            scheduler,
            nodes,
            active: FxHashMap::default(),
            profiles: FxHashMap::default(),
            ticks: 0,
            directory: Arc::new(SnapshotDirectory::default()),
            viewer_server: None,
        })
    }

    /// Starts the Webviewer (Fig. 1's "Webviewer" box) serving dashboards
    /// for this stack over HTTP; returns its address. Idempotent.
    pub fn start_viewer_server(&mut self) -> Result<SocketAddr> {
        if let Some(vs) = &self.viewer_server {
            return Ok(vs.addr());
        }
        let agent = Arc::new(self.viewer());
        let influx = self.influx().clone();
        let factory: SourceFactory =
            Arc::new(move || Box::new(influx.clone()) as Box<dyn QuerySource + Send>);
        let server = ViewerServer::start(
            "127.0.0.1:0",
            agent,
            factory,
            self.directory.clone(),
            self.clock.clone(),
        )?;
        let addr = server.addr();
        self.viewer_server = Some(server);
        self.refresh_directory();
        Ok(addr)
    }

    /// Refreshes the webviewer's job snapshot from the scheduler.
    fn refresh_directory(&self) {
        let jobs: Vec<JobInfo> = self
            .scheduler
            .jobs()
            .iter()
            .filter_map(|job| {
                let (start, end) = match job.state {
                    JobState::Running { started } => (started, None),
                    JobState::Completed { started, ended } => (started, Some(ended)),
                    _ => return None,
                };
                Some(JobInfo {
                    jobid: job.id.to_string(),
                    user: job.spec.user.clone(),
                    hosts: job.hosts().to_vec(),
                    start,
                    end,
                })
            })
            .collect();
        *self.directory.jobs.write() = jobs;
    }

    /// The virtual clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The embedded database handle (also reachable over HTTP at
    /// [`db_addr`](Self::db_addr)). In a multi-node stack this is node 0;
    /// see [`influx_node`](Self::influx_node) and
    /// [`db_addrs`](Self::db_addrs) for the rest.
    pub fn influx(&self) -> &Influx {
        &self.db[0].influx
    }

    /// The embedded database handle of node `i` (panics out of range).
    pub fn influx_node(&self, i: usize) -> &Influx {
        &self.db[i].influx
    }

    /// Number of database nodes.
    pub fn db_node_count(&self) -> usize {
        self.db.len()
    }

    /// Database server address (node 0).
    pub fn db_addr(&self) -> SocketAddr {
        self.db[0].server.as_ref().expect("running").addr()
    }

    /// Every database node's server address, in ring order.
    pub fn db_addrs(&self) -> Vec<SocketAddr> {
        self.db.iter().map(|n| n.server.as_ref().expect("running").addr()).collect()
    }

    /// Router server address (agents and `umetric` POST here).
    pub fn router_addr(&self) -> SocketAddr {
        self.router_server.as_ref().expect("running").addr()
    }

    /// MQ publisher address when `publish` is on.
    pub fn publisher_addr(&self) -> Option<SocketAddr> {
        self.publisher_addr
    }

    /// The router (admin views, stats).
    pub fn router(&self) -> &Arc<Router> {
        &self.router
    }

    /// One anti-entropy repair pass over the global database: diffs the
    /// database nodes' integrity digests and replays divergent hours from
    /// their healthiest replica (a no-op below two nodes or two replicas).
    /// Deployments set `integrity.repair_interval_secs` to run this on a
    /// cadence; in-process stacks call it explicitly.
    pub fn run_repair_pass(&self) -> lms_router::RepairOutcome {
        self.router.run_repair_pass(&[self.router.config().global_db.as_str()])
    }

    /// The node topology.
    pub fn topology(&self) -> &Topology {
        &self.config.topology
    }

    /// Submits a job running `profile` on `nodes` nodes.
    pub fn submit_job(
        &mut self,
        user: &str,
        name: &str,
        nodes: usize,
        walltime: Duration,
        profile: AppProfile,
    ) -> JobId {
        let spec = JobSpec::new(user, name, nodes, walltime);
        let id = self.scheduler.submit(spec);
        self.profiles.insert(id, profile);
        id
    }

    /// Advances the whole stack by `dt` of virtual time: simulators
    /// integrate, the scheduler allocates/completes (firing signals),
    /// agents collect and POST, the database ingests.
    pub fn tick(&mut self, dt: Duration) {
        self.clock.advance(dt);
        self.scheduler.tick();
        self.reconcile_workloads();
        self.refresh_directory();

        for node in &mut self.nodes {
            node.sim.advance(dt);
            node.proc_fs.advance(dt);
        }
        for node in &mut self.nodes {
            node.agent.tick(&node.proc_fs);
            if let Ok(points) = node.hpm.collect(&node.sim) {
                if !points.is_empty() {
                    let mut batch = BatchBuilder::with_capacity(512);
                    for p in &points {
                        batch.push(p);
                    }
                    let _ = node.hpm_client.post_text("/write?db=lms", batch.as_str());
                }
            }
            let rollups = node.hpm.take_rollups();
            if !rollups.is_empty() {
                let mut batch = BatchBuilder::with_capacity(512);
                for p in &rollups {
                    batch.push(p);
                }
                let _ = node.hpm_client.post_text("/write?db=lms&tier=1m", batch.as_str());
            }
        }
        self.ticks += 1;
        // Retention sweep once per simulated hour (cheap; see bench influx).
        if (self.config.retention.is_some() || self.config.rollup.is_some())
            && self.ticks.is_multiple_of(60)
        {
            for node in &self.db {
                node.influx.enforce_retention();
            }
        }
    }

    /// Runs the stack for `total` virtual time in `step` increments,
    /// flushing the router pipeline at the end.
    pub fn run_for(&mut self, total: Duration, step: Duration) {
        let mut remaining = total;
        while remaining > Duration::ZERO {
            let dt = step.min(remaining);
            self.tick(dt);
            remaining -= dt;
        }
        self.flush();
    }

    /// Waits for queued router→DB deliveries to drain.
    pub fn flush(&self) -> bool {
        self.router.flush(self.config.drain_timeout)
    }

    /// Graceful stack-wide drain: stop accepting (viewer + router
    /// servers down) → flush the forwarder queue and spool into the
    /// database → final storage flush (heads sealed, WAL checkpointed)
    /// → database server down. Returns true when the delivery pipeline
    /// fully emptied within the drain budget. Idempotent — `Drop` runs
    /// the same sequence for stacks that are simply dropped.
    fn drain(&mut self) -> bool {
        // A partial pre-aggregation window beats a lost one; ship while
        // the router is still accepting.
        for node in &mut self.nodes {
            node.agent.flush_pre_aggregation();
        }
        if let Some(s) = self.viewer_server.take() {
            s.shutdown();
        }
        if let Some(s) = self.router_server.take() {
            s.shutdown();
        }
        let drained = self.router.flush(self.config.drain_timeout);
        // Final flush (the worker's stop path seals outstanding heads)
        // before the database servers go away.
        for node in &mut self.db {
            if let Some(w) = node.storage_worker.take() {
                w.stop();
            }
            if let Some(s) = node.server.take() {
                s.shutdown();
            }
        }
        drained
    }

    /// Explicit graceful shutdown; returns true when every accepted
    /// batch reached the database within the drain budget.
    pub fn shutdown(mut self) -> bool {
        self.drain()
    }

    /// Applies job starts/ends to the node simulators.
    fn reconcile_workloads(&mut self) {
        let now = self.clock.now();
        // Newly running jobs.
        let running: Vec<(JobId, Vec<String>, Timestamp)> = self
            .scheduler
            .running()
            .map(|j| {
                let started = match j.state {
                    JobState::Running { started } => started,
                    _ => unreachable!("running() filters"),
                };
                (j.id, j.hosts().to_vec(), started)
            })
            .collect();
        for (id, hosts, started) in &running {
            if !self.active.contains_key(id) {
                let profile = self.profiles.get(id).copied().unwrap_or(AppProfile::MiniMd);
                for node in &mut self.nodes {
                    if hosts.contains(&node.hostname) {
                        let model = profile.hpm_model(node.sim.topology());
                        // HPC jobs run one worker per physical core; SMT
                        // siblings stay idle (assigning them too would
                        // double-count the node's compute capability).
                        node.sim.assign(node.sim.topology().primary_threads(), model);
                    }
                }
                self.active.insert(*id, (profile, *started));
            }
        }
        // Ended jobs.
        let running_ids: Vec<JobId> = running.iter().map(|(id, _, _)| *id).collect();
        let ended: Vec<JobId> =
            self.active.keys().copied().filter(|id| !running_ids.contains(id)).collect();
        for id in ended {
            self.active.remove(&id);
            if let Some(job) = self.scheduler.job(id) {
                let hosts = job.hosts().to_vec();
                for node in &mut self.nodes {
                    if hosts.contains(&node.hostname) {
                        let threads: Vec<u32> =
                            (0..node.sim.topology().num_hw_threads()).collect();
                        node.sim.clear(threads);
                        node.proc_fs.set_activity(lms_sysmon::NodeActivity::idle());
                    }
                }
            }
        }
        // Phased sysmon activity for the jobs still running.
        let ncpu = self.config.topology.num_hw_threads();
        for (id, (profile, started)) in &self.active {
            let at = now.since(*started);
            if let Some(job) = self.scheduler.job(*id) {
                let hosts = job.hosts();
                for node in &mut self.nodes {
                    if hosts.contains(&node.hostname) {
                        node.proc_fs.set_activity(profile.activity(ncpu, at));
                    }
                }
            }
        }
    }

    /// Job information in the viewer's shape.
    pub fn job_info(&self, id: JobId) -> Result<JobInfo> {
        let job = self
            .scheduler
            .job(id)
            .ok_or_else(|| Error::not_found(format!("job {id}")))?;
        let (start, end) = match job.state {
            JobState::Running { started } => (started, None),
            JobState::Completed { started, ended } => (started, Some(ended)),
            _ => (job.submitted, None),
        };
        Ok(JobInfo {
            jobid: id.to_string(),
            user: job.spec.user.clone(),
            hosts: job.hosts().to_vec(),
            start,
            end,
        })
    }

    fn peaks(&self) -> NodePeaks {
        NodePeaks {
            flops_mflops: self.config.topology.peak_flops_dp() / 1e6,
            membw_mbytes: self.config.topology.peak_mem_bw() / 1e6,
        }
    }

    /// A viewer agent bound to this stack's database.
    pub fn viewer(&self) -> ViewerAgent {
        ViewerAgent::new("lms", TemplateStore::builtin(), self.peaks())
    }

    /// Generates a job's dashboard (template-driven, Sec. III-D).
    pub fn job_dashboard(&mut self, id: JobId) -> Result<Dashboard> {
        let info = self.job_info(id)?;
        let now = self.clock.now();
        let viewer = self.viewer();
        viewer.job_dashboard(&mut self.influx().clone(), &info, now)
    }

    /// Renders a job's dashboard to text (headless Grafana).
    pub fn render_job_dashboard(&mut self, id: JobId) -> Result<String> {
        let dashboard = self.job_dashboard(id)?;
        let viewer = self.viewer();
        viewer.render_dashboard(&mut self.influx().clone(), &dashboard, RenderOptions::default())
    }

    /// Runs the online evaluation of a job (the Fig. 2 header data).
    pub fn evaluate_job(&mut self, id: JobId) -> Result<JobEvaluation> {
        let info = self.job_info(id)?;
        let end = info.end.unwrap_or_else(|| self.clock.now());
        JobEvaluation::evaluate(
            &mut self.influx().clone(),
            "lms",
            &info.jobid,
            &info.hosts,
            info.start,
            end,
            self.peaks(),
        )
    }

    /// Builds the statistical usage report over all completed jobs — the
    /// paper's "statistical foundation about application specific system
    /// usage" for operations and procurement.
    pub fn usage_report(&mut self) -> Result<lms_analysis::UsageReport> {
        let completed: Vec<lms_analysis::CompletedJob> = self
            .scheduler
            .jobs()
            .iter()
            .filter_map(|job| match job.state {
                JobState::Completed { started, ended } => Some(lms_analysis::CompletedJob {
                    jobid: job.id.to_string(),
                    user: job.spec.user.clone(),
                    app: job.spec.name.clone(),
                    hosts: job.hosts().to_vec(),
                    start: started,
                    end: ended,
                }),
                _ => None,
            })
            .collect();
        lms_analysis::UsageReport::build(
            &mut self.influx().clone(),
            "lms",
            &completed,
            self.peaks(),
        )
    }

    /// The admin overview of currently running jobs.
    pub fn admin_view(&mut self) -> Result<AdminView> {
        let ids: Vec<JobId> = self.scheduler.running().map(|j| j.id).collect();
        let jobs: Vec<JobInfo> =
            ids.iter().map(|&id| self.job_info(id)).collect::<Result<_>>()?;
        let now = self.clock.now();
        let viewer = self.viewer();
        viewer.admin_view(&mut self.influx().clone(), &jobs, now)
    }

    /// Direct access to the scheduler (inspection in tests/examples).
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// Aggregate statistics. In a multi-node stack, `db_points` and
    /// `db_series` sum over every database node, so each replica copy
    /// counts once.
    pub fn stats(&self) -> StackStats {
        StackStats {
            router: self.router.stats(),
            db_points: self.db.iter().map(|n| n.influx.point_count("lms")).sum(),
            db_series: self.db.iter().map(|n| n.influx.series_count("lms")).sum(),
            ticks: self.ticks,
        }
    }
}

impl Drop for LmsStack {
    fn drop(&mut self) {
        self.drain();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> StackConfig {
        StackConfig {
            nodes: 2,
            topology: Topology::preset_desktop_4c(),
            ..Default::default()
        }
    }

    #[test]
    fn stack_boots_and_ingests_system_metrics() {
        let mut stack = LmsStack::start(small_config()).unwrap();
        stack.run_for(Duration::from_secs(300), Duration::from_secs(60));
        let stats = stack.stats();
        assert!(stats.db_points > 50, "{stats:?}");
        assert_eq!(stats.ticks, 5);
        assert_eq!(stats.router.lines_rejected, 0);
        // System measurements present.
        let r = stack.influx().query("lms", "SHOW MEASUREMENTS").unwrap();
        let names: Vec<&str> =
            r.series[0].values.iter().map(|v| v[0].as_str().unwrap()).collect();
        for expected in ["cpu_total", "memory", "load", "hpm_flops_dp", "hpm_mem"] {
            assert!(names.contains(&expected), "{expected} missing from {names:?}");
        }
    }

    #[test]
    fn job_lifecycle_tags_metrics_and_emits_events() {
        let mut stack = LmsStack::start(small_config()).unwrap();
        let job = stack.submit_job(
            "alice",
            "md",
            2,
            Duration::from_secs(600),
            AppProfile::Dgemm,
        );
        stack.run_for(Duration::from_secs(900), Duration::from_secs(60));

        // Job completed after 600s.
        assert!(stack.scheduler().job(job).unwrap().state.is_completed());
        // Tagged metrics exist in the job window.
        let q = format!("SELECT count(busy) FROM cpu_total WHERE jobid = '{job}'");
        let r = stack.influx().query("lms", &q).unwrap();
        assert!(
            r.series[0].values[0][1].as_i64().unwrap() > 5,
            "tagged cpu samples missing"
        );
        // Start/end annotation events recorded.
        let q = format!("SELECT count(text) FROM events WHERE jobid = '{job}'");
        let r = stack.influx().query("lms", &q).unwrap();
        assert_eq!(r.series[0].values[0][1].as_i64().unwrap(), 4); // 2 hosts × start+end
    }

    #[test]
    fn hpm_counters_reflect_the_job_profile() {
        let mut stack = LmsStack::start(small_config()).unwrap();
        let job = stack.submit_job(
            "bob",
            "gemm",
            1,
            Duration::from_secs(1200),
            AppProfile::Dgemm,
        );
        stack.run_for(Duration::from_secs(600), Duration::from_secs(60));
        let info = stack.job_info(job).unwrap();
        let host = &info.hosts[0];
        let q = format!(
            "SELECT mean(dp_mflop_s) FROM hpm_flops_dp WHERE hostname = '{host}'"
        );
        let r = stack.influx().query("lms", &q).unwrap();
        let mflops = r.series[0].values[0][1].as_f64().unwrap();
        // Desktop preset peak = 3.5 GHz × 8 × 4 cores = 112 GFLOP/s;
        // compute-bound ≈ 70% ≈ 78 GFLOP/s = 78000 MFLOP/s.
        assert!(mflops > 40_000.0, "dgemm flop rate {mflops}");
    }

    #[test]
    fn dashboard_and_evaluation_generate() {
        let mut stack = LmsStack::start(small_config()).unwrap();
        let job =
            stack.submit_job("carol", "app", 2, Duration::from_secs(1200), AppProfile::MiniMd);
        stack.run_for(Duration::from_secs(600), Duration::from_secs(60));

        let ev = stack.evaluate_job(job).unwrap();
        assert_eq!(ev.nodes.len(), 2);
        assert!(ev.nodes[0].cpu_busy > 0.5, "{:?}", ev.nodes[0]);

        let dashboard = stack.job_dashboard(job).unwrap();
        assert!(dashboard.rows.len() >= 4, "{:?}", dashboard.rows.len());
        let text = stack.render_job_dashboard(job).unwrap();
        assert!(text.contains("DP FLOP rate h1"));

        let admin = stack.admin_view().unwrap();
        assert_eq!(admin.jobs, 1);
        assert!(admin.text.contains("carol"));
    }

    #[test]
    fn per_user_duplication_through_the_stack() {
        let mut config = small_config();
        config.per_user = true;
        let mut stack = LmsStack::start(config).unwrap();
        stack.submit_job("dave", "x", 1, Duration::from_secs(600), AppProfile::Stream);
        stack.run_for(Duration::from_secs(300), Duration::from_secs(60));
        assert!(stack.influx().point_count("user_dave") > 0);
    }

    #[test]
    fn usage_report_over_completed_jobs() {
        let mut stack = LmsStack::start(small_config()).unwrap();
        stack.submit_job("anna", "gemm", 1, Duration::from_secs(600), AppProfile::Dgemm);
        stack.submit_job("bert", "idler", 1, Duration::from_secs(600), AppProfile::IdleJob);
        stack.run_for(Duration::from_secs(900), Duration::from_secs(60));

        let report = stack.usage_report().unwrap();
        assert_eq!(report.by_user.len(), 2);
        // 2 jobs × 1 node × 10 min ≈ 0.33 node-hours.
        assert!((report.total_node_hours - 1.0 / 3.0).abs() < 0.02, "{}", report.total_node_hours);
        let anna = &report.by_user.iter().find(|(u, _)| u == "anna").unwrap().1;
        let bert = &report.by_user.iter().find(|(u, _)| u == "bert").unwrap().1;
        assert!(anna.mean_flops_frac > 0.3, "{}", anna.mean_flops_frac);
        assert_eq!(bert.dominant_pattern(), Some("Idle"));
        assert!(report.render().contains("by application"));
    }

    #[test]
    fn multi_node_db_cluster_replicates_and_merges_queries() {
        let mut config = small_config();
        config.db_nodes = 3;
        config.replication = 2;
        let mut stack = LmsStack::start(config).unwrap();
        stack.run_for(Duration::from_secs(300), Duration::from_secs(60));

        // The ring spreads series over every node, twice each.
        for i in 0..stack.db_node_count() {
            assert!(stack.influx_node(i).point_count("lms") > 0, "node {i} owns no series");
        }
        let per_node: usize =
            (0..stack.db_node_count()).map(|i| stack.influx_node(i).point_count("lms")).sum();
        assert_eq!(per_node, stack.stats().db_points);

        // Scatter-gather through the router sees each raw sample exactly
        // once: replicas deduplicate by LWW merge, and nothing is lost.
        // The deterministic simulation produces the identical sample set
        // on a single-node stack, which serves as the reference.
        let r = stack.router().handle_query("lms", "SELECT busy FROM cpu_total").unwrap();
        assert!(!r.partial);
        let clustered: usize = r.series.iter().map(|s| s.values.len()).sum();

        let mut reference = LmsStack::start(small_config()).unwrap();
        reference.run_for(Duration::from_secs(300), Duration::from_secs(60));
        let r = reference.router().handle_query("lms", "SELECT busy FROM cpu_total").unwrap();
        let single: usize = r.series.iter().map(|s| s.values.len()).sum();
        assert!(single > 0);
        assert_eq!(clustered, single, "cluster read path lost or duplicated samples");
        assert!(stack.shutdown(), "cluster drain completes");
    }

    #[test]
    fn tiered_retention_rolls_up_through_the_stack() {
        let mut config = small_config();
        config.rollup = Some(RollupPolicy {
            retention_raw: Some(Duration::from_secs(7 * 24 * 3600)),
            retention_1m: Some(Duration::from_secs(90 * 24 * 3600)),
            retention_1h: None,
        });
        let mut stack = LmsStack::start(config).unwrap();
        stack.run_for(Duration::from_secs(900), Duration::from_secs(60));
        // Seal heads and run a rollup pass over everything ingested.
        stack.influx().flush_storage().unwrap();

        // The agents' pre-aggregated 60s stream and the database-side pass
        // both feed the 1m tier sibling.
        assert!(
            stack.influx().point_count("lms__rollup_1m") > 0,
            "1m tier empty: {:?}",
            stack.influx().database_names()
        );

        // Tier-served aggregates match the raw-decode answer exactly.
        let q = "SELECT mean(busy), count(busy) FROM cpu_total \
                 WHERE time >= 0 GROUP BY time(5m), hostname";
        stack.influx().set_query_tiers(Some(vec![]));
        let raw = stack.influx().query("lms", q).unwrap();
        stack.influx().set_query_tiers(None);
        let tiered = stack.influx().query("lms", q).unwrap();
        assert_eq!(format!("{raw:?}"), format!("{tiered:?}"), "tier answer diverges from raw");
    }

    #[test]
    fn per_user_slices_get_tier_siblings() {
        let mut config = small_config();
        config.per_user = true;
        config.rollup = Some(RollupPolicy {
            retention_raw: Some(Duration::from_secs(24 * 3600)),
            ..Default::default()
        });
        let mut stack = LmsStack::start(config).unwrap();
        stack.submit_job("dave", "x", 1, Duration::from_secs(900), AppProfile::Stream);
        stack.run_for(Duration::from_secs(600), Duration::from_secs(60));
        stack.influx().flush_storage().unwrap();

        // The user's raw slice exists and its tier siblings materialize —
        // fed by the router's tier-aware duplication (agent 1m stream) and
        // the database-side rollup pass over the raw slice.
        assert!(stack.influx().point_count("user_dave") > 0);
        assert!(
            stack.influx().point_count("user_dave__rollup_1m") > 0,
            "per-user 1m slice empty: {:?}",
            stack.influx().database_names()
        );
        // The raw slice holds no stat-field rows (tier rows must not leak).
        let r = stack.influx().query("user_dave", "SHOW MEASUREMENTS").unwrap();
        for row in &r.series[0].values {
            let m = row[0].as_str().unwrap();
            assert!(!m.starts_with("__rollup"), "tier row leaked into raw slice: {m}");
        }
    }

    #[test]
    fn config_from_ini() {
        let config = StackConfig::from_ini(
            "[cluster]\nnodes = 8\ntopology = desktop_4c\nseed = 7\n\
             db_nodes = 3\nreplication = 2\nwrite_quorum = 2\n\
             [monitoring]\nhpm_groups = FLOPS_DP, MEM, ENERGY\nper_user = yes\n\
             publish = on\nretention_hours = 48\ndata_dir = /var/lib/lms\n\
             drain_timeout_secs = 3\n",
        )
        .unwrap();
        assert_eq!(config.nodes, 8);
        assert_eq!((config.db_nodes, config.replication, config.write_quorum), (3, 2, 2));
        assert_eq!(config.topology.name(), "desktop-1s4c2t");
        assert_eq!(config.seed, 7);
        assert_eq!(config.hpm_groups, vec!["FLOPS_DP", "MEM", "ENERGY"]);
        assert!(config.per_user && config.publish);
        assert_eq!(config.retention, Some(Duration::from_secs(48 * 3600)));
        assert_eq!(config.data_dir, Some(PathBuf::from("/var/lib/lms")));
        assert_eq!(config.drain_timeout, Duration::from_secs(3));
        // Defaults when empty.
        let d = StackConfig::from_ini("").unwrap();
        assert_eq!(d.nodes, 4);
        // Validation.
        assert!(StackConfig::from_ini("[cluster]\nnodes = 0\n").is_err());
        assert!(StackConfig::from_ini("[cluster]\ndb_nodes = 0\n").is_err());
        assert!(StackConfig::from_ini("[cluster]\nreplication = 0\n").is_err());
        assert!(StackConfig::from_ini("[cluster]\nwrite_quorum = 0\n").is_err());
        // R > db_nodes is rejected at stack start (ClusterConfig::validate).
        let mut bad = StackConfig::from_ini("[cluster]\ndb_nodes = 2\nreplication = 3\n").unwrap();
        bad.topology = Topology::preset_desktop_4c();
        assert!(LmsStack::start(bad).is_err());
        assert!(StackConfig::from_ini("[cluster]\ntopology = cray_xc40\n").is_err());
        assert!(StackConfig::from_ini("[monitoring]\nhpm_groups = NOPE\n").is_err());
        assert!(StackConfig::from_ini("[monitoring]\nretention_hours = 0\n").is_err());
        assert!(StackConfig::from_ini("[monitoring]\ndrain_timeout_secs = -1\n").is_err());
        // Tiered retention section (query duration grammar).
        let t = StackConfig::from_ini("[retention]\nraw = 7d\n1m = 90d\n1h = 52w\n").unwrap();
        let policy = t.rollup.unwrap();
        assert_eq!(policy.retention_raw, Some(Duration::from_secs(7 * 24 * 3600)));
        assert_eq!(policy.retention_1m, Some(Duration::from_secs(90 * 24 * 3600)));
        assert_eq!(policy.retention_1h, Some(Duration::from_secs(52 * 7 * 24 * 3600)));
        assert!(StackConfig::from_ini("").unwrap().rollup.is_none());
        assert!(StackConfig::from_ini("[retention]\nraw = bogus\n").is_err());
        // Integrity section: scrub knobs and the repair cadence.
        let i = StackConfig::from_ini(
            "[integrity]\nscrub_interval_secs = 30\nscrub_rate_bytes = 1048576\n\
             repair_interval_secs = 300\n",
        )
        .unwrap();
        assert_eq!(i.scrub_interval, Duration::from_secs(30));
        assert_eq!(i.scrub_rate_bytes, 1024 * 1024);
        assert_eq!(i.repair_interval, Some(Duration::from_secs(300)));
        // Zeros disable; defaults hold when the section is absent.
        let z = StackConfig::from_ini("[integrity]\nrepair_interval_secs = 0\n").unwrap();
        assert_eq!(z.repair_interval, None);
        assert_eq!(z.scrub_interval, Duration::from_secs(60));
        assert_eq!(z.scrub_rate_bytes, 8 * 1024 * 1024);
        assert!(StackConfig::from_ini("[integrity]\nscrub_interval_secs = -1\n").is_err());
        assert!(StackConfig::from_ini("[integrity]\nscrub_rate_bytes = -1\n").is_err());
        assert!(StackConfig::from_ini("[integrity]\nrepair_interval_secs = -1\n").is_err());
    }

    #[test]
    fn graceful_shutdown_drains_the_pipeline() {
        let mut stack = LmsStack::start(small_config()).unwrap();
        stack.run_for(Duration::from_secs(120), Duration::from_secs(60));
        assert!(stack.stats().db_points > 0);
        assert!(stack.shutdown(), "drain must complete within the budget");
    }

    #[test]
    fn viewer_server_serves_dashboards_over_http() {
        let mut stack = LmsStack::start(small_config()).unwrap();
        let addr = stack.start_viewer_server().unwrap();
        let job =
            stack.submit_job("eve", "web", 1, Duration::from_secs(1200), AppProfile::Dgemm);
        stack.run_for(Duration::from_secs(300), Duration::from_secs(60));

        let mut c = lms_http::HttpClient::connect(addr).unwrap();
        // /jobs lists the running job.
        let jobs = lms_util::Json::parse(&c.get("/jobs").unwrap().body_str()).unwrap();
        assert_eq!(jobs.idx(0).unwrap().get("user").unwrap().as_str(), Some("eve"));
        // /dashboard returns valid dashboard JSON for it.
        let r = c.get(&format!("/dashboard?job={job}")).unwrap();
        assert_eq!(r.status, 200);
        let d = lms_dashboard::Dashboard::from_json(
            &lms_util::Json::parse(&r.body_str()).unwrap(),
        )
        .unwrap();
        assert!(d.title.contains(&job.to_string()));
        // /render produces charts; /admin shows the job.
        assert!(c.get(&format!("/render?job={job}")).unwrap().body_str().contains('*'));
        assert!(c.get("/admin").unwrap().body_str().contains("eve"));
        // Idempotent start.
        assert_eq!(stack.start_viewer_server().unwrap(), addr);
    }

    #[test]
    fn stack_restart_with_data_dir_serves_history() {
        let dir =
            std::env::temp_dir().join(format!("lms-stack-persist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut config = small_config();
        config.data_dir = Some(dir.clone());

        let measured = {
            let mut stack = LmsStack::start(config.clone()).unwrap();
            stack.run_for(Duration::from_secs(300), Duration::from_secs(60));
            let r = stack.influx().query("lms", "SELECT count(busy) FROM cpu_total").unwrap();
            r.series[0].values[0][1].as_i64().unwrap()
            // Drop stops the storage worker, flushing heads to disk.
        };
        assert!(measured > 0);

        let stack = LmsStack::start(config).unwrap();
        let r = stack.influx().query("lms", "SELECT count(busy) FROM cpu_total").unwrap();
        assert_eq!(r.series[0].values[0][1].as_i64().unwrap(), measured);
        drop(stack);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retention_enforced_via_stack_clock() {
        let mut config = small_config();
        config.retention = Some(Duration::from_secs(120));
        let mut stack = LmsStack::start(config).unwrap();
        stack.run_for(Duration::from_secs(600), Duration::from_secs(60));
        let before = stack.influx().point_count("lms");
        let evicted = stack.influx().enforce_retention();
        assert!(evicted > 0);
        assert!(stack.influx().point_count("lms") < before);
    }
}
