//! `lms-stack` — run a demonstration deployment of the whole stack.
//!
//! ```text
//! lms-stack [--config <file.ini>] [--minutes <n>] [--jobs <spec>,...]
//! ```
//!
//! `--jobs` takes comma-separated `user:app:nodes:minutes` entries where
//! `app` is one of `dgemm`, `stream`, `minimd`, `idle`, `checkpoint`.
//! Without `--jobs`, a default mixed workload is used. Prints the admin
//! view and each job's evaluation at the end, plus the webviewer address
//! usable while the simulation runs.

use lms_apps::AppProfile;
use lms_core::{LmsStack, StackConfig};
use lms_util::{Error, Result};
use std::time::Duration;

struct JobRequest {
    user: String,
    app: AppProfile,
    app_name: String,
    nodes: usize,
    minutes: u64,
}

fn parse_jobs(spec: &str) -> Result<Vec<JobRequest>> {
    let mut out = Vec::new();
    for entry in spec.split(',').filter(|e| !e.is_empty()) {
        let parts: Vec<&str> = entry.split(':').collect();
        if parts.len() != 4 {
            return Err(Error::config(format!(
                "job `{entry}`: expected user:app:nodes:minutes"
            )));
        }
        let app = AppProfile::parse(parts[1])
            .ok_or_else(|| Error::config(format!("unknown app `{}`", parts[1])))?;
        out.push(JobRequest {
            user: parts[0].to_string(),
            app,
            app_name: parts[1].to_string(),
            nodes: parts[2].parse().map_err(|_| Error::config("bad node count"))?,
            minutes: parts[3].parse().map_err(|_| Error::config("bad minutes"))?,
        });
    }
    Ok(out)
}

fn default_jobs() -> Vec<JobRequest> {
    parse_jobs("anna:dgemm:2:25,bert:stream:1:20,carl:idle:1:30").expect("valid default")
}

fn run() -> Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = StackConfig::default();
    let mut minutes = 30u64;
    let mut jobs = default_jobs();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--config" => {
                let path = it.next().ok_or_else(|| Error::config("--config needs a file"))?;
                let text = std::fs::read_to_string(path)?;
                config = StackConfig::from_ini(&text)?;
            }
            "--minutes" => {
                minutes = it
                    .next()
                    .ok_or_else(|| Error::config("--minutes needs a value"))?
                    .parse()
                    .map_err(|_| Error::config("bad --minutes"))?;
            }
            "--jobs" => {
                jobs = parse_jobs(
                    it.next().ok_or_else(|| Error::config("--jobs needs a spec"))?,
                )?;
            }
            "--help" | "-h" => {
                println!(
                    "usage: lms-stack [--config file.ini] [--minutes n] [--jobs user:app:nodes:minutes,...]"
                );
                return Ok(());
            }
            other => return Err(Error::config(format!("unknown argument `{other}`"))),
        }
    }

    let mut stack = LmsStack::start(config)?;
    let viewer = stack.start_viewer_server()?;
    println!("database : http://{}", stack.db_addr());
    println!("router   : http://{}", stack.router_addr());
    println!("webviewer: http://{}  (GET /jobs /admin /dashboard?job= /render?job=)", viewer);

    let mut ids = Vec::new();
    for j in &jobs {
        let id = stack.submit_job(
            &j.user,
            &j.app_name,
            j.nodes,
            Duration::from_secs(j.minutes * 60),
            j.app,
        );
        println!("submitted job {id}: {}:{} × {} nodes × {} min", j.user, j.app_name, j.nodes, j.minutes);
        ids.push(id);
    }

    println!("\nsimulating {minutes} virtual minutes…");
    stack.run_for(Duration::from_secs(minutes * 60), Duration::from_secs(60));

    println!("\n{}", stack.admin_view()?.text);
    for id in ids {
        println!("{}", stack.evaluate_job(id)?.render_table());
    }
    let stats = stack.stats();
    println!(
        "stats: {} lines routed, {} enriched, {} db points, {} series",
        stats.router.lines_in, stats.router.lines_enriched, stats.db_points, stats.db_series
    );
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("lms-stack: {e}");
        std::process::exit(1);
    }
}
