//! # lms-core
//!
//! The **LIKWID Monitoring Stack** itself: wiring of all components into
//! the architecture of the paper's Fig. 1.
//!
//! ```text
//!  host agents ──HTTP──▶ metrics router ──HTTP──▶ InfluxDB-compatible DB
//!  (sysmon + HPM)         │      ▲                      ▲
//!                         │      └── job signals        │ queries
//!                         ▼          (scheduler)        │
//!                     MQ publisher                viewer agent → dashboards
//!                     (stream analyzers)          admin view, evaluation
//! ```
//!
//! [`LmsStack`] assembles the whole pipeline in one process over real TCP
//! sockets and a simulated cluster: every node has a hardware-counter
//! simulator (`lms-hpm`), a simulated procfs (`lms-sysmon`), a host agent,
//! and an HPM collector; a batch scheduler (`lms-jobsched`) allocates jobs
//! and fires start/end signals at the router; the router tags and forwards
//! into the embedded database; the viewer agent generates dashboards.
//! Virtual time lets an hour-long job run in milliseconds.
//!
//! ```no_run
//! use lms_core::{LmsStack, StackConfig};
//! use lms_apps::AppProfile;
//! use std::time::Duration;
//!
//! let mut stack = LmsStack::start(StackConfig::default()).unwrap();
//! let job = stack.submit_job("alice", "md-run", 2, Duration::from_secs(1800),
//!     AppProfile::MiniMd);
//! stack.run_for(Duration::from_secs(1800), Duration::from_secs(60));
//! println!("{}", stack.render_job_dashboard(job).unwrap());
//! ```

pub mod stack;

pub use stack::{LmsStack, StackConfig, StackStats};
