//! # lms-rollup
//!
//! Downsampling and tiered retention: the continuous rollup pipeline that
//! turns "drop expired segment files" into a storage hierarchy.
//!
//! The paper's per-user database duplication keeps long-horizon,
//! job-specific views cheap while raw data ages out; PerSyst and the MPCDF
//! monitoring system survive production scale the same way — aggregate
//! near the source, retain summaries long-term. This crate holds the
//! pieces every layer of that pipeline shares:
//!
//! - [`Tier`] — the rollup resolutions (1 minute, 1 hour) and their
//!   window math,
//! - [`WindowAcc`] — the per-window accumulator
//!   (count/min/max/sum/sum²/first/last), the same math as the block
//!   summaries of `lms-tsm`,
//! - the **rollup field codec** ([`rollup_fields`], [`RollupValue`]) —
//!   how one raw field's window aggregate is laid out as suffixed fields
//!   (`v` → `v__count`, `v__sum`, …) of an ordinary point whose timestamp
//!   is the window start, so rollup tiers are plain databases served by
//!   the unmodified write/query machinery,
//! - **tier database naming** ([`rollup_db_name`], [`is_rollup_db`],
//!   [`base_db_of`]) — a base database `lms` materializes into sibling
//!   databases `lms__rollup_1m` / `lms__rollup_1h`, each with its own
//!   engine directory, WAL (crash recovery for free) and retention,
//! - [`WindowAggregator`] — the agent-side pre-aggregation window: a node
//!   emits its 1 s raw stream plus a 60 s aggregate stream tagged for
//!   direct ingestion into the 1 m tier.
//!
//! Who writes a tier row is irrelevant: flush-side recomputation, an
//! agent's pre-aggregated stream and a backfill all produce the same
//! schema, and last-write-wins converges them to the exact value computed
//! from the full raw column.

use lms_lineproto::{FieldValue, Point};
use lms_tsm::BlockSummary;

/// The measurement holding the per-database rollup watermark. One point is
/// written into the 1 m tier database per completed rollup pass, with the
/// point's *timestamp* equal to the watermark (every sealed raw point
/// below it is incorporated into the tiers); recovery reads the latest
/// timestamp back.
pub const WATERMARK_MEASUREMENT: &str = "__rollup_watermark";

/// The field carried by watermark points (the value is irrelevant; the
/// timestamp is the payload).
pub const WATERMARK_FIELD: &str = "v";

/// Suffix separator between a raw field name and its rollup statistic.
pub const FIELD_SEP: &str = "__";

/// The rollup statistics stored per raw field, in fixed order. `first_ts`
/// and `last_ts` carry the *original* timestamps of the window's first and
/// last points — the tier row itself is timestamped at the window start,
/// and stitched `first()`/`last()` across several series needs the real
/// timestamps to break ties the same way a raw decode would.
pub const STATS: [&str; 9] =
    ["count", "sum", "sumsq", "min", "max", "first", "last", "first_ts", "last_ts"];

/// A rollup resolution tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Tier {
    /// 1-minute windows.
    Minute,
    /// 1-hour windows.
    Hour,
}

/// All tiers, finest first.
pub const TIERS: [Tier; 2] = [Tier::Minute, Tier::Hour];

impl Tier {
    /// Window width in nanoseconds.
    pub fn window_ns(self) -> i64 {
        match self {
            Tier::Minute => 60 * 1_000_000_000,
            Tier::Hour => 3600 * 1_000_000_000,
        }
    }

    /// The tier's name as used in database suffixes and config keys.
    pub fn suffix(self) -> &'static str {
        match self {
            Tier::Minute => "1m",
            Tier::Hour => "1h",
        }
    }

    /// Parses a tier name (`1m` / `1h`).
    pub fn parse(s: &str) -> Option<Tier> {
        match s {
            "1m" => Some(Tier::Minute),
            "1h" => Some(Tier::Hour),
            _ => None,
        }
    }

    /// Epoch-aligned window start containing `ts`.
    pub fn window_start(self, ts: i64) -> i64 {
        let w = self.window_ns();
        ts.div_euclid(w) * w
    }
}

/// Smallest multiple of `unit` that is `>= ts` (saturating).
pub fn align_up(ts: i64, unit: i64) -> i64 {
    let down = ts.div_euclid(unit) * unit;
    if down == ts {
        ts
    } else {
        down.saturating_add(unit)
    }
}

/// Largest multiple of `unit` that is `<= ts`.
pub fn align_down(ts: i64, unit: i64) -> i64 {
    ts.div_euclid(unit) * unit
}

/// The sibling database holding `base`'s rollup tier, e.g.
/// `lms` → `lms__rollup_1h`. The name stays directory-safe whenever the
/// base name is, so tier databases persist under the same data root.
pub fn rollup_db_name(base: &str, tier: Tier) -> String {
    format!("{base}{FIELD_SEP}rollup_{}", tier.suffix())
}

/// True when `name` is a rollup tier database (which must never itself be
/// rolled up — no rollup-of-rollup).
pub fn is_rollup_db(name: &str) -> bool {
    base_db_of(name).is_some()
}

/// Splits a rollup database name into its base database and tier;
/// `None` for ordinary databases.
pub fn base_db_of(name: &str) -> Option<(&str, Tier)> {
    let (base, rest) = name.rsplit_once(FIELD_SEP)?;
    let tier = Tier::parse(rest.strip_prefix("rollup_")?)?;
    if base.is_empty() {
        return None;
    }
    Some((base, tier))
}

/// The rollup field name of one statistic of a raw field
/// (`v` + `count` → `v__count`).
pub fn stat_field(field: &str, stat: &str) -> String {
    format!("{field}{FIELD_SEP}{stat}")
}

/// Splits a rollup field name back into `(raw field, statistic)`;
/// `None` when the name carries no known statistic suffix.
pub fn split_stat_field(name: &str) -> Option<(&str, &str)> {
    let (field, stat) = name.rsplit_once(FIELD_SEP)?;
    if field.is_empty() || !STATS.contains(&stat) {
        return None;
    }
    Some((field, stat))
}

/// One window's aggregate of one raw field: exactly the state a decode of
/// the window's points accumulates, reusing the block-summary math of
/// `lms-tsm` so flush-side rollups and query-side summaries agree
/// bit-for-bit.
#[derive(Debug, Clone)]
pub struct WindowAcc {
    /// Points in the window.
    pub count: u64,
    /// True once a point had a numeric view (min/max/sum/sum_sq valid).
    pub numeric: bool,
    /// Sum of numeric views.
    pub sum: f64,
    /// Sum of squared numeric views (stddev recombination).
    pub sum_sq: f64,
    /// Smallest numeric view.
    pub min: f64,
    /// Largest numeric view.
    pub max: f64,
    /// `(ts, value)` at the earliest timestamp.
    pub first: Option<(i64, FieldValue)>,
    /// `(ts, value)` at the latest timestamp.
    pub last: Option<(i64, FieldValue)>,
}

impl Default for WindowAcc {
    fn default() -> Self {
        WindowAcc {
            count: 0,
            numeric: false,
            sum: 0.0,
            sum_sq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            first: None,
            last: None,
        }
    }
}

impl WindowAcc {
    /// Accumulates one point (same tie-breaking as the query executor:
    /// `first` keeps the strictly-earlier timestamp, `last` keeps
    /// timestamps `>=` so the last-seen value wins ties).
    pub fn add(&mut self, ts: i64, value: &FieldValue) {
        self.count += 1;
        if self.first.as_ref().is_none_or(|f| ts < f.0) {
            self.first = Some((ts, value.clone()));
        }
        if self.last.as_ref().is_none_or(|l| ts >= l.0) {
            self.last = Some((ts, value.clone()));
        }
        if let Some(x) = lms_tsm::block::numeric_view(value) {
            self.numeric = true;
            self.sum += x;
            self.sum_sq += x * x;
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
    }

    /// Builds the accumulator from a timestamp-ascending run — the same
    /// pass [`BlockSummary::compute`] makes, so a window covered exactly
    /// by one sealed block yields identical floats.
    pub fn from_run(points: &[(i64, FieldValue)]) -> Option<WindowAcc> {
        let summary = BlockSummary::compute(points)?;
        let (first_ts, _) = points[0];
        let (last_ts, _) = points[points.len() - 1];
        Some(WindowAcc {
            count: points.len() as u64,
            numeric: summary.numeric,
            sum: summary.sum,
            sum_sq: summary.sum_sq,
            min: summary.min,
            max: summary.max,
            first: Some((first_ts, summary.first)),
            last: Some((last_ts, summary.last)),
        })
    }

    /// True when nothing was accumulated.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Appends the rollup fields of this accumulator for raw field
    /// `field` onto `out` (the wire/storage schema of a tier row).
    /// Non-numeric fields carry only `count`/`first`/`last`.
    pub fn append_fields(&self, field: &str, out: &mut Vec<(String, FieldValue)>) {
        if self.count == 0 {
            return;
        }
        out.push((stat_field(field, "count"), FieldValue::Integer(self.count as i64)));
        if self.numeric {
            out.push((stat_field(field, "sum"), FieldValue::Float(self.sum)));
            out.push((stat_field(field, "sumsq"), FieldValue::Float(self.sum_sq)));
            out.push((stat_field(field, "min"), FieldValue::Float(self.min)));
            out.push((stat_field(field, "max"), FieldValue::Float(self.max)));
        }
        if let Some((ts, v)) = &self.first {
            out.push((stat_field(field, "first"), v.clone()));
            out.push((stat_field(field, "first_ts"), FieldValue::Integer(*ts)));
        }
        if let Some((ts, v)) = &self.last {
            out.push((stat_field(field, "last"), v.clone()));
            out.push((stat_field(field, "last_ts"), FieldValue::Integer(*ts)));
        }
    }
}

/// Renders one tier row: the rollup fields of `accs` (raw field name →
/// accumulator) as a [`Point`] on the *same* measurement and tag set as
/// the raw series, timestamped at the window start.
pub fn rollup_fields(
    measurement: &str,
    tags: &[(String, String)],
    window_start: i64,
    accs: &[(String, WindowAcc)],
) -> Option<Point> {
    let mut fields = Vec::new();
    for (field, acc) in accs {
        acc.append_fields(field, &mut fields);
    }
    if fields.is_empty() {
        return None;
    }
    let mut point = Point::new(measurement);
    for (k, v) in tags {
        point.add_tag(k.clone(), v.clone());
    }
    for (k, v) in fields {
        point.add_field_value(k, v);
    }
    point.set_timestamp(window_start);
    Some(point)
}

/// Agent-side pre-aggregation: an open set of windows per
/// `(series key, field)`, fed one collected point at a time. Windows close
/// when the clock passes their end (plus nothing arrives out of order on
/// an agent — collectors stamp one tick time), and closing emits tier rows
/// ready to POST at the 1 m tier ingest endpoint.
///
/// This gives a node the paper-prescribed two streams: the 1 s raw batch
/// and a 60 s aggregate batch that lands directly in the 1 m tier.
#[derive(Debug, Default)]
pub struct WindowAggregator {
    window_ns: i64,
    /// Open windows: (series key, window start) → per-field accumulators,
    /// plus the measurement/tags needed to re-emit the row.
    open: Vec<OpenWindow>,
    windows_emitted: u64,
}

#[derive(Debug)]
struct OpenWindow {
    series_key: String,
    measurement: String,
    tags: Vec<(String, String)>,
    window_start: i64,
    accs: Vec<(String, WindowAcc)>,
}

impl WindowAggregator {
    /// An aggregator with `window_ns`-wide epoch-aligned windows
    /// (60 s for the 1 m tier).
    pub fn new(window_ns: i64) -> Self {
        assert!(window_ns > 0, "aggregation window must be positive");
        WindowAggregator { window_ns, open: Vec::new(), windows_emitted: 0 }
    }

    /// The canonical 1 m tier aggregator.
    pub fn minute() -> Self {
        Self::new(Tier::Minute.window_ns())
    }

    /// Feeds one collected point (timestamp `ts` ns).
    pub fn push(&mut self, point: &Point, ts: i64) {
        let w_start = align_down(ts, self.window_ns);
        let key = point.series_key();
        let open = match self
            .open
            .iter_mut()
            .find(|w| w.window_start == w_start && w.series_key == key)
        {
            Some(w) => w,
            None => {
                self.open.push(OpenWindow {
                    series_key: key,
                    measurement: point.measurement().to_string(),
                    tags: point.tags().to_vec(),
                    window_start: w_start,
                    accs: Vec::new(),
                });
                self.open.last_mut().expect("just pushed")
            }
        };
        for (field, value) in point.fields() {
            let acc = match open.accs.iter_mut().find(|(f, _)| f == field) {
                Some((_, acc)) => acc,
                None => {
                    open.accs.push((field.clone(), WindowAcc::default()));
                    &mut open.accs.last_mut().expect("just pushed").1
                }
            };
            acc.add(ts, value);
        }
    }

    /// Closes every window whose end is `<= now_ns` and returns their tier
    /// rows. Call once per tick with the tick's timestamp.
    pub fn close_before(&mut self, now_ns: i64) -> Vec<Point> {
        let mut out = Vec::new();
        let window_ns = self.window_ns;
        let mut kept = Vec::with_capacity(self.open.len());
        for w in self.open.drain(..) {
            if w.window_start.saturating_add(window_ns) <= now_ns {
                if let Some(p) =
                    rollup_fields(&w.measurement, &w.tags, w.window_start, &w.accs)
                {
                    out.push(p);
                }
            } else {
                kept.push(w);
            }
        }
        self.open = kept;
        self.windows_emitted += out.len() as u64;
        out
    }

    /// Flushes every open window regardless of the clock (agent shutdown).
    pub fn flush(&mut self) -> Vec<Point> {
        self.close_before(i64::MAX)
    }

    /// Number of currently open windows.
    pub fn open_windows(&self) -> usize {
        self.open.len()
    }

    /// Windows emitted over the aggregator's lifetime.
    pub fn windows_emitted(&self) -> u64 {
        self.windows_emitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_window_math() {
        assert_eq!(Tier::Minute.window_ns(), 60_000_000_000);
        assert_eq!(Tier::Hour.window_ns(), 3_600_000_000_000);
        assert_eq!(Tier::Minute.window_start(61_000_000_000), 60_000_000_000);
        assert_eq!(Tier::Minute.window_start(-1), -60_000_000_000);
        assert_eq!(align_up(0, 60), 0);
        assert_eq!(align_up(1, 60), 60);
        assert_eq!(align_down(119, 60), 60);
        assert_eq!(align_down(-1, 60), -60);
    }

    #[test]
    fn db_naming_round_trips() {
        let name = rollup_db_name("lms", Tier::Hour);
        assert_eq!(name, "lms__rollup_1h");
        assert!(is_rollup_db(&name));
        assert_eq!(base_db_of(&name), Some(("lms", Tier::Hour)));
        assert!(!is_rollup_db("lms"));
        assert!(!is_rollup_db("user_dave"));
        assert_eq!(base_db_of("user_dave__rollup_1m"), Some(("user_dave", Tier::Minute)));
        // A rollup db never rolls up again, whatever the nesting looks like.
        assert!(base_db_of("__rollup_1m").is_none());
    }

    #[test]
    fn stat_field_round_trips() {
        assert_eq!(stat_field("busy", "sum"), "busy__sum");
        assert_eq!(split_stat_field("busy__sum"), Some(("busy", "sum")));
        assert_eq!(split_stat_field("busy__sumsq"), Some(("busy", "sumsq")));
        assert_eq!(split_stat_field("busy"), None);
        assert_eq!(split_stat_field("busy__median"), None);
        // Raw fields containing the separator still split at the last one.
        assert_eq!(split_stat_field("a__b__count"), Some(("a__b", "count")));
    }

    #[test]
    fn window_acc_matches_block_summary() {
        let points: Vec<(i64, FieldValue)> =
            (0..100).map(|i| (i, FieldValue::Float((i * 7 % 13) as f64))).collect();
        let acc = WindowAcc::from_run(&points).unwrap();
        let mut streamed = WindowAcc::default();
        for (t, v) in &points {
            streamed.add(*t, v);
        }
        assert_eq!(acc.count, streamed.count);
        assert_eq!(acc.sum.to_bits(), streamed.sum.to_bits(), "same accumulation order");
        assert_eq!(acc.sum_sq.to_bits(), streamed.sum_sq.to_bits());
        assert_eq!(acc.min, streamed.min);
        assert_eq!(acc.max, streamed.max);
        assert_eq!(acc.first, streamed.first);
        assert_eq!(acc.last, streamed.last);
    }

    #[test]
    fn non_numeric_fields_carry_count_first_last_only() {
        let mut acc = WindowAcc::default();
        acc.add(1, &FieldValue::Text("a".into()));
        acc.add(2, &FieldValue::Text("b".into()));
        let mut fields = Vec::new();
        acc.append_fields("msg", &mut fields);
        let names: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            names,
            vec!["msg__count", "msg__first", "msg__first_ts", "msg__last", "msg__last_ts"]
        );
        assert_eq!(fields[0].1, FieldValue::Integer(2));
        assert_eq!(fields[3].1, FieldValue::Text("b".into()));
        assert_eq!(fields[4].1, FieldValue::Integer(2));
    }

    #[test]
    fn aggregator_emits_closed_windows() {
        let mut agg = WindowAggregator::minute();
        let w = Tier::Minute.window_ns();
        let mut p = Point::new("cpu");
        p.add_tag("hostname", "h1").add_field("busy", 10.0);
        agg.push(&p, 1_000_000_000);
        agg.push(&p, 2_000_000_000);
        let mut p2 = Point::new("cpu");
        p2.add_tag("hostname", "h1").add_field("busy", 30.0);
        agg.push(&p2, w + 1_000_000_000);
        assert_eq!(agg.open_windows(), 2);

        // Nothing closes before the first window's end.
        assert!(agg.close_before(w - 1).is_empty());
        let rows = agg.close_before(w);
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert_eq!(row.measurement(), "cpu");
        assert_eq!(row.tag("hostname"), Some("h1"));
        assert_eq!(row.timestamp(), Some(0));
        assert_eq!(row.field("busy__count"), Some(&FieldValue::Integer(2)));
        assert_eq!(row.field("busy__sum"), Some(&FieldValue::Float(20.0)));
        assert_eq!(row.field("busy__min"), Some(&FieldValue::Float(10.0)));
        assert_eq!(row.field("busy__first"), Some(&FieldValue::Float(10.0)));
        assert_eq!(agg.open_windows(), 1);
        assert_eq!(agg.flush().len(), 1);
        assert_eq!(agg.open_windows(), 0);
        assert_eq!(agg.windows_emitted(), 2);
    }
}
