//! Performance groups: named event sets + derived-metric formulas.
//!
//! Performance groups are LIKWID's portability abstraction and the reason
//! the paper's stack can say "measure FLOPS_DP" without caring which CPU it
//! runs on. A group file names the events, binds them to counter registers,
//! and defines derived metrics whose formulas reference the registers plus
//! the pseudo-variables `time` and `inverseClock`.
//!
//! This module parses LIKWID's group file format verbatim:
//!
//! ```text
//! SHORT Double Precision MFLOP/s
//!
//! EVENTSET
//! FIXC0 INSTR_RETIRED_ANY
//! PMC0  FP_ARITH_INST_RETIRED_SCALAR_DOUBLE
//!
//! METRICS
//! Runtime (RDTSC) [s] time
//! DP [MFLOP/s] 1.0E-06*(PMC0)/time
//!
//! LONG
//! Free-text documentation…
//! ```
//!
//! In a metric line, the formula is the **last** whitespace-separated token;
//! everything before it (including the `[unit]`) is the metric name — the
//! same convention the real group files use.

use crate::counters::{CounterClass, CounterId, FIXED_WIRING};
use crate::events::EventCatalog;
use crate::formula::Formula;
use lms_topology::Topology;
use lms_util::{Error, Result};

/// One derived metric of a group.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Display name including the unit, e.g. `DP [MFLOP/s]`.
    pub name: String,
    /// The parsed formula.
    pub formula: Formula,
}

/// A performance group: event→counter bindings plus derived metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfGroup {
    name: String,
    short: String,
    long: String,
    events: Vec<(CounterId, String)>,
    metrics: Vec<Metric>,
}

impl PerfGroup {
    /// Parses a group file. `name` is the group's identifier (for real
    /// LIKWID it is the file stem, e.g. `FLOPS_DP`).
    pub fn parse(name: &str, text: &str, catalog: &EventCatalog) -> Result<Self> {
        #[derive(PartialEq)]
        enum Section {
            Preamble,
            EventSet,
            Metrics,
            Long,
        }
        let mut section = Section::Preamble;
        let mut short = String::new();
        let mut long = String::new();
        let mut events: Vec<(CounterId, String)> = Vec::new();
        let mut metrics = Vec::new();

        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            // LONG section is verbatim text; anything else skips blanks/comments.
            if section != Section::Long && (line.is_empty() || line.starts_with('#')) {
                continue;
            }
            match line {
                "EVENTSET" => {
                    section = Section::EventSet;
                    continue;
                }
                "METRICS" => {
                    section = Section::Metrics;
                    continue;
                }
                "LONG" => {
                    section = Section::Long;
                    continue;
                }
                _ => {}
            }
            match section {
                Section::Preamble => {
                    if let Some(rest) = line.strip_prefix("SHORT") {
                        short = rest.trim().to_string();
                    } else {
                        return Err(Error::protocol(format!(
                            "group {name} line {}: expected SHORT/EVENTSET, got `{line}`",
                            lineno + 1
                        )));
                    }
                }
                Section::EventSet => {
                    let (counter, event) = line.split_once(char::is_whitespace).ok_or_else(
                        || {
                            Error::protocol(format!(
                                "group {name} line {}: expected `COUNTER EVENT`",
                                lineno + 1
                            ))
                        },
                    )?;
                    let counter = CounterId::parse(counter)?;
                    let event = event.trim().to_string();
                    let ev = catalog.get(&event).ok_or_else(|| {
                        Error::not_found(format!("group {name}: unknown event `{event}`"))
                    })?;
                    if ev.class != counter.class {
                        return Err(Error::invalid(format!(
                            "group {name}: event `{event}` ({:?}) cannot be counted on {counter}",
                            ev.class
                        )));
                    }
                    if ev.class == CounterClass::Fixed
                        && FIXED_WIRING[counter.slot as usize] != event
                    {
                        return Err(Error::invalid(format!(
                            "group {name}: {counter} is hardwired to {}, not `{event}`",
                            FIXED_WIRING[counter.slot as usize]
                        )));
                    }
                    if events.iter().any(|(c, _)| *c == counter) {
                        return Err(Error::invalid(format!(
                            "group {name}: counter {counter} bound twice"
                        )));
                    }
                    events.push((counter, event));
                }
                Section::Metrics => {
                    let formula_start = line.rfind(char::is_whitespace).ok_or_else(|| {
                        Error::protocol(format!(
                            "group {name} line {}: metric needs a name and a formula",
                            lineno + 1
                        ))
                    })?;
                    let metric_name = line[..formula_start].trim().to_string();
                    let formula = Formula::parse(line[formula_start..].trim())?;
                    metrics.push(Metric { name: metric_name, formula });
                }
                Section::Long => {
                    long.push_str(raw);
                    long.push('\n');
                }
            }
        }

        if events.is_empty() {
            return Err(Error::invalid(format!("group {name}: empty EVENTSET")));
        }

        let group = PerfGroup {
            name: name.to_string(),
            short,
            long: long.trim_end().to_string(),
            events,
            metrics,
        };
        group.validate()?;
        Ok(group)
    }

    /// Checks every metric formula only references bound counters or the
    /// pseudo-variables.
    fn validate(&self) -> Result<()> {
        for m in &self.metrics {
            for var in m.formula.variables() {
                let known = var == "time"
                    || var == "inverseClock"
                    || self.events.iter().any(|(c, _)| c.to_string() == var);
                if !known {
                    return Err(Error::invalid(format!(
                        "group {}: metric `{}` references unbound variable `{var}`",
                        self.name, m.name
                    )));
                }
            }
        }
        Ok(())
    }

    /// Group identifier, e.g. `FLOPS_DP`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// One-line description.
    pub fn short(&self) -> &str {
        &self.short
    }

    /// Long free-text documentation.
    pub fn long(&self) -> &str {
        &self.long
    }

    /// The counter→event bindings, in file order.
    pub fn events(&self) -> &[(CounterId, String)] {
        &self.events
    }

    /// The derived metrics, in file order.
    pub fn metrics(&self) -> &[Metric] {
        &self.metrics
    }

    /// Looks up a metric by exact display name.
    pub fn metric(&self, name: &str) -> Option<&Metric> {
        self.metrics.iter().find(|m| m.name == name)
    }
}

/// Names of all built-in groups.
pub const BUILTIN_GROUPS: &[&str] = &[
    "FLOPS_DP", "FLOPS_SP", "MEM", "L2", "L3", "CLOCK", "ENERGY", "BRANCH", "DATA", "TLB_DATA",
    "CYCLE_STALLS",
];

/// Loads a built-in group by name against the default catalog.
///
/// The `topo` parameter is unused today (all built-ins are valid for the
/// simulated architecture) but kept so sites with multiple node types can
/// resolve per-architecture variants the way real LIKWID does.
pub fn builtin(name: &str, _topo: &Topology) -> Result<PerfGroup> {
    let text = builtin_text(name)
        .ok_or_else(|| Error::not_found(format!("performance group `{name}`")))?;
    PerfGroup::parse(name, text, &EventCatalog::default_arch())
}

/// The group-file text of a built-in group (exposed for tests and docs).
pub fn builtin_text(name: &str) -> Option<&'static str> {
    Some(match name {
        "FLOPS_DP" => FLOPS_DP,
        "FLOPS_SP" => FLOPS_SP,
        "MEM" => MEM,
        "L2" => L2,
        "L3" => L3,
        "CLOCK" => CLOCK,
        "ENERGY" => ENERGY,
        "BRANCH" => BRANCH,
        "DATA" => DATA,
        "TLB_DATA" => TLB_DATA,
        "CYCLE_STALLS" => CYCLE_STALLS,
        _ => return None,
    })
}

const FLOPS_DP: &str = "\
SHORT Double precision FLOP rate

EVENTSET
FIXC0 INSTR_RETIRED_ANY
FIXC1 CPU_CLK_UNHALTED_CORE
FIXC2 CPU_CLK_UNHALTED_REF
PMC0 FP_ARITH_INST_RETIRED_SCALAR_DOUBLE
PMC1 FP_ARITH_INST_RETIRED_128B_PACKED_DOUBLE
PMC2 FP_ARITH_INST_RETIRED_256B_PACKED_DOUBLE

METRICS
Runtime (RDTSC) [s] time
Clock [MHz] 1.0E-06*(FIXC1/FIXC2)/inverseClock
CPI FIXC1/FIXC0
IPC FIXC0/FIXC1
DP [MFLOP/s] 1.0E-06*(PMC0+PMC1*2.0+PMC2*4.0)/time
AVX DP [MFLOP/s] 1.0E-06*(PMC2*4.0)/time
Packed [MUOPS/s] 1.0E-06*(PMC1+PMC2)/time
Scalar [MUOPS/s] 1.0E-06*PMC0/time
Vectorization ratio [%] 100.0*(PMC1+PMC2)/(PMC0+PMC1+PMC2)

LONG
Double-precision FLOP rates decomposed by vector width. The DP [MFLOP/s]
metric weights 128-bit packed uops by 2 and 256-bit packed uops by 4.
";

const FLOPS_SP: &str = "\
SHORT Single precision FLOP rate

EVENTSET
FIXC0 INSTR_RETIRED_ANY
FIXC1 CPU_CLK_UNHALTED_CORE
FIXC2 CPU_CLK_UNHALTED_REF
PMC0 FP_ARITH_INST_RETIRED_SCALAR_SINGLE
PMC1 FP_ARITH_INST_RETIRED_128B_PACKED_SINGLE
PMC2 FP_ARITH_INST_RETIRED_256B_PACKED_SINGLE

METRICS
Runtime (RDTSC) [s] time
Clock [MHz] 1.0E-06*(FIXC1/FIXC2)/inverseClock
CPI FIXC1/FIXC0
SP [MFLOP/s] 1.0E-06*(PMC0+PMC1*4.0+PMC2*8.0)/time
Vectorization ratio [%] 100.0*(PMC1+PMC2)/(PMC0+PMC1+PMC2)

LONG
Single-precision FLOP rates decomposed by vector width.
";

const MEM: &str = "\
SHORT Main memory bandwidth

EVENTSET
FIXC0 INSTR_RETIRED_ANY
FIXC1 CPU_CLK_UNHALTED_CORE
FIXC2 CPU_CLK_UNHALTED_REF
MBOX0C0 CAS_COUNT_RD
MBOX0C1 CAS_COUNT_WR

METRICS
Runtime (RDTSC) [s] time
Memory read bandwidth [MBytes/s] 1.0E-06*MBOX0C0*64.0/time
Memory write bandwidth [MBytes/s] 1.0E-06*MBOX0C1*64.0/time
Memory bandwidth [MBytes/s] 1.0E-06*(MBOX0C0+MBOX0C1)*64.0/time
Memory data volume [GBytes] 1.0E-09*(MBOX0C0+MBOX0C1)*64.0

LONG
DRAM traffic measured at the memory controller via CAS command counts;
each CAS command transfers one 64-byte cache line.
";

const L2: &str = "\
SHORT L2 cache bandwidth

EVENTSET
FIXC0 INSTR_RETIRED_ANY
FIXC1 CPU_CLK_UNHALTED_CORE
FIXC2 CPU_CLK_UNHALTED_REF
PMC0 L1D_REPLACEMENT
PMC1 L1D_M_EVICT

METRICS
Runtime (RDTSC) [s] time
L2D load bandwidth [MBytes/s] 1.0E-06*PMC0*64.0/time
L2D evict bandwidth [MBytes/s] 1.0E-06*PMC1*64.0/time
L2 bandwidth [MBytes/s] 1.0E-06*(PMC0+PMC1)*64.0/time
L2 data volume [GBytes] 1.0E-09*(PMC0+PMC1)*64.0

LONG
Traffic between L1 and L2: L1D replacements (loads) and modified evicts
(stores), 64 bytes each.
";

const L3: &str = "\
SHORT L3 cache bandwidth

EVENTSET
FIXC0 INSTR_RETIRED_ANY
FIXC1 CPU_CLK_UNHALTED_CORE
FIXC2 CPU_CLK_UNHALTED_REF
PMC0 L2_LINES_IN_ALL
PMC1 L2_TRANS_L2_WB

METRICS
Runtime (RDTSC) [s] time
L3 load bandwidth [MBytes/s] 1.0E-06*PMC0*64.0/time
L3 evict bandwidth [MBytes/s] 1.0E-06*PMC1*64.0/time
L3 bandwidth [MBytes/s] 1.0E-06*(PMC0+PMC1)*64.0/time

LONG
Traffic between L2 and L3: lines brought into L2 and L2 writebacks.
";

const CLOCK: &str = "\
SHORT Cycles and clock frequency

EVENTSET
FIXC0 INSTR_RETIRED_ANY
FIXC1 CPU_CLK_UNHALTED_CORE
FIXC2 CPU_CLK_UNHALTED_REF

METRICS
Runtime (RDTSC) [s] time
Clock [MHz] 1.0E-06*(FIXC1/FIXC2)/inverseClock
CPI FIXC1/FIXC0
IPC FIXC0/FIXC1
Instructions [M] 1.0E-06*FIXC0

LONG
Basic cycle accounting: effective clock, CPI/IPC.
";

const ENERGY: &str = "\
SHORT Power and energy (RAPL)

EVENTSET
FIXC0 INSTR_RETIRED_ANY
FIXC1 CPU_CLK_UNHALTED_CORE
FIXC2 CPU_CLK_UNHALTED_REF
PWR0 PWR_PKG_ENERGY
PWR1 PWR_DRAM_ENERGY

METRICS
Runtime (RDTSC) [s] time
Energy [J] PWR0
Power [W] PWR0/time
Energy DRAM [J] PWR1
Power DRAM [W] PWR1/time

LONG
RAPL package and DRAM energy; power is the average over the interval.
";

const BRANCH: &str = "\
SHORT Branch prediction

EVENTSET
FIXC0 INSTR_RETIRED_ANY
FIXC1 CPU_CLK_UNHALTED_CORE
FIXC2 CPU_CLK_UNHALTED_REF
PMC0 BR_INST_RETIRED_ALL_BRANCHES
PMC1 BR_MISP_RETIRED_ALL_BRANCHES

METRICS
Runtime (RDTSC) [s] time
Branch rate PMC0/FIXC0
Branch misprediction rate PMC1/FIXC0
Branch misprediction ratio PMC1/PMC0
Instructions per branch FIXC0/PMC0

LONG
Branch frequency and misprediction behaviour.
";

const DATA: &str = "\
SHORT Load/store mix

EVENTSET
FIXC0 INSTR_RETIRED_ANY
FIXC1 CPU_CLK_UNHALTED_CORE
FIXC2 CPU_CLK_UNHALTED_REF
PMC0 MEM_INST_RETIRED_ALL_LOADS
PMC1 MEM_INST_RETIRED_ALL_STORES

METRICS
Runtime (RDTSC) [s] time
Load to store ratio PMC0/PMC1
Load rate [MUOPS/s] 1.0E-06*PMC0/time
Store rate [MUOPS/s] 1.0E-06*PMC1/time

LONG
Retired load/store instruction mix.
";

const TLB_DATA: &str = "\
SHORT Data TLB miss rate

EVENTSET
FIXC0 INSTR_RETIRED_ANY
FIXC1 CPU_CLK_UNHALTED_CORE
FIXC2 CPU_CLK_UNHALTED_REF
PMC0 DTLB_LOAD_MISSES_WALK_COMPLETED
PMC1 DTLB_STORE_MISSES_WALK_COMPLETED

METRICS
Runtime (RDTSC) [s] time
L1 DTLB load misses PMC0
L1 DTLB load miss rate PMC0/FIXC0
L1 DTLB store misses PMC1
L1 DTLB store miss rate PMC1/FIXC0

LONG
Completed page walks caused by data TLB misses.
";

const CYCLE_STALLS: &str = "\
SHORT Cycle activity / stalls

EVENTSET
FIXC0 INSTR_RETIRED_ANY
FIXC1 CPU_CLK_UNHALTED_CORE
FIXC2 CPU_CLK_UNHALTED_REF
PMC0 CYCLE_ACTIVITY_STALLS_TOTAL
PMC1 UOPS_EXECUTED_THREAD

METRICS
Runtime (RDTSC) [s] time
Total execution stalls PMC0
Stall rate [%] 100.0*PMC0/FIXC1
Uops per cycle PMC1/FIXC1

LONG
Fraction of cycles in which no uop executed.
";

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::preset_desktop_4c()
    }

    #[test]
    fn all_builtins_parse_and_validate() {
        for name in BUILTIN_GROUPS {
            let g = builtin(name, &topo()).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(g.name(), *name);
            assert!(!g.short().is_empty(), "{name} missing SHORT");
            assert!(!g.long().is_empty(), "{name} missing LONG");
            assert!(!g.metrics().is_empty(), "{name} has no metrics");
        }
    }

    #[test]
    fn unknown_builtin() {
        assert!(builtin("NOPE", &topo()).is_err());
        assert!(builtin_text("NOPE").is_none());
    }

    #[test]
    fn flops_dp_structure() {
        let g = builtin("FLOPS_DP", &topo()).unwrap();
        assert_eq!(g.events().len(), 6);
        let m = g.metric("DP [MFLOP/s]").unwrap();
        assert!(m.formula.variables().contains(&"PMC2"));
        assert!(g.metric("No Such Metric").is_none());
    }

    #[test]
    fn metric_name_can_contain_spaces_and_unit() {
        let g = builtin("MEM", &topo()).unwrap();
        assert!(g.metric("Memory read bandwidth [MBytes/s]").is_some());
        assert!(g.metric("Memory data volume [GBytes]").is_some());
    }

    #[test]
    fn rejects_event_on_wrong_class() {
        let cat = EventCatalog::default_arch();
        let text = "SHORT x\nEVENTSET\nPMC0 CAS_COUNT_RD\nMETRICS\nm PMC0\n";
        let err = PerfGroup::parse("X", text, &cat).unwrap_err();
        assert!(err.to_string().contains("cannot be counted"));
    }

    #[test]
    fn rejects_wrong_fixed_slot() {
        let cat = EventCatalog::default_arch();
        let text = "SHORT x\nEVENTSET\nFIXC0 CPU_CLK_UNHALTED_CORE\nMETRICS\nm FIXC0\n";
        let err = PerfGroup::parse("X", text, &cat).unwrap_err();
        assert!(err.to_string().contains("hardwired"));
    }

    #[test]
    fn rejects_double_bound_counter() {
        let cat = EventCatalog::default_arch();
        let text =
            "SHORT x\nEVENTSET\nPMC0 L1D_REPLACEMENT\nPMC0 L1D_M_EVICT\nMETRICS\nm PMC0\n";
        assert!(PerfGroup::parse("X", text, &cat).is_err());
    }

    #[test]
    fn rejects_unbound_formula_variable() {
        let cat = EventCatalog::default_arch();
        let text = "SHORT x\nEVENTSET\nPMC0 L1D_REPLACEMENT\nMETRICS\nbad PMC3/time\n";
        let err = PerfGroup::parse("X", text, &cat).unwrap_err();
        assert!(err.to_string().contains("unbound variable"));
    }

    #[test]
    fn rejects_unknown_event_and_empty_eventset() {
        let cat = EventCatalog::default_arch();
        assert!(PerfGroup::parse("X", "SHORT x\nEVENTSET\nPMC0 NOT_AN_EVENT\n", &cat).is_err());
        assert!(PerfGroup::parse("X", "SHORT x\nMETRICS\nm time\n", &cat).is_err());
    }

    #[test]
    fn comments_and_blank_lines_tolerated() {
        let cat = EventCatalog::default_arch();
        let text = "\
# a comment
SHORT test group

EVENTSET
# fixed counters
FIXC0 INSTR_RETIRED_ANY

METRICS
runtime time
";
        let g = PerfGroup::parse("T", text, &cat).unwrap();
        assert_eq!(g.events().len(), 1);
        assert_eq!(g.metrics().len(), 1);
    }
}
