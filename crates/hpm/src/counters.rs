//! The counter register file and event→register allocation.
//!
//! Real PMUs have a small number of programmable counters per hardware
//! thread (plus fixed-function counters hardwired to specific events, and
//! per-socket uncore/energy counters). LIKWID's job — and this module's —
//! is to map a requested event set onto compatible free registers, or report
//! that the set does not fit (the reason LIKWID groups are sized the way
//! they are).

use crate::events::{Event, EventCatalog};
use lms_util::{Error, Result};

/// The register classes of the simulated PMU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CounterClass {
    /// Fixed-function core counters `FIXC0..FIXC2`. Each is hardwired to
    /// one specific event (instructions, core cycles, reference cycles).
    Fixed,
    /// General-purpose core counters `PMC0..PMC3` (any `Pmc` event).
    Pmc,
    /// Uncore memory-controller counters `MBOX0C0..MBOX0C3` (per socket).
    Uncore,
    /// Energy status registers `PWR0..PWR1` (per socket, monotonic Joules).
    Energy,
}

impl CounterClass {
    /// Number of registers of this class (per thread for core classes,
    /// per socket for uncore/energy).
    pub fn capacity(self) -> usize {
        match self {
            CounterClass::Fixed => 3,
            CounterClass::Pmc => 4,
            CounterClass::Uncore => 4,
            CounterClass::Energy => 2,
        }
    }

    /// Register name prefix.
    pub fn prefix(self) -> &'static str {
        match self {
            CounterClass::Fixed => "FIXC",
            CounterClass::Pmc => "PMC",
            CounterClass::Uncore => "MBOX0C",
            CounterClass::Energy => "PWR",
        }
    }

    /// True when one instance exists per socket rather than per thread.
    pub fn is_socket_scope(self) -> bool {
        matches!(self, CounterClass::Uncore | CounterClass::Energy)
    }
}

/// A concrete register: class + slot, e.g. `PMC2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CounterId {
    /// Register class.
    pub class: CounterClass,
    /// Slot within the class, `0..class.capacity()`.
    pub slot: u8,
}

impl CounterId {
    /// Parses a register name like `PMC0`, `FIXC2`, `MBOX0C1`, `PWR1`.
    pub fn parse(name: &str) -> Result<Self> {
        for class in
            [CounterClass::Uncore, CounterClass::Fixed, CounterClass::Pmc, CounterClass::Energy]
        {
            // Uncore first: "MBOX0C1" must not be claimed by a shorter prefix.
            if let Some(rest) = name.strip_prefix(class.prefix()) {
                let slot: u8 = rest
                    .parse()
                    .map_err(|_| Error::protocol(format!("bad counter name `{name}`")))?;
                if (slot as usize) >= class.capacity() {
                    return Err(Error::invalid(format!(
                        "counter `{name}` out of range (class has {})",
                        class.capacity()
                    )));
                }
                return Ok(CounterId { class, slot });
            }
        }
        Err(Error::protocol(format!("unknown counter `{name}`")))
    }
}

impl std::fmt::Display for CounterId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}{}", self.class.prefix(), self.slot)
    }
}

/// Fixed-function wiring: which event each FIXC slot counts.
pub const FIXED_WIRING: [&str; 3] =
    ["INSTR_RETIRED_ANY", "CPU_CLK_UNHALTED_CORE", "CPU_CLK_UNHALTED_REF"];

/// An event assigned to a register.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    /// Event name (points into the catalog).
    pub event: &'static str,
    /// The register counting it.
    pub counter: CounterId,
}

/// Allocates a set of events onto the register file.
///
/// Fixed-class events go to their hardwired slot; each other class hands out
/// slots in order. Duplicate events are rejected (LIKWID would too — the
/// same event never needs two registers).
pub fn allocate(events: &[&str], catalog: &EventCatalog) -> Result<Vec<Assignment>> {
    let mut assignments = Vec::with_capacity(events.len());
    let mut next_slot = [0usize; 3]; // Pmc, Uncore, Energy
    for &name in events {
        if assignments.iter().any(|a: &Assignment| a.event == name) {
            return Err(Error::invalid(format!("event `{name}` requested twice")));
        }
        let event: &Event = catalog
            .get(name)
            .ok_or_else(|| Error::not_found(format!("event `{name}` not in catalog")))?;
        let counter = match event.class {
            CounterClass::Fixed => {
                let slot = FIXED_WIRING
                    .iter()
                    .position(|&w| w == name)
                    .ok_or_else(|| Error::invalid(format!("no fixed slot wired for `{name}`")))?;
                CounterId { class: CounterClass::Fixed, slot: slot as u8 }
            }
            class => {
                let idx = match class {
                    CounterClass::Pmc => 0,
                    CounterClass::Uncore => 1,
                    CounterClass::Energy => 2,
                    CounterClass::Fixed => unreachable!(),
                };
                let slot = next_slot[idx];
                if slot >= class.capacity() {
                    return Err(Error::invalid(format!(
                        "event set needs more than {} {:?} counters",
                        class.capacity(),
                        class
                    )));
                }
                next_slot[idx] += 1;
                CounterId { class, slot: slot as u8 }
            }
        };
        assignments.push(Assignment { event: event.name, counter });
    }
    Ok(assignments)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_name_round_trip() {
        for name in ["FIXC0", "FIXC2", "PMC0", "PMC3", "MBOX0C1", "PWR0", "PWR1"] {
            let c = CounterId::parse(name).unwrap();
            assert_eq!(c.to_string(), name);
        }
    }

    #[test]
    fn counter_name_errors() {
        assert!(CounterId::parse("PMC4").is_err()); // only 4 PMCs (0..3)
        assert!(CounterId::parse("FIXC3").is_err());
        assert!(CounterId::parse("XYZ0").is_err());
        assert!(CounterId::parse("PMC").is_err());
        assert!(CounterId::parse("PWR2").is_err());
    }

    #[test]
    fn allocation_respects_fixed_wiring() {
        let cat = EventCatalog::default_arch();
        let a = allocate(&["CPU_CLK_UNHALTED_CORE", "INSTR_RETIRED_ANY"], &cat).unwrap();
        assert_eq!(a[0].counter.to_string(), "FIXC1");
        assert_eq!(a[1].counter.to_string(), "FIXC0");
    }

    #[test]
    fn allocation_hands_out_pmc_slots_in_order() {
        let cat = EventCatalog::default_arch();
        let a = allocate(
            &["L1D_REPLACEMENT", "L2_LINES_IN_ALL", "BR_INST_RETIRED_ALL_BRANCHES"],
            &cat,
        )
        .unwrap();
        let regs: Vec<_> = a.iter().map(|x| x.counter.to_string()).collect();
        assert_eq!(regs, vec!["PMC0", "PMC1", "PMC2"]);
    }

    #[test]
    fn allocation_mixes_classes_independently() {
        let cat = EventCatalog::default_arch();
        let a = allocate(
            &["INSTR_RETIRED_ANY", "L1D_REPLACEMENT", "CAS_COUNT_RD", "PWR_PKG_ENERGY", "CAS_COUNT_WR"],
            &cat,
        )
        .unwrap();
        let regs: Vec<_> = a.iter().map(|x| x.counter.to_string()).collect();
        assert_eq!(regs, vec!["FIXC0", "PMC0", "MBOX0C0", "PWR0", "MBOX0C1"]);
    }

    #[test]
    fn allocation_overflow_detected() {
        let cat = EventCatalog::default_arch();
        // 5 PMC events > 4 PMC registers.
        let too_many = [
            "L1D_REPLACEMENT",
            "L1D_M_EVICT",
            "L2_LINES_IN_ALL",
            "L2_TRANS_L2_WB",
            "BR_INST_RETIRED_ALL_BRANCHES",
        ];
        let err = allocate(&too_many, &cat).unwrap_err();
        assert!(err.to_string().contains("more than 4"));
    }

    #[test]
    fn allocation_rejects_duplicates_and_unknown() {
        let cat = EventCatalog::default_arch();
        assert!(allocate(&["L1D_REPLACEMENT", "L1D_REPLACEMENT"], &cat).is_err());
        assert!(allocate(&["MADE_UP_EVENT"], &cat).is_err());
    }

    #[test]
    fn socket_scope_classes() {
        assert!(CounterClass::Uncore.is_socket_scope());
        assert!(CounterClass::Energy.is_socket_scope());
        assert!(!CounterClass::Fixed.is_socket_scope());
        assert!(!CounterClass::Pmc.is_socket_scope());
    }
}
