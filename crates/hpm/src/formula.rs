//! The derived-metric formula engine.
//!
//! LIKWID performance groups define derived metrics as arithmetic formulas
//! over counter names and the pseudo-variables `time` (measurement duration
//! in seconds) and `inverseClock` (1 / nominal clock). Example from the real
//! `FLOPS_DP` group:
//!
//! ```text
//! 1.0E-06*(PMC0*2.0+PMC1*4.0+PMC2)/time
//! ```
//!
//! This module parses such formulas into a small AST once (at group load
//! time) and evaluates them per measurement with IEEE semantics — division
//! by zero yields ±inf/NaN, which the analysis layer treats as "no data".
//!
//! Grammar (precedence climbing):
//!
//! ```text
//! expr   := term (('+' | '-') term)*
//! term   := unary (('*' | '/') unary)*
//! unary  := '-' unary | primary
//! primary:= NUMBER | IDENT | IDENT '(' expr (',' expr)* ')' | '(' expr ')'
//! ```
//!
//! Supported functions: `min`, `max` (used by some LIKWID groups).

use lms_util::{Error, Result};

/// A parsed formula.
#[derive(Debug, Clone, PartialEq)]
pub struct Formula {
    source: String,
    ast: Node,
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Num(f64),
    Var(String),
    Neg(Box<Node>),
    Add(Box<Node>, Box<Node>),
    Sub(Box<Node>, Box<Node>),
    Mul(Box<Node>, Box<Node>),
    Div(Box<Node>, Box<Node>),
    Min(Box<Node>, Box<Node>),
    Max(Box<Node>, Box<Node>),
}

/// Resolves variable names during evaluation.
pub trait VarResolver {
    /// The value of `name`, or `None` if unknown.
    fn resolve(&self, name: &str) -> Option<f64>;
}

impl<F: Fn(&str) -> Option<f64>> VarResolver for F {
    fn resolve(&self, name: &str) -> Option<f64> {
        self(name)
    }
}

impl Formula {
    /// Parses a formula. Errors carry the offending position.
    pub fn parse(src: &str) -> Result<Self> {
        let tokens = tokenize(src)?;
        let mut p = Parser { tokens: &tokens, pos: 0, src };
        let ast = p.expr()?;
        if p.pos != p.tokens.len() {
            return Err(Error::protocol(format!(
                "formula `{src}`: unexpected trailing input at token {}",
                p.pos
            )));
        }
        Ok(Formula { source: src.to_string(), ast })
    }

    /// The original source text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// All variable names referenced, in first-use order (deduplicated).
    pub fn variables(&self) -> Vec<&str> {
        let mut out = Vec::new();
        fn walk<'a>(n: &'a Node, out: &mut Vec<&'a str>) {
            match n {
                Node::Var(v) => {
                    if !out.contains(&v.as_str()) {
                        out.push(v);
                    }
                }
                Node::Num(_) => {}
                Node::Neg(a) => walk(a, out),
                Node::Add(a, b)
                | Node::Sub(a, b)
                | Node::Mul(a, b)
                | Node::Div(a, b)
                | Node::Min(a, b)
                | Node::Max(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
            }
        }
        walk(&self.ast, &mut out);
        out
    }

    /// Evaluates with the given variable resolver. Unknown variables are an
    /// error (a group referencing a counter it did not program is a bug).
    pub fn eval(&self, vars: &dyn VarResolver) -> Result<f64> {
        fn go(n: &Node, vars: &dyn VarResolver) -> Result<f64> {
            Ok(match n {
                Node::Num(v) => *v,
                Node::Var(name) => vars
                    .resolve(name)
                    .ok_or_else(|| Error::not_found(format!("formula variable `{name}`")))?,
                Node::Neg(a) => -go(a, vars)?,
                Node::Add(a, b) => go(a, vars)? + go(b, vars)?,
                Node::Sub(a, b) => go(a, vars)? - go(b, vars)?,
                Node::Mul(a, b) => go(a, vars)? * go(b, vars)?,
                Node::Div(a, b) => go(a, vars)? / go(b, vars)?,
                Node::Min(a, b) => go(a, vars)?.min(go(b, vars)?),
                Node::Max(a, b) => go(a, vars)?.max(go(b, vars)?),
            })
        }
        go(&self.ast, vars)
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Num(f64),
    Ident(String),
    Plus,
    Minus,
    Star,
    Slash,
    LParen,
    RParen,
    Comma,
}

fn tokenize(src: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' => i += 1,
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '-' => {
                out.push(Token::Minus);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '/' => {
                out.push(Token::Slash);
                i += 1;
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '0'..='9' | '.' => {
                let start = i;
                while i < bytes.len() && matches!(bytes[i] as char, '0'..='9' | '.') {
                    i += 1;
                }
                // scientific notation: 1.0E-06, 2e9
                if i < bytes.len() && matches!(bytes[i] as char, 'e' | 'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && matches!(bytes[j] as char, '+' | '-') {
                        j += 1;
                    }
                    if j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                        i = j;
                        while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &src[start..i];
                let v: f64 = text
                    .parse()
                    .map_err(|_| Error::protocol(format!("bad number `{text}` in formula")))?;
                out.push(Token::Num(v));
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len()
                    && matches!(bytes[i] as char, 'a'..='z' | 'A'..='Z' | '0'..='9' | '_')
                {
                    i += 1;
                }
                out.push(Token::Ident(src[start..i].to_string()));
            }
            other => {
                return Err(Error::protocol(format!(
                    "formula `{src}`: unexpected character `{other}` at byte {i}"
                )))
            }
        }
    }
    Ok(out)
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
    src: &'a str,
}

impl Parser<'_> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<&Token> {
        let t = self.tokens.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: &Token) -> Result<()> {
        match self.next().cloned() {
            Some(got) if got == *t => Ok(()),
            other => Err(Error::protocol(format!(
                "formula `{}`: expected {t:?}, found {other:?}",
                self.src
            ))),
        }
    }

    fn expr(&mut self) -> Result<Node> {
        let mut lhs = self.term()?;
        loop {
            match self.peek() {
                Some(Token::Plus) => {
                    self.pos += 1;
                    lhs = Node::Add(Box::new(lhs), Box::new(self.term()?));
                }
                Some(Token::Minus) => {
                    self.pos += 1;
                    lhs = Node::Sub(Box::new(lhs), Box::new(self.term()?));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn term(&mut self) -> Result<Node> {
        let mut lhs = self.unary()?;
        loop {
            match self.peek() {
                Some(Token::Star) => {
                    self.pos += 1;
                    lhs = Node::Mul(Box::new(lhs), Box::new(self.unary()?));
                }
                Some(Token::Slash) => {
                    self.pos += 1;
                    lhs = Node::Div(Box::new(lhs), Box::new(self.unary()?));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn unary(&mut self) -> Result<Node> {
        if matches!(self.peek(), Some(Token::Minus)) {
            self.pos += 1;
            return Ok(Node::Neg(Box::new(self.unary()?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Node> {
        match self.next().cloned() {
            Some(Token::Num(v)) => Ok(Node::Num(v)),
            Some(Token::Ident(name)) => {
                if matches!(self.peek(), Some(Token::LParen)) {
                    self.pos += 1;
                    let a = self.expr()?;
                    self.expect(&Token::Comma)?;
                    let b = self.expr()?;
                    self.expect(&Token::RParen)?;
                    match name.as_str() {
                        "min" => Ok(Node::Min(Box::new(a), Box::new(b))),
                        "max" => Ok(Node::Max(Box::new(a), Box::new(b))),
                        other => {
                            Err(Error::protocol(format!("unknown formula function `{other}`")))
                        }
                    }
                } else {
                    Ok(Node::Var(name))
                }
            }
            Some(Token::LParen) => {
                let inner = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(inner)
            }
            other => Err(Error::protocol(format!(
                "formula `{}`: expected value, found {other:?}",
                self.src
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lms_util::FxHashMap;

    fn eval(src: &str, vars: &[(&str, f64)]) -> f64 {
        let map: FxHashMap<String, f64> =
            vars.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        Formula::parse(src)
            .unwrap()
            .eval(&|name: &str| map.get(name).copied())
            .unwrap()
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(eval("1+2*3", &[]), 7.0);
        assert_eq!(eval("(1+2)*3", &[]), 9.0);
        assert_eq!(eval("2-3-4", &[]), -5.0); // left associative
        assert_eq!(eval("16/4/2", &[]), 2.0);
        assert_eq!(eval("-2*-3", &[]), 6.0);
        assert_eq!(eval("--5", &[]), 5.0);
    }

    #[test]
    fn scientific_notation() {
        assert_eq!(eval("1.0E-06", &[]), 1.0e-6);
        assert_eq!(eval("2e9", &[]), 2.0e9);
        assert_eq!(eval("1.5E+3", &[]), 1500.0);
    }

    #[test]
    fn real_likwid_flops_dp_formula() {
        // DP MFLOP/s = 1E-6*(scalar + 2*sse + 4*avx)/time
        let v = eval(
            "1.0E-06*(PMC0+PMC1*2.0+PMC2*4.0)/time",
            &[("PMC0", 1e9), ("PMC1", 1e9), ("PMC2", 1e9), ("time", 2.0)],
        );
        assert!((v - 3500.0).abs() < 1e-9);
    }

    #[test]
    fn real_likwid_membw_formula() {
        // MByte/s = 1E-6*(RD+WR)*64/time
        let v = eval(
            "1.0E-06*(MBOX0C0+MBOX0C1)*64.0/time",
            &[("MBOX0C0", 1e8), ("MBOX0C1", 5e7), ("time", 1.0)],
        );
        assert!((v - 9600.0).abs() < 1e-9);
    }

    #[test]
    fn min_max_functions() {
        assert_eq!(eval("min(3,5)", &[]), 3.0);
        assert_eq!(eval("max(3,5)", &[]), 5.0);
        assert_eq!(eval("max(1+1,min(10,4))", &[]), 4.0);
    }

    #[test]
    fn variables_listing() {
        let f = Formula::parse("1.0E-06*(PMC0+PMC1*2.0+PMC0)/time").unwrap();
        assert_eq!(f.variables(), vec!["PMC0", "PMC1", "time"]);
        assert_eq!(f.source(), "1.0E-06*(PMC0+PMC1*2.0+PMC0)/time");
    }

    #[test]
    fn unknown_variable_is_an_error() {
        let f = Formula::parse("FIXC0/time").unwrap();
        assert!(f.eval(&|_: &str| None).is_err());
    }

    #[test]
    fn division_by_zero_is_ieee() {
        assert!(eval("1/0", &[]).is_infinite());
        assert!(eval("0/0", &[]).is_nan());
    }

    #[test]
    fn parse_errors() {
        for bad in ["", "1+", "(1", "1)", "min(1)", "foo(1,2)", "1 2", "1..5", "a$b"] {
            assert!(Formula::parse(bad).is_err(), "should reject `{bad}`");
        }
    }

    #[test]
    fn whitespace_tolerated() {
        assert_eq!(eval("  1 +\t2 ", &[]), 3.0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// A reference "interpreter": build random expression trees, render
        /// them to text, parse with the engine, and compare evaluations.
        #[derive(Debug, Clone)]
        enum RefExpr {
            Num(f64),
            Var(usize),
            Add(Box<RefExpr>, Box<RefExpr>),
            Sub(Box<RefExpr>, Box<RefExpr>),
            Mul(Box<RefExpr>, Box<RefExpr>),
        }

        impl RefExpr {
            fn render(&self) -> String {
                match self {
                    RefExpr::Num(v) => format!("{v:?}"),
                    RefExpr::Var(i) => format!("V{i}"),
                    RefExpr::Add(a, b) => format!("({}+{})", a.render(), b.render()),
                    RefExpr::Sub(a, b) => format!("({}-{})", a.render(), b.render()),
                    RefExpr::Mul(a, b) => format!("({}*{})", a.render(), b.render()),
                }
            }

            fn eval(&self, vars: &[f64]) -> f64 {
                match self {
                    RefExpr::Num(v) => *v,
                    RefExpr::Var(i) => vars[*i],
                    RefExpr::Add(a, b) => a.eval(vars) + b.eval(vars),
                    RefExpr::Sub(a, b) => a.eval(vars) - b.eval(vars),
                    RefExpr::Mul(a, b) => a.eval(vars) * b.eval(vars),
                }
            }
        }

        fn expr_strategy() -> impl Strategy<Value = RefExpr> {
            let leaf = prop_oneof![
                (-1.0e3..1.0e3f64).prop_map(RefExpr::Num),
                (0usize..4).prop_map(RefExpr::Var),
            ];
            leaf.prop_recursive(4, 32, 2, |inner| {
                prop_oneof![
                    (inner.clone(), inner.clone())
                        .prop_map(|(a, b)| RefExpr::Add(Box::new(a), Box::new(b))),
                    (inner.clone(), inner.clone())
                        .prop_map(|(a, b)| RefExpr::Sub(Box::new(a), Box::new(b))),
                    (inner.clone(), inner)
                        .prop_map(|(a, b)| RefExpr::Mul(Box::new(a), Box::new(b))),
                ]
            })
        }

        proptest! {
            #[test]
            fn engine_matches_reference(
                e in expr_strategy(),
                vars in proptest::collection::vec(-100.0..100.0f64, 4),
            ) {
                let text = e.render();
                let f = Formula::parse(&text).unwrap();
                let got = f
                    .eval(&|name: &str| {
                        name.strip_prefix('V')
                            .and_then(|i| i.parse::<usize>().ok())
                            .map(|i| vars[i])
                    })
                    .unwrap();
                let want = e.eval(&vars);
                if want.is_finite() {
                    let tol = 1e-9_f64.max(want.abs() * 1e-12);
                    prop_assert!((got - want).abs() <= tol, "{text}: {got} != {want}");
                }
            }
        }
    }
}
