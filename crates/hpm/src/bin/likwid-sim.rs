//! `likwid-sim` — the standalone command-line face of the HPM substrate,
//! mirroring the LIKWID tools the paper's stack builds on:
//!
//! ```text
//! likwid-sim topology                      # likwid-topology
//! likwid-sim groups                        # likwid-perfctr -a
//! likwid-sim group FLOPS_DP                # show a group file
//! likwid-sim perfctr -g MEM -w stream -t 2 [-c S0:0-9]   # likwid-perfctr
//! ```
//!
//! Workload presets for `-w`: `dgemm`, `stream`, `balanced`, `idle`.

use lms_hpm::groups::{builtin, builtin_text, BUILTIN_GROUPS};
use lms_hpm::perfmon::Perfmon;
use lms_hpm::simulate::{Simulator, WorkloadPreset};
use lms_topology::{CpuSet, Topology};
use lms_util::{Error, Result};
use std::time::Duration;

fn topology_cmd(topo: &Topology) {
    println!("--------------------------------------------------------------");
    println!("CPU name:\t{} (simulated)", topo.name());
    println!("CPU clock:\t{:.2} GHz", topo.nominal_hz() / 1e9);
    println!("Sockets:\t\t{}", topo.num_sockets());
    println!("Cores per socket:\t{}", topo.cores_per_socket());
    println!("Threads per core:\t{}", topo.threads_per_core());
    println!("Hardware threads:\t{}", topo.num_hw_threads());
    println!("NUMA domains:\t\t{}", topo.num_numa_domains());
    println!("Peak DP:\t\t{:.1} GFLOP/s", topo.peak_flops_dp() / 1e9);
    println!("Peak mem bw:\t\t{:.1} GB/s", topo.peak_mem_bw() / 1e9);
    println!("--------------------------------------------------------------");
    println!("{:<6} {:<8} {:<6} {:<5} {:<5}", "HWT", "socket", "core", "smt", "numa");
    for t in topo.hw_threads() {
        println!("{:<6} {:<8} {:<6} {:<5} {:<5}", t.id, t.socket, t.core, t.smt, t.numa);
    }
    println!("--------------------------------------------------------------");
    println!("Caches:");
    for c in topo.caches() {
        println!(
            "  {:?}: {} per {} core(s), {}-byte lines",
            c.kind,
            lms_util::fmt::bytes(c.size_bytes),
            c.shared_by_cores,
            c.line_bytes
        );
    }
}

fn groups_cmd(topo: &Topology) {
    println!("{:<14} Description", "Group");
    println!("{:-<60}", "");
    for name in BUILTIN_GROUPS {
        let g = builtin(name, topo).expect("builtin parses");
        println!("{name:<14} {}", g.short());
    }
}

fn perfctr_cmd(topo: &Topology, args: &[String]) -> Result<()> {
    let mut group_name = "FLOPS_DP".to_string();
    let mut preset = WorkloadPreset::Balanced;
    let mut seconds = 1.0f64;
    let mut cpuset: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-g" => {
                group_name =
                    it.next().ok_or_else(|| Error::config("-g needs a group"))?.clone()
            }
            "-w" => {
                preset = match it
                    .next()
                    .ok_or_else(|| Error::config("-w needs a workload"))?
                    .as_str()
                {
                    "dgemm" => WorkloadPreset::ComputeBound,
                    "stream" => WorkloadPreset::MemoryBound,
                    "balanced" => WorkloadPreset::Balanced,
                    "idle" => WorkloadPreset::Idle,
                    other => return Err(Error::config(format!("unknown workload `{other}`"))),
                }
            }
            "-t" => {
                seconds = it
                    .next()
                    .ok_or_else(|| Error::config("-t needs seconds"))?
                    .parse()
                    .map_err(|_| Error::config("bad -t value"))?
            }
            "-c" => cpuset = Some(it.next().ok_or_else(|| Error::config("-c needs a cpuset"))?.clone()),
            other => return Err(Error::config(format!("unknown perfctr argument `{other}`"))),
        }
    }

    let threads = match &cpuset {
        Some(expr) => CpuSet::parse(expr, topo)?,
        None => CpuSet::from_ids(topo.primary_threads()),
    };

    let mut sim = Simulator::new(topo, 42);
    sim.assign(threads.iter(), preset.model(topo));
    let mut pm = Perfmon::new(topo.clone());
    pm.set_threads(threads.ids().to_vec())?;
    pm.add_group(builtin(&group_name, topo)?)?;
    pm.start(&sim);
    sim.advance(Duration::from_secs_f64(seconds));
    let m = pm.stop_and_read(&sim)?;

    println!("Group {group_name}, workload {preset:?}, {seconds} s on cpus {}", threads.to_compact_string());
    println!("{:-<72}", "");
    // Raw counters: first 4 measured threads (likwid's table gets wide fast).
    let shown = m.threads().iter().take(4).copied().collect::<Vec<_>>();
    print!("{:<34}", "counter / event");
    for t in &shown {
        print!("{:>12}", format!("HWT {t}"));
    }
    println!();
    let group = builtin(&group_name, topo)?;
    for (counter, event) in group.events() {
        let values = m.counter_values(&counter.to_string()).expect("counter measured");
        print!("{:<34}", format!("{counter} {event}"));
        for (i, _) in shown.iter().enumerate() {
            print!("{:>12.3e}", values[i]);
        }
        println!();
    }
    println!("{:-<72}", "");
    println!("{:<44}{:>14}", "derived metric", "aggregate");
    for name in m.metric_names().map(str::to_string).collect::<Vec<_>>() {
        let v = m.metric_aggregate(&name)?;
        println!("{name:<44}{v:>14.4}");
    }
    Ok(())
}

fn run() -> Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let topo = Topology::preset_dual_socket_10c();
    match args.first().map(String::as_str) {
        Some("topology") => {
            topology_cmd(&topo);
            Ok(())
        }
        Some("groups") => {
            groups_cmd(&topo);
            Ok(())
        }
        Some("group") => {
            let name = args.get(1).ok_or_else(|| Error::config("group needs a name"))?;
            match builtin_text(name) {
                Some(text) => {
                    println!("{text}");
                    Ok(())
                }
                None => Err(Error::not_found(format!("group `{name}`"))),
            }
        }
        Some("perfctr") => perfctr_cmd(&topo, &args[1..]),
        _ => {
            println!(
                "usage: likwid-sim <topology | groups | group NAME | perfctr [-g GROUP] [-w dgemm|stream|balanced|idle] [-t SECONDS] [-c CPUSET]>"
            );
            Ok(())
        }
    }
}

fn main() {
    if let Err(e) = run() {
        eprintln!("likwid-sim: {e}");
        std::process::exit(1);
    }
}
