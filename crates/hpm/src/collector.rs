//! Periodic HPM collection → line-protocol points.
//!
//! [`HpmCollector`] is the HPM half of a compute node's host agent: it
//! rotates through configured performance groups (one group per collection
//! interval, the way `likwid-perfctr` time-multiplexes event sets), reads
//! node-aggregate derived metrics, and renders them as line-protocol
//! [`Point`]s tagged with the hostname — ready to POST to the metrics
//! router.

use crate::groups::builtin;
use crate::perfmon::Perfmon;
use crate::simulate::Simulator;
use lms_lineproto::Point;
use lms_rollup::WindowAggregator;
use lms_topology::Topology;
use lms_util::{Clock, Result};

/// Turns a metric display name into a field key:
/// `"DP [MFLOP/s]"` → `"dp_mflop_s"`.
pub fn slugify(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    let mut prev_underscore = true; // also trims leading separators
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
            prev_underscore = false;
        } else if !prev_underscore {
            out.push('_');
            prev_underscore = true;
        }
    }
    while out.ends_with('_') {
        out.pop();
    }
    out
}

/// Rotating performance-group collector for one node.
pub struct HpmCollector {
    perfmon: Perfmon,
    hostname: String,
    clock: Clock,
    started: bool,
    /// 60s pre-aggregation over collected points; closed windows are
    /// drained by [`HpmCollector::take_rollups`] and bound for the 1m
    /// rollup tier.
    pre_agg: Option<WindowAggregator>,
}

impl HpmCollector {
    /// Creates a collector for a node named `hostname`.
    pub fn new(topo: Topology, hostname: impl Into<String>, clock: Clock) -> Self {
        HpmCollector {
            perfmon: Perfmon::new(topo),
            hostname: hostname.into(),
            clock,
            started: false,
            pre_agg: None,
        }
    }

    /// Enables the 1-minute pre-aggregation stream: every collected point
    /// also feeds a per-series 60s window; [`HpmCollector::take_rollups`]
    /// drains closed windows as rollup rows for direct 1m-tier ingestion.
    pub fn enable_pre_aggregation(&mut self) {
        self.pre_agg = Some(WindowAggregator::minute());
    }

    /// Drains every closed 1-minute window as rollup rows (stat fields,
    /// window-start timestamps). Empty when pre-aggregation is off.
    pub fn take_rollups(&mut self) -> Vec<Point> {
        match &mut self.pre_agg {
            Some(agg) => agg.close_before(self.clock.now().nanos()),
            None => Vec::new(),
        }
    }

    /// Adds a built-in performance group by name.
    pub fn add_group(&mut self, name: &str) -> Result<()> {
        let group = builtin(name, self.perfmon.topology())?;
        self.perfmon.add_group(group)?;
        Ok(())
    }

    /// Number of configured groups.
    pub fn num_groups(&self) -> usize {
        self.perfmon.num_groups()
    }

    /// The hostname the points are tagged with.
    pub fn hostname(&self) -> &str {
        &self.hostname
    }

    /// Closes the interval that started at the previous call, returns its
    /// points, rotates to the next group, and opens a new interval.
    ///
    /// The first call only opens the first interval and returns no points —
    /// a counter delta needs two readings.
    pub fn collect(&mut self, sim: &Simulator) -> Result<Vec<Point>> {
        if self.perfmon.num_groups() == 0 {
            return Ok(Vec::new());
        }
        if !self.started {
            self.perfmon.start(sim);
            self.started = true;
            return Ok(Vec::new());
        }
        let just_read = self.perfmon.active_index();
        let m = self.perfmon.stop_and_read(sim)?;
        let ts = self.clock.now().nanos();

        let mut point = Point::new(format!("hpm_{}", m.group_name().to_ascii_lowercase()));
        point.add_tag("hostname", self.hostname.as_str());
        point.add_tag("scope", "node");
        let names: Vec<String> = m.metric_names().map(str::to_string).collect();
        for name in names {
            let value = m.metric_aggregate(&name)?;
            if value.is_finite() {
                point.add_field(slugify(&name), value);
            }
        }
        point.set_timestamp(ts);

        // Rotate and reopen.
        let next = (just_read + 1) % self.perfmon.num_groups();
        self.perfmon.set_active(next)?;
        self.perfmon.start(sim);

        if point.is_valid() {
            if let Some(agg) = &mut self.pre_agg {
                agg.push(&point, ts);
            }
            Ok(vec![point])
        } else {
            Ok(Vec::new())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::WorkloadPreset;
    use lms_util::Timestamp;
    use std::time::Duration;

    #[test]
    fn slugify_metric_names() {
        assert_eq!(slugify("DP [MFLOP/s]"), "dp_mflop_s");
        assert_eq!(slugify("Runtime (RDTSC) [s]"), "runtime_rdtsc_s");
        assert_eq!(slugify("Memory bandwidth [MBytes/s]"), "memory_bandwidth_mbytes_s");
        assert_eq!(slugify("IPC"), "ipc");
        assert_eq!(slugify("__x__"), "x");
        assert_eq!(slugify(""), "");
    }

    fn collector() -> (Simulator, HpmCollector, Clock) {
        let topo = Topology::preset_desktop_4c();
        let mut sim = Simulator::new(&topo, 21);
        sim.set_jitter(0.0);
        sim.assign(0..topo.num_cores(), WorkloadPreset::Balanced.model(&topo));
        let clock = Clock::simulated(Timestamp::from_secs(1_000_000));
        let mut c = HpmCollector::new(topo, "h1", clock.clone());
        c.add_group("FLOPS_DP").unwrap();
        c.add_group("MEM").unwrap();
        (sim, c, clock)
    }

    #[test]
    fn first_collect_is_empty_then_rotates_groups() {
        let (mut sim, mut c, clock) = collector();
        assert!(c.collect(&sim).unwrap().is_empty());
        let mut measurements = Vec::new();
        for _ in 0..4 {
            sim.advance(Duration::from_secs(1));
            clock.advance(Duration::from_secs(1));
            let pts = c.collect(&sim).unwrap();
            assert_eq!(pts.len(), 1);
            measurements.push(pts[0].measurement().to_string());
        }
        assert_eq!(
            measurements,
            vec!["hpm_flops_dp", "hpm_mem", "hpm_flops_dp", "hpm_mem"]
        );
    }

    #[test]
    fn points_carry_hostname_timestamp_and_metrics() {
        let (mut sim, mut c, clock) = collector();
        c.collect(&sim).unwrap();
        sim.advance(Duration::from_secs(2));
        clock.advance(Duration::from_secs(2));
        let pts = c.collect(&sim).unwrap();
        let p = &pts[0];
        assert_eq!(p.tag("hostname"), Some("h1"));
        assert_eq!(p.tag("scope"), Some("node"));
        assert!(p.timestamp().is_some());
        let flops = p.field("dp_mflop_s").unwrap().as_f64().unwrap();
        assert!(flops > 0.0);
        assert!(p.field("ipc").is_some());
    }

    #[test]
    fn collector_without_groups_is_silent() {
        let topo = Topology::preset_desktop_4c();
        let sim = Simulator::new(&topo, 1);
        let mut c = HpmCollector::new(topo, "h1", Clock::simulated(Timestamp::EPOCH));
        assert!(c.collect(&sim).unwrap().is_empty());
        assert_eq!(c.num_groups(), 0);
        assert_eq!(c.hostname(), "h1");
    }

    #[test]
    fn unknown_group_name_errors() {
        let topo = Topology::preset_desktop_4c();
        let mut c = HpmCollector::new(topo, "h1", Clock::simulated(Timestamp::EPOCH));
        assert!(c.add_group("BOGUS").is_err());
    }
}
