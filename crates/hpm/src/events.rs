//! Per-architecture hardware event catalogs.
//!
//! Events are identified by the LIKWID-style upper-case names used in group
//! files (`INSTR_RETIRED_ANY`, `CAS_COUNT_RD`, ...). Each event belongs to a
//! *counter class* that constrains which registers can count it — the same
//! constraint structure real PMUs have and the reason LIKWID needs an
//! allocator at all.

use crate::counters::CounterClass;
use lms_util::FxHashMap;

/// One countable hardware event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// LIKWID-style name, e.g. `FP_ARITH_INST_RETIRED_256B_PACKED_DOUBLE`.
    pub name: &'static str,
    /// Which register class can count this event.
    pub class: CounterClass,
    /// Human-readable description for `likwid-perfctr -e` style listings.
    pub description: &'static str,
}

/// The event catalog of one (simulated) micro-architecture.
#[derive(Debug, Clone)]
pub struct EventCatalog {
    arch: &'static str,
    events: Vec<Event>,
    by_name: FxHashMap<&'static str, usize>,
}

impl EventCatalog {
    /// The catalog for the default simulated architecture (an Ivy-Bridge-EP
    /// flavoured superset that also carries the SKX-style FP_ARITH events so
    /// the FLOPS groups work unmodified).
    pub fn default_arch() -> Self {
        Self::build("sim-ep", DEFAULT_EVENTS)
    }

    fn build(arch: &'static str, list: &[Event]) -> Self {
        let mut by_name = FxHashMap::default();
        for (i, e) in list.iter().enumerate() {
            let prev = by_name.insert(e.name, i);
            debug_assert!(prev.is_none(), "duplicate event {}", e.name);
        }
        EventCatalog { arch, events: list.to_vec(), by_name }
    }

    /// Architecture label.
    pub fn arch(&self) -> &'static str {
        self.arch
    }

    /// Looks an event up by name.
    pub fn get(&self, name: &str) -> Option<&Event> {
        self.by_name.get(name).map(|&i| &self.events[i])
    }

    /// All events.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Stable dense index of an event (used by the simulator's count
    /// matrices).
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    /// Number of events in the catalog.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the catalog is empty (never true for built-in catalogs).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

macro_rules! ev {
    ($name:ident, $class:ident, $desc:expr) => {
        Event { name: stringify!($name), class: CounterClass::$class, description: $desc }
    };
}

/// The default simulated event list.
///
/// Core (fixed + PMC) events model the thread-local pipeline; Uncore events
/// model the per-socket memory controller; Energy events model RAPL.
pub const DEFAULT_EVENTS: &[Event] = &[
    // --- fixed-function core counters ---
    ev!(INSTR_RETIRED_ANY, Fixed, "Retired instructions"),
    ev!(CPU_CLK_UNHALTED_CORE, Fixed, "Core clock cycles (unhalted)"),
    ev!(CPU_CLK_UNHALTED_REF, Fixed, "Reference clock cycles (unhalted)"),
    // --- general-purpose (PMC) core events ---
    ev!(FP_ARITH_INST_RETIRED_SCALAR_DOUBLE, Pmc, "Scalar DP FP µops"),
    ev!(FP_ARITH_INST_RETIRED_128B_PACKED_DOUBLE, Pmc, "128-bit packed DP FP µops"),
    ev!(FP_ARITH_INST_RETIRED_256B_PACKED_DOUBLE, Pmc, "256-bit packed DP FP µops"),
    ev!(FP_ARITH_INST_RETIRED_SCALAR_SINGLE, Pmc, "Scalar SP FP µops"),
    ev!(FP_ARITH_INST_RETIRED_128B_PACKED_SINGLE, Pmc, "128-bit packed SP FP µops"),
    ev!(FP_ARITH_INST_RETIRED_256B_PACKED_SINGLE, Pmc, "256-bit packed SP FP µops"),
    ev!(L1D_REPLACEMENT, Pmc, "L1D cache lines replaced (loads from L2)"),
    ev!(L1D_M_EVICT, Pmc, "L1D modified lines evicted (stores to L2)"),
    ev!(L2_LINES_IN_ALL, Pmc, "Cache lines brought into L2"),
    ev!(L2_TRANS_L2_WB, Pmc, "L2 writebacks to L3"),
    ev!(L2_RQSTS_MISS, Pmc, "L2 requests that missed"),
    ev!(ICACHE_MISSES, Pmc, "Instruction cache misses"),
    ev!(BR_INST_RETIRED_ALL_BRANCHES, Pmc, "Retired branch instructions"),
    ev!(BR_MISP_RETIRED_ALL_BRANCHES, Pmc, "Mispredicted branch instructions"),
    ev!(MEM_INST_RETIRED_ALL_LOADS, Pmc, "Retired load instructions"),
    ev!(MEM_INST_RETIRED_ALL_STORES, Pmc, "Retired store instructions"),
    ev!(DTLB_LOAD_MISSES_WALK_COMPLETED, Pmc, "DTLB load misses causing page walks"),
    ev!(DTLB_STORE_MISSES_WALK_COMPLETED, Pmc, "DTLB store misses causing page walks"),
    ev!(UOPS_EXECUTED_THREAD, Pmc, "µops executed by this thread"),
    ev!(CYCLE_ACTIVITY_STALLS_TOTAL, Pmc, "Cycles with no µop executed"),
    // --- uncore (per-socket memory controller) ---
    ev!(CAS_COUNT_RD, Uncore, "DRAM read CAS commands (x64 bytes)"),
    ev!(CAS_COUNT_WR, Uncore, "DRAM write CAS commands (x64 bytes)"),
    // --- RAPL energy (per socket) ---
    ev!(PWR_PKG_ENERGY, Energy, "Package energy (Joules)"),
    ev!(PWR_DRAM_ENERGY, Energy, "DRAM energy (Joules)"),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_lookup() {
        let cat = EventCatalog::default_arch();
        assert_eq!(cat.arch(), "sim-ep");
        assert!(!cat.is_empty());
        let e = cat.get("INSTR_RETIRED_ANY").unwrap();
        assert_eq!(e.class, CounterClass::Fixed);
        assert!(cat.get("NO_SUCH_EVENT").is_none());
    }

    #[test]
    fn indexes_are_dense_and_stable() {
        let cat = EventCatalog::default_arch();
        for (i, e) in cat.events().iter().enumerate() {
            assert_eq!(cat.index_of(e.name), Some(i));
        }
        assert_eq!(cat.len(), DEFAULT_EVENTS.len());
    }

    #[test]
    fn classes_cover_all_domains() {
        let cat = EventCatalog::default_arch();
        let has = |c: CounterClass| cat.events().iter().any(|e| e.class == c);
        assert!(has(CounterClass::Fixed));
        assert!(has(CounterClass::Pmc));
        assert!(has(CounterClass::Uncore));
        assert!(has(CounterClass::Energy));
    }

    #[test]
    fn no_duplicate_names() {
        let cat = EventCatalog::default_arch();
        let mut names: Vec<_> = cat.events().iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), cat.len());
    }
}
