//! The measurement session: program a group, start/stop/read, derive
//! metrics — the `likwid-perfctr` core, minus the MSRs.
//!
//! A [`Perfmon`] holds one or more performance groups (LIKWID's multi-
//! eventset feature), measures a configurable set of hardware threads, and
//! produces [`Measurement`]s: raw counter deltas per thread plus evaluated
//! derived metrics. Socket-scope counters (uncore, energy) are attributed to
//! the first measured thread of each socket — LIKWID's convention — and
//! counted once in aggregates.

use crate::counters::{allocate, CounterId};
use crate::events::EventCatalog;
use crate::groups::{Metric, PerfGroup};
use crate::simulate::Simulator;
use lms_topology::Topology;
use lms_util::{Error, FxHashMap, Result};
use std::time::Duration;

/// A completed measurement of one group over one interval.
#[derive(Debug, Clone)]
pub struct Measurement {
    group_name: String,
    time: f64,
    inverse_clock: f64,
    threads: Vec<u32>,
    /// `(counter, event, per-thread delta)` in group order.
    counts: Vec<(CounterId, String, Vec<f64>)>,
    metrics: Vec<Metric>,
}

impl Measurement {
    /// The group this measurement belongs to.
    pub fn group_name(&self) -> &str {
        &self.group_name
    }

    /// Interval length in seconds.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// The measured hardware threads, in measurement order.
    pub fn threads(&self) -> &[u32] {
        &self.threads
    }

    /// Raw per-thread deltas of a counter register (e.g. `"PMC0"`).
    pub fn counter_values(&self, counter: &str) -> Option<&[f64]> {
        self.counts
            .iter()
            .find(|(c, _, _)| c.to_string() == counter)
            .map(|(_, _, v)| v.as_slice())
    }

    /// Raw per-thread deltas of an event by name.
    pub fn event_values(&self, event: &str) -> Option<&[f64]> {
        self.counts.iter().find(|(_, e, _)| e == event).map(|(_, _, v)| v.as_slice())
    }

    /// Names of the derived metrics available on this measurement.
    pub fn metric_names(&self) -> impl Iterator<Item = &str> {
        self.metrics.iter().map(|m| m.name.as_str())
    }

    fn metric_def(&self, name: &str) -> Result<&Metric> {
        self.metrics
            .iter()
            .find(|m| m.name == name)
            .ok_or_else(|| Error::not_found(format!("metric `{name}` in group {}", self.group_name)))
    }

    /// Evaluates a derived metric for every measured thread.
    ///
    /// Threads that do not own the socket-scope counters see 0 for those
    /// registers (LIKWID semantics), so per-thread values of e.g. memory
    /// bandwidth are only meaningful on socket-leader threads.
    pub fn metric_per_thread(&self, name: &str) -> Result<Vec<f64>> {
        let metric = self.metric_def(name)?;
        let mut out = Vec::with_capacity(self.threads.len());
        for i in 0..self.threads.len() {
            let v = metric.formula.eval(&|var: &str| self.resolve(var, Some(i)))?;
            out.push(v);
        }
        Ok(out)
    }

    /// Evaluates a derived metric over the *summed* counters of all
    /// measured threads (node scope). Ratios aggregate the LIKWID way:
    /// formula over summed counts, not mean of per-thread ratios.
    pub fn metric_aggregate(&self, name: &str) -> Result<f64> {
        let metric = self.metric_def(name)?;
        metric.formula.eval(&|var: &str| self.resolve(var, None))
    }

    fn resolve(&self, var: &str, thread_idx: Option<usize>) -> Option<f64> {
        match var {
            "time" => Some(self.time),
            "inverseClock" => Some(self.inverse_clock),
            counter => {
                let (_, _, values) =
                    self.counts.iter().find(|(c, _, _)| c.to_string() == counter)?;
                Some(match thread_idx {
                    Some(i) => values[i],
                    None => values.iter().sum(),
                })
            }
        }
    }
}

/// Counter snapshot taken at `start`.
struct Snapshot {
    at: Duration,
    /// `[group event][measured thread]` cumulative values.
    values: Vec<Vec<f64>>,
}

/// A LIKWID-style measurement session over the simulated PMU.
pub struct Perfmon {
    topo: Topology,
    catalog: EventCatalog,
    groups: Vec<PerfGroup>,
    active: usize,
    threads: Vec<u32>,
    snapshot: Option<Snapshot>,
}

impl Perfmon {
    /// Creates a session measuring all hardware threads of `topo`.
    pub fn new(topo: Topology) -> Self {
        let threads: Vec<u32> = (0..topo.num_hw_threads()).collect();
        Perfmon {
            topo,
            catalog: EventCatalog::default_arch(),
            groups: Vec::new(),
            active: 0,
            threads,
            snapshot: None,
        }
    }

    /// Restricts measurement to the given hardware threads.
    ///
    /// Fails on out-of-range ids or while a measurement is running.
    pub fn set_threads(&mut self, threads: Vec<u32>) -> Result<()> {
        if self.snapshot.is_some() {
            return Err(Error::invalid("cannot change thread set while measuring"));
        }
        if threads.is_empty() {
            return Err(Error::invalid("empty thread set"));
        }
        for &t in &threads {
            if t >= self.topo.num_hw_threads() {
                return Err(Error::invalid(format!("thread {t} out of range")));
            }
        }
        self.threads = threads;
        Ok(())
    }

    /// Adds a group (validating that its event set fits the register file)
    /// and returns its index. The first group added becomes active.
    pub fn add_group(&mut self, group: PerfGroup) -> Result<usize> {
        let names: Vec<&str> = group.events().iter().map(|(_, e)| e.as_str()).collect();
        allocate(&names, &self.catalog)?;
        self.groups.push(group);
        Ok(self.groups.len() - 1)
    }

    /// Switches the active group (LIKWID eventset rotation).
    pub fn set_active(&mut self, idx: usize) -> Result<()> {
        if self.snapshot.is_some() {
            return Err(Error::invalid("cannot switch groups while measuring"));
        }
        if idx >= self.groups.len() {
            return Err(Error::invalid(format!("group index {idx} out of range")));
        }
        self.active = idx;
        Ok(())
    }

    /// The active group, if any.
    pub fn active_group(&self) -> Option<&PerfGroup> {
        self.groups.get(self.active)
    }

    /// Index of the active group.
    pub fn active_index(&self) -> usize {
        self.active
    }

    /// The topology this session measures.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Number of configured groups.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Snapshots the counters: measurement interval starts now.
    ///
    /// # Panics
    /// Panics if no group was added (programming error, not input error).
    pub fn start(&mut self, sim: &Simulator) {
        let group = self.groups.get(self.active).expect("Perfmon::start without a group");
        let values = read_raw(group, &self.threads, &self.topo, sim);
        self.snapshot = Some(Snapshot { at: sim.elapsed(), values });
    }

    /// True while a measurement interval is open.
    pub fn is_running(&self) -> bool {
        self.snapshot.is_some()
    }

    /// Reads the deltas since [`start`](Self::start) without closing the
    /// interval (live monitoring reads).
    pub fn read(&self, sim: &Simulator) -> Result<Measurement> {
        let snap = self
            .snapshot
            .as_ref()
            .ok_or_else(|| Error::invalid("Perfmon::read without start"))?;
        Ok(self.build_measurement(snap, sim))
    }

    /// Reads the deltas and closes the interval.
    pub fn stop_and_read(&mut self, sim: &Simulator) -> Result<Measurement> {
        let snap = self
            .snapshot
            .take()
            .ok_or_else(|| Error::invalid("Perfmon::stop without start"))?;
        Ok(self.build_measurement(&snap, sim))
    }

    fn build_measurement(&self, snap: &Snapshot, sim: &Simulator) -> Measurement {
        let group = &self.groups[self.active];
        let now = read_raw(group, &self.threads, &self.topo, sim);
        let mut counts = Vec::with_capacity(group.events().len());
        for (ei, (counter, event)) in group.events().iter().enumerate() {
            let deltas: Vec<f64> = now[ei]
                .iter()
                .zip(&snap.values[ei])
                .map(|(a, b)| (a - b).max(0.0))
                .collect();
            counts.push((*counter, event.clone(), deltas));
        }
        Measurement {
            group_name: group.name().to_string(),
            time: (sim.elapsed() - snap.at).as_secs_f64(),
            inverse_clock: 1.0 / self.topo.nominal_hz(),
            threads: self.threads.clone(),
            counts,
            metrics: group.metrics().to_vec(),
        }
    }
}

/// Reads raw cumulative values of a group's events for the measured
/// threads. Socket-scope events land on the first measured thread of each
/// socket; other threads read 0.
fn read_raw(
    group: &PerfGroup,
    threads: &[u32],
    topo: &Topology,
    sim: &Simulator,
) -> Vec<Vec<f64>> {
    // socket -> leader position in `threads`
    let mut leaders: FxHashMap<u32, usize> = FxHashMap::default();
    for (pos, &t) in threads.iter().enumerate() {
        let socket = topo.hw_thread(t).unwrap().socket;
        leaders.entry(socket).or_insert(pos);
    }
    group
        .events()
        .iter()
        .map(|(counter, event)| {
            if counter.class.is_socket_scope() {
                let mut row = vec![0.0; threads.len()];
                for (&socket, &pos) in &leaders {
                    row[pos] = sim.socket_count(socket, event);
                }
                row
            } else {
                threads.iter().map(|&t| sim.thread_count(t, event)).collect()
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::groups::builtin;
    use crate::simulate::WorkloadPreset;

    fn setup(preset: WorkloadPreset, group: &str) -> (Topology, Simulator, Perfmon) {
        let topo = Topology::preset_desktop_4c();
        let mut sim = Simulator::new(&topo, 11);
        sim.set_jitter(0.0);
        sim.assign(0..topo.num_cores(), preset.model(&topo));
        let mut pm = Perfmon::new(topo.clone());
        pm.add_group(builtin(group, &topo).unwrap()).unwrap();
        (topo, sim, pm)
    }

    #[test]
    fn flops_dp_aggregate_close_to_model() {
        let (topo, mut sim, mut pm) = setup(WorkloadPreset::ComputeBound, "FLOPS_DP");
        pm.start(&sim);
        sim.advance(Duration::from_secs(2));
        let m = pm.stop_and_read(&sim).unwrap();
        assert_eq!(m.group_name(), "FLOPS_DP");
        assert!((m.time() - 2.0).abs() < 1e-9);
        let mflops = m.metric_aggregate("DP [MFLOP/s]").unwrap();
        let expect = 0.70 * topo.peak_flops_dp() / 1e6;
        let rel = (mflops - expect).abs() / expect;
        assert!(rel < 0.05, "got {mflops}, expected ~{expect}");
    }

    #[test]
    fn per_thread_metrics_have_one_value_per_thread() {
        let (_, mut sim, mut pm) = setup(WorkloadPreset::ComputeBound, "FLOPS_DP");
        pm.start(&sim);
        sim.advance(Duration::from_secs(1));
        let m = pm.stop_and_read(&sim).unwrap();
        let ipc = m.metric_per_thread("IPC").unwrap();
        assert_eq!(ipc.len(), 8); // 4 cores × 2 SMT
        // Busy cores have IPC > 1; SMT siblings idle with tiny counts.
        assert!(ipc[0] > 1.0, "ipc[0] = {}", ipc[0]);
    }

    #[test]
    fn mem_group_bandwidth_on_socket_leader_only() {
        let (topo, mut sim, mut pm) = setup(WorkloadPreset::MemoryBound, "MEM");
        pm.start(&sim);
        sim.advance(Duration::from_secs(2));
        let m = pm.stop_and_read(&sim).unwrap();
        let per_thread = m.metric_per_thread("Memory bandwidth [MBytes/s]").unwrap();
        // Only thread 0 (socket leader) carries the uncore counts.
        assert!(per_thread[0] > 0.0);
        assert!(per_thread[1..].iter().all(|&v| v == 0.0));
        let agg = m.metric_aggregate("Memory bandwidth [MBytes/s]").unwrap();
        assert!((agg - per_thread[0]).abs() / agg < 1e-9);
        // Sanity: near saturation for 4 memory-bound cores.
        assert!(agg * 1e6 > 0.8 * topo.mem_bw_per_socket(), "agg = {agg} MB/s");
    }

    #[test]
    fn energy_group_power() {
        let (_, mut sim, mut pm) = setup(WorkloadPreset::ComputeBound, "ENERGY");
        pm.start(&sim);
        sim.advance(Duration::from_secs(10));
        let m = pm.stop_and_read(&sim).unwrap();
        let watts = m.metric_aggregate("Power [W]").unwrap();
        assert!((30.0..120.0).contains(&watts), "power = {watts}");
    }

    #[test]
    fn read_without_stop_keeps_interval_open() {
        let (_, mut sim, mut pm) = setup(WorkloadPreset::Balanced, "CLOCK");
        pm.start(&sim);
        sim.advance(Duration::from_secs(1));
        let m1 = pm.read(&sim).unwrap();
        sim.advance(Duration::from_secs(1));
        let m2 = pm.read(&sim).unwrap();
        assert!(pm.is_running());
        assert!(m2.time() > m1.time());
        let i1 = m1.event_values("INSTR_RETIRED_ANY").unwrap()[0];
        let i2 = m2.event_values("INSTR_RETIRED_ANY").unwrap()[0];
        assert!(i2 > i1);
    }

    #[test]
    fn group_rotation() {
        let topo = Topology::preset_desktop_4c();
        let mut sim = Simulator::new(&topo, 2);
        let mut pm = Perfmon::new(topo.clone());
        let g0 = pm.add_group(builtin("FLOPS_DP", &topo).unwrap()).unwrap();
        let g1 = pm.add_group(builtin("MEM", &topo).unwrap()).unwrap();
        assert_eq!(pm.num_groups(), 2);
        pm.set_active(g1).unwrap();
        pm.start(&sim);
        sim.advance(Duration::from_secs(1));
        let m = pm.stop_and_read(&sim).unwrap();
        assert_eq!(m.group_name(), "MEM");
        pm.set_active(g0).unwrap();
        assert_eq!(pm.active_group().unwrap().name(), "FLOPS_DP");
        assert!(pm.set_active(5).is_err());
    }

    #[test]
    fn errors_on_misuse() {
        let topo = Topology::preset_desktop_4c();
        let sim = Simulator::new(&topo, 2);
        let mut pm = Perfmon::new(topo.clone());
        pm.add_group(builtin("CLOCK", &topo).unwrap()).unwrap();
        assert!(pm.read(&sim).is_err());
        assert!(pm.stop_and_read(&sim).is_err());
        pm.start(&sim);
        assert!(pm.set_active(0).is_err()); // running
        assert!(pm.set_threads(vec![0]).is_err()); // running
    }

    #[test]
    fn thread_set_validation() {
        let topo = Topology::preset_desktop_4c();
        let mut pm = Perfmon::new(topo);
        assert!(pm.set_threads(vec![]).is_err());
        assert!(pm.set_threads(vec![99]).is_err());
        assert!(pm.set_threads(vec![0, 1]).is_ok());
    }

    #[test]
    fn restricted_thread_set_measures_only_those() {
        let topo = Topology::preset_desktop_4c();
        let mut sim = Simulator::new(&topo, 8);
        sim.set_jitter(0.0);
        sim.assign([0u32, 1], WorkloadPreset::ComputeBound.model(&topo));
        let mut pm = Perfmon::new(topo.clone());
        pm.set_threads(vec![0, 1]).unwrap();
        pm.add_group(builtin("FLOPS_DP", &topo).unwrap()).unwrap();
        pm.start(&sim);
        sim.advance(Duration::from_secs(1));
        let m = pm.stop_and_read(&sim).unwrap();
        assert_eq!(m.threads(), &[0, 1]);
        assert_eq!(m.metric_per_thread("IPC").unwrap().len(), 2);
    }

    #[test]
    fn unknown_metric_is_not_found() {
        let (_, mut sim, mut pm) = setup(WorkloadPreset::Idle, "CLOCK");
        pm.start(&sim);
        sim.advance(Duration::from_secs(1));
        let m = pm.stop_and_read(&sim).unwrap();
        assert!(m.metric_aggregate("DP [MFLOP/s]").is_err());
        assert!(m.counter_values("PMC0").is_none());
        assert!(m.counter_values("FIXC0").is_some());
    }
}
