//! # lms-hpm
//!
//! A LIKWID-like **hardware performance monitoring** (HPM) substrate.
//!
//! The paper's stack builds on the LIKWID tools library: portable access to
//! hardware performance counters through *performance groups* — named event
//! sets plus formulas for derived metrics (IPC, DP MFLOP/s, memory
//! bandwidth, energy, ...). Real MSR/perf access is a hardware gate in this
//! environment, so this crate reproduces the *abstraction* exactly and swaps
//! the bottom layer for a workload-driven simulator:
//!
//! - [`events`] — per-architecture event catalogs (instructions, cycles,
//!   FP µops by vector width, cache line traffic, uncore CAS counts, RAPL
//!   energy),
//! - [`counters`] — the counter register file (fixed, general-purpose,
//!   uncore, energy) and the allocation of events onto compatible registers,
//! - [`formula`] — the arithmetic expression engine for derived metrics,
//! - [`groups`] — performance groups, including a parser for LIKWID's group
//!   file format and built-in groups (`FLOPS_DP`, `MEM`, `L2`, `L3`,
//!   `CLOCK`, `ENERGY`, `BRANCH`, `DATA`, `TLB_DATA`, `FLOPS_SP`),
//! - [`perfmon`] — the measurement session: set up a group, start/stop/read,
//!   derive metrics per hardware thread and aggregated,
//! - [`simulate`] — the counter simulator: phase-based workload models emit
//!   plausible event counts over virtual time,
//! - [`collector`] — turns periodic group measurements into line-protocol
//!   points for the monitoring stack.
//!
//! ```
//! use lms_topology::Topology;
//! use lms_hpm::{groups, perfmon::Perfmon, simulate::{Simulator, WorkloadPreset}};
//! use std::time::Duration;
//!
//! let topo = Topology::preset_desktop_4c();
//! let group = groups::builtin("FLOPS_DP", &topo).unwrap();
//! let mut sim = Simulator::new(&topo, 42);
//! sim.assign(0..4, WorkloadPreset::ComputeBound.model(&topo));
//!
//! let mut pm = Perfmon::new(topo.clone());
//! pm.add_group(group).unwrap();
//! pm.start(&sim);
//! sim.advance(Duration::from_secs(1));
//! let m = pm.stop_and_read(&sim).unwrap();
//! let flops = m.metric_aggregate("DP [MFLOP/s]").unwrap();
//! assert!(flops > 0.0);
//! ```

pub mod collector;
pub mod counters;
pub mod events;
pub mod formula;
pub mod groups;
pub mod perfmon;
pub mod simulate;

pub use counters::{CounterClass, CounterId};
pub use events::{Event, EventCatalog};
pub use groups::PerfGroup;
pub use perfmon::{Measurement, Perfmon};
pub use simulate::{Simulator, WorkloadModel, WorkloadPhase, WorkloadPreset};
