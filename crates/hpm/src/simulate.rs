//! The counter simulator: workload models → event counts over virtual time.
//!
//! This is the substitution for real MSR/perf access (see DESIGN.md). A
//! [`WorkloadModel`] is a sequence of phases, each specifying per-second
//! *rates* for the modeled hardware events (instructions, cycles, FP µops by
//! vector width, cache line traffic, DRAM bytes, power). The [`Simulator`]
//! owns the cumulative counter state of one node — per-thread core counters
//! and per-socket uncore/energy counters — and integrates the assigned
//! models over [`Simulator::advance`] steps with multiplicative jitter.
//!
//! Everything downstream of the counters (performance groups, derived
//! metrics, the router, the database, the analysis rules) is exercised
//! exactly as it would be by hardware counts.

use crate::events::EventCatalog;
use lms_topology::Topology;
use lms_util::rng::XorShift64;
use std::time::Duration;

/// Per-second event rates of one hardware thread running some code.
///
/// All rates are per thread; DRAM bytes and power are the thread's
/// *contribution* to its socket's uncore counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EventRates {
    /// Instructions retired per second.
    pub instr: f64,
    /// Unhalted core cycles per second (≤ clock when idle/halted).
    pub core_cycles: f64,
    /// Reference cycles per second.
    pub ref_cycles: f64,
    /// Scalar DP FP µops per second.
    pub dp_scalar: f64,
    /// 128-bit packed DP µops per second.
    pub dp_sse: f64,
    /// 256-bit packed DP µops per second.
    pub dp_avx: f64,
    /// Scalar SP FP µops per second.
    pub sp_scalar: f64,
    /// 128-bit packed SP µops per second.
    pub sp_sse: f64,
    /// 256-bit packed SP µops per second.
    pub sp_avx: f64,
    /// L1D replacements per second (L2→L1 loads).
    pub l1d_repl: f64,
    /// L1D modified evicts per second (L1→L2 stores).
    pub l1d_evict: f64,
    /// Lines into L2 per second (L3→L2).
    pub l2_in: f64,
    /// L2 writebacks per second (L2→L3).
    pub l2_wb: f64,
    /// L2 misses per second.
    pub l2_miss: f64,
    /// Icache misses per second.
    pub icache_miss: f64,
    /// Branches retired per second.
    pub branches: f64,
    /// Mispredicted branches per second.
    pub branch_miss: f64,
    /// Load instructions per second.
    pub loads: f64,
    /// Store instructions per second.
    pub stores: f64,
    /// DTLB load walks per second.
    pub dtlb_load_walk: f64,
    /// DTLB store walks per second.
    pub dtlb_store_walk: f64,
    /// µops executed per second.
    pub uops: f64,
    /// Stalled cycles per second.
    pub stall_cycles: f64,
    /// DRAM bytes read per second (contribution to socket CAS_COUNT_RD×64).
    pub dram_read_bytes: f64,
    /// DRAM bytes written per second (contribution to CAS_COUNT_WR×64).
    pub dram_write_bytes: f64,
    /// Package power contribution in watts.
    pub power_watts: f64,
    /// DRAM power contribution in watts.
    pub dram_power_watts: f64,
}

impl EventRates {
    /// A truly idle thread: housekeeping instructions only.
    pub fn idle() -> Self {
        EventRates {
            instr: 5.0e6,
            core_cycles: 1.0e7,
            ref_cycles: 1.0e7,
            branches: 1.0e6,
            branch_miss: 2.0e4,
            loads: 1.5e6,
            stores: 0.7e6,
            uops: 6.0e6,
            stall_cycles: 4.0e6,
            power_watts: 0.2,
            dram_power_watts: 0.05,
            ..Default::default()
        }
    }

    /// A compute-bound (DGEMM-like) thread on `topo`: ~70% of peak DP
    /// FLOP/s, high IPC, low memory traffic.
    pub fn compute_bound(topo: &Topology) -> Self {
        let hz = topo.nominal_hz();
        let peak_core = hz * topo.flops_per_cycle_dp(); // FLOP/s per core
        let flops = 0.70 * peak_core;
        let avx_uops = flops / 4.0; // 4 DP lanes per 256-bit uop
        let instr = 2.2 * hz;
        EventRates {
            instr,
            core_cycles: hz,
            ref_cycles: hz,
            dp_avx: avx_uops,
            dp_scalar: 0.01 * avx_uops,
            l1d_repl: 0.02 * instr / 8.0,
            l1d_evict: 0.01 * instr / 8.0,
            l2_in: 0.004 * instr / 8.0,
            l2_wb: 0.002 * instr / 8.0,
            l2_miss: 0.001 * instr / 8.0,
            icache_miss: 1e4,
            branches: 0.04 * instr,
            branch_miss: 0.0004 * instr,
            loads: 0.35 * instr,
            stores: 0.12 * instr,
            dtlb_load_walk: 1e4,
            dtlb_store_walk: 4e3,
            uops: 1.2 * instr,
            stall_cycles: 0.08 * hz,
            dram_read_bytes: 0.8e9,
            dram_write_bytes: 0.4e9,
            power_watts: 7.0,
            dram_power_watts: 0.8,
            ..Default::default()
        }
    }

    /// A memory-bound (STREAM-triad-like) thread on `topo`: saturates its
    /// share of the socket's memory bandwidth, modest FLOP rate, many
    /// stalls.
    pub fn memory_bound(topo: &Topology) -> Self {
        let hz = topo.nominal_hz();
        // A handful of threads saturate the socket; per-thread share sized
        // so ~4 threads reach ~90% of the socket's peak.
        let bw_share = 0.9 * topo.mem_bw_per_socket() / 4.0;
        let read = bw_share * 2.0 / 3.0; // triad: 2 loads + 1 store
        let write = bw_share / 3.0;
        let instr = 0.6 * hz;
        // triad: 2 FLOPs per 24 bytes loaded
        let flops = read / 24.0 * 2.0;
        EventRates {
            instr,
            core_cycles: hz,
            ref_cycles: hz,
            dp_avx: flops / 4.0,
            l1d_repl: read / 64.0,
            l1d_evict: write / 64.0,
            l2_in: read / 64.0,
            l2_wb: write / 64.0,
            l2_miss: read / 64.0,
            icache_miss: 1e4,
            branches: 0.05 * instr,
            branch_miss: 0.0002 * instr,
            loads: 0.45 * instr,
            stores: 0.22 * instr,
            dtlb_load_walk: read / 4096.0,
            dtlb_store_walk: write / 4096.0,
            uops: 0.8 * instr,
            stall_cycles: 0.6 * hz,
            dram_read_bytes: read,
            dram_write_bytes: write,
            power_watts: 5.0,
            dram_power_watts: 2.5,
            ..Default::default()
        }
    }

    /// A balanced thread: moderate FLOPs and bandwidth (typical solver).
    pub fn balanced(topo: &Topology) -> Self {
        let c = Self::compute_bound(topo);
        let m = Self::memory_bound(topo);
        c.lerp(&m, 0.5)
    }

    /// Linear interpolation between two rate sets (used by presets and the
    /// imbalance model).
    pub fn lerp(&self, other: &EventRates, t: f64) -> EventRates {
        let l = |a: f64, b: f64| a + (b - a) * t;
        EventRates {
            instr: l(self.instr, other.instr),
            core_cycles: l(self.core_cycles, other.core_cycles),
            ref_cycles: l(self.ref_cycles, other.ref_cycles),
            dp_scalar: l(self.dp_scalar, other.dp_scalar),
            dp_sse: l(self.dp_sse, other.dp_sse),
            dp_avx: l(self.dp_avx, other.dp_avx),
            sp_scalar: l(self.sp_scalar, other.sp_scalar),
            sp_sse: l(self.sp_sse, other.sp_sse),
            sp_avx: l(self.sp_avx, other.sp_avx),
            l1d_repl: l(self.l1d_repl, other.l1d_repl),
            l1d_evict: l(self.l1d_evict, other.l1d_evict),
            l2_in: l(self.l2_in, other.l2_in),
            l2_wb: l(self.l2_wb, other.l2_wb),
            l2_miss: l(self.l2_miss, other.l2_miss),
            icache_miss: l(self.icache_miss, other.icache_miss),
            branches: l(self.branches, other.branches),
            branch_miss: l(self.branch_miss, other.branch_miss),
            loads: l(self.loads, other.loads),
            stores: l(self.stores, other.stores),
            dtlb_load_walk: l(self.dtlb_load_walk, other.dtlb_load_walk),
            dtlb_store_walk: l(self.dtlb_store_walk, other.dtlb_store_walk),
            uops: l(self.uops, other.uops),
            stall_cycles: l(self.stall_cycles, other.stall_cycles),
            dram_read_bytes: l(self.dram_read_bytes, other.dram_read_bytes),
            dram_write_bytes: l(self.dram_write_bytes, other.dram_write_bytes),
            power_watts: l(self.power_watts, other.power_watts),
            dram_power_watts: l(self.dram_power_watts, other.dram_power_watts),
        }
    }
}

/// One phase of a workload: run at `rates` for `duration` (or forever when
/// `None` — only meaningful as the last phase).
#[derive(Debug, Clone)]
pub struct WorkloadPhase {
    /// Phase length; `None` = hold until reassigned.
    pub duration: Option<Duration>,
    /// Event rates during the phase.
    pub rates: EventRates,
}

/// A phase-sequence workload model assigned to a hardware thread.
#[derive(Debug, Clone)]
pub struct WorkloadModel {
    phases: Vec<WorkloadPhase>,
    looping: bool,
}

impl WorkloadModel {
    /// A single never-ending phase.
    pub fn constant(rates: EventRates) -> Self {
        WorkloadModel { phases: vec![WorkloadPhase { duration: None, rates }], looping: false }
    }

    /// A finite sequence of phases; after the last phase the thread idles
    /// (unless `looping`).
    pub fn sequence(phases: Vec<WorkloadPhase>) -> Self {
        WorkloadModel { phases, looping: false }
    }

    /// Makes the phase sequence repeat.
    pub fn looped(mut self) -> Self {
        self.looping = true;
        self
    }

    /// The rates at time `at` since the model was assigned.
    pub fn rates_at(&self, at: Duration) -> EventRates {
        let total: Duration = self
            .phases
            .iter()
            .map(|p| p.duration.unwrap_or(Duration::ZERO))
            .sum();
        let mut t = at;
        if self.looping && !total.is_zero() {
            let rem_ns = (at.as_nanos() % total.as_nanos()) as u64;
            t = Duration::from_nanos(rem_ns);
        }
        for phase in &self.phases {
            match phase.duration {
                None => return phase.rates,
                Some(d) if t < d => return phase.rates,
                Some(d) => t -= d,
            }
        }
        EventRates::idle()
    }
}

/// Ready-made workload shapes used by examples, tests and benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadPreset {
    /// DGEMM-like: near-peak FLOP/s, low bandwidth.
    ComputeBound,
    /// STREAM-like: near-peak bandwidth, low FLOP/s.
    MemoryBound,
    /// Typical solver: both moderate.
    Balanced,
    /// Idle node.
    Idle,
}

impl WorkloadPreset {
    /// Builds the model for this preset on `topo`.
    pub fn model(self, topo: &Topology) -> WorkloadModel {
        let rates = match self {
            WorkloadPreset::ComputeBound => EventRates::compute_bound(topo),
            WorkloadPreset::MemoryBound => EventRates::memory_bound(topo),
            WorkloadPreset::Balanced => EventRates::balanced(topo),
            WorkloadPreset::Idle => EventRates::idle(),
        };
        WorkloadModel::constant(rates)
    }
}

/// Builds the Fig. 4 pathological workload: compute for `before`, stall
/// (idle) for `gap`, then compute again indefinitely.
pub fn compute_with_break(topo: &Topology, before: Duration, gap: Duration) -> WorkloadModel {
    let busy = EventRates::balanced(topo);
    WorkloadModel::sequence(vec![
        WorkloadPhase { duration: Some(before), rates: busy },
        WorkloadPhase { duration: Some(gap), rates: EventRates::idle() },
        WorkloadPhase { duration: None, rates: busy },
    ])
}

/// The simulated PMU state of one node.
pub struct Simulator {
    topo: Topology,
    catalog: EventCatalog,
    /// `[hw_thread][event_index]` cumulative counts for core-scope events.
    thread_counts: Vec<Vec<f64>>,
    /// `[socket][event_index]` cumulative counts for socket-scope events.
    socket_counts: Vec<Vec<f64>>,
    models: Vec<Option<WorkloadModel>>,
    assigned_at: Vec<Duration>,
    elapsed: Duration,
    rng: XorShift64,
    /// Relative jitter applied per integration step (0 = deterministic).
    jitter: f64,
    /// Baseline package power per socket in watts (fans, uncore, leakage).
    idle_socket_watts: f64,
}

impl Simulator {
    /// Creates a simulator for `topo`, all threads idle.
    pub fn new(topo: &Topology, seed: u64) -> Self {
        let catalog = EventCatalog::default_arch();
        let nthreads = topo.num_hw_threads() as usize;
        let nevents = catalog.len();
        Simulator {
            topo: topo.clone(),
            thread_counts: vec![vec![0.0; nevents]; nthreads],
            socket_counts: vec![vec![0.0; nevents]; topo.num_sockets() as usize],
            models: (0..nthreads).map(|_| None).collect(),
            assigned_at: vec![Duration::ZERO; nthreads],
            elapsed: Duration::ZERO,
            rng: XorShift64::new(seed),
            jitter: 0.02,
            idle_socket_watts: 18.0,
            catalog,
        }
    }

    /// Sets the per-step relative jitter (default 2%). Zero makes traces
    /// bit-for-bit reproducible across runs with different step sizes.
    pub fn set_jitter(&mut self, rel: f64) {
        self.jitter = rel.max(0.0);
    }

    /// The topology being simulated.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The event catalog.
    pub fn catalog(&self) -> &EventCatalog {
        &self.catalog
    }

    /// Virtual time since construction.
    pub fn elapsed(&self) -> Duration {
        self.elapsed
    }

    /// Assigns a workload model to a set of hardware threads (replacing any
    /// previous assignment; phase time restarts at zero).
    pub fn assign(&mut self, threads: impl IntoIterator<Item = u32>, model: WorkloadModel) {
        for t in threads {
            let idx = t as usize;
            assert!(idx < self.models.len(), "thread {t} out of range");
            self.models[idx] = Some(model.clone());
            self.assigned_at[idx] = self.elapsed;
        }
    }

    /// Clears the workload of the given threads (they go idle).
    pub fn clear(&mut self, threads: impl IntoIterator<Item = u32>) {
        for t in threads {
            self.models[t as usize] = None;
        }
    }

    /// Advances virtual time by `dt`, integrating all models.
    pub fn advance(&mut self, dt: Duration) {
        let secs = dt.as_secs_f64();
        if secs <= 0.0 {
            return;
        }
        let idle = EventRates::idle();
        // Socket accumulators for this step.
        let nsockets = self.topo.num_sockets() as usize;
        let mut sock_read = vec![0.0f64; nsockets];
        let mut sock_write = vec![0.0f64; nsockets];
        let mut sock_pkg_w = vec![self.idle_socket_watts; nsockets];
        let mut sock_dram_w = vec![2.0f64; nsockets];

        for tid in 0..self.thread_counts.len() {
            let hw = self.topo.hw_thread(tid as u32).unwrap();
            let at = self.elapsed - self.assigned_at[tid].min(self.elapsed);
            let rates = match &self.models[tid] {
                Some(m) => m.rates_at(at),
                None => idle,
            };
            let j = if self.jitter > 0.0 {
                1.0 + self.rng.range_f64(-self.jitter, self.jitter)
            } else {
                1.0
            };
            let scale = secs * j;
            let counts = &mut self.thread_counts[tid];
            let cat = &self.catalog;
            let mut add = |name: &str, rate: f64| {
                if rate > 0.0 {
                    let i = cat.index_of(name).expect("event in catalog");
                    counts[i] += rate * scale;
                }
            };
            add("INSTR_RETIRED_ANY", rates.instr);
            add("CPU_CLK_UNHALTED_CORE", rates.core_cycles);
            add("CPU_CLK_UNHALTED_REF", rates.ref_cycles);
            add("FP_ARITH_INST_RETIRED_SCALAR_DOUBLE", rates.dp_scalar);
            add("FP_ARITH_INST_RETIRED_128B_PACKED_DOUBLE", rates.dp_sse);
            add("FP_ARITH_INST_RETIRED_256B_PACKED_DOUBLE", rates.dp_avx);
            add("FP_ARITH_INST_RETIRED_SCALAR_SINGLE", rates.sp_scalar);
            add("FP_ARITH_INST_RETIRED_128B_PACKED_SINGLE", rates.sp_sse);
            add("FP_ARITH_INST_RETIRED_256B_PACKED_SINGLE", rates.sp_avx);
            add("L1D_REPLACEMENT", rates.l1d_repl);
            add("L1D_M_EVICT", rates.l1d_evict);
            add("L2_LINES_IN_ALL", rates.l2_in);
            add("L2_TRANS_L2_WB", rates.l2_wb);
            add("L2_RQSTS_MISS", rates.l2_miss);
            add("ICACHE_MISSES", rates.icache_miss);
            add("BR_INST_RETIRED_ALL_BRANCHES", rates.branches);
            add("BR_MISP_RETIRED_ALL_BRANCHES", rates.branch_miss);
            add("MEM_INST_RETIRED_ALL_LOADS", rates.loads);
            add("MEM_INST_RETIRED_ALL_STORES", rates.stores);
            add("DTLB_LOAD_MISSES_WALK_COMPLETED", rates.dtlb_load_walk);
            add("DTLB_STORE_MISSES_WALK_COMPLETED", rates.dtlb_store_walk);
            add("UOPS_EXECUTED_THREAD", rates.uops);
            add("CYCLE_ACTIVITY_STALLS_TOTAL", rates.stall_cycles);

            let s = hw.socket as usize;
            sock_read[s] += rates.dram_read_bytes * scale;
            sock_write[s] += rates.dram_write_bytes * scale;
            sock_pkg_w[s] += rates.power_watts * j;
            sock_dram_w[s] += rates.dram_power_watts * j;
        }

        // Socket bandwidth is capped at the hardware peak — oversubscribed
        // threads contend rather than exceeding the memory controller.
        let cap = self.topo.mem_bw_per_socket() * secs;
        let idx_rd = self.catalog.index_of("CAS_COUNT_RD").unwrap();
        let idx_wr = self.catalog.index_of("CAS_COUNT_WR").unwrap();
        let idx_pkg = self.catalog.index_of("PWR_PKG_ENERGY").unwrap();
        let idx_dram = self.catalog.index_of("PWR_DRAM_ENERGY").unwrap();
        for s in 0..nsockets {
            let total = sock_read[s] + sock_write[s];
            let scale = if total > cap { cap / total } else { 1.0 };
            self.socket_counts[s][idx_rd] += sock_read[s] * scale / 64.0;
            self.socket_counts[s][idx_wr] += sock_write[s] * scale / 64.0;
            self.socket_counts[s][idx_pkg] += sock_pkg_w[s] * secs;
            self.socket_counts[s][idx_dram] += sock_dram_w[s] * secs;
        }

        self.elapsed += dt;
    }

    /// Cumulative count of a core-scope event on one hardware thread.
    pub fn thread_count(&self, thread: u32, event: &str) -> f64 {
        self.catalog
            .index_of(event)
            .map(|i| self.thread_counts[thread as usize][i])
            .unwrap_or(0.0)
    }

    /// Cumulative count of a socket-scope event on one socket.
    pub fn socket_count(&self, socket: u32, event: &str) -> f64 {
        self.catalog
            .index_of(event)
            .map(|i| self.socket_counts[socket as usize][i])
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::preset_desktop_4c()
    }

    #[test]
    fn counters_are_monotone() {
        let t = topo();
        let mut sim = Simulator::new(&t, 1);
        sim.assign(0..4, WorkloadPreset::ComputeBound.model(&t));
        let mut last = 0.0;
        for _ in 0..10 {
            sim.advance(Duration::from_millis(500));
            let c = sim.thread_count(0, "INSTR_RETIRED_ANY");
            assert!(c > last);
            last = c;
        }
        assert_eq!(sim.elapsed(), Duration::from_secs(5));
    }

    #[test]
    fn idle_threads_count_little() {
        let t = topo();
        let mut sim = Simulator::new(&t, 1);
        sim.advance(Duration::from_secs(10));
        let instr = sim.thread_count(0, "INSTR_RETIRED_ANY");
        assert!(instr > 0.0 && instr < 1e8, "idle instr = {instr}");
        assert_eq!(sim.thread_count(0, "FP_ARITH_INST_RETIRED_256B_PACKED_DOUBLE"), 0.0);
    }

    #[test]
    fn compute_bound_hits_roughly_70_percent_of_peak() {
        let t = topo();
        let mut sim = Simulator::new(&t, 7);
        sim.set_jitter(0.0);
        sim.assign(0..t.num_cores(), WorkloadPreset::ComputeBound.model(&t));
        sim.advance(Duration::from_secs(10));
        let mut flops = 0.0;
        for c in 0..t.num_cores() {
            flops += sim.thread_count(c, "FP_ARITH_INST_RETIRED_256B_PACKED_DOUBLE") * 4.0
                + sim.thread_count(c, "FP_ARITH_INST_RETIRED_SCALAR_DOUBLE");
        }
        let rate = flops / 10.0;
        let frac = rate / t.peak_flops_dp();
        assert!((0.6..0.8).contains(&frac), "fraction of peak = {frac}");
    }

    #[test]
    fn socket_bandwidth_is_capped_at_peak() {
        let t = topo();
        let mut sim = Simulator::new(&t, 3);
        sim.set_jitter(0.0);
        // Oversubscribe: all 8 threads demand a 4-thread-saturating share.
        sim.assign(0..8, WorkloadPreset::MemoryBound.model(&t));
        sim.advance(Duration::from_secs(5));
        let bytes =
            (sim.socket_count(0, "CAS_COUNT_RD") + sim.socket_count(0, "CAS_COUNT_WR")) * 64.0;
        let bw = bytes / 5.0;
        assert!(bw <= t.mem_bw_per_socket() * 1.001, "bw {bw} exceeds cap");
        assert!(bw > 0.9 * t.mem_bw_per_socket(), "bw {bw} should saturate");
    }

    #[test]
    fn energy_accumulates_and_idle_power_is_low() {
        let t = topo();
        let mut sim = Simulator::new(&t, 4);
        sim.set_jitter(0.0);
        sim.advance(Duration::from_secs(100));
        let idle_j = sim.socket_count(0, "PWR_PKG_ENERGY");
        let idle_w = idle_j / 100.0;
        assert!((15.0..30.0).contains(&idle_w), "idle watts = {idle_w}");

        sim.assign(0..4, WorkloadPreset::ComputeBound.model(&t));
        sim.advance(Duration::from_secs(100));
        let busy_w = (sim.socket_count(0, "PWR_PKG_ENERGY") - idle_j) / 100.0;
        assert!(busy_w > idle_w + 10.0, "busy {busy_w} vs idle {idle_w}");
    }

    #[test]
    fn phases_switch_at_boundaries() {
        let t = topo();
        let model = compute_with_break(&t, Duration::from_secs(10), Duration::from_secs(5));
        let busy = model.rates_at(Duration::from_secs(0));
        assert!(busy.dp_avx > 0.0);
        let idle = model.rates_at(Duration::from_secs(12));
        assert_eq!(idle.dp_avx, 0.0);
        let busy_again = model.rates_at(Duration::from_secs(16));
        assert!(busy_again.dp_avx > 0.0);
    }

    #[test]
    fn finite_sequence_falls_back_to_idle() {
        let m = WorkloadModel::sequence(vec![WorkloadPhase {
            duration: Some(Duration::from_secs(1)),
            rates: EventRates::compute_bound(&topo()),
        }]);
        assert_eq!(m.rates_at(Duration::from_secs(2)), EventRates::idle());
    }

    #[test]
    fn looped_sequence_wraps() {
        let t = topo();
        let m = WorkloadModel::sequence(vec![
            WorkloadPhase {
                duration: Some(Duration::from_secs(2)),
                rates: EventRates::compute_bound(&t),
            },
            WorkloadPhase { duration: Some(Duration::from_secs(2)), rates: EventRates::idle() },
        ])
        .looped();
        assert!(m.rates_at(Duration::from_secs(1)).dp_avx > 0.0);
        assert_eq!(m.rates_at(Duration::from_secs(3)).dp_avx, 0.0);
        assert!(m.rates_at(Duration::from_secs(5)).dp_avx > 0.0); // wrapped
    }

    #[test]
    fn deterministic_given_seed_and_no_jitter() {
        let t = topo();
        let run = || {
            let mut sim = Simulator::new(&t, 99);
            sim.set_jitter(0.0);
            sim.assign(0..2, WorkloadPreset::Balanced.model(&t));
            sim.advance(Duration::from_secs(3));
            sim.thread_count(0, "INSTR_RETIRED_ANY")
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn reassignment_restarts_phase_clock() {
        let t = topo();
        let mut sim = Simulator::new(&t, 5);
        sim.set_jitter(0.0);
        sim.advance(Duration::from_secs(100));
        // Assign a model whose first phase is busy for 10s: phase time must
        // start now, not at t=0.
        sim.assign([0], compute_with_break(&t, Duration::from_secs(10), Duration::from_secs(5)));
        let before = sim.thread_count(0, "FP_ARITH_INST_RETIRED_256B_PACKED_DOUBLE");
        sim.advance(Duration::from_secs(5));
        let after = sim.thread_count(0, "FP_ARITH_INST_RETIRED_256B_PACKED_DOUBLE");
        assert!(after > before, "busy phase should be active right after assignment");
    }

    #[test]
    fn lerp_midpoint() {
        let t = topo();
        let a = EventRates::compute_bound(&t);
        let b = EventRates::memory_bound(&t);
        let m = a.lerp(&b, 0.5);
        assert!((m.instr - (a.instr + b.instr) / 2.0).abs() < 1.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
    }
}
