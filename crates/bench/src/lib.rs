pub fn placeholder() {}
