//! Claim C2 — "router tagging adds negligible overhead": enrichment cost
//! with 0–8 job tags per host, tag-store hit vs miss, and the ablation
//! enrichment-on vs enrichment-off (untagged hosts).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lms_influx::{Influx, InfluxServer};
use lms_lineproto::{BatchBuilder, Point};
use lms_router::{JobSignal, Router, RouterConfig, TagStore};
use lms_util::{Clock, Timestamp};
use std::hint::black_box;

fn batch_for_hosts(hosts: usize, lines_per_host: usize) -> String {
    let mut builder = BatchBuilder::new();
    for h in 0..hosts {
        for i in 0..lines_per_host {
            let mut p = Point::new("cpu_total");
            p.add_tag("hostname", format!("h{h}"))
                .add_field("busy", 0.9)
                .set_timestamp(i as i64);
            builder.push(&p);
        }
    }
    builder.take()
}

/// A router in front of a live in-process database server.
fn router() -> (InfluxServer, Router) {
    let clock = Clock::simulated(Timestamp::from_secs(1_000));
    let influx = Influx::new(clock.clone());
    let server = InfluxServer::start("127.0.0.1:0", influx).expect("db");
    let config = RouterConfig { queue_capacity: 1 << 14, ..Default::default() };
    let r = Router::new(server.addr(), config, clock, None).expect("router");
    (server, r)
}

fn bench_tagstore(c: &mut Criterion) {
    let mut group = c.benchmark_group("router/tagstore");
    let mut store = TagStore::new();
    for j in 0..128 {
        store.job_start(&JobSignal {
            job_id: format!("{j}"),
            user: format!("user{j}"),
            hosts: (0..4).map(|h| format!("h{}", j * 4 + h)).collect(),
            extra_tags: vec![("queue".into(), "batch".into())],
        });
    }
    group.bench_function("lookup_hit", |b| {
        b.iter(|| black_box(store.tags_of(black_box("h200")).len()))
    });
    group.bench_function("lookup_miss", |b| {
        b.iter(|| black_box(store.tags_of(black_box("unknown-host")).len()))
    });
    group.bench_function("signal_start_end", |b| {
        let signal = JobSignal {
            job_id: "bench".into(),
            user: "u".into(),
            hosts: vec!["hx1".into(), "hx2".into(), "hx3".into(), "hx4".into()],
            extra_tags: vec![],
        };
        b.iter(|| {
            store.job_start(black_box(&signal));
            store.job_end("bench");
        })
    });
    group.finish();
}

fn bench_enrichment(c: &mut Criterion) {
    let mut group = c.benchmark_group("router/enrich");
    group.sample_size(30);
    let batch = batch_for_hosts(16, 16); // 256 lines
    group.throughput(Throughput::Elements(256));

    // Ablation: no jobs registered → no line is enriched.
    {
        let (server, router) = router();
        group.bench_function("tags_off", |b| {
            b.iter(|| black_box(router.handle_write(None, black_box(&batch))))
        });
        router.flush(std::time::Duration::from_secs(10));
        server.shutdown();
    }
    // 2, 4 and 8 job tags attached to every host's lines.
    for extra in [0usize, 2, 6] {
        let (server, router) = router();
        router.handle_job_start(JobSignal {
            job_id: "42".into(),
            user: "alice".into(),
            hosts: (0..16).map(|h| format!("h{h}")).collect(),
            extra_tags: (0..extra).map(|i| (format!("tag{i}"), format!("v{i}"))).collect(),
        });
        group.bench_with_input(
            BenchmarkId::new("tags_on", 2 + extra),
            &batch,
            |b, batch| b.iter(|| black_box(router.handle_write(None, black_box(batch)))),
        );
        router.flush(std::time::Duration::from_secs(10));
        server.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_tagstore, bench_enrichment);
criterion_main!(benches);
