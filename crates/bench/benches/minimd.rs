//! Ablation — miniMD thread scaling and monitoring overhead: steps/s of
//! the proxy app across thread counts, and the cost of libusermetric
//! instrumentation relative to an uninstrumented run (the paper's "low
//! overhead" concern applied to application-level monitoring).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lms_apps::{MiniMd, MiniMdConfig};
use lms_usermetric::{UserMetric, UserMetricConfig};
use lms_util::{Clock, Timestamp};
use std::hint::black_box;

fn config(threads: usize) -> MiniMdConfig {
    MiniMdConfig { nx: 8, ny: 8, nz: 8, threads, ..Default::default() } // 2048 atoms
}

fn bench_thread_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("minimd/steps");
    group.sample_size(10);
    group.throughput(Throughput::Elements(10));
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &t| {
            let mut md = MiniMd::new(config(t));
            b.iter(|| {
                for _ in 0..10 {
                    md.step();
                }
                black_box(md.steps_done())
            })
        });
    }
    group.finish();
}

fn bench_monitoring_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("minimd/monitoring");
    group.sample_size(10);
    group.throughput(Throughput::Elements(20));

    group.bench_function("uninstrumented", |b| {
        let mut md = MiniMd::new(config(2));
        b.iter(|| black_box(md.run(20, 0, None).temperature))
    });
    group.bench_function("instrumented_every_10", |b| {
        let mut md = MiniMd::new(config(2));
        let um = UserMetric::to_null(
            UserMetricConfig::default(),
            Clock::simulated(Timestamp::from_secs(1)),
        );
        b.iter(|| black_box(md.run(20, 10, Some(&um)).temperature))
    });
    group.finish();
}

criterion_group!(benches, bench_thread_scaling, bench_monitoring_overhead);
criterion_main!(benches);
