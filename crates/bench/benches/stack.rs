//! E2E — whole-stack ingest: one collection tick (agents → router → DB
//! over real TCP) as node count grows, plus the dashboard-generation and
//! admin-view costs on a populated stack.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lms_apps::AppProfile;
use lms_core::{LmsStack, StackConfig};
use lms_topology::Topology;
use std::hint::black_box;
use std::time::Duration;

fn config(nodes: usize) -> StackConfig {
    StackConfig { nodes, topology: Topology::preset_desktop_4c(), ..Default::default() }
}

fn bench_tick(c: &mut Criterion) {
    let mut group = c.benchmark_group("stack/tick");
    group.sample_size(10);
    for nodes in [2usize, 8, 16] {
        group.throughput(Throughput::Elements(nodes as u64));
        group.bench_with_input(BenchmarkId::new("nodes", nodes), &nodes, |b, &nodes| {
            let mut stack = LmsStack::start(config(nodes)).unwrap();
            stack.submit_job(
                "bench",
                "load",
                nodes,
                Duration::from_secs(1 << 20),
                AppProfile::MiniMd,
            );
            // Prime the pipeline (first HPM collect returns nothing).
            stack.tick(Duration::from_secs(60));
            b.iter(|| {
                stack.tick(Duration::from_secs(60));
                black_box(stack.stats().ticks)
            });
            stack.flush();
        });
    }
    group.finish();
}

fn bench_views(c: &mut Criterion) {
    let mut group = c.benchmark_group("stack/views");
    group.sample_size(10);
    let mut stack = LmsStack::start(config(4)).unwrap();
    let job = stack.submit_job("anna", "x", 4, Duration::from_secs(1 << 20), AppProfile::MiniMd);
    stack.run_for(Duration::from_secs(30 * 60), Duration::from_secs(60));

    group.bench_function("job_dashboard_generate", |b| {
        b.iter(|| black_box(stack.job_dashboard(job).unwrap().rows.len()))
    });
    group.bench_function("job_dashboard_render", |b| {
        b.iter(|| black_box(stack.render_job_dashboard(job).unwrap().len()))
    });
    group.bench_function("evaluate_job_fig2", |b| {
        b.iter(|| black_box(stack.evaluate_job(job).unwrap().nodes.len()))
    });
    group.bench_function("admin_view", |b| {
        b.iter(|| black_box(stack.admin_view().unwrap().jobs))
    });
    group.finish();
}

criterion_group!(benches, bench_tick, bench_views);
criterion_main!(benches);
