//! Tentpole benchmark — concurrent ingest throughput: the seed write path
//! (single lock stripe, per-line `Point` materialization, triple series
//! lookup) vs the sharded allocation-free path (`write_parsed` over lock
//! stripes) vs the staged batch path (`write_parsed_batch` through
//! per-shard append buffers).
//!
//! Four engines bracket the changes:
//!
//! * `seed`: one stripe, `line.to_point()` + `write_point` — the hot path
//!   before the sharding refactor.
//! * `striped-1`: one stripe, allocation-free `write_parsed` — isolates
//!   the entry-API/no-alloc win from the concurrency win.
//! * `sharded`: default stripes, `write_parsed` — the per-line path.
//! * `batched`: default stripes, `write_parsed_batch` — whole batches are
//!   staged into per-shard append buffers and drained by one thread per
//!   shard, so hot-series writers no longer convoy on a series write lock.
//!
//! Two workloads: `many-series` (each writer owns its series; writes spread
//! across stripes) and `hot-series` (every thread hammers one series; the
//! per-line engines serialize on that series' stripe).
//!
//! Custom harness (not criterion): the comparison needs the measured
//! numbers programmatically to compute speedups and emit
//! `BENCH_ingest.json` at the repository root.
//!
//! `LMS_BENCH_QUICK=1` switches to the CI smoke mode: hot-series only,
//! 1 and 8 threads, 3 runs, no file overwrite — it exits non-zero when
//! the batched/seed speedup at 8 threads regresses more than 30% against
//! the checked-in `BENCH_ingest.json`, or when the batched path is slower
//! at 8 threads than at 1 (the contention collapse this PR removes).

use lms_influx::{Database, Influx, StorageConfig, WriteOptions};
use lms_lineproto::{parse_batch, ParseOutcome};
use lms_util::{Clock, Timestamp};
use std::hint::black_box;
use std::time::{Duration, Instant};

const LINES_PER_BATCH: usize = 200;
const BATCHES_PER_THREAD: usize = 40;
const RUNS: usize = 7;
const QUICK_RUNS: usize = 3;
const DEFAULT_SHARDS: usize = 16;

const BASELINE_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ingest.json");

#[derive(Clone, Copy, PartialEq)]
enum Workload {
    /// Each thread writes its own 64 series.
    ManySeries,
    /// All threads write the same single series (distinct timestamps).
    HotSeries,
}

impl Workload {
    fn name(self) -> &'static str {
        match self {
            Workload::ManySeries => "many-series",
            Workload::HotSeries => "hot-series",
        }
    }
}

#[derive(Clone, Copy)]
enum Path {
    /// The seed hot path: materialize a `Point` per line, triple-lookup
    /// insert via `write_point`.
    SeedPoint,
    /// The per-line path: borrowed `ParsedLine` + reused key buffer.
    Parsed,
    /// The batch path: whole `ParseOutcome`s through the per-shard
    /// append buffers.
    Batched,
}

/// Pre-builds the line-protocol batches one thread will write, so the timed
/// region contains only parse + write calls.
fn batches_for(workload: Workload, thread: usize) -> Vec<String> {
    let mut batches = Vec::with_capacity(BATCHES_PER_THREAD);
    for b in 0..BATCHES_PER_THREAD {
        let mut body = String::with_capacity(LINES_PER_BATCH * 48);
        for i in 0..LINES_PER_BATCH {
            let n = b * LINES_PER_BATCH + i;
            // Monotonic timestamps per series keep Series inserts at the
            // append fast path for every engine; the engines differ only in
            // locking and per-line allocation work.
            match workload {
                Workload::ManySeries => {
                    let series = n % 64;
                    body.push_str(&format!(
                        "cpu,hostname=t{thread}n{series:02},cpu=c{},socket=s0 busy={i},user={i} {}\n",
                        series % 4,
                        (n + 1) as i64 * 1_000
                    ));
                }
                Workload::HotSeries => {
                    // Interleave timestamps across threads so every insert
                    // lands near the tail of the sorted series regardless
                    // of scheduling order.
                    let ts = (n * 8 + thread + 1) as i64;
                    body.push_str(&format!(
                        "cpu,hostname=h0,cpu=c0,socket=s0 busy={i},user={i} {ts}\n"
                    ));
                }
            }
        }
        batches.push(body);
    }
    batches
}

/// One timed run: `threads` writers push their pre-parsed batches into a
/// fresh database. Parsing happens once, outside the timed region — the
/// benchmark isolates the storage-engine write path this change touched.
/// Returns points per second.
fn run_once(
    shards: usize,
    path: Path,
    threads: usize,
    inputs: &[Vec<ParseOutcome<'_>>],
) -> f64 {
    let db = Database::with_shards(shards);
    let start = Instant::now();
    std::thread::scope(|s| {
        for input in inputs.iter().take(threads) {
            let db = &db;
            s.spawn(move || {
                let mut key_buf = String::with_capacity(64);
                for parsed in input {
                    match path {
                        Path::Batched => {
                            db.write_parsed_batch(
                                black_box(&parsed.lines),
                                WriteOptions::default(),
                                0,
                            );
                        }
                        _ => {
                            for line in &parsed.lines {
                                let ts = line.timestamp.expect("bench lines carry timestamps");
                                match path {
                                    Path::SeedPoint => {
                                        let point = black_box(line).to_point();
                                        db.write_point(&point, ts);
                                    }
                                    Path::Parsed => {
                                        db.write_parsed(black_box(line), ts, &mut key_buf)
                                    }
                                    Path::Batched => unreachable!(),
                                }
                            }
                        }
                    }
                }
            });
        }
    });
    // point_count drains the staged buffers, so the batched path is
    // charged for its own drain work, not just for staging.
    black_box(db.point_count());
    let elapsed = start.elapsed().as_secs_f64();
    let points = (threads * BATCHES_PER_THREAD * LINES_PER_BATCH) as f64;
    points / elapsed
}

/// Median of `runs` runs.
fn measure(
    shards: usize,
    path: Path,
    threads: usize,
    inputs: &[Vec<ParseOutcome<'_>>],
    runs: usize,
) -> f64 {
    let mut samples: Vec<f64> =
        (0..runs).map(|_| run_once(shards, path, threads, inputs)).collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite throughput"));
    samples[samples.len() / 2]
}

struct Row {
    workload: &'static str,
    threads: usize,
    seed: f64,
    striped_1: f64,
    sharded: f64,
    batched: f64,
}

/// WAL fsyncs per acknowledged point, end to end, for the legacy stack
/// (every collector batch delivered and fsynced individually) vs the new
/// one (the router coalesces queued batches into merged deliveries and
/// the WAL commits concurrent appends as one fsynced group).
/// Returns (legacy_fsyncs_per_point, grouped_fsyncs_per_point).
fn measure_wal_fsync_reduction() -> (f64, f64) {
    const WRITERS: usize = 8;
    const BATCHES: usize = 40;
    const LINES: usize = 20;
    /// Batches the router's forwarder merges per delivery under backlog
    /// (conservative: its cap is bytes-based and far higher than this).
    const COALESCE: usize = 4;

    let run = |grouped: bool| -> f64 {
        let dir = std::env::temp_dir().join(format!(
            "lms-bench-wal-{}-{}",
            std::process::id(),
            if grouped { "grouped" } else { "legacy" }
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = StorageConfig::new(&dir);
        cfg.wal_fsync = true;
        if !grouped {
            cfg.wal_group_commit = Duration::ZERO;
            cfg.wal_group_commit_bytes = 0;
        }
        let ix = Influx::open(Clock::simulated(Timestamp::from_secs(1_000)), DEFAULT_SHARDS, cfg)
            .expect("open persistent influx");
        std::thread::scope(|s| {
            for t in 0..WRITERS {
                let ix = ix.clone();
                s.spawn(move || {
                    let mut pending = String::new();
                    let mut queued = 0usize;
                    for b in 0..BATCHES {
                        for i in 0..LINES {
                            let ts = ((t * BATCHES + b) * LINES + i + 1) as i64;
                            pending.push_str(&format!("cpu,hostname=h{t} busy={i} {ts}\n"));
                        }
                        queued += 1;
                        let flush_at = if grouped { COALESCE } else { 1 };
                        if queued == flush_at || b + 1 == BATCHES {
                            ix.write_lines("lms", &pending, WriteOptions::default())
                                .expect("acked write");
                            pending.clear();
                            queued = 0;
                        }
                    }
                });
            }
        });
        let fsyncs = ix.storage_stats().wal_fsyncs as f64;
        let _ = std::fs::remove_dir_all(&dir);
        fsyncs / (WRITERS * BATCHES * LINES) as f64
    };
    (run(false), run(true))
}

/// Ingest throughput with and without the background integrity scrubber
/// running concurrently, on a persistent database pre-seeded with sealed
/// segments (so the scrubber has real files to re-verify). The scrub
/// thread runs far hotter than production (a 256 KiB pass every 50 ms —
/// a ~5 MiB/s scan rate vs the default 8 MiB per 60 s), so passing the
/// 5% overhead gate here
/// leaves a wide margin for the deployed configuration.
/// Returns `(plain_pts_per_s, scrubbed_pts_per_s)`, each a median of 3.
fn measure_scrub_overhead() -> (f64, f64) {
    const WRITERS: usize = 4;
    const BATCHES: usize = 100;
    const LINES: usize = 500;

    let run = |scrub: bool, round: usize| -> f64 {
        let dir = std::env::temp_dir().join(format!(
            "lms-bench-scrub-{}-{}-{round}",
            std::process::id(),
            if scrub { "on" } else { "off" }
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = StorageConfig::new(&dir);
        // Scrub verification is whole-file granular, so cap WAL segments
        // at the pass budget — otherwise every pass overshoots its budget
        // by one 4 MiB frozen WAL file and the duty cycle explodes.
        cfg.wal_segment_bytes = 256 * 1024;
        let ix = Influx::open(Clock::simulated(Timestamp::from_secs(1_000)), DEFAULT_SHARDS, cfg)
            .expect("open persistent influx");
        // Seed sealed segments: five flushes of 2k points each.
        for r in 0..5 {
            let mut body = String::with_capacity(2_000 * 40);
            for i in 0..2_000 {
                body.push_str(&format!(
                    "seed,hostname=s{} v={i} {}\n",
                    i % 16,
                    (r * 2_000 + i + 1) as i64 * 1_000
                ));
            }
            ix.write_lines("lms", &body, WriteOptions::default()).expect("seed write");
            ix.flush_storage().expect("seed flush");
        }

        let stop = std::sync::atomic::AtomicBool::new(false);
        let pts_per_s = std::thread::scope(|s| {
            if scrub {
                let ix = ix.clone();
                let stop = &stop;
                s.spawn(move || {
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let _ = ix.scrub_storage(256 * 1024);
                        std::thread::sleep(Duration::from_millis(50));
                    }
                });
            }
            let start = Instant::now();
            std::thread::scope(|w| {
                for t in 0..WRITERS {
                    let ix = ix.clone();
                    w.spawn(move || {
                        for b in 0..BATCHES {
                            let mut body = String::with_capacity(LINES * 40);
                            for i in 0..LINES {
                                let ts = ((t * BATCHES + b) * LINES + i + 1) as i64 * 1_000
                                    + 1_000_000_000_000;
                                body.push_str(&format!("cpu,hostname=h{t} busy={i} {ts}\n"));
                            }
                            ix.write_lines("lms", &body, WriteOptions::default())
                                .expect("acked write");
                        }
                    });
                }
            });
            let elapsed = start.elapsed().as_secs_f64();
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            (WRITERS * BATCHES * LINES) as f64 / elapsed
        });
        let _ = std::fs::remove_dir_all(&dir);
        pts_per_s
    };

    // Paired runs with alternating order: single-run throughput on a
    // loaded machine swings far more than the 5% gate, but drift hits
    // both sides of a back-to-back pair equally, so the median of the
    // per-pair ratios isolates the scrubber's actual cost.
    let mut plains = Vec::new();
    let mut scrubbeds = Vec::new();
    let mut ratios = Vec::new();
    for round in 0..5 {
        let (plain, scrubbed) = if round % 2 == 0 {
            let p = run(false, round);
            (p, run(true, round))
        } else {
            let s = run(true, round);
            (run(false, round), s)
        };
        plains.push(plain);
        scrubbeds.push(scrubbed);
        ratios.push(scrubbed / plain);
    }
    let median = |mut v: Vec<f64>| -> f64 {
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite throughput"));
        v[v.len() / 2]
    };
    let (p, r) = (median(plains), median(ratios));
    (p, p * r)
}

/// Extracts a numeric JSON field from a single line via substring scan —
/// enough for the bench's own output format, no parser dependency.
fn json_num(line: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\": ");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// The checked-in hot-series@8 batched/seed speedup, if present.
fn baseline_hot8_speedup(json: &str) -> Option<f64> {
    for line in json.lines() {
        if line.contains("\"hot-series\"") && line.contains("\"threads\": 8") {
            let seed = json_num(line, "seed_pts_per_s")?;
            let batched = json_num(line, "batched_pts_per_s")?;
            return Some(batched / seed);
        }
    }
    None
}

/// Contention gate over `(writers, pts/s)` tiers for the batched
/// hot-series path. While added writers are backed by real cores,
/// throughput must be monotonically non-decreasing. Past the machine's
/// core count the writers time-share CPUs, so no scaling is physically
/// possible and the check degrades to a bounded-amplification floor:
/// per-point work under full contention may cost at most 2.5x the
/// best uncontended tier (the pre-group-commit write path failed this
/// at >5x).
fn contention_ok(tiers: &[(usize, f64)]) -> bool {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut ok = true;
    for w in tiers.windows(2) {
        let ((t0, p0), (t1, p1)) = (w[0], w[1]);
        if t1 <= cores && p1 < p0 {
            eprintln!(
                "FAIL: batched throughput decreases {t0}→{t1} writers with {cores} cores: \
                 {p0:.0} → {p1:.0} pts/s"
            );
            ok = false;
        }
    }
    let base = tiers
        .iter()
        .filter(|&&(t, _)| t <= cores)
        .map(|&(_, p)| p)
        .fold(tiers[0].1, f64::max);
    for &(t, p) in tiers.iter().filter(|&&(t, _)| t > cores) {
        if p < 0.4 * base {
            eprintln!(
                "FAIL: {t} writers on {cores} cores amplify per-point cost >2.5x: \
                 {p:.0} pts/s < 0.4 × {base:.0} pts/s"
            );
            ok = false;
        }
    }
    ok
}

/// CI smoke mode: hot-series only, fail fast on contention regressions.
fn run_quick() -> bool {
    let raw: Vec<Vec<String>> = (0..8).map(|t| batches_for(Workload::HotSeries, t)).collect();
    let inputs: Vec<Vec<ParseOutcome<'_>>> = raw
        .iter()
        .map(|batches| batches.iter().map(|b| parse_batch(b)).collect())
        .collect();

    let seed_8 = measure(1, Path::SeedPoint, 8, &inputs, QUICK_RUNS);
    let batched_1 = measure(DEFAULT_SHARDS, Path::Batched, 1, &inputs, QUICK_RUNS);
    let batched_8 = measure(DEFAULT_SHARDS, Path::Batched, 8, &inputs, QUICK_RUNS);
    println!(
        "hot-series  seed@8 {seed_8:>9.0} pts/s   batched@1 {batched_1:>9.0} pts/s   batched@8 {batched_8:>9.0} pts/s"
    );

    let mut ok = contention_ok(&[(1, batched_1), (8, batched_8)]);
    match std::fs::read_to_string(BASELINE_PATH).ok().as_deref().and_then(baseline_hot8_speedup) {
        Some(base) => {
            let now = batched_8 / seed_8;
            println!("hot-series @8: batched/seed = {now:.2}x (baseline {base:.2}x)");
            if now < 0.7 * base {
                eprintln!(
                    "FAIL: >30% regression vs checked-in BENCH_ingest.json \
                     ({now:.2}x < 0.7 × {base:.2}x)"
                );
                ok = false;
            }
        }
        None => println!("note: no batched baseline in BENCH_ingest.json; skipping ratio check"),
    }

    let (plain, scrubbed) = measure_scrub_overhead();
    let overhead = (1.0 - scrubbed / plain) * 100.0;
    println!(
        "scrub overhead: plain {plain:>9.0} pts/s   scrubbed {scrubbed:>9.0} pts/s   ({overhead:.1}%, target < 5%)"
    );
    if scrubbed < 0.95 * plain {
        eprintln!(
            "FAIL: background scrub costs ingest more than 5% \
             ({scrubbed:.0} pts/s < 0.95 × {plain:.0} pts/s)"
        );
        ok = false;
    }
    if ok {
        println!("bench-smoke OK");
    }
    ok
}

fn run_full() {
    let mut rows = Vec::new();

    for workload in [Workload::ManySeries, Workload::HotSeries] {
        let raw: Vec<Vec<String>> = (0..8).map(|t| batches_for(workload, t)).collect();
        let inputs: Vec<Vec<ParseOutcome<'_>>> = raw
            .iter()
            .map(|batches| batches.iter().map(|b| parse_batch(b)).collect())
            .collect();
        for threads in [1usize, 4, 8] {
            let seed = measure(1, Path::SeedPoint, threads, &inputs, RUNS);
            let striped_1 = measure(1, Path::Parsed, threads, &inputs, RUNS);
            let sharded = measure(DEFAULT_SHARDS, Path::Parsed, threads, &inputs, RUNS);
            let batched = measure(DEFAULT_SHARDS, Path::Batched, threads, &inputs, RUNS);
            println!(
                "{:<12} threads={threads}  seed {:>9.0} pts/s   striped-1 {:>9.0} pts/s   sharded({DEFAULT_SHARDS}) {:>9.0} pts/s   batched {:>9.0} pts/s   speedup {:>6.2}x",
                workload.name(),
                seed,
                striped_1,
                sharded,
                batched,
                batched / seed,
            );
            rows.push(Row {
                workload: workload.name(),
                threads,
                seed,
                striped_1,
                sharded,
                batched,
            });
        }
    }

    let (legacy_fpp, grouped_fpp) = measure_wal_fsync_reduction();
    let reduction = legacy_fpp / grouped_fpp.max(f64::MIN_POSITIVE);
    println!(
        "\nwal group commit @ 8 writers: legacy {legacy_fpp:.4} fsyncs/pt, grouped {grouped_fpp:.4} fsyncs/pt — {reduction:.1}x fewer (target ≥ 10x)"
    );

    let (plain, scrubbed) = measure_scrub_overhead();
    println!(
        "scrub overhead @ {WRITERS} writers: plain {plain:.0} pts/s, scrubbed {scrubbed:.0} pts/s — {:.1}% (target < 5%)",
        (1.0 - scrubbed / plain) * 100.0,
        WRITERS = 4
    );

    let json = render_json(&rows, legacy_fpp, grouped_fpp, plain, scrubbed);
    std::fs::write(BASELINE_PATH, &json).expect("write BENCH_ingest.json");
    println!("wrote {BASELINE_PATH}");

    let hot = |threads: usize| {
        rows.iter()
            .find(|r| r.workload == "hot-series" && r.threads == threads)
            .expect("hot-series row")
    };
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "acceptance: hot-series batched @ 8 writers = {:.0} pts/s (target ≥ 1M): {}, \
         scaling 1→4→8 on {cores} cores = {:.0} → {:.0} → {:.0}: {}",
        hot(8).batched,
        if hot(8).batched >= 1_000_000.0 { "OK" } else { "FAIL" },
        hot(1).batched,
        hot(4).batched,
        hot(8).batched,
        if contention_ok(&[(1, hot(1).batched), (4, hot(4).batched), (8, hot(8).batched)]) {
            "OK"
        } else {
            "FAIL"
        },
    );
}

fn main() {
    let quick = std::env::var("LMS_BENCH_QUICK").is_ok_and(|v| v == "1");
    if quick {
        if !run_quick() {
            std::process::exit(1);
        }
        return;
    }
    run_full();
}

fn render_json(
    rows: &[Row],
    legacy_fpp: f64,
    grouped_fpp: f64,
    scrub_plain: f64,
    scrub_scrubbed: f64,
) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"config\": {{\"lines_per_batch\": {LINES_PER_BATCH}, \"batches_per_thread\": {BATCHES_PER_THREAD}, \"runs\": {RUNS}, \"default_shards\": {DEFAULT_SHARDS}}},\n"
    ));
    out.push_str("  \"engines\": {\"seed\": \"1 stripe, Point materialization (pre-refactor hot path)\", \"striped_1\": \"1 stripe, allocation-free write_parsed\", \"sharded\": \"default stripes, allocation-free write_parsed\", \"batched\": \"default stripes, write_parsed_batch through per-shard append buffers\"},\n");
    out.push_str(&format!(
        "  \"wal_group_commit\": {{\"writers\": 8, \"legacy_fsyncs_per_point\": {legacy_fpp:.5}, \"grouped_fsyncs_per_point\": {grouped_fpp:.5}, \"reduction\": {:.1}}},\n",
        legacy_fpp / grouped_fpp.max(f64::MIN_POSITIVE)
    ));
    out.push_str(&format!(
        "  \"scrub_overhead\": {{\"writers\": 4, \"plain_pts_per_s\": {scrub_plain:.0}, \"scrubbed_pts_per_s\": {scrub_scrubbed:.0}, \"overhead_pct\": {:.2}}},\n",
        (1.0 - scrub_scrubbed / scrub_plain.max(f64::MIN_POSITIVE)) * 100.0
    ));
    // The cluster bench owns the `cluster_scaling` line; carry the current
    // one over so a full ingest run does not erase it.
    if let Some(line) = std::fs::read_to_string(BASELINE_PATH)
        .ok()
        .and_then(|s| s.lines().find(|l| l.trim_start().starts_with("\"cluster_scaling\"")).map(String::from))
    {
        out.push_str(&line);
        out.push('\n');
    }
    out.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"threads\": {}, \"seed_pts_per_s\": {:.0}, \"striped_1_pts_per_s\": {:.0}, \"sharded_pts_per_s\": {:.0}, \"batched_pts_per_s\": {:.0}, \"speedup_vs_seed\": {:.2}, \"speedup_batched_vs_seed\": {:.2}}}{}\n",
            r.workload,
            r.threads,
            r.seed,
            r.striped_1,
            r.sharded,
            r.batched,
            r.sharded / r.seed,
            r.batched / r.seed,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
