//! Tentpole benchmark — concurrent ingest throughput: the seed write path
//! (single lock stripe, per-line `Point` materialization, triple series
//! lookup) vs the sharded allocation-free path (`write_parsed` over lock
//! stripes).
//!
//! Three engines bracket the change:
//!
//! * `seed`: one stripe, `line.to_point()` + `write_point` — the hot path
//!   before this refactor.
//! * `striped-1`: one stripe, allocation-free `write_parsed` — isolates
//!   the entry-API/no-alloc win from the concurrency win.
//! * `sharded`: default stripes, `write_parsed` — the shipped path.
//!
//! Two workloads: `many-series` (each writer owns its series; writes spread
//! across stripes) and `hot-series` (every thread hammers one series; all
//! engines serialize on that series' stripe).
//!
//! Custom harness (not criterion): the comparison needs the measured
//! numbers programmatically to compute speedups and emit
//! `BENCH_ingest.json` at the repository root.

use lms_influx::Database;
use lms_lineproto::{parse_batch, ParseOutcome};
use std::hint::black_box;
use std::time::Instant;

const LINES_PER_BATCH: usize = 200;
const BATCHES_PER_THREAD: usize = 40;
const RUNS: usize = 7;
const DEFAULT_SHARDS: usize = 16;

#[derive(Clone, Copy, PartialEq)]
enum Workload {
    /// Each thread writes its own 64 series.
    ManySeries,
    /// All threads write the same single series (distinct timestamps).
    HotSeries,
}

impl Workload {
    fn name(self) -> &'static str {
        match self {
            Workload::ManySeries => "many-series",
            Workload::HotSeries => "hot-series",
        }
    }
}

#[derive(Clone, Copy)]
enum Path {
    /// The seed hot path: materialize a `Point` per line, triple-lookup
    /// insert via `write_point`.
    SeedPoint,
    /// The new hot path: borrowed `ParsedLine` + reused key buffer.
    Parsed,
}

/// Pre-builds the line-protocol batches one thread will write, so the timed
/// region contains only parse + write calls.
fn batches_for(workload: Workload, thread: usize) -> Vec<String> {
    let mut batches = Vec::with_capacity(BATCHES_PER_THREAD);
    for b in 0..BATCHES_PER_THREAD {
        let mut body = String::with_capacity(LINES_PER_BATCH * 48);
        for i in 0..LINES_PER_BATCH {
            let n = b * LINES_PER_BATCH + i;
            // Monotonic timestamps per series keep Series inserts at the
            // append fast path for every engine; the engines differ only in
            // locking and per-line allocation work.
            match workload {
                Workload::ManySeries => {
                    let series = n % 64;
                    body.push_str(&format!(
                        "cpu,hostname=t{thread}n{series:02},cpu=c{},socket=s0 busy={i},user={i} {}\n",
                        series % 4,
                        (n + 1) as i64 * 1_000
                    ));
                }
                Workload::HotSeries => {
                    // Interleave timestamps across threads so every insert
                    // lands near the tail of the sorted series regardless
                    // of scheduling order.
                    let ts = (n * 8 + thread + 1) as i64;
                    body.push_str(&format!(
                        "cpu,hostname=h0,cpu=c0,socket=s0 busy={i},user={i} {ts}\n"
                    ));
                }
            }
        }
        batches.push(body);
    }
    batches
}

/// One timed run: `threads` writers push their pre-parsed batches into a
/// fresh database. Parsing happens once, outside the timed region — the
/// benchmark isolates the storage-engine write path this change touched.
/// Returns points per second.
fn run_once(
    shards: usize,
    path: Path,
    threads: usize,
    inputs: &[Vec<ParseOutcome<'_>>],
) -> f64 {
    let db = Database::with_shards(shards);
    let start = Instant::now();
    std::thread::scope(|s| {
        for input in inputs.iter().take(threads) {
            let db = &db;
            s.spawn(move || {
                let mut key_buf = String::with_capacity(64);
                for parsed in input {
                    for line in &parsed.lines {
                        let ts = line.timestamp.expect("bench lines carry timestamps");
                        match path {
                            Path::SeedPoint => {
                                let point = black_box(line).to_point();
                                db.write_point(&point, ts);
                            }
                            Path::Parsed => db.write_parsed(black_box(line), ts, &mut key_buf),
                        }
                    }
                }
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    black_box(db.point_count());
    let points = (threads * BATCHES_PER_THREAD * LINES_PER_BATCH) as f64;
    points / elapsed
}

/// Median of `RUNS` runs.
fn measure(
    shards: usize,
    path: Path,
    threads: usize,
    inputs: &[Vec<ParseOutcome<'_>>],
) -> f64 {
    let mut samples: Vec<f64> =
        (0..RUNS).map(|_| run_once(shards, path, threads, inputs)).collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite throughput"));
    samples[samples.len() / 2]
}

struct Row {
    workload: &'static str,
    threads: usize,
    seed: f64,
    striped_1: f64,
    sharded: f64,
}

fn main() {
    let mut rows = Vec::new();

    for workload in [Workload::ManySeries, Workload::HotSeries] {
        let raw: Vec<Vec<String>> = (0..8).map(|t| batches_for(workload, t)).collect();
        let inputs: Vec<Vec<ParseOutcome<'_>>> = raw
            .iter()
            .map(|batches| batches.iter().map(|b| parse_batch(b)).collect())
            .collect();
        for threads in [1usize, 4, 8] {
            let seed = measure(1, Path::SeedPoint, threads, &inputs);
            let striped_1 = measure(1, Path::Parsed, threads, &inputs);
            let sharded = measure(DEFAULT_SHARDS, Path::Parsed, threads, &inputs);
            println!(
                "{:<12} threads={threads}  seed {:>9.0} pts/s   striped-1 {:>9.0} pts/s   sharded({DEFAULT_SHARDS}) {:>9.0} pts/s   speedup {:>5.2}x",
                workload.name(),
                seed,
                striped_1,
                sharded,
                sharded / seed,
            );
            rows.push(Row { workload: workload.name(), threads, seed, striped_1, sharded });
        }
    }

    let json = render_json(&rows);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ingest.json");
    std::fs::write(path, &json).expect("write BENCH_ingest.json");
    println!("\nwrote {path}");

    let key = rows
        .iter()
        .find(|r| r.workload == "many-series" && r.threads == 8)
        .expect("8-thread many-series row");
    println!(
        "acceptance: many-series @ 8 writers speedup = {:.2}x (target ≥ 2x)",
        key.sharded / key.seed
    );
}

fn render_json(rows: &[Row]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"config\": {{\"lines_per_batch\": {LINES_PER_BATCH}, \"batches_per_thread\": {BATCHES_PER_THREAD}, \"runs\": {RUNS}, \"default_shards\": {DEFAULT_SHARDS}}},\n"
    ));
    out.push_str("  \"engines\": {\"seed\": \"1 stripe, Point materialization (pre-refactor hot path)\", \"striped_1\": \"1 stripe, allocation-free write_parsed\", \"sharded\": \"default stripes, allocation-free write_parsed\"},\n");
    out.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"threads\": {}, \"seed_pts_per_s\": {:.0}, \"striped_1_pts_per_s\": {:.0}, \"sharded_pts_per_s\": {:.0}, \"speedup_vs_seed\": {:.2}}}{}\n",
            r.workload,
            r.threads,
            r.seed,
            r.striped_1,
            r.sharded,
            r.sharded / r.seed,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
