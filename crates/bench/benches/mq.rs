//! Claim C5 — "ZeroMQ publishing enables stream analysis": publish cost
//! with 0/1/4 subscribers, topic-filtering cost, and the high-water-mark
//! ablation (drop behaviour under a stalled subscriber).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lms_mq::{Publisher, Subscriber};
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const PAYLOAD: &[u8] = b"cpu_total,hostname=node042,jobid=1000 busy=0.93 1501804800000000000";

/// A subscriber that drains everything in a background thread.
fn draining_subscriber(addr: std::net::SocketAddr, topic: &str) -> (std::thread::JoinHandle<u64>, Arc<AtomicBool>) {
    let mut sub = Subscriber::connect(addr).unwrap();
    sub.subscribe(topic).unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = stop.clone();
    let handle = std::thread::spawn(move || {
        let mut received = 0u64;
        while !stop2.load(Ordering::Acquire) {
            match sub.recv_timeout(Duration::from_millis(50)) {
                Ok(Some(_)) => received += 1,
                Ok(None) => {}
                Err(_) => break,
            }
        }
        received
    });
    (handle, stop)
}

fn bench_publish(c: &mut Criterion) {
    let mut group = c.benchmark_group("mq/publish");
    group.throughput(Throughput::Elements(1));

    // No subscribers: pure encode + fan-out scan.
    {
        let publisher = Publisher::bind("127.0.0.1:0").unwrap();
        group.bench_function("subscribers_0", |b| {
            b.iter(|| publisher.publish(black_box("metrics.cpu_total"), black_box(PAYLOAD)))
        });
    }
    for nsubs in [1usize, 4] {
        let publisher = Publisher::bind("127.0.0.1:0").unwrap();
        let mut drains = Vec::new();
        for _ in 0..nsubs {
            drains.push(draining_subscriber(publisher.addr(), "metrics."));
        }
        publisher.wait_for_subscribers(nsubs, Duration::from_secs(5)).unwrap();
        group.bench_with_input(
            BenchmarkId::new("subscribers", nsubs),
            &nsubs,
            |b, _| {
                b.iter(|| {
                    publisher.publish(black_box("metrics.cpu_total"), black_box(PAYLOAD))
                })
            },
        );
        for (handle, stop) in drains {
            stop.store(true, Ordering::Release);
            let _ = handle.join();
        }
    }
    // Filtered out: subscriber exists but the topic never matches.
    {
        let publisher = Publisher::bind("127.0.0.1:0").unwrap();
        let (handle, stop) = draining_subscriber(publisher.addr(), "signals.");
        publisher.wait_for_subscribers(1, Duration::from_secs(5)).unwrap();
        group.bench_function("filtered_out", |b| {
            b.iter(|| publisher.publish(black_box("metrics.cpu_total"), black_box(PAYLOAD)))
        });
        stop.store(true, Ordering::Release);
        let _ = handle.join();
    }
    group.finish();
}

fn bench_hwm_ablation(c: &mut Criterion) {
    // A stalled subscriber with varying high-water marks: how much does a
    // 10k-message flood cost, and how many deliveries drop?
    let mut group = c.benchmark_group("mq/hwm_flood");
    group.sample_size(10);
    group.throughput(Throughput::Elements(10_000));
    for hwm in [16usize, 1024] {
        group.bench_with_input(BenchmarkId::new("hwm", hwm), &hwm, |b, &hwm| {
            b.iter_with_setup(
                || {
                    let publisher = Publisher::bind_with_hwm("127.0.0.1:0", hwm).unwrap();
                    let mut sub = Subscriber::connect(publisher.addr()).unwrap();
                    sub.subscribe("").unwrap();
                    publisher.wait_for_subscribers(1, Duration::from_secs(5)).unwrap();
                    (publisher, sub) // sub never drained: stalls immediately
                },
                |(publisher, _sub)| {
                    for _ in 0..10_000 {
                        publisher.publish("t", PAYLOAD);
                    }
                    black_box(publisher.stats().dropped)
                },
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_publish, bench_hwm_ablation);
criterion_main!(benches);
