//! Claim C6 — "online analysis detects pathological jobs": rule-engine
//! window extraction, the compound Fig. 4 evaluation, decision-tree
//! classification throughput, and the full job evaluation against a
//! populated database.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lms_analysis::evaluation::{JobEvaluation, NodePeaks};
use lms_analysis::pathology::PathologyDetector;
use lms_analysis::patterns::{classify, PerfSignature};
use lms_analysis::rules::{evaluate_all, Rule};
use lms_analysis::TimeSeries;
use lms_influx::Influx;
use lms_util::{Clock, Timestamp};
use std::hint::black_box;
use std::time::Duration;

/// A day of 1-minute samples with periodic dips.
fn series(n: usize) -> TimeSeries {
    TimeSeries {
        points: (0..n)
            .map(|i| {
                let dip = (i / 60) % 4 == 3; // every 4th hour is low
                (Timestamp::from_secs(i as i64 * 60), if dip { 5.0 } else { 2000.0 })
            })
            .collect(),
    }
}

fn bench_rules(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis/rules");
    for n in [60usize, 1440] {
        let s = series(n);
        let rule = Rule::below("low fp", 100.0, Duration::from_secs(600));
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("single", n), &s, |b, s| {
            b.iter(|| black_box(rule.evaluate(black_box(s)).len()))
        });
        let s2 = series(n);
        let rule2 = Rule::below("low bw", 100.0, Duration::from_secs(600));
        group.bench_with_input(BenchmarkId::new("compound_and", n), &(s, s2), |b, (a, bseries)| {
            b.iter(|| {
                black_box(
                    evaluate_all(&[(&rule, a), (&rule2, bseries)], Duration::from_secs(600))
                        .len(),
                )
            })
        });
    }
    group.finish();
}

fn bench_decision_tree(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis/pattern_tree");
    group.throughput(Throughput::Elements(1));
    let signatures: Vec<PerfSignature> = (0..64)
        .map(|i| PerfSignature {
            flops_frac: (i % 10) as f64 / 10.0,
            membw_frac: (i % 7) as f64 / 7.0,
            ipc: (i % 4) as f64,
            vectorization: (i % 3) as f64 / 3.0,
            branch_misp_ratio: (i % 5) as f64 / 50.0,
            stall_frac: (i % 6) as f64 / 6.0,
            imbalance: (i % 8) as f64 / 8.0,
            cpu_busy: 0.1 + (i % 9) as f64 / 10.0,
        })
        .collect();
    group.bench_function("classify", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % signatures.len();
            black_box(classify(black_box(&signatures[i])))
        })
    });
    group.finish();
}

/// A database with a 60-minute 4-node job at 1-minute resolution.
fn job_database() -> (Influx, Vec<String>) {
    let ix = Influx::new(Clock::simulated(Timestamp::from_secs(4000)));
    let hosts: Vec<String> = (1..=4).map(|i| format!("h{i}")).collect();
    let mut batch = String::new();
    for minute in 0..60i64 {
        let ts = minute * 60 * 1_000_000_000;
        for host in &hosts {
            let dip = host == "h3" && (20..38).contains(&minute);
            let (fp, bw, busy) = if dip { (5.0, 50.0, 0.02) } else { (2500.0, 28_000.0, 0.95) };
            batch.push_str(&format!(
                "hpm_flops_dp,hostname={host} dp_mflop_s={fp},ipc=2.0,vectorization_ratio=90 {ts}\n\
                 hpm_mem,hostname={host} memory_bandwidth_mbytes_s={bw} {ts}\n\
                 cpu_total,hostname={host} busy={busy} {ts}\n\
                 memory,hostname={host} used_frac=0.5 {ts}\n\
                 load,hostname={host} load1=7.5 {ts}\n\
                 network,hostname={host} rx_bytes_per_s=1e6,tx_bytes_per_s=1e6 {ts}\n\
                 disk,hostname={host} read_bytes_per_s=1e4,write_bytes_per_s=1e5 {ts}\n"
            ));
        }
    }
    ix.write_lines("lms", &batch, Default::default()).unwrap();
    (ix, hosts)
}

fn bench_job_analysis(c: &mut Criterion) {
    let (ix, hosts) = job_database();
    let mut group = c.benchmark_group("analysis/job");
    group.sample_size(20);
    let start = Timestamp::from_secs(0);
    let end = Timestamp::from_secs(3600);

    group.bench_function("pathology_detect", |b| {
        let detector = PathologyDetector::new("lms");
        b.iter_with_setup(
            || ix.clone(),
            |mut src| black_box(detector.detect(&mut src, &hosts, start, end).unwrap().len()),
        )
    });
    group.bench_function("full_evaluation_fig2", |b| {
        let peaks = NodePeaks { flops_mflops: 350_000.0, membw_mbytes: 84_000.0 };
        b.iter_with_setup(
            || ix.clone(),
            |mut src| {
                let ev =
                    JobEvaluation::evaluate(&mut src, "lms", "42", &hosts, start, end, peaks)
                        .unwrap();
                black_box(ev.render_table().len())
            },
        )
    });
    group.finish();
}

criterion_group!(benches, bench_rules, bench_decision_tree, bench_job_analysis);
criterion_main!(benches);
