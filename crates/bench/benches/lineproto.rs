//! Claim C1 — "batched transmission / human-readable protocol is cheap":
//! line-protocol serialize and parse throughput as a function of batch
//! size, plus the zero-copy parse fast path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lms_lineproto::{parse_batch, parse_line, BatchBuilder, Point};
use std::hint::black_box;

fn typical_point(i: usize) -> Point {
    let mut p = Point::new("cpu_total");
    p.add_tag("hostname", format!("node{:03}", i % 64))
        .add_field("user", 0.82)
        .add_field("system", 0.03)
        .add_field("idle", 0.12)
        .add_field("iowait", 0.03)
        .add_field("busy", 0.88)
        .set_timestamp(1_501_804_800_000_000_000 + i as i64);
    p
}

fn bench_serialize(c: &mut Criterion) {
    let mut group = c.benchmark_group("lineproto/serialize");
    for batch_size in [1usize, 10, 100, 1000] {
        let points: Vec<Point> = (0..batch_size).map(typical_point).collect();
        group.throughput(Throughput::Elements(batch_size as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(batch_size),
            &points,
            |b, points| {
                let mut builder = BatchBuilder::with_capacity(batch_size * 96);
                b.iter(|| {
                    builder.clear();
                    for p in points {
                        builder.push(p);
                    }
                    black_box(builder.byte_len())
                });
            },
        );
    }
    group.finish();
}

fn bench_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("lineproto/parse");
    for batch_size in [1usize, 10, 100, 1000] {
        let mut builder = BatchBuilder::new();
        for i in 0..batch_size {
            builder.push(&typical_point(i));
        }
        let text = builder.take();
        group.throughput(Throughput::Bytes(text.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(batch_size), &text, |b, text| {
            b.iter(|| {
                let outcome = parse_batch(black_box(text));
                black_box(outcome.lines.len())
            });
        });
    }
    group.finish();
}

fn bench_parse_single_line_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("lineproto/line");
    // Zero-copy: no escapes anywhere.
    let clean = typical_point(7).to_line();
    group.bench_function("zero_copy", |b| {
        b.iter(|| black_box(parse_line(black_box(&clean)).unwrap().tags.len()))
    });
    // Escaped: forces owned unescaping.
    let mut escaped_point = Point::new("my measurement");
    escaped_point
        .add_tag("host name", "node with spaces")
        .add_field("the value", 1.0)
        .set_timestamp(1);
    let escaped = escaped_point.to_line();
    group.bench_function("escaped", |b| {
        b.iter(|| black_box(parse_line(black_box(&escaped)).unwrap().tags.len()))
    });
    // Parse + convert to owned point (the router's enrichment path).
    group.bench_function("to_point", |b| {
        b.iter(|| black_box(parse_line(black_box(&clean)).unwrap().to_point()))
    });
    group.finish();
}

criterion_group!(benches, bench_serialize, bench_parse, bench_parse_single_line_paths);
criterion_main!(benches);
