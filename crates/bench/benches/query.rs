//! Storage-engine query benchmark: range scans and aggregations over one
//! million points, served from the mutable head (memory-only database) vs
//! from sealed compressed blocks (persistent database after a full flush).
//!
//! Also records the sealed-block compression ratio against the raw
//! in-memory representation (`Vec<(i64, FieldValue)>`) — the acceptance
//! criterion is ≥ 4x.
//!
//! The query-engine v2 acceptance bars are asserted here: with block
//! summaries answering fully-covered blocks and the binary-searched block
//! time index skipping out-of-range ones, `aggregate-full` and
//! `windowed-1h` over sealed blocks must run within 1.5x of the head
//! engine (down from 7.7x / 6.2x on the seed executor), and the sealed
//! range scan must not regress past 1.5x either.
//!
//! Custom harness (not criterion): the comparison needs the measured
//! numbers programmatically to emit `BENCH_query.json` at the repository
//! root.
//!
//! `LMS_BENCH_QUICK=1` switches to the CI smoke mode: same dataset, 3
//! runs, no file overwrite — it exits non-zero when any query's
//! sealed/head ratio regresses more than 30% against the checked-in
//! `BENCH_query.json`, or when an acceptance bar above fails.

use lms_influx::{Influx, QueryTuning, RollupPolicy, StorageConfig, Tier};
use lms_util::{Clock, Timestamp};
use std::hint::black_box;
use std::time::Instant;

const SERIES: usize = 20;
const POINTS_PER_SERIES: usize = 50_000; // 1M points total
const STEP_NS: i64 = 1_000_000_000; // one sample per second per series
const RUNS: usize = 5;
const QUICK_RUNS: usize = 3;

// Month-of-data rollup comparison: 4 hosts sampled every 30s for 30
// days, queried with a 1h-windowed aggregate served raw vs from the 1m
// vs the 1h rollup tier. Acceptance: the 1h tier answers ≥ 10x faster
// than the raw full decode.
const ROLLUP_SERIES: usize = 4;
const ROLLUP_STEP_NS: i64 = 30 * 1_000_000_000;
const ROLLUP_POINTS_PER_SERIES: usize = 86_400; // 30 days at 30s
const ROLLUP_SPEEDUP_MIN: f64 = 10.0;

const BASELINE_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_query.json");

/// Sealed/head ceiling per query. The summary-served aggregates carry the
/// ISSUE's 1.5x acceptance bar (seed: 7.7x / 6.2x); the range scan still
/// decodes its straddling blocks, so its bar is "never regress to the
/// seed's decode-everything 1.6x+" with headroom for scan jitter.
fn sealed_over_head_max(name: &str) -> f64 {
    match name {
        "aggregate-full" | "windowed-1h" => 1.5,
        _ => 2.0,
    }
}

/// Loads the benchmark dataset: `SERIES` hosts, one sample per second,
/// a slowly varying utilization-like float per sample.
fn load(ix: &Influx) {
    const CHUNK: usize = 5_000;
    let mut body = String::with_capacity(CHUNK * 64);
    for series in 0..SERIES {
        for start in (0..POINTS_PER_SERIES).step_by(CHUNK) {
            body.clear();
            for i in start..(start + CHUNK).min(POINTS_PER_SERIES) {
                let ts = (i as i64 + 1) * STEP_NS;
                // Quarter-step values in [0, 100): compressible like real
                // utilization metrics, but not constant.
                let busy = ((i * 37 + series * 11) % 400) as f64 * 0.25;
                body.push_str(&format!("cpu,hostname=h{series} busy={busy} {ts}\n"));
            }
            ix.write_lines("lms", &body, Default::default()).expect("load");
        }
    }
}

/// Median wall-clock milliseconds of `runs` executions of `q`.
fn measure(ix: &Influx, q: &str, runs: usize) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            let r = ix.query("lms", black_box(q)).expect("query");
            black_box(&r);
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite time"));
    samples[samples.len() / 2]
}

struct Row {
    name: &'static str,
    query: String,
    head_ms: f64,
    sealed_ms: f64,
}

fn queries() -> Vec<(&'static str, String)> {
    let total_ns = POINTS_PER_SERIES as i64 * STEP_NS;
    vec![
        (
            "range-scan-10pct",
            format!(
                "SELECT busy FROM cpu WHERE hostname = 'h3' AND time >= {} AND time < {}",
                total_ns / 2,
                total_ns / 2 + total_ns / 10
            ),
        ),
        ("aggregate-full", "SELECT mean(busy), max(busy) FROM cpu".to_string()),
        (
            "windowed-1h",
            format!(
                "SELECT mean(busy) FROM cpu WHERE time >= 0 AND time < {total_ns} GROUP BY time(1h)"
            ),
        ),
    ]
}

/// Loads both engines and measures every query on each. Returns the rows
/// plus the sealed engine's storage stats.
fn run_measurements(runs: usize) -> (Vec<Row>, lms_influx::StorageStats) {
    // Head: memory-only database, every point in the mutable head.
    // The clock sits past the data: windowed queries clamp their bounded
    // end to `now`, so a lagging clock would collapse the emission range.
    let head = Influx::new(Clock::simulated(Timestamp::from_secs(60_000)));
    println!("loading {} points into the head engine...", SERIES * POINTS_PER_SERIES);
    load(&head);

    // Sealed: persistent database, every point flushed into compressed
    // blocks (the head is empty when the queries run).
    let dir = std::env::temp_dir().join(format!("lms-bench-query-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let sealed =
        Influx::open(Clock::simulated(Timestamp::from_secs(60_000)), 8, StorageConfig::new(&dir))
            .expect("open persistent");
    println!("loading {} points into the sealed engine...", SERIES * POINTS_PER_SERIES);
    load(&sealed);
    sealed.flush_storage().expect("flush");

    let stats = sealed.storage_stats();
    assert_eq!(stats.head_points, 0, "flush must seal every head point");
    assert_eq!(stats.sealed_points, (SERIES * POINTS_PER_SERIES) as u64);

    let mut rows = Vec::new();
    for (name, q) in queries() {
        let head_ms = measure(&head, &q, runs);
        let sealed_ms = measure(&sealed, &q, runs);
        println!(
            "{name:<18} head {head_ms:>8.2} ms   sealed {sealed_ms:>8.2} ms   sealed/head {:>5.2}x",
            sealed_ms / head_ms
        );
        rows.push(Row { name, query: q, head_ms, sealed_ms });
    }
    let _ = std::fs::remove_dir_all(&dir);
    (rows, stats)
}

/// Raw vs tier costs of the month-of-data windowed aggregate.
struct RollupCosts {
    query: String,
    raw_decode_ms: f64,
    raw_fast_ms: f64,
    tier_1m_ms: f64,
    tier_1h_ms: f64,
}

impl RollupCosts {
    fn speedup_1h(&self) -> f64 {
        self.raw_decode_ms / self.tier_1h_ms
    }
}

/// Loads a month of data into a fresh persistent database, rolls it up,
/// and measures the windowed aggregate under each tier policy. The
/// answers are asserted identical across policies (quarter-step values
/// are dyadic, so the decomposed sums are bit-exact).
fn run_rollup_measurements(runs: usize) -> RollupCosts {
    let dir = std::env::temp_dir().join(format!("lms-bench-rollup-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // A month of 30s samples ends at ~2,592,030s; the clock must sit past
    // that or the windowed emission clamps to `now` and measures nothing.
    let ix =
        Influx::open(Clock::simulated(Timestamp::from_secs(2_700_000)), 8, StorageConfig::new(&dir))
            .expect("open persistent");
    println!(
        "loading month-of-data rollup dataset ({} points)...",
        ROLLUP_SERIES * ROLLUP_POINTS_PER_SERIES
    );
    const CHUNK: usize = 5_000;
    let mut body = String::with_capacity(CHUNK * 64);
    for series in 0..ROLLUP_SERIES {
        for start in (0..ROLLUP_POINTS_PER_SERIES).step_by(CHUNK) {
            body.clear();
            for i in start..(start + CHUNK).min(ROLLUP_POINTS_PER_SERIES) {
                let ts = (i as i64 + 1) * ROLLUP_STEP_NS;
                let busy = ((i * 37 + series * 11) % 400) as f64 * 0.25;
                body.push_str(&format!("cpu,hostname=h{series} busy={busy} {ts}\n"));
            }
            ix.write_lines("lms", &body, Default::default()).expect("load");
        }
    }
    ix.flush_storage().expect("flush");
    println!("rolling up into 1m and 1h tiers...");
    ix.enable_rollups(RollupPolicy::default()).expect("enable rollups");
    let (_, tier_rows) = ix.rollup_counters();
    println!("rollup complete: {tier_rows} tier rows");

    let total_ns = (ROLLUP_POINTS_PER_SERIES as i64 + 1) * ROLLUP_STEP_NS;
    // Unquoted tag key: the recorded query is embedded verbatim in
    // BENCH_query.json, where inner quotes would break the JSON string.
    let q = format!(
        "SELECT mean(busy), max(busy) FROM cpu WHERE time >= 0 AND time < {total_ns} \
         GROUP BY time(1h), hostname"
    );
    let db = ix.database("lms").expect("lms exists");

    // Answers must agree exactly before timing anything.
    ix.set_query_tiers(Some(vec![]));
    let raw_answer = ix.query("lms", &q).expect("raw");
    for tiers in [vec![Tier::Minute], vec![Tier::Hour]] {
        ix.set_query_tiers(Some(tiers.clone()));
        let got = ix.query("lms", &q).expect("tiered");
        assert_eq!(got, raw_answer, "tier answer diverges under {tiers:?}");
    }

    // Raw full decode (the pre-rollup cost of a month-long window).
    ix.set_query_tiers(Some(vec![]));
    db.set_query_tuning(QueryTuning { use_summaries: false, parallel_scan: false });
    let raw_decode_ms = measure(&ix, &q, runs);
    // Raw with the v2 fast paths on — the strongest no-rollup baseline.
    db.set_query_tuning(QueryTuning::default());
    let raw_fast_ms = measure(&ix, &q, runs);
    ix.set_query_tiers(Some(vec![Tier::Minute]));
    let tier_1m_ms = measure(&ix, &q, runs);
    ix.set_query_tiers(Some(vec![Tier::Hour]));
    let tier_1h_ms = measure(&ix, &q, runs);
    ix.set_query_tiers(None);

    let costs = RollupCosts { query: q, raw_decode_ms, raw_fast_ms, tier_1m_ms, tier_1h_ms };
    println!(
        "windowed-30d        raw-decode {raw_decode_ms:>8.2} ms   raw-fast {raw_fast_ms:>8.2} ms   \
         1m {tier_1m_ms:>8.2} ms   1h {tier_1h_ms:>8.2} ms   1h speedup {:>5.1}x",
        costs.speedup_1h()
    );
    let _ = std::fs::remove_dir_all(&dir);
    costs
}

/// The rollup acceptance bar: the 1h tier must serve the month-long
/// windowed aggregate ≥ 10x faster than the raw full decode.
fn rollup_ok(costs: &RollupCosts) -> bool {
    let speedup = costs.speedup_1h();
    if speedup < ROLLUP_SPEEDUP_MIN {
        eprintln!(
            "FAIL: 1h-tier speedup {speedup:.1}x below the {ROLLUP_SPEEDUP_MIN}x acceptance bar \
             (raw-decode {:.2} ms, 1h tier {:.2} ms)",
            costs.raw_decode_ms, costs.tier_1h_ms
        );
        return false;
    }
    true
}

/// The acceptance ceilings on sealed/head ratios. Returns false (and
/// prints the failures) when one is blown.
fn ratios_ok(rows: &[Row]) -> bool {
    let mut ok = true;
    for r in rows {
        let ratio = r.sealed_ms / r.head_ms;
        let max = sealed_over_head_max(r.name);
        if ratio > max {
            eprintln!(
                "FAIL: {} sealed/head = {ratio:.2}x exceeds the {max}x acceptance ceiling",
                r.name
            );
            ok = false;
        }
    }
    ok
}

/// Extracts a numeric JSON field from a single line via substring scan —
/// enough for the bench's own output format, no parser dependency.
fn json_num(line: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\": ");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// The checked-in sealed/head ratio for one query, if present.
fn baseline_ratio(json: &str, name: &str) -> Option<f64> {
    json.lines()
        .find(|l| l.contains(&format!("\"query\": \"{name}\"")))
        .and_then(|l| json_num(l, "sealed_over_head"))
}

/// CI smoke mode: 3 runs, no file overwrite, fail fast on a >30%
/// sealed/head regression vs the checked-in baseline or a blown
/// acceptance ceiling.
fn run_quick() -> bool {
    let (rows, _) = run_measurements(QUICK_RUNS);
    let mut ok = ratios_ok(&rows);
    ok &= rollup_ok(&run_rollup_measurements(QUICK_RUNS));
    let baseline = std::fs::read_to_string(BASELINE_PATH).ok();
    for r in &rows {
        let now = r.sealed_ms / r.head_ms;
        match baseline.as_deref().and_then(|json| baseline_ratio(json, r.name)) {
            Some(base) => {
                // 30% relative slack, floored at +0.25x absolute: the
                // summary-served aggregates sit below 0.1x where a few
                // hundredths of noise would otherwise trip a 30% gate.
                let limit = (1.3 * base).max(base + 0.25);
                println!("{:<18} sealed/head {now:.2}x (baseline {base:.2}x)", r.name);
                if now > limit {
                    eprintln!(
                        "FAIL: {} regressed >30% vs checked-in BENCH_query.json \
                         ({now:.2}x > {limit:.2}x)",
                        r.name
                    );
                    ok = false;
                }
            }
            None => println!(
                "note: no baseline for {} in BENCH_query.json; skipping ratio check",
                r.name
            ),
        }
    }
    if ok {
        println!("bench-smoke OK");
    }
    ok
}

fn run_full() {
    let (rows, stats) = run_measurements(RUNS);
    let raw_bytes =
        stats.sealed_points * std::mem::size_of::<(i64, lms_lineproto::FieldValue)>() as u64;
    let ratio = stats.compression_ratio();
    println!(
        "sealed: {} blocks, {} bytes on heap vs {} raw ({:.1}x), {} segment files ({} bytes)\n",
        stats.sealed_blocks, stats.sealed_bytes, raw_bytes, ratio, stats.segment_files,
        stats.segment_bytes
    );
    let rollup = run_rollup_measurements(RUNS);

    let json = render_json(&rows, &stats, raw_bytes, ratio, &rollup);
    std::fs::write(BASELINE_PATH, &json).expect("write BENCH_query.json");
    println!("wrote {BASELINE_PATH}");
    println!("acceptance: sealed-block compression = {ratio:.1}x raw (target ≥ 4x)");
    assert!(ratio >= 4.0, "compression ratio {ratio:.2} below the 4x acceptance bar");
    assert!(ratios_ok(&rows), "a sealed/head ratio exceeds its acceptance ceiling");
    println!(
        "acceptance: 1h-tier month-window speedup = {:.1}x raw decode (target ≥ {ROLLUP_SPEEDUP_MIN}x)",
        rollup.speedup_1h()
    );
    assert!(rollup_ok(&rollup), "the 1h-tier speedup is below the acceptance bar");
}

fn main() {
    let quick = std::env::var("LMS_BENCH_QUICK").is_ok_and(|v| v == "1");
    if quick {
        if !run_quick() {
            std::process::exit(1);
        }
        return;
    }
    run_full();
}

fn render_json(
    rows: &[Row],
    stats: &lms_influx::StorageStats,
    raw_bytes: u64,
    ratio: f64,
    rollup: &RollupCosts,
) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"config\": {{\"series\": {SERIES}, \"points_per_series\": {POINTS_PER_SERIES}, \"step_ns\": {STEP_NS}, \"runs\": {RUNS}}},\n"
    ));
    out.push_str("  \"engines\": {\"head\": \"memory-only, all points in mutable heads\", \"sealed\": \"persistent, all points in compressed sealed blocks\"},\n");
    out.push_str(&format!(
        "  \"compression\": {{\"raw_bytes\": {raw_bytes}, \"sealed_bytes\": {}, \"segment_bytes\": {}, \"ratio_vs_raw\": {ratio:.2}}},\n",
        stats.sealed_bytes, stats.segment_bytes
    ));
    out.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"query\": \"{}\", \"influxql\": \"{}\", \"head_ms\": {:.3}, \"sealed_ms\": {:.3}, \"sealed_over_head\": {:.2}}}{}\n",
            r.name,
            r.query,
            r.head_ms,
            r.sealed_ms,
            r.sealed_ms / r.head_ms,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"rollup\": {{\"series\": {ROLLUP_SERIES}, \"points_per_series\": {ROLLUP_POINTS_PER_SERIES}, \"step_ns\": {ROLLUP_STEP_NS}, \"influxql\": \"{}\", \"raw_decode_ms\": {:.3}, \"raw_fast_ms\": {:.3}, \"tier_1m_ms\": {:.3}, \"tier_1h_ms\": {:.3}, \"speedup_1h_vs_raw_decode\": {:.1}}}\n",
        rollup.query,
        rollup.raw_decode_ms,
        rollup.raw_fast_ms,
        rollup.tier_1m_ms,
        rollup.tier_1h_ms,
        rollup.speedup_1h(),
    ));
    out.push_str("}\n");
    out
}
