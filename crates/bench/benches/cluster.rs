//! Cluster scaling benchmark — end-to-end ingest throughput through the
//! router's delivery fabric against 1 vs 3 database nodes (R = 1): the
//! same write stream, the same enrichment path, only the fan-out differs.
//! With one node every batch funnels into a single `lms-influxd`; with
//! three, the rendezvous ring spreads series across nodes and deliveries
//! proceed in parallel per destination.
//!
//! Custom harness (not criterion): the run appends a `cluster_scaling`
//! entry to `BENCH_ingest.json` at the repository root, replacing any
//! previous one and leaving the rest of the file untouched.
//!
//! `LMS_BENCH_QUICK=1` runs a smaller stream, checks zero loss, and does
//! not touch the baseline file.

use lms_influx::{Influx, InfluxServer, StorageConfig};
use lms_router::{ClusterConfig, Router, RouterConfig};
use lms_util::{Clock, Timestamp};
use std::sync::Arc;
use std::time::{Duration, Instant};

const LINES_PER_BATCH: usize = 1000;
const WRITERS: usize = 4;
const RUNS: usize = 3;

const BASELINE_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ingest.json");

/// Pre-renders one writer's batches: tagged, timestamped lines over many
/// hostnames, so they take the router's raw pass-through path and the
/// ring has a wide key space to spread.
fn batches_for(thread: usize, batches: usize) -> Vec<String> {
    (0..batches)
        .map(|b| {
            let mut body = String::with_capacity(LINES_PER_BATCH * 48);
            for i in 0..LINES_PER_BATCH {
                let n = b * LINES_PER_BATCH + i;
                let ts = ((thread * batches * LINES_PER_BATCH) + n + 1) as i64 * 1_000;
                body.push_str(&format!(
                    "cpu,hostname=w{thread}h{:02} busy={i} {ts}\n",
                    n % 64
                ));
            }
            body
        })
        .collect()
}

/// One timed run: `WRITERS` threads push their batches through
/// `handle_write` into a fresh cluster of `db_nodes`; the clock stops
/// when `flush` confirms every point reached a database. Returns
/// acknowledged points per second; asserts zero loss and zero duplicates
/// (total stored copies == `replication` × total written).
///
/// Every node runs the persistent engine with `wal_fsync` on. All nodes
/// share this host's cores, so the numbers measure the routing fabric's
/// overhead (R = 1) and replication cost (R = 2) — not multi-machine
/// capacity, which an in-process bench cannot observe.
fn run_once(db_nodes: usize, replication: usize, batches: usize) -> f64 {
    let clock = Clock::simulated(Timestamp::from_secs(1_000));
    let root = std::env::temp_dir().join(format!(
        "lms-bench-cluster-{}-{db_nodes}-{batches}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&root);
    let mut servers = Vec::new();
    let mut handles = Vec::new();
    let mut workers = Vec::new();
    for i in 0..db_nodes {
        let storage = StorageConfig {
            wal_fsync: true,
            ..StorageConfig::new(root.join(format!("node-{i}")))
        };
        let ix = Influx::open(clock.clone(), 4, storage).unwrap();
        ix.create_database("lms");
        workers.push(ix.spawn_storage_worker().expect("persistent node has a storage worker"));
        servers.push(InfluxServer::start("127.0.0.1:0", ix.clone()).unwrap());
        handles.push(ix);
    }
    let cluster = ClusterConfig {
        nodes: servers.iter().map(|s| s.addr()).collect(),
        replication,
        write_quorum: 1,
        seed: 7,
    };
    let router =
        Arc::new(Router::new_cluster(cluster, RouterConfig::default(), clock, None).unwrap());

    let inputs: Vec<Vec<String>> = (0..WRITERS).map(|t| batches_for(t, batches)).collect();
    let start = Instant::now();
    std::thread::scope(|s| {
        for input in &inputs {
            let router = router.clone();
            s.spawn(move || {
                for body in input {
                    let o = router.handle_write(None, body);
                    assert!(o.acked, "bench writes must be acknowledged");
                }
            });
        }
    });
    assert!(router.flush(Duration::from_secs(120)), "delivery must drain");
    let elapsed = start.elapsed().as_secs_f64();

    let points = WRITERS * batches * LINES_PER_BATCH;
    let stored: usize = handles.iter().map(|h| h.point_count("lms")).sum();
    assert_eq!(stored, replication * points, "zero loss, zero duplicates through the cluster path");
    if db_nodes > 1 {
        assert!(
            handles.iter().all(|h| h.point_count("lms") > 0),
            "the ring must spread series over every node"
        );
    }
    for w in workers {
        w.stop();
    }
    for s in servers {
        s.shutdown();
    }
    let _ = std::fs::remove_dir_all(&root);
    points as f64 / elapsed
}

fn measure(db_nodes: usize, replication: usize, batches: usize, runs: usize) -> f64 {
    let mut samples: Vec<f64> =
        (0..runs).map(|_| run_once(db_nodes, replication, batches)).collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite throughput"));
    samples[samples.len() / 2]
}

/// Replaces (or inserts) the `cluster_scaling` line in the baseline file,
/// directly after `wal_group_commit`, leaving everything else untouched.
fn update_baseline(single: f64, three_r1: f64, three_r2: f64) {
    let Ok(old) = std::fs::read_to_string(BASELINE_PATH) else {
        eprintln!("note: {BASELINE_PATH} missing; run the ingest bench first");
        return;
    };
    let entry = format!(
        "  \"cluster_scaling\": {{\"write_threads\": {WRITERS}, \"wal_fsync\": true, \"single_node_pts_per_s\": {single:.0}, \"three_node_r1_pts_per_s\": {three_r1:.0}, \"three_node_r2_pts_per_s\": {three_r2:.0}, \"fanout_ratio\": {:.2}, \"r2_copy_throughput_ratio\": {:.2}}},",
        three_r1 / single,
        three_r2 * 2.0 / single
    );
    let mut out = Vec::new();
    let mut inserted = false;
    for line in old.lines() {
        if line.trim_start().starts_with("\"cluster_scaling\"") {
            continue; // replaced below
        }
        out.push(line.to_string());
        if line.trim_start().starts_with("\"wal_group_commit\"") {
            out.push(entry.clone());
            inserted = true;
        }
    }
    if !inserted {
        eprintln!("note: no wal_group_commit anchor in {BASELINE_PATH}; entry not written");
        return;
    }
    std::fs::write(BASELINE_PATH, out.join("\n") + "\n").expect("write BENCH_ingest.json");
    println!("updated {BASELINE_PATH} (cluster_scaling)");
}

fn main() {
    let quick = std::env::var("LMS_BENCH_QUICK").is_ok_and(|v| v == "1");
    let batches = if quick { 5 } else { 25 };
    let runs = if quick { 1 } else { RUNS };

    let single = measure(1, 1, batches, runs);
    let three_r1 = measure(3, 1, batches, runs);
    let three_r2 = measure(3, 2, batches, runs);
    println!(
        "cluster ingest ({WRITERS} writers, wal_fsync): 1 node {single:>9.0} pts/s   3 nodes R=1 {three_r1:>9.0} pts/s ({:.2}x)   3 nodes R=2 {three_r2:>9.0} pts/s ({:.2}x copies)",
        three_r1 / single,
        three_r2 * 2.0 / single
    );
    if !quick {
        update_baseline(single, three_r1, three_r2);
    }
}
