//! Claim C4 — "libusermetric is lightweight": the record() hot path, and
//! the batching ablation (flush every message vs batch of N), which is the
//! design decision the paper motivates with "buffers and sends batched
//! messages".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lms_usermetric::{UserMetric, UserMetricConfig};
use lms_util::{Clock, Timestamp};
use std::hint::black_box;

fn clock() -> Clock {
    Clock::simulated(Timestamp::from_secs(1))
}

fn bench_record_hot_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("usermetric/record");
    // Null sink isolates client-side cost (buffering + serialization).
    let um = UserMetric::to_null(
        UserMetricConfig { flush_lines: usize::MAX, ..Default::default() },
        clock(),
    );
    group.throughput(Throughput::Elements(1));
    group.bench_function("metric", |b| {
        b.iter(|| um.metric(black_box("pressure"), black_box(1.713)))
    });
    group.bench_function("metric_with_tags", |b| {
        b.iter(|| um.metric_with_tags(black_box("pressure"), 1.713, &[("tid", "3")]))
    });
    group.bench_function("event", |b| {
        b.iter(|| um.event(black_box("phase"), black_box("checkpoint written")))
    });
    let with_defaults = UserMetric::to_null(
        UserMetricConfig {
            default_tags: vec![
                ("jobid".into(), "1000".into()),
                ("user".into(), "alice".into()),
                ("rank".into(), "17".into()),
            ],
            flush_lines: usize::MAX,
            ..Default::default()
        },
        clock(),
    );
    group.bench_function("metric_3_default_tags", |b| {
        b.iter(|| with_defaults.metric(black_box("pressure"), black_box(1.713)))
    });
    group.finish();
}

fn bench_batching_ablation(c: &mut Criterion) {
    // Over a real HTTP hop: flushing every message vs batching N messages.
    use lms_http::{Response, Server};
    let server = Server::bind("127.0.0.1:0", 16, |_req| Response::no_content()).unwrap();
    let addr = server.addr();

    let mut group = c.benchmark_group("usermetric/batching");
    group.sample_size(20);
    group.throughput(Throughput::Elements(100));
    for flush_lines in [1usize, 10, 100] {
        group.bench_with_input(
            BenchmarkId::new("flush_every", flush_lines),
            &flush_lines,
            |b, &flush_lines| {
                let um = UserMetric::to_http(
                    UserMetricConfig { flush_lines, ..Default::default() },
                    clock(),
                    addr,
                    "lms",
                )
                .unwrap();
                b.iter(|| {
                    for i in 0..100 {
                        um.metric("m", i as f64);
                    }
                    um.flush();
                });
            },
        );
    }
    group.finish();
    server.shutdown();
}

criterion_group!(benches, bench_record_hot_path, bench_batching_ablation);
criterion_main!(benches);
