//! Claim C3 — "the DB handles per-node metric streams": ingest throughput
//! vs series cardinality, and range/aggregate/window query latency over a
//! populated database.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lms_influx::Influx;
use lms_lineproto::{BatchBuilder, Point};
use lms_util::{Clock, Timestamp};
use std::hint::black_box;

fn ingest_batch(hosts: usize, lines_per_host: usize, t0: i64) -> String {
    let mut b = BatchBuilder::new();
    for h in 0..hosts {
        for i in 0..lines_per_host {
            let mut p = Point::new("cpu_total");
            p.add_tag("hostname", format!("node{h:04}"))
                .add_field("busy", 0.5 + (i as f64) * 0.001)
                .set_timestamp(t0 + (i as i64) * 1_000_000_000);
            b.push(&p);
        }
    }
    b.take()
}

fn bench_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("influx/ingest");
    group.sample_size(20);
    for hosts in [4usize, 64, 512] {
        let lines = 2048 / hosts;
        let batch = ingest_batch(hosts, lines, 0);
        group.throughput(Throughput::Elements((hosts * lines) as u64));
        group.bench_with_input(
            BenchmarkId::new("series", hosts),
            &batch,
            |b, batch| {
                b.iter_with_setup(
                    || Influx::new(Clock::simulated(Timestamp::from_secs(1))),
                    |ix| {
                        let out = ix.write_lines("lms", black_box(batch), Default::default());
                        black_box(out.unwrap().written)
                    },
                );
            },
        );
    }
    group.finish();
}

/// A database with one hour of 1-second samples for 16 hosts.
fn populated() -> Influx {
    let ix = Influx::new(Clock::simulated(Timestamp::from_secs(7200)));
    for chunk in 0..36 {
        let batch = ingest_batch(16, 100, chunk * 100 * 1_000_000_000);
        ix.write_lines("lms", &batch, Default::default()).unwrap();
    }
    ix
}

fn bench_query(c: &mut Criterion) {
    let ix = populated();
    let mut group = c.benchmark_group("influx/query");
    let cases = [
        ("raw_range", "SELECT busy FROM cpu_total WHERE hostname = 'node0003' AND time >= 600000000000 AND time < 1200000000000"),
        ("aggregate_host", "SELECT mean(busy) FROM cpu_total WHERE hostname = 'node0003'"),
        ("aggregate_all", "SELECT mean(busy), max(busy) FROM cpu_total"),
        ("windowed", "SELECT mean(busy) FROM cpu_total WHERE hostname = 'node0003' AND time >= 0 AND time < 3600000000000 GROUP BY time(1m)"),
        ("group_by_tag", "SELECT mean(busy) FROM cpu_total GROUP BY hostname"),
        ("windowed_by_tag", "SELECT mean(busy) FROM cpu_total WHERE time >= 0 AND time < 3600000000000 GROUP BY time(5m), hostname"),
    ];
    for (name, q) in cases {
        group.bench_function(name, |b| {
            b.iter(|| {
                let r = ix.query("lms", black_box(q)).unwrap();
                black_box(r.series.len())
            })
        });
    }
    group.finish();
}

fn bench_retention(c: &mut Criterion) {
    let mut group = c.benchmark_group("influx/retention");
    group.sample_size(20);
    group.bench_function("enforce_half", |b| {
        b.iter_with_setup(
            || {
                let ix = populated();
                ix.set_retention("lms", Some(std::time::Duration::from_secs(1800)));
                ix
            },
            |ix| black_box(ix.enforce_retention()),
        )
    });
    group.finish();
}

criterion_group!(benches, bench_ingest, bench_query, bench_retention);
criterion_main!(benches);
