//! Claim C7 — "HPM performance groups abstract portability": group file
//! parsing, formula evaluation, counter allocation, simulator integration
//! steps, and a full measure-read-derive cycle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lms_hpm::counters::allocate;
use lms_hpm::events::EventCatalog;
use lms_hpm::formula::Formula;
use lms_hpm::groups::{builtin, builtin_text, PerfGroup};
use lms_hpm::perfmon::Perfmon;
use lms_hpm::simulate::{Simulator, WorkloadPreset};
use lms_topology::Topology;
use std::hint::black_box;
use std::time::Duration;

fn bench_group_parsing(c: &mut Criterion) {
    let mut group = c.benchmark_group("hpm/group_parse");
    let catalog = EventCatalog::default_arch();
    let text = builtin_text("FLOPS_DP").unwrap();
    group.bench_function("flops_dp_file", |b| {
        b.iter(|| black_box(PerfGroup::parse("FLOPS_DP", black_box(text), &catalog).unwrap()))
    });
    group.finish();
}

fn bench_formula(c: &mut Criterion) {
    let mut group = c.benchmark_group("hpm/formula");
    let f = Formula::parse("1.0E-06*(PMC0+PMC1*2.0+PMC2*4.0)/time").unwrap();
    let resolve = |name: &str| -> Option<f64> {
        Some(match name {
            "PMC0" => 1.0e9,
            "PMC1" => 2.0e9,
            "PMC2" => 8.0e9,
            "time" => 1.0,
            _ => return None,
        })
    };
    group.throughput(Throughput::Elements(1));
    group.bench_function("eval_flops_dp", |b| b.iter(|| black_box(f.eval(&resolve).unwrap())));
    group.bench_function("parse", |b| {
        b.iter(|| {
            black_box(Formula::parse(black_box("1.0E-06*(PMC0+PMC1*2.0+PMC2*4.0)/time")).unwrap())
        })
    });
    group.finish();
}

fn bench_allocation(c: &mut Criterion) {
    let mut group = c.benchmark_group("hpm/allocate");
    let catalog = EventCatalog::default_arch();
    let events = [
        "INSTR_RETIRED_ANY",
        "CPU_CLK_UNHALTED_CORE",
        "FP_ARITH_INST_RETIRED_256B_PACKED_DOUBLE",
        "L1D_REPLACEMENT",
        "CAS_COUNT_RD",
        "PWR_PKG_ENERGY",
    ];
    group.bench_function("six_events", |b| {
        b.iter(|| black_box(allocate(black_box(&events), &catalog).unwrap().len()))
    });
    group.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("hpm/simulator");
    let topo = Topology::preset_dual_socket_10c(); // 40 hw threads
    group.throughput(Throughput::Elements(topo.num_hw_threads() as u64));
    group.bench_function("advance_1s_40threads", |b| {
        let mut sim = Simulator::new(&topo, 5);
        sim.assign(0..topo.num_cores(), WorkloadPreset::Balanced.model(&topo));
        b.iter(|| {
            sim.advance(Duration::from_secs(1));
            black_box(sim.elapsed())
        })
    });
    group.finish();
}

fn bench_measurement_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("hpm/measure");
    let topo = Topology::preset_dual_socket_10c();
    for group_name in ["FLOPS_DP", "MEM", "ENERGY"] {
        group.bench_with_input(
            BenchmarkId::new("start_read_derive", group_name),
            &group_name,
            |b, name| {
                let mut sim = Simulator::new(&topo, 5);
                sim.assign(0..topo.num_cores(), WorkloadPreset::Balanced.model(&topo));
                let mut pm = Perfmon::new(topo.clone());
                pm.add_group(builtin(name, &topo).unwrap()).unwrap();
                b.iter(|| {
                    pm.start(&sim);
                    sim.advance(Duration::from_millis(100));
                    let m = pm.stop_and_read(&sim).unwrap();
                    let metric = m.metric_names().next().unwrap().to_string();
                    black_box(m.metric_aggregate(&metric).unwrap())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_group_parsing,
    bench_formula,
    bench_allocation,
    bench_simulator,
    bench_measurement_cycle
);
criterion_main!(benches);
