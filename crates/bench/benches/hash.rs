//! Ablation — series-index/tag-store hashing: the Fx-style hasher in
//! `lms-util` vs the standard library's SipHash, on the key shapes the
//! hot maps actually see (hostnames, series keys).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lms_util::hash::FxHashMap;
use std::collections::HashMap;
use std::hint::black_box;

fn hostnames(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("node{i:04}")).collect()
}

fn series_keys(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| format!("cpu_total,hostname=node{:04},jobid={},user=user{}", i, 1000 + i, i % 40))
        .collect()
}

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash/lookup");
    for (label, keys) in [("hostname", hostnames(1024)), ("series_key", series_keys(1024))] {
        let fx: FxHashMap<String, usize> =
            keys.iter().cloned().enumerate().map(|(i, k)| (k, i)).collect();
        let sip: HashMap<String, usize> =
            keys.iter().cloned().enumerate().map(|(i, k)| (k, i)).collect();
        group.throughput(Throughput::Elements(keys.len() as u64));
        group.bench_with_input(BenchmarkId::new("fx", label), &keys, |b, keys| {
            b.iter(|| {
                let mut acc = 0usize;
                for k in keys {
                    acc += fx[black_box(k.as_str())];
                }
                black_box(acc)
            })
        });
        group.bench_with_input(BenchmarkId::new("siphash", label), &keys, |b, keys| {
            b.iter(|| {
                let mut acc = 0usize;
                for k in keys {
                    acc += sip[black_box(k.as_str())];
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash/build_1024");
    let keys = series_keys(1024);
    group.bench_function("fx", |b| {
        b.iter(|| {
            let m: FxHashMap<&str, usize> =
                keys.iter().enumerate().map(|(i, k)| (k.as_str(), i)).collect();
            black_box(m.len())
        })
    });
    group.bench_function("siphash", |b| {
        b.iter(|| {
            let m: HashMap<&str, usize> =
                keys.iter().enumerate().map(|(i, k)| (k.as_str(), i)).collect();
            black_box(m.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_lookup, bench_build);
criterion_main!(benches);
