//! The owned [`Point`] type: one measurement sample or event.
//!
//! A point is the unit of data in LMS: a measurement name, a sorted tag set,
//! one or more typed fields, and an optional nanosecond timestamp. Metrics
//! carry numeric fields; *events* (paper Sec. III-C: "strings as input
//! values representing ... events") carry [`FieldValue::Text`] fields and are
//! rendered as dashed annotation lines by the dashboard (paper Fig. 3).

use crate::serialize;

/// A typed field value.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// 64-bit float — serialized bare: `1.5`.
    Float(f64),
    /// 64-bit signed integer — serialized with the `i` suffix: `3i`.
    Integer(i64),
    /// Boolean — serialized as `true`/`false`.
    Boolean(bool),
    /// String — serialized quoted: `"text"`. Used for events.
    Text(String),
}

impl FieldValue {
    /// Numeric view: floats and integers as `f64`, booleans as 0/1,
    /// strings as `None`. The analysis layer works on this view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            FieldValue::Float(v) => Some(*v),
            FieldValue::Integer(v) => Some(*v as f64),
            FieldValue::Boolean(b) => Some(if *b { 1.0 } else { 0.0 }),
            FieldValue::Text(_) => None,
        }
    }

    /// String view (events).
    pub fn as_text(&self) -> Option<&str> {
        match self {
            FieldValue::Text(s) => Some(s),
            _ => None,
        }
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::Float(v)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::Integer(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Boolean(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Text(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Text(v)
    }
}

/// One sample: measurement, tags, fields, optional timestamp.
///
/// Tags are kept sorted by key (InfluxDB canonical form); inserting a
/// duplicate tag key replaces the value. Field order is insertion order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Point {
    measurement: String,
    tags: Vec<(String, String)>,
    fields: Vec<(String, FieldValue)>,
    timestamp: Option<i64>,
}

impl Point {
    /// Creates a point for `measurement` with no tags or fields yet.
    pub fn new(measurement: impl Into<String>) -> Self {
        Point { measurement: measurement.into(), ..Default::default() }
    }

    /// The measurement name.
    pub fn measurement(&self) -> &str {
        &self.measurement
    }

    /// Adds (or replaces) a tag, keeping tags sorted by key.
    pub fn add_tag(&mut self, key: impl Into<String>, value: impl Into<String>) -> &mut Self {
        let key = key.into();
        let value = value.into();
        match self.tags.binary_search_by(|(k, _)| k.as_str().cmp(&key)) {
            Ok(i) => self.tags[i].1 = value,
            Err(i) => self.tags.insert(i, (key, value)),
        }
        self
    }

    /// Adds a field. Duplicate field keys are allowed by the wire protocol;
    /// the last one wins on the database side, so we replace here too.
    pub fn add_field_value(&mut self, key: impl Into<String>, value: FieldValue) -> &mut Self {
        let key = key.into();
        if let Some(slot) = self.fields.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.fields.push((key, value));
        }
        self
    }

    /// Adds a field from any convertible value (`f64`, `i64`, `bool`, `&str`).
    pub fn add_field(&mut self, key: impl Into<String>, value: impl Into<FieldValue>) -> &mut Self {
        self.add_field_value(key, value.into())
    }

    /// Sets the timestamp (nanoseconds since the Unix epoch).
    pub fn set_timestamp(&mut self, nanos: i64) -> &mut Self {
        self.timestamp = Some(nanos);
        self
    }

    /// The timestamp, if set.
    pub fn timestamp(&self) -> Option<i64> {
        self.timestamp
    }

    /// Tag lookup by key.
    pub fn tag(&self, key: &str) -> Option<&str> {
        self.tags
            .binary_search_by(|(k, _)| k.as_str().cmp(key))
            .ok()
            .map(|i| self.tags[i].1.as_str())
    }

    /// All tags, sorted by key.
    pub fn tags(&self) -> &[(String, String)] {
        &self.tags
    }

    /// Field lookup by key.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// All fields, in insertion order.
    pub fn fields(&self) -> &[(String, FieldValue)] {
        &self.fields
    }

    /// True if the point has at least one field (protocol requirement).
    pub fn is_valid(&self) -> bool {
        !self.measurement.is_empty() && !self.fields.is_empty()
    }

    /// True if every field is a string — i.e. this point is an *event*.
    pub fn is_event(&self) -> bool {
        !self.fields.is_empty()
            && self.fields.iter().all(|(_, v)| matches!(v, FieldValue::Text(_)))
    }

    /// Serializes to a single protocol line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut out = String::with_capacity(64);
        serialize::write_point(self, &mut out);
        out
    }

    /// The canonical series key `measurement,tag1=v1,tag2=v2` used by the
    /// database's series index. Escaped exactly like the wire form so
    /// distinct series never collide.
    pub fn series_key(&self) -> String {
        let mut out = String::with_capacity(32);
        serialize::write_series_key(&self.measurement, &self.tags, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_stay_sorted_and_replace() {
        let mut p = Point::new("m");
        p.add_tag("z", "1").add_tag("a", "2").add_tag("m", "3");
        let keys: Vec<_> = p.tags().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["a", "m", "z"]);
        p.add_tag("m", "override");
        assert_eq!(p.tag("m"), Some("override"));
        assert_eq!(p.tags().len(), 3);
    }

    #[test]
    fn fields_replace_on_duplicate_key() {
        let mut p = Point::new("m");
        p.add_field("v", 1.0).add_field("v", 2.0);
        assert_eq!(p.fields().len(), 1);
        assert_eq!(p.field("v"), Some(&FieldValue::Float(2.0)));
    }

    #[test]
    fn validity() {
        let mut p = Point::new("m");
        assert!(!p.is_valid());
        p.add_field("v", 1.0);
        assert!(p.is_valid());
        assert!(!Point::new("").is_valid());
    }

    #[test]
    fn event_detection() {
        let mut ev = Point::new("events");
        ev.add_field("text", "job start");
        assert!(ev.is_event());
        ev.add_field("severity", 2i64);
        assert!(!ev.is_event());
        assert!(!Point::new("empty").is_event());
    }

    #[test]
    fn field_value_views() {
        assert_eq!(FieldValue::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(FieldValue::Integer(-3).as_f64(), Some(-3.0));
        assert_eq!(FieldValue::Boolean(true).as_f64(), Some(1.0));
        assert_eq!(FieldValue::Text("x".into()).as_f64(), None);
        assert_eq!(FieldValue::Text("x".into()).as_text(), Some("x"));
        assert_eq!(FieldValue::Float(1.0).as_text(), None);
    }

    #[test]
    fn series_key_is_canonical() {
        let mut a = Point::new("cpu");
        a.add_tag("b", "2").add_tag("a", "1").add_field("v", 0.0);
        let mut b = Point::new("cpu");
        b.add_tag("a", "1").add_tag("b", "2").add_field("v", 9.0);
        assert_eq!(a.series_key(), b.series_key());
        assert_eq!(a.series_key(), "cpu,a=1,b=2");
    }

    #[test]
    fn series_key_escapes_collisions() {
        // Without escaping, ("a", "1,b=2") would collide with {a:1, b:2}.
        let mut a = Point::new("cpu");
        a.add_tag("a", "1,b=2").add_field("v", 0.0);
        let mut b = Point::new("cpu");
        b.add_tag("a", "1").add_tag("b", "2").add_field("v", 0.0);
        assert_ne!(a.series_key(), b.series_key());
    }
}
