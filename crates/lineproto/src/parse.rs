//! Zero-copy line protocol parsing.
//!
//! [`parse_line`] borrows the input: tag keys/values and field keys are
//! `&str` slices of the original line when they contain no escapes, and only
//! unescaped into owned strings on [`ParsedLine::to_point`]. The router's hot
//! path (parse → look up hostname → append tags → re-emit) therefore touches
//! the allocator only for lines that actually need enrichment.
//!
//! [`parse_batch`] parses a newline-separated batch, *collecting* rather than
//! propagating per-line errors: one malformed line must not poison a batch
//! (failure-injection tests rely on this; the paper's router keeps serving
//! misbehaving collectors).
//!
//! The scanner walks raw bytes and only ever splits at single-byte ASCII
//! delimiters, which are always UTF-8 character boundaries — the input is
//! validated exactly once (when the HTTP body becomes a `&str`) and never
//! re-checked per token. Batch parsing additionally pre-sizes the output to
//! the newline count and seeds each line's tag/field vectors with the
//! previous line's shape: collector batches are long and homogeneous, so
//! steady state does one exact-size allocation per vector.

use crate::escape::{
    escape_measurement_into, escape_tag_into, unescape, MEASUREMENT_ESCAPES, STRING_ESCAPES,
    TAG_ESCAPES,
};
use crate::point::{FieldValue, Point};
use lms_util::{Error, Result};
use std::borrow::Cow;

/// A parsed line borrowing from the input text.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedLine<'a> {
    /// Measurement name (unescaped; owned only if escapes were present).
    pub measurement: Cow<'a, str>,
    /// Tag key/value pairs in input order (unescaped lazily like above).
    pub tags: Vec<(Cow<'a, str>, Cow<'a, str>)>,
    /// Field key → typed value.
    pub fields: Vec<(Cow<'a, str>, FieldValue)>,
    /// Optional timestamp in the precision of the request (nanoseconds once
    /// scaled by the write endpoint).
    pub timestamp: Option<i64>,
    /// The exact input slice this line was parsed from (no trailing
    /// newline). Lets forwarders re-emit unmodified lines without
    /// re-serializing.
    pub raw: &'a str,
}

impl ParsedLine<'_> {
    /// Tag lookup by key.
    pub fn tag(&self, key: &str) -> Option<&str> {
        self.tags.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_ref())
    }

    /// Field lookup by key.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// The `hostname` tag — the one tag the paper makes mandatory
    /// ("the only mandatory tag for all metrics and events is the host
    /// name which is used as key in the tag store's hash table").
    pub fn hostname(&self) -> Option<&str> {
        self.tag("hostname")
    }

    /// Converts into an owned [`Point`] (tags become sorted/canonical).
    pub fn to_point(&self) -> Point {
        let mut p = Point::new(self.measurement.as_ref());
        for (k, v) in &self.tags {
            p.add_tag(k.as_ref(), v.as_ref());
        }
        for (k, v) in &self.fields {
            p.add_field_value(k.as_ref(), v.clone());
        }
        if let Some(ts) = self.timestamp {
            p.set_timestamp(ts);
        }
        p
    }

    /// Tags in canonical form: sorted by key, duplicate keys collapsed with
    /// the last occurrence winning — exactly the tag set
    /// [`to_point`](Self::to_point) would produce.
    pub fn canonical_tags(&self) -> Vec<(String, String)> {
        let mut tags: Vec<(String, String)> = Vec::with_capacity(self.tags.len());
        for (k, v) in &self.tags {
            match tags.binary_search_by(|(existing, _)| existing.as_str().cmp(k.as_ref())) {
                Ok(i) => tags[i].1 = v.as_ref().to_string(),
                Err(i) => tags.insert(i, (k.as_ref().to_string(), v.as_ref().to_string())),
            }
        }
        tags
    }

    /// Appends the canonical series key (`measurement,tag1=v1,...` with
    /// tags sorted by key, duplicates last-wins, wire-escaped) to `out`.
    ///
    /// Produces byte-identical output to `self.to_point().series_key()`
    /// without materializing a [`Point`] — the database's ingest hot path
    /// reuses one buffer across a whole batch and never allocates for
    /// lines it has seen the series of before.
    pub fn series_key_into(&self, out: &mut String) {
        escape_measurement_into(self.measurement.as_ref(), out);
        let n = self.tags.len();
        if n == 0 {
            return;
        }
        // Sort a small index array instead of the tags themselves; stable
        // insertion keeps equal keys in input order so the *last* index of
        // a run is the winning duplicate.
        let mut stack = [0usize; 16];
        let mut heap;
        let order: &mut [usize] = if n <= stack.len() {
            &mut stack[..n]
        } else {
            heap = (0..n).collect::<Vec<usize>>();
            &mut heap
        };
        for (slot, idx) in order.iter_mut().enumerate() {
            *idx = slot;
        }
        order.sort_by(|&a, &b| self.tags[a].0.as_ref().cmp(self.tags[b].0.as_ref()));
        for (pos, &idx) in order.iter().enumerate() {
            let (k, v) = &self.tags[idx];
            // Skip all but the last occurrence of a duplicated key.
            if pos + 1 < n && self.tags[order[pos + 1]].0 == *k {
                continue;
            }
            out.push(',');
            escape_tag_into(k.as_ref(), out);
            out.push('=');
            escape_tag_into(v.as_ref(), out);
        }
    }
}

/// Scans from `start` until an unescaped occurrence of any `stop` byte.
/// Returns (end index, had_escapes).
fn scan(bytes: &[u8], start: usize, stop: &[u8]) -> (usize, bool) {
    let mut i = start;
    let mut escaped = false;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\\' && i + 1 < bytes.len() {
            escaped = true;
            i += 2;
            continue;
        }
        if stop.contains(&b) {
            break;
        }
        i += 1;
    }
    (i, escaped)
}

/// Slices `text[start..end]`, unescaping only when needed.
fn take<'a>(text: &'a str, start: usize, end: usize, escaped: bool, ctx: &[char]) -> Cow<'a, str> {
    let s = &text[start..end];
    if escaped {
        Cow::Owned(unescape(s, ctx))
    } else {
        Cow::Borrowed(s)
    }
}

/// Parses a single field value token.
fn parse_field_value(token: &str) -> Result<FieldValue> {
    if let Some(stripped) = token.strip_suffix('i') {
        return stripped
            .parse::<i64>()
            .map(FieldValue::Integer)
            .map_err(|_| Error::protocol(format!("invalid integer field `{token}`")));
    }
    match token {
        "true" | "t" | "True" | "TRUE" => return Ok(FieldValue::Boolean(true)),
        "false" | "f" | "False" | "FALSE" => return Ok(FieldValue::Boolean(false)),
        _ => {}
    }
    token
        .parse::<f64>()
        .map(FieldValue::Float)
        .map_err(|_| Error::protocol(format!("invalid field value `{token}`")))
}

/// Parses one line of protocol text.
///
/// Returns a protocol error naming the offending position for malformed
/// input. Empty lines and `#` comments are the *caller's* concern
/// ([`parse_batch`] skips them).
pub fn parse_line(line: &str) -> Result<ParsedLine<'_>> {
    parse_line_hinted(line, 0, 0)
}

/// [`parse_line`] with capacity hints for the tag and field vectors —
/// [`parse_batch`] feeds each line the previous line's shape so homogeneous
/// batches allocate exactly once per vector.
fn parse_line_hinted(line: &str, tag_hint: usize, field_hint: usize) -> Result<ParsedLine<'_>> {
    let bytes = line.as_bytes();
    if bytes.is_empty() {
        return Err(Error::protocol("empty line"));
    }

    // --- measurement ---
    let (m_end, m_esc) = scan(bytes, 0, b", ");
    if m_end == 0 {
        return Err(Error::protocol("missing measurement"));
    }
    let measurement = take(line, 0, m_end, m_esc, MEASUREMENT_ESCAPES);

    // --- tags ---
    let mut tags = Vec::with_capacity(tag_hint);
    let mut pos = m_end;
    while pos < bytes.len() && bytes[pos] == b',' {
        pos += 1;
        let (k_end, k_esc) = scan(bytes, pos, b"=, ");
        if k_end >= bytes.len() || bytes[k_end] != b'=' {
            return Err(Error::protocol(format!("tag at byte {pos}: missing `=`")));
        }
        if k_end == pos {
            return Err(Error::protocol(format!("tag at byte {pos}: empty key")));
        }
        let key = take(line, pos, k_end, k_esc, TAG_ESCAPES);
        pos = k_end + 1;
        let (v_end, v_esc) = scan(bytes, pos, b", ");
        if v_end == pos {
            return Err(Error::protocol(format!("tag `{key}`: empty value")));
        }
        let value = take(line, pos, v_end, v_esc, TAG_ESCAPES);
        tags.push((key, value));
        pos = v_end;
    }

    if pos >= bytes.len() || bytes[pos] != b' ' {
        return Err(Error::protocol("missing field section"));
    }
    pos += 1;

    // --- fields ---
    let mut fields = Vec::with_capacity(field_hint);
    loop {
        let (k_end, k_esc) = scan(bytes, pos, b"=, ");
        if k_end >= bytes.len() || bytes[k_end] != b'=' {
            return Err(Error::protocol(format!("field at byte {pos}: missing `=`")));
        }
        if k_end == pos {
            return Err(Error::protocol(format!("field at byte {pos}: empty key")));
        }
        let key = take(line, pos, k_end, k_esc, TAG_ESCAPES);
        pos = k_end + 1;

        let value = if pos < bytes.len() && bytes[pos] == b'"' {
            // Quoted string value.
            let (s_end, s_esc) = scan(bytes, pos + 1, b"\"");
            if s_end >= bytes.len() {
                return Err(Error::protocol(format!("field `{key}`: unterminated string")));
            }
            let raw = &line[pos + 1..s_end];
            let text =
                if s_esc { unescape(raw, STRING_ESCAPES) } else { raw.to_string() };
            pos = s_end + 1;
            FieldValue::Text(text)
        } else {
            let (v_end, _) = scan(bytes, pos, b", ");
            if v_end == pos {
                return Err(Error::protocol(format!("field `{key}`: empty value")));
            }
            let v = parse_field_value(&line[pos..v_end])?;
            pos = v_end;
            v
        };
        fields.push((key, value));

        if pos < bytes.len() && bytes[pos] == b',' {
            pos += 1;
            continue;
        }
        break;
    }

    // --- timestamp ---
    let timestamp = if pos < bytes.len() {
        if bytes[pos] != b' ' {
            return Err(Error::protocol(format!("unexpected character at byte {pos}")));
        }
        let ts_str = line[pos + 1..].trim_end_matches(['\r', '\n']);
        if ts_str.is_empty() {
            None
        } else {
            Some(
                ts_str
                    .parse::<i64>()
                    .map_err(|_| Error::protocol(format!("invalid timestamp `{ts_str}`")))?,
            )
        }
    } else {
        None
    };

    Ok(ParsedLine { measurement, tags, fields, timestamp, raw: line })
}

/// Result of parsing a batch: the good lines and the per-line errors.
#[derive(Debug, Default)]
pub struct ParseOutcome<'a> {
    /// Successfully parsed lines, in input order.
    pub lines: Vec<ParsedLine<'a>>,
    /// `(1-based line number, error)` for each rejected line.
    pub errors: Vec<(usize, Error)>,
}

impl ParseOutcome<'_> {
    /// True when every non-empty line parsed.
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }
}

/// Parses a newline-separated batch. Empty lines and `#` comments are
/// skipped; malformed lines are collected into [`ParseOutcome::errors`]
/// without aborting the batch.
pub fn parse_batch(text: &str) -> ParseOutcome<'_> {
    let mut out = ParseOutcome::default();
    // One allocation up front instead of log₂(n) grow-and-copy cycles on
    // a large batch; trailing blanks/comments leave a little slack only.
    out.lines.reserve(text.bytes().filter(|&b| b == b'\n').count() + 1);
    let (mut tag_hint, mut field_hint) = (0, 0);
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim_end_matches('\r');
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match parse_line_hinted(line, tag_hint, field_hint) {
            Ok(p) => {
                tag_hint = p.tags.len();
                field_hint = p.fields.len();
                out.lines.push(p);
            }
            Err(e) => out.errors.push((idx + 1, e)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_line() {
        let p = parse_line(
            "cpu,hostname=h1,cpu=3 usage=0.93,n=5i,up=true,note=\"ok\" 1501804800000000000",
        )
        .unwrap();
        assert_eq!(p.measurement, "cpu");
        assert_eq!(p.tag("hostname"), Some("h1"));
        assert_eq!(p.hostname(), Some("h1"));
        assert_eq!(p.tag("cpu"), Some("3"));
        assert_eq!(p.field("usage"), Some(&FieldValue::Float(0.93)));
        assert_eq!(p.field("n"), Some(&FieldValue::Integer(5)));
        assert_eq!(p.field("up"), Some(&FieldValue::Boolean(true)));
        assert_eq!(p.field("note"), Some(&FieldValue::Text("ok".into())));
        assert_eq!(p.timestamp, Some(1_501_804_800_000_000_000));
    }

    #[test]
    fn minimal_line() {
        let p = parse_line("m v=1").unwrap();
        assert_eq!(p.measurement, "m");
        assert!(p.tags.is_empty());
        assert_eq!(p.field("v"), Some(&FieldValue::Float(1.0)));
        assert_eq!(p.timestamp, None);
    }

    #[test]
    fn zero_copy_when_no_escapes() {
        let p = parse_line("m,a=b v=1").unwrap();
        assert!(matches!(p.measurement, Cow::Borrowed(_)));
        assert!(matches!(p.tags[0].0, Cow::Borrowed(_)));
        assert!(matches!(p.fields[0].0, Cow::Borrowed(_)));
    }

    #[test]
    fn unescapes_when_needed() {
        let p = parse_line(r"my\ m,tag\ k=va\=lue f\,k=2").unwrap();
        assert_eq!(p.measurement, "my m");
        assert_eq!(p.tags[0], (Cow::from("tag k"), Cow::from("va=lue")));
        assert_eq!(p.fields[0].0, "f,k");
        assert!(matches!(p.measurement, Cow::Owned(_)));
    }

    #[test]
    fn quoted_strings_with_escapes_and_separators() {
        let p = parse_line(r#"ev text="a \"quote\", с комма and = signs""#).unwrap();
        assert_eq!(
            p.field("text"),
            Some(&FieldValue::Text(r#"a "quote", с комма and = signs"#.into()))
        );
    }

    #[test]
    fn negative_and_scientific_numbers() {
        let p = parse_line("m a=-1.5,b=2.5e9,c=-42i").unwrap();
        assert_eq!(p.field("a"), Some(&FieldValue::Float(-1.5)));
        assert_eq!(p.field("b"), Some(&FieldValue::Float(2.5e9)));
        assert_eq!(p.field("c"), Some(&FieldValue::Integer(-42)));
    }

    #[test]
    fn negative_timestamp() {
        let p = parse_line("m v=1 -42").unwrap();
        assert_eq!(p.timestamp, Some(-42));
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            " v=1",
            "m",
            "m ",
            "m v",
            "m v=",
            "m =1",
            "m,tag v=1",
            "m,=x v=1",
            "m,k= v=1",
            "m v=abc",
            "m v=1.5ii",
            "m v=\"unterminated",
            "m v=1 notatime",
            "m v=1 1.5",
        ] {
            assert!(parse_line(bad).is_err(), "should reject: {bad:?}");
        }
    }

    #[test]
    fn integer_overflow_rejected() {
        assert!(parse_line("m v=99999999999999999999i").is_err());
        assert!(parse_line("m v=1 99999999999999999999").is_err());
    }

    #[test]
    fn batch_skips_blank_and_comment_lines() {
        let text = "# header comment\n\nm v=1\n\r\nm v=2\r\n";
        let out = parse_batch(text);
        assert!(out.is_clean());
        assert_eq!(out.lines.len(), 2);
    }

    #[test]
    fn batch_collects_errors_without_poisoning() {
        let text = "m v=1\nbroken line without fields\nm v=3";
        let out = parse_batch(text);
        assert_eq!(out.lines.len(), 2);
        assert_eq!(out.errors.len(), 1);
        assert_eq!(out.errors[0].0, 2);
    }

    #[test]
    fn batch_fast_path_matches_per_line_parsing() {
        // A homogeneous batch (the hinted fast path) mixed with shape
        // changes and a bad line: batch output must equal line-by-line
        // parsing exactly.
        let mut text = String::new();
        for i in 0..64 {
            text.push_str(&format!("cpu,hostname=h{i},cpu=0 usage={i}.5,n={i}i {i}000\n"));
        }
        text.push_str("m v=1\nbroken\nevents,hostname=h1 text=\"hi\" 5\n");
        let out = parse_batch(&text);
        assert_eq!(out.errors.len(), 1);
        let per_line: Vec<ParsedLine<'_>> = text
            .lines()
            .filter(|l| !l.is_empty() && parse_line(l).is_ok())
            .map(|l| parse_line(l).unwrap())
            .collect();
        assert_eq!(out.lines, per_line);
    }

    #[test]
    fn to_point_round_trips() {
        let line = "cpu,hostname=h1 v=1.5 99";
        let p = parse_line(line).unwrap().to_point();
        assert_eq!(p.to_line(), line);
    }

    #[test]
    fn duplicate_tags_last_wins_via_point() {
        let p = parse_line("m,a=1,a=2 v=1").unwrap();
        assert_eq!(p.tags.len(), 2); // wire form preserved
        assert_eq!(p.to_point().tag("a"), Some("2")); // canonical form deduped
    }

    #[test]
    fn raw_preserves_input_slice() {
        let line = "cpu,hostname=h1 v=1 5";
        assert_eq!(parse_line(line).unwrap().raw, line);
        let out = parse_batch("m v=1\ncpu,a=b v=2 7\r\n");
        assert_eq!(out.lines[0].raw, "m v=1");
        assert_eq!(out.lines[1].raw, "cpu,a=b v=2 7");
    }

    #[test]
    fn series_key_into_matches_point_series_key() {
        // Many tags triggers the heap-index fallback (> 16).
        let mut many = String::from("m");
        for i in 0..20 {
            // Reversed zero-padded keys exercise the sort.
            many.push_str(&format!(",k{:02}=v{i}", 19 - i));
        }
        many.push_str(" v=1");
        for line in [
            "m v=1",
            "cpu,hostname=h1,cpu=3 usage=0.93",
            "m,b=2,a=1 v=1",
            "m,a=1,a=2 v=1",
            "m,a=2,b=x,a=1,a=3 v=1",
            r"my\ m,tag\ k=va\=lue f=1",
            many.as_str(),
        ] {
            let p = parse_line(line).unwrap();
            let mut key = String::new();
            p.series_key_into(&mut key);
            let point = p.to_point();
            assert_eq!(key, point.series_key(), "series key mismatch for: {line}");
            assert_eq!(p.canonical_tags(), point.tags().to_vec(), "tags mismatch for: {line}");
        }
    }
}
