//! The line protocol's escaping contexts.
//!
//! The protocol has three distinct escaping rules:
//!
//! | context | escaped characters |
//! |---|---|
//! | measurement | `,` and space |
//! | tag key, tag value, field key | `,`, `=` and space |
//! | string field value (inside `"..."`) | `"` and `\` |
//!
//! Escapes always use a single backslash. Unknown escape sequences are kept
//! verbatim on unescape (matching InfluxDB's permissive behaviour).

/// Appends `s` to `out`, escaping `,` and space (measurement context).
pub fn escape_measurement_into(s: &str, out: &mut String) {
    for c in s.chars() {
        if c == ',' || c == ' ' {
            out.push('\\');
        }
        out.push(c);
    }
}

/// Appends `s` to `out`, escaping `,`, `=` and space (tag/field-key context).
pub fn escape_tag_into(s: &str, out: &mut String) {
    for c in s.chars() {
        if c == ',' || c == '=' || c == ' ' {
            out.push('\\');
        }
        out.push(c);
    }
}

/// Appends `s` to `out`, escaping `"` and `\` (string field value context).
pub fn escape_string_field_into(s: &str, out: &mut String) {
    for c in s.chars() {
        if c == '"' || c == '\\' {
            out.push('\\');
        }
        out.push(c);
    }
}

/// Allocating convenience wrapper around [`escape_measurement_into`].
pub fn escape_measurement(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    escape_measurement_into(s, &mut out);
    out
}

/// Allocating convenience wrapper around [`escape_tag_into`].
pub fn escape_tag(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    escape_tag_into(s, &mut out);
    out
}

/// Removes backslash escapes. Backslashes before characters that are never
/// escaped are preserved verbatim (InfluxDB-compatible).
///
/// `escapable` lists the characters a backslash may precede in this context.
pub fn unescape(s: &str, escapable: &[char]) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some(n) if escapable.contains(&n) => out.push(n),
                Some(n) => {
                    out.push('\\');
                    out.push(n);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Characters escapable in the measurement context.
pub const MEASUREMENT_ESCAPES: &[char] = &[',', ' '];
/// Characters escapable in tag keys/values and field keys.
pub const TAG_ESCAPES: &[char] = &[',', '=', ' '];
/// Characters escapable inside quoted string field values.
pub const STRING_ESCAPES: &[char] = &['"', '\\'];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_escaping() {
        assert_eq!(escape_measurement("cpu load,total"), "cpu\\ load\\,total");
        assert_eq!(escape_measurement("plain"), "plain");
        // '=' is NOT escaped in measurements.
        assert_eq!(escape_measurement("a=b"), "a=b");
    }

    #[test]
    fn tag_escaping() {
        assert_eq!(escape_tag("k=v, x"), "k\\=v\\,\\ x");
    }

    #[test]
    fn string_field_escaping() {
        let mut out = String::new();
        escape_string_field_into(r#"say "hi" \now"#, &mut out);
        assert_eq!(out, r#"say \"hi\" \\now"#);
    }

    #[test]
    fn unescape_round_trip() {
        for original in ["a b,c=d", "plain", " lead", "trail ", ",,= ="] {
            let esc = escape_tag(original);
            assert_eq!(unescape(&esc, TAG_ESCAPES), original);
        }
    }

    #[test]
    fn unescape_preserves_unknown_escapes() {
        assert_eq!(unescape(r"C:\path\n", TAG_ESCAPES), r"C:\path\n");
        assert_eq!(unescape(r"x\,y\z", TAG_ESCAPES), r"x,y\z");
    }

    #[test]
    fn unescape_trailing_backslash() {
        assert_eq!(unescape(r"abc\", TAG_ESCAPES), r"abc\");
    }
}
