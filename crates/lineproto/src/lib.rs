//! # lms-lineproto
//!
//! The InfluxDB **line protocol** — the single wire format of the LIKWID
//! Monitoring Stack. The paper (Sec. III-A) chooses it because it separates
//! metric values from metric tags, concatenates into batches, and stays
//! human-readable for debugging. Every LMS component speaks it: host agents
//! emit it, the router parses/enriches/re-serializes it, the database ingests
//! it, and `libusermetric` buffers it.
//!
//! A line looks like:
//!
//! ```text
//! measurement,tag1=a,tag2=b field1=1.5,field2=3i,field3="ev",field4=true 1501804800000000000
//! ```
//!
//! Layout of this crate:
//!
//! - [`escape`] — the protocol's three escaping contexts,
//! - [`point`] — the owned [`Point`] type and [`FieldValue`],
//! - [`parse`] — a zero-copy parser ([`ParsedLine`] borrows the input),
//! - [`serialize`] — serializer and batching [`BatchBuilder`],
//! - [`precision`] — the `ns`/`us`/`ms`/`s` timestamp precisions of the
//!   InfluxDB write API.
//!
//! # Example
//!
//! ```
//! use lms_lineproto::{Point, FieldValue, parse_line};
//!
//! let mut p = Point::new("cpu_load");
//! p.add_tag("hostname", "h1").add_field("value", 0.75);
//! p.set_timestamp(1_501_804_800_000_000_000);
//! let line = p.to_line();
//! assert_eq!(line, "cpu_load,hostname=h1 value=0.75 1501804800000000000");
//!
//! let parsed = parse_line(&line).unwrap();
//! assert_eq!(parsed.measurement, "cpu_load");
//! assert_eq!(parsed.field("value"), Some(&FieldValue::Float(0.75)));
//! ```

pub mod escape;
pub mod parse;
pub mod point;
pub mod precision;
pub mod serialize;

pub use parse::{parse_batch, parse_line, ParseOutcome, ParsedLine};
pub use point::{FieldValue, Point};
pub use precision::Precision;
pub use serialize::BatchBuilder;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Strategy for protocol-legal identifier-ish strings (may contain the
    /// characters that need escaping, but no newlines and not starting with
    /// characters the protocol forbids).
    fn name_strategy() -> impl Strategy<Value = String> {
        proptest::string::string_regex("[a-zA-Z0-9_ ,=\\.\\-/]{1,24}")
            .unwrap()
            .prop_filter("no leading '#' and no boundary spaces", |s| {
                !s.starts_with('#') && !s.starts_with(' ') && !s.ends_with(' ')
            })
    }

    fn tag_value_strategy() -> impl Strategy<Value = String> {
        proptest::string::string_regex("[a-zA-Z0-9_ ,=\\.\\-:/]{1,24}")
            .unwrap()
            .prop_filter("no boundary spaces", |s| {
                !s.starts_with(' ') && !s.ends_with(' ')
            })
    }

    fn field_value_strategy() -> impl Strategy<Value = FieldValue> {
        prop_oneof![
            proptest::num::f64::NORMAL.prop_map(FieldValue::Float),
            any::<i64>().prop_map(FieldValue::Integer),
            any::<bool>().prop_map(FieldValue::Boolean),
            proptest::string::string_regex("[a-zA-Z0-9_ ,=\"\\\\.\\-]{0,32}")
                .unwrap()
                .prop_map(FieldValue::Text),
        ]
    }

    proptest! {
        /// serialize ∘ parse == identity over points.
        #[test]
        fn round_trip(
            measurement in name_strategy(),
            tags in proptest::collection::btree_map(name_strategy(), tag_value_strategy(), 0..4),
            fields in proptest::collection::btree_map(name_strategy(), field_value_strategy(), 1..4),
            ts in proptest::option::of(any::<i64>()),
        ) {
            let mut p = Point::new(&measurement);
            for (k, v) in &tags {
                p.add_tag(k, v);
            }
            for (k, v) in &fields {
                p.add_field_value(k, v.clone());
            }
            if let Some(t) = ts {
                p.set_timestamp(t);
            }
            let line = p.to_line();
            let parsed = parse_line(&line).unwrap();
            let back = parsed.to_point();
            prop_assert_eq!(p, back, "line was: {}", line);
        }

        /// Batches of points survive serialize+parse with order preserved.
        #[test]
        fn batch_round_trip(count in 1usize..20) {
            let mut batch = BatchBuilder::new();
            let mut points = Vec::new();
            for i in 0..count {
                let mut p = Point::new(format!("m{i}"));
                p.add_tag("hostname", format!("h{i}"));
                p.add_field("value", i as f64 * 1.5);
                p.set_timestamp(i as i64);
                batch.push(&p);
                points.push(p);
            }
            let text = batch.as_str().to_string();
            let outcome = parse_batch(&text);
            prop_assert_eq!(outcome.errors.len(), 0);
            prop_assert_eq!(outcome.lines.len(), count);
            for (orig, got) in points.iter().zip(&outcome.lines) {
                prop_assert_eq!(orig, &got.to_point());
            }
        }
    }
}
