//! Timestamp precisions of the InfluxDB write API.
//!
//! The `/write?precision=` query parameter declares the unit of the
//! timestamps in the batch; the database stores nanoseconds internally.

use lms_util::{Error, Result};

/// A timestamp precision accepted by the write endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// Nanoseconds (the wire and storage default).
    #[default]
    Nanoseconds,
    /// Microseconds (`u`).
    Microseconds,
    /// Milliseconds (`ms`).
    Milliseconds,
    /// Seconds (`s`).
    Seconds,
}

impl Precision {
    /// Parses the query-parameter spelling (`ns`, `u`/`us`, `ms`, `s`).
    pub fn parse(s: &str) -> Result<Self> {
        match s {
            "ns" | "n" => Ok(Precision::Nanoseconds),
            "u" | "us" | "µ" => Ok(Precision::Microseconds),
            "ms" => Ok(Precision::Milliseconds),
            "s" => Ok(Precision::Seconds),
            other => Err(Error::protocol(format!("unknown precision `{other}`"))),
        }
    }

    /// The canonical query-parameter spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Precision::Nanoseconds => "ns",
            Precision::Microseconds => "u",
            Precision::Milliseconds => "ms",
            Precision::Seconds => "s",
        }
    }

    /// Nanoseconds per unit of this precision.
    pub fn nanos_per_unit(self) -> i64 {
        match self {
            Precision::Nanoseconds => 1,
            Precision::Microseconds => 1_000,
            Precision::Milliseconds => 1_000_000,
            Precision::Seconds => 1_000_000_000,
        }
    }

    /// Scales a timestamp in this precision to nanoseconds (saturating).
    pub fn to_nanos(self, value: i64) -> i64 {
        value.saturating_mul(self.nanos_per_unit())
    }

    /// Truncates a nanosecond timestamp to this precision's unit count.
    pub fn from_nanos(self, nanos: i64) -> i64 {
        nanos.div_euclid(self.nanos_per_unit())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_spellings() {
        assert_eq!(Precision::parse("ns").unwrap(), Precision::Nanoseconds);
        assert_eq!(Precision::parse("u").unwrap(), Precision::Microseconds);
        assert_eq!(Precision::parse("us").unwrap(), Precision::Microseconds);
        assert_eq!(Precision::parse("ms").unwrap(), Precision::Milliseconds);
        assert_eq!(Precision::parse("s").unwrap(), Precision::Seconds);
        assert!(Precision::parse("m").is_err());
    }

    #[test]
    fn round_trip_spelling() {
        for p in [
            Precision::Nanoseconds,
            Precision::Microseconds,
            Precision::Milliseconds,
            Precision::Seconds,
        ] {
            assert_eq!(Precision::parse(p.as_str()).unwrap(), p);
        }
    }

    #[test]
    fn scaling() {
        assert_eq!(Precision::Seconds.to_nanos(3), 3_000_000_000);
        assert_eq!(Precision::Milliseconds.to_nanos(-2), -2_000_000);
        assert_eq!(Precision::Nanoseconds.to_nanos(7), 7);
        assert_eq!(Precision::Seconds.from_nanos(3_999_999_999), 3);
        assert_eq!(Precision::Seconds.from_nanos(-1), -1); // floor, not trunc
    }

    #[test]
    fn saturates_instead_of_overflowing() {
        assert_eq!(Precision::Seconds.to_nanos(i64::MAX), i64::MAX);
    }
}
