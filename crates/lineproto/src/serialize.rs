//! Serialization: point → protocol text, plus the batching builder.
//!
//! The paper stresses *batched transmission* ("multiple lines can be
//! concatenated"). [`BatchBuilder`] is the reusable buffer every sender in
//! the stack (host agent, router, libusermetric) serializes into; it never
//! shrinks, so a steady-state sender performs no allocations per flush
//! (perf-book "workhorse collection" idiom).

use crate::escape::{escape_measurement_into, escape_string_field_into, escape_tag_into};
use crate::point::{FieldValue, Point};
use std::fmt::Write as _;

/// Writes one field value in wire form.
fn write_field_value(v: &FieldValue, out: &mut String) {
    match v {
        FieldValue::Float(f) => {
            // `{}` on f64 produces the shortest string that parses back to
            // the same bits, and cannot be mistaken for an `i`-suffixed int
            // because bare numbers without `i` are floats by protocol rule.
            if f.is_finite() {
                let _ = write!(out, "{f}");
            } else {
                // InfluxDB rejects nan/inf; we serialize a quoted marker to
                // stay parseable rather than producing a corrupt line.
                out.push('"');
                out.push_str(if f.is_nan() { "NaN" } else { "Inf" });
                out.push('"');
            }
        }
        FieldValue::Integer(i) => {
            let _ = write!(out, "{i}i");
        }
        FieldValue::Boolean(b) => out.push_str(if *b { "true" } else { "false" }),
        FieldValue::Text(s) => {
            out.push('"');
            escape_string_field_into(s, out);
            out.push('"');
        }
    }
}

/// Writes `measurement,tags` (the series key) into `out`.
pub fn write_series_key(measurement: &str, tags: &[(String, String)], out: &mut String) {
    escape_measurement_into(measurement, out);
    for (k, v) in tags {
        out.push(',');
        escape_tag_into(k, out);
        out.push('=');
        escape_tag_into(v, out);
    }
}

/// Serializes one point into `out` (no trailing newline).
///
/// Invalid points (no fields / empty measurement) are written as-is on the
/// principle that serialization must be total; validity is the *caller's*
/// contract and checked by `Point::is_valid`.
pub fn write_point(p: &Point, out: &mut String) {
    write_series_key(p.measurement(), p.tags(), out);
    out.push(' ');
    let mut first = true;
    for (k, v) in p.fields() {
        if !first {
            out.push(',');
        }
        first = false;
        escape_tag_into(k, out);
        out.push('=');
        write_field_value(v, out);
    }
    if let Some(ts) = p.timestamp() {
        let _ = write!(out, " {ts}");
    }
}

/// Accumulates newline-separated protocol lines into one reusable buffer.
///
/// ```
/// use lms_lineproto::{BatchBuilder, Point};
/// let mut b = BatchBuilder::new();
/// let mut p = Point::new("m");
/// p.add_field("v", 1.0);
/// b.push(&p);
/// b.push(&p);
/// assert_eq!(b.len(), 2);
/// assert_eq!(b.as_str(), "m v=1\nm v=1\n");
/// let body = b.take();       // buffer handed off for transmission
/// assert!(b.is_empty());     // builder ready for reuse
/// assert_eq!(body.lines().count(), 2);
/// ```
#[derive(Debug, Default)]
pub struct BatchBuilder {
    buf: String,
    lines: usize,
}

impl BatchBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty builder with pre-reserved capacity in bytes.
    pub fn with_capacity(bytes: usize) -> Self {
        BatchBuilder { buf: String::with_capacity(bytes), lines: 0 }
    }

    /// Appends one point as a line.
    pub fn push(&mut self, p: &Point) {
        write_point(p, &mut self.buf);
        self.buf.push('\n');
        self.lines += 1;
    }

    /// Appends a pre-serialized line (the router's fast path: re-emit a
    /// parsed-and-enriched line without building a `Point`).
    pub fn push_raw(&mut self, line: &str) {
        self.buf.push_str(line);
        if !line.ends_with('\n') {
            self.buf.push('\n');
        }
        self.lines += 1;
    }

    /// Number of lines currently buffered.
    pub fn len(&self) -> usize {
        self.lines
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.lines == 0
    }

    /// Buffered bytes.
    pub fn byte_len(&self) -> usize {
        self.buf.len()
    }

    /// The buffered text.
    pub fn as_str(&self) -> &str {
        &self.buf
    }

    /// Takes the buffered text, leaving the builder empty but with its
    /// capacity intact for reuse.
    pub fn take(&mut self) -> String {
        self.lines = 0;
        std::mem::take(&mut self.buf)
    }

    /// Clears the buffer without deallocating.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.lines = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point() -> Point {
        let mut p = Point::new("flops_dp");
        p.add_tag("hostname", "h1")
            .add_tag("cpu", "0")
            .add_field("value", 1.25e9)
            .add_field("count", 42i64)
            .add_field("ok", true)
            .set_timestamp(1_501_804_800_000_000_000);
        p
    }

    #[test]
    fn wire_form() {
        assert_eq!(
            point().to_line(),
            "flops_dp,cpu=0,hostname=h1 value=1250000000,count=42i,ok=true 1501804800000000000"
        );
    }

    #[test]
    fn no_timestamp_omits_trailing_section() {
        let mut p = Point::new("m");
        p.add_field("v", 0.5);
        assert_eq!(p.to_line(), "m v=0.5");
    }

    #[test]
    fn string_fields_are_quoted_and_escaped() {
        let mut p = Point::new("events");
        p.add_field("text", r#"start of "run" \1"#);
        assert_eq!(p.to_line(), r#"events text="start of \"run\" \\1""#);
    }

    #[test]
    fn non_finite_floats_become_quoted_markers() {
        let mut p = Point::new("m");
        p.add_field("v", f64::NAN);
        assert_eq!(p.to_line(), r#"m v="NaN""#);
        let mut p = Point::new("m");
        p.add_field("v", f64::INFINITY);
        assert_eq!(p.to_line(), r#"m v="Inf""#);
    }

    #[test]
    fn special_characters_escaped_in_all_positions() {
        let mut p = Point::new("my measure,x");
        p.add_tag("tag key", "tag=value, more").add_field("field key", 1.0);
        assert_eq!(
            p.to_line(),
            r"my\ measure\,x,tag\ key=tag\=value\,\ more field\ key=1"
        );
    }

    #[test]
    fn batch_builder_reuses_capacity() {
        let mut b = BatchBuilder::with_capacity(1024);
        let p = point();
        for _ in 0..5 {
            b.push(&p);
        }
        assert_eq!(b.len(), 5);
        let cap_before = b.buf.capacity();
        let body = b.take();
        assert_eq!(body.lines().count(), 5);
        assert!(b.is_empty());
        // take() moves the allocation out; pushing again reallocates once,
        // clear() instead retains it:
        b.push(&p);
        b.clear();
        assert!(b.is_empty());
        assert!(b.buf.capacity() > 0);
        let _ = cap_before;
    }

    #[test]
    fn push_raw_normalizes_newlines() {
        let mut b = BatchBuilder::new();
        b.push_raw("m v=1");
        b.push_raw("m v=2\n");
        assert_eq!(b.as_str(), "m v=1\nm v=2\n");
        assert_eq!(b.len(), 2);
    }
}
