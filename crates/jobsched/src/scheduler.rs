//! The scheduler core: node pool, queue, FCFS + conservative backfill.

use lms_util::{Clock, Timestamp};
use std::collections::VecDeque;
use std::time::Duration;

/// Job identifier (sequential, rendered as the `jobid` tag).
pub type JobId = u64;

/// What a user submits.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Owning user.
    pub user: String,
    /// Job name (for dashboards).
    pub name: String,
    /// Number of nodes requested.
    pub num_nodes: usize,
    /// Requested wall-clock limit. The simulated job also *actually* runs
    /// this long unless [`runtime`](Self::runtime) is set shorter.
    pub walltime: Duration,
    /// Actual runtime (defaults to the walltime).
    pub runtime: Duration,
    /// Extra tags attached to the job's signals (queue, account, ...).
    pub tags: Vec<(String, String)>,
}

impl JobSpec {
    /// A job spec with runtime == walltime and no extra tags.
    pub fn new(user: &str, name: &str, num_nodes: usize, walltime: Duration) -> Self {
        JobSpec {
            user: user.to_string(),
            name: name.to_string(),
            num_nodes,
            walltime,
            runtime: walltime,
            tags: Vec::new(),
        }
    }

    /// Sets an actual runtime shorter than the walltime.
    pub fn with_runtime(mut self, runtime: Duration) -> Self {
        self.runtime = runtime;
        self
    }

    /// Adds an extra tag.
    pub fn with_tag(mut self, key: &str, value: &str) -> Self {
        self.tags.push((key.to_string(), value.to_string()));
        self
    }
}

/// Lifecycle state of a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in the queue.
    Pending,
    /// Running since `started`.
    Running {
        /// Allocation time.
        started: Timestamp,
    },
    /// Finished.
    Completed {
        /// Allocation time.
        started: Timestamp,
        /// Deallocation time.
        ended: Timestamp,
    },
    /// Removed from the queue before it started.
    Cancelled,
}

impl JobState {
    /// True for [`JobState::Running`].
    pub fn is_running(&self) -> bool {
        matches!(self, JobState::Running { .. })
    }

    /// True for [`JobState::Completed`].
    pub fn is_completed(&self) -> bool {
        matches!(self, JobState::Completed { .. })
    }
}

/// A job known to the scheduler.
#[derive(Debug, Clone)]
pub struct Job {
    /// Identifier.
    pub id: JobId,
    /// The submitted spec.
    pub spec: JobSpec,
    /// Submission time.
    pub submitted: Timestamp,
    /// Current state.
    pub state: JobState,
    hosts: Vec<String>,
}

impl Job {
    /// The allocated hostnames (empty while pending).
    pub fn hosts(&self) -> &[String] {
        &self.hosts
    }

    /// The `jobid` tag value.
    pub fn jobid_tag(&self) -> String {
        self.id.to_string()
    }
}

/// Lifecycle callbacks — the prolog/epilog hooks that fire router signals.
pub trait SchedulerHook: Send {
    /// Called when a job is allocated (before it "runs").
    fn on_job_start(&mut self, job: &Job);
    /// Called when a job completes.
    fn on_job_end(&mut self, job: &Job);
}

/// Blanket hook from a pair of closures.
impl<F, G> SchedulerHook for (F, G)
where
    F: FnMut(&Job) + Send,
    G: FnMut(&Job) + Send,
{
    fn on_job_start(&mut self, job: &Job) {
        (self.0)(job)
    }

    fn on_job_end(&mut self, job: &Job) {
        (self.1)(job)
    }
}

/// FCFS + conservative-backfill batch scheduler over a fixed node pool.
pub struct Scheduler {
    nodes: Vec<String>,
    /// `free[i]` ↔ `nodes[i]` is unallocated.
    free: Vec<bool>,
    jobs: Vec<Job>,
    queue: VecDeque<JobId>,
    next_id: JobId,
    clock: Clock,
    hooks: Vec<Box<dyn SchedulerHook>>,
    /// Enable backfill (on by default; the ablation bench toggles it).
    backfill: bool,
}

impl Scheduler {
    /// A scheduler over the given node names.
    pub fn new<I, S>(nodes: I, clock: Clock) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let nodes: Vec<String> = nodes.into_iter().map(Into::into).collect();
        let free = vec![true; nodes.len()];
        Scheduler {
            nodes,
            free,
            jobs: Vec::new(),
            queue: VecDeque::new(),
            next_id: 1000,
            clock,
            hooks: Vec::new(),
            backfill: true,
        }
    }

    /// Registers a lifecycle hook.
    pub fn add_hook(&mut self, hook: Box<dyn SchedulerHook>) {
        self.hooks.push(hook);
    }

    /// Disables backfill (pure FCFS).
    pub fn set_backfill(&mut self, enabled: bool) {
        self.backfill = enabled;
    }

    /// Submits a job; returns its id. Jobs requesting more nodes than the
    /// cluster has are cancelled immediately.
    pub fn submit(&mut self, spec: JobSpec) -> JobId {
        let id = self.next_id;
        self.next_id += 1;
        let state =
            if spec.num_nodes > self.nodes.len() { JobState::Cancelled } else { JobState::Pending };
        let pending = state == JobState::Pending;
        self.jobs.push(Job {
            id,
            spec,
            submitted: self.clock.now(),
            state,
            hosts: Vec::new(),
        });
        if pending {
            self.queue.push_back(id);
        }
        id
    }

    /// Cancels a pending job (running jobs finish normally).
    pub fn cancel(&mut self, id: JobId) {
        if let Some(job) = self.jobs.iter_mut().find(|j| j.id == id) {
            if job.state == JobState::Pending {
                job.state = JobState::Cancelled;
                self.queue.retain(|&q| q != id);
            }
        }
    }

    /// Looks a job up by id.
    pub fn job(&self, id: JobId) -> Option<&Job> {
        self.jobs.iter().find(|j| j.id == id)
    }

    /// All jobs.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Currently running jobs.
    pub fn running(&self) -> impl Iterator<Item = &Job> {
        self.jobs.iter().filter(|j| j.state.is_running())
    }

    /// Number of free nodes.
    pub fn free_nodes(&self) -> usize {
        self.free.iter().filter(|&&f| f).count()
    }

    /// Queue length.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Advances the scheduler: completes due jobs, then allocates.
    /// Call after every clock advance (or on a fixed cadence).
    pub fn tick(&mut self) {
        let now = self.clock.now();
        self.complete_due(now);
        self.allocate(now);
    }

    fn complete_due(&mut self, now: Timestamp) {
        let mut ended = Vec::new();
        for job in &mut self.jobs {
            if let JobState::Running { started } = job.state {
                let due = started.add(job.spec.runtime.min(job.spec.walltime));
                if now >= due {
                    job.state = JobState::Completed { started, ended: now };
                    ended.push(job.id);
                }
            }
        }
        for id in ended {
            let job_idx = self.jobs.iter().position(|j| j.id == id).expect("just saw it");
            // Free the nodes.
            let hosts: Vec<String> = self.jobs[job_idx].hosts.clone();
            for host in &hosts {
                if let Some(i) = self.nodes.iter().position(|n| n == host) {
                    self.free[i] = true;
                }
            }
            let job = self.jobs[job_idx].clone();
            for hook in &mut self.hooks {
                hook.on_job_end(&job);
            }
        }
    }

    fn allocate(&mut self, now: Timestamp) {
        loop {
            let Some(&head) = self.queue.front() else { return };
            let head_nodes = self.job(head).expect("queued job exists").spec.num_nodes;
            if head_nodes <= self.free_nodes() {
                self.queue.pop_front();
                self.start_job(head, now);
                continue;
            }
            // Head does not fit. Try conservative backfill: a later job may
            // run now iff it fits in the free nodes AND finishes before the
            // head's earliest possible start (so the head is never delayed).
            if !self.backfill {
                return;
            }
            let Some(shadow) = self.earliest_start_for(head_nodes, now) else { return };
            let mut backfilled = false;
            let candidates: Vec<JobId> = self.queue.iter().copied().skip(1).collect();
            for id in candidates {
                let job = self.job(id).expect("queued job exists");
                let fits = job.spec.num_nodes <= self.free_nodes();
                let finishes_in_time = now.add(job.spec.walltime) <= shadow;
                if fits && finishes_in_time {
                    self.queue.retain(|&q| q != id);
                    self.start_job(id, now);
                    backfilled = true;
                    break;
                }
            }
            if !backfilled {
                return;
            }
        }
    }

    /// Earliest time at which `want` nodes will be free, assuming running
    /// jobs hold their nodes until their full walltime.
    fn earliest_start_for(&self, want: usize, now: Timestamp) -> Option<Timestamp> {
        let mut releases: Vec<(Timestamp, usize)> = self
            .jobs
            .iter()
            .filter_map(|j| match j.state {
                JobState::Running { started } => {
                    Some((started.add(j.spec.walltime), j.hosts.len()))
                }
                _ => None,
            })
            .collect();
        releases.sort();
        let mut available = self.free_nodes();
        if available >= want {
            return Some(now);
        }
        for (at, n) in releases {
            available += n;
            if available >= want {
                return Some(at);
            }
        }
        None // cannot ever fit (should not happen: submit() rejects oversize)
    }

    fn start_job(&mut self, id: JobId, now: Timestamp) {
        let job_idx = self.jobs.iter().position(|j| j.id == id).expect("job exists");
        let want = self.jobs[job_idx].spec.num_nodes;
        let mut hosts = Vec::with_capacity(want);
        for (i, free) in self.free.iter_mut().enumerate() {
            if hosts.len() == want {
                break;
            }
            if *free {
                *free = false;
                hosts.push(self.nodes[i].clone());
            }
        }
        debug_assert_eq!(hosts.len(), want);
        self.jobs[job_idx].hosts = hosts;
        self.jobs[job_idx].state = JobState::Running { started: now };
        let job = self.jobs[job_idx].clone();
        for hook in &mut self.hooks {
            hook.on_job_start(&job);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::sync::Arc;

    fn sched(n: usize) -> (Scheduler, Clock) {
        let clock = Clock::simulated(Timestamp::from_secs(0));
        let nodes: Vec<String> = (1..=n).map(|i| format!("n{i:02}")).collect();
        (Scheduler::new(nodes, clock.clone()), clock)
    }

    #[test]
    fn fcfs_allocation_and_completion() {
        let (mut s, clock) = sched(4);
        let a = s.submit(JobSpec::new("alice", "a", 2, Duration::from_secs(100)));
        let b = s.submit(JobSpec::new("bob", "b", 2, Duration::from_secs(50)));
        s.tick();
        assert!(s.job(a).unwrap().state.is_running());
        assert!(s.job(b).unwrap().state.is_running());
        assert_eq!(s.job(a).unwrap().hosts(), &["n01", "n02"]);
        assert_eq!(s.job(b).unwrap().hosts(), &["n03", "n04"]);
        assert_eq!(s.free_nodes(), 0);

        clock.advance(Duration::from_secs(60));
        s.tick();
        assert!(s.job(b).unwrap().state.is_completed());
        assert!(s.job(a).unwrap().state.is_running());
        assert_eq!(s.free_nodes(), 2);
    }

    #[test]
    fn queue_waits_for_free_nodes() {
        let (mut s, clock) = sched(2);
        let a = s.submit(JobSpec::new("u", "a", 2, Duration::from_secs(100)));
        let b = s.submit(JobSpec::new("u", "b", 2, Duration::from_secs(100)));
        s.tick();
        assert!(s.job(a).unwrap().state.is_running());
        assert_eq!(s.job(b).unwrap().state, JobState::Pending);
        assert_eq!(s.queued(), 1);
        clock.advance(Duration::from_secs(101));
        s.tick();
        assert!(s.job(a).unwrap().state.is_completed());
        assert!(s.job(b).unwrap().state.is_running());
    }

    #[test]
    fn conservative_backfill_runs_short_jobs_in_holes() {
        let (mut s, clock) = sched(4);
        // a: 2 nodes × 100s; head c needs 4 nodes → must wait for a.
        let a = s.submit(JobSpec::new("u", "a", 2, Duration::from_secs(100)));
        s.tick();
        let c = s.submit(JobSpec::new("u", "c", 4, Duration::from_secs(100)));
        // d fits in the 2 free nodes and (50s) finishes before a does (100s):
        let d = s.submit(JobSpec::new("u", "d", 2, Duration::from_secs(50)));
        // e also fits but is too long (200s > a's remaining 100s) → no backfill.
        let e = s.submit(JobSpec::new("u", "e", 2, Duration::from_secs(200)));
        s.tick();
        assert!(s.job(d).unwrap().state.is_running(), "short job backfilled");
        assert_eq!(s.job(c).unwrap().state, JobState::Pending);
        assert_eq!(s.job(e).unwrap().state, JobState::Pending);

        // Head starts exactly when a ends — backfill never delayed it.
        clock.advance(Duration::from_secs(100));
        s.tick();
        assert!(s.job(a).unwrap().state.is_completed());
        assert!(s.job(c).unwrap().state.is_running());
        let _ = e;
    }

    #[test]
    fn backfill_can_be_disabled() {
        let (mut s, _clock) = sched(4);
        s.set_backfill(false);
        s.submit(JobSpec::new("u", "a", 2, Duration::from_secs(100)));
        s.tick();
        s.submit(JobSpec::new("u", "head", 4, Duration::from_secs(100)));
        let d = s.submit(JobSpec::new("u", "d", 2, Duration::from_secs(10)));
        s.tick();
        assert_eq!(s.job(d).unwrap().state, JobState::Pending, "no backfill");
    }

    #[test]
    fn oversize_jobs_cancelled_and_cancel_works() {
        let (mut s, _clock) = sched(2);
        let big = s.submit(JobSpec::new("u", "big", 5, Duration::from_secs(10)));
        assert_eq!(s.job(big).unwrap().state, JobState::Cancelled);
        let a = s.submit(JobSpec::new("u", "a", 2, Duration::from_secs(10)));
        let b = s.submit(JobSpec::new("u", "b", 2, Duration::from_secs(10)));
        s.tick();
        s.cancel(b);
        assert_eq!(s.job(b).unwrap().state, JobState::Cancelled);
        s.cancel(a); // running: no-op
        assert!(s.job(a).unwrap().state.is_running());
    }

    #[test]
    fn hooks_fire_with_host_lists() {
        let (mut s, clock) = sched(2);
        let events: Arc<Mutex<Vec<String>>> = Arc::default();
        let (ev1, ev2) = (events.clone(), events.clone());
        s.add_hook(Box::new((
            move |job: &Job| {
                ev1.lock().push(format!("start {} on {}", job.id, job.hosts().join(",")))
            },
            move |job: &Job| ev2.lock().push(format!("end {}", job.id)),
        )));
        let id = s.submit(JobSpec::new("u", "j", 2, Duration::from_secs(30)));
        s.tick();
        clock.advance(Duration::from_secs(31));
        s.tick();
        let got = events.lock().clone();
        assert_eq!(got, vec![format!("start {id} on n01,n02"), format!("end {id}")]);
    }

    #[test]
    fn runtime_shorter_than_walltime() {
        let (mut s, clock) = sched(1);
        let id = s.submit(
            JobSpec::new("u", "early", 1, Duration::from_secs(100))
                .with_runtime(Duration::from_secs(10)),
        );
        s.tick();
        clock.advance(Duration::from_secs(11));
        s.tick();
        assert!(s.job(id).unwrap().state.is_completed());
    }

    #[test]
    fn job_ids_are_sequential_and_tagged() {
        let (mut s, _clock) = sched(1);
        let a = s.submit(JobSpec::new("u", "a", 1, Duration::from_secs(1)));
        let b = s.submit(JobSpec::new("u", "b", 1, Duration::from_secs(1)));
        assert_eq!(b, a + 1);
        assert_eq!(s.job(a).unwrap().jobid_tag(), a.to_string());
        let spec = JobSpec::new("u", "x", 1, Duration::from_secs(1)).with_tag("queue", "devel");
        assert_eq!(spec.tags, vec![("queue".to_string(), "devel".to_string())]);
    }
}
