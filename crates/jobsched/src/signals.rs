//! The prolog/epilog hook that signals the metrics router.
//!
//! "The compute nodes or a central management server must send signals at
//! (de)allocation of a job to the router." — this is the central-server
//! variant: one [`HttpSignaler`] per scheduler POSTs `/signal/start` and
//! `/signal/end` with the job id, user, host list and extra tags.

use crate::scheduler::{Job, SchedulerHook};
use lms_http::HttpClient;
use lms_util::Result;
use std::net::{SocketAddr, ToSocketAddrs};

/// A [`SchedulerHook`] delivering signals to a router over HTTP.
pub struct HttpSignaler {
    client: HttpClient,
    errors: u64,
}

impl HttpSignaler {
    /// Connects (lazily) to the router at `addr`.
    pub fn new<A: ToSocketAddrs>(addr: A) -> Result<Self> {
        Ok(HttpSignaler { client: HttpClient::connect(addr)?, errors: 0 })
    }

    /// The router address.
    pub fn addr(&self) -> SocketAddr {
        self.client.addr()
    }

    fn signal_start(&mut self, job: &Job) {
        let mut target = format!(
            "/signal/start?job={}&user={}&hosts={}",
            job.id,
            lms_http::url::percent_encode(&job.spec.user),
            lms_http::url::percent_encode(&job.hosts().join(","))
        );
        for (k, v) in &job.spec.tags {
            target.push('&');
            target.push_str(&lms_http::url::percent_encode(k));
            target.push('=');
            target.push_str(&lms_http::url::percent_encode(v));
        }
        if self.client.post(&target, b"").map(|r| !r.is_success()).unwrap_or(true) {
            self.errors += 1;
        }
    }

    fn signal_end(&mut self, job: &Job) {
        let target = format!("/signal/end?job={}", job.id);
        if self.client.post(&target, b"").map(|r| !r.is_success()).unwrap_or(true) {
            self.errors += 1;
        }
    }

    /// Signals that failed to deliver.
    pub fn errors(&self) -> u64 {
        self.errors
    }
}

impl SchedulerHook for HttpSignaler {
    fn on_job_start(&mut self, job: &Job) {
        self.signal_start(job);
    }

    fn on_job_end(&mut self, job: &Job) {
        self.signal_end(job);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{JobSpec, Scheduler};
    use lms_util::{Clock, Timestamp};
    use parking_lot::Mutex;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn signals_reach_the_router_endpoints() {
        use lms_http::{Response, Server};
        let received: Arc<Mutex<Vec<String>>> = Arc::default();
        let sink = received.clone();
        let server = Server::bind("127.0.0.1:0", 1, move |req| {
            let q: Vec<String> =
                req.query.iter().map(|(k, v)| format!("{k}={v}")).collect();
            sink.lock().push(format!("{} {}", req.path, q.join("&")));
            Response::no_content()
        })
        .unwrap();

        let clock = Clock::simulated(Timestamp::from_secs(0));
        let mut sched = Scheduler::new(["n01", "n02"], clock.clone());
        sched.add_hook(Box::new(HttpSignaler::new(server.addr()).unwrap()));

        let id = sched.submit(
            JobSpec::new("alice", "md", 2, Duration::from_secs(10)).with_tag("queue", "devel"),
        );
        sched.tick();
        clock.advance(Duration::from_secs(11));
        sched.tick();

        let got = received.lock().clone();
        assert_eq!(got.len(), 2);
        assert_eq!(
            got[0],
            format!("/signal/start job={id}&user=alice&hosts=n01,n02&queue=devel")
        );
        assert_eq!(got[1], format!("/signal/end job={id}"));
        server.shutdown();
    }

    #[test]
    fn delivery_failures_counted_not_fatal() {
        let dead = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let clock = Clock::simulated(Timestamp::from_secs(0));
        let mut signaler = HttpSignaler::new(dead).unwrap();
        let mut sched = Scheduler::new(["n01"], clock.clone());
        let id = sched.submit(JobSpec::new("u", "x", 1, Duration::from_secs(1)));
        sched.tick();
        let job = sched.job(id).unwrap().clone();
        signaler.on_job_start(&job);
        assert_eq!(signaler.errors(), 1);
    }
}
