//! # lms-jobsched
//!
//! A batch **job scheduler substrate** for the LMS reproduction.
//!
//! The paper keeps LMS "independent of the job scheduler software": the
//! only contract is that *something* sends job start/end signals to the
//! router at (de)allocation. This crate is that something — a small but
//! real batch scheduler (FCFS with conservative backfill over a node pool)
//! whose prolog/epilog hooks fire the signals.
//!
//! - [`Job`], [`JobSpec`], [`JobState`] — the job model,
//! - [`Scheduler`] — submission queue, allocation, completion,
//!   [`SchedulerHook`] lifecycle callbacks,
//! - [`signals::HttpSignaler`] — the hook that POSTs `/signal/start` and
//!   `/signal/end` to a metrics router.
//!
//! ```
//! use lms_jobsched::{JobSpec, Scheduler};
//! use lms_util::{Clock, Timestamp};
//! use std::time::Duration;
//!
//! let clock = Clock::simulated(Timestamp::from_secs(0));
//! let mut sched = Scheduler::new(["n01", "n02"], clock.clone());
//! let id = sched.submit(JobSpec::new("alice", "md-run", 2, Duration::from_secs(60)));
//! sched.tick();
//! assert_eq!(sched.job(id).unwrap().hosts(), &["n01", "n02"]);
//! clock.advance(Duration::from_secs(61));
//! sched.tick();
//! assert!(sched.job(id).unwrap().state.is_completed());
//! ```

pub mod scheduler;
pub mod signals;

pub use scheduler::{Job, JobId, JobSpec, JobState, Scheduler, SchedulerHook};
pub use signals::HttpSignaler;
