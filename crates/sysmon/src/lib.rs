//! # lms-sysmon
//!
//! System-level metric collection for compute nodes — the Diamond/Ganglia
//! half of the paper's host agents.
//!
//! Real collectors read `/proc`; this crate substitutes a **simulated
//! procfs** ([`procfs::SimProc`]) whose text output has the real formats
//! (`/proc/stat`, `/proc/meminfo`, `/proc/net/dev`, `/proc/diskstats`,
//! `/proc/loadavg`), driven by a per-node activity model. The collectors
//! ([`collectors`]) *parse that text* exactly as they would parse the real
//! files, so the whole parsing/δ-rate/batching code path is exercised.
//!
//! [`agent::HostAgent`] is the Diamond-like collection daemon: a set of
//! collectors on an interval, batched into line protocol, POSTed to the
//! metrics router. [`ganglia::GmondServer`] emulates Ganglia's gmond XML
//! dump port for the router's pull proxy.

pub mod agent;
pub mod collectors;
pub mod ganglia;
pub mod procfs;

pub use agent::HostAgent;
pub use collectors::{
    Collector, CpuCollector, DiskCollector, LoadCollector, MemoryCollector, NetworkCollector,
};
pub use procfs::{NodeActivity, SimProc};
