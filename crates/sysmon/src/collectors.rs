//! Diamond-style collectors: parse proc text, compute rates, emit points.
//!
//! Each collector keeps the previous raw counters and emits *rates* (the
//! form dashboards and rules consume). The measurements produced are the
//! elementary resource-utilization metrics the paper's analysis starts
//! from: CPU load, memory size, network I/O, file I/O (Sec. V).

use crate::procfs::SimProc;
use lms_lineproto::Point;
use lms_util::Timestamp;

/// A metric collector over the simulated procfs.
pub trait Collector: Send {
    /// Short name (used in logs and the agent's enable list).
    fn name(&self) -> &'static str;
    /// Reads the current state and produces points stamped with `ts`.
    /// Rate-based collectors return nothing on their first call.
    fn collect(&mut self, proc_fs: &SimProc, hostname: &str, ts: Timestamp) -> Vec<Point>;
}

fn base_point(measurement: &str, hostname: &str, ts: Timestamp) -> Point {
    let mut p = Point::new(measurement);
    p.add_tag("hostname", hostname);
    p.set_timestamp(ts.nanos());
    p
}

/// CPU utilization from `/proc/stat` jiffy deltas.
///
/// Emits `cpu_total` (fractions over all cpus) and per-cpu `cpu` points.
#[derive(Debug, Default)]
pub struct CpuCollector {
    prev: Option<Vec<[u64; 5]>>,
}

impl CpuCollector {
    /// New collector.
    pub fn new() -> Self {
        Self::default()
    }

    fn parse(stat: &str) -> Vec<[u64; 5]> {
        // Row 0 is the "cpu " aggregate, rows 1.. are cpuN.
        stat.lines()
            .filter(|l| l.starts_with("cpu"))
            .map(|l| {
                let mut f = l.split_whitespace().skip(1).map(|x| x.parse().unwrap_or(0));
                [
                    f.next().unwrap_or(0), // user
                    f.next().unwrap_or(0), // nice
                    f.next().unwrap_or(0), // system
                    f.next().unwrap_or(0), // idle
                    f.next().unwrap_or(0), // iowait
                ]
            })
            .collect()
    }
}

impl Collector for CpuCollector {
    fn name(&self) -> &'static str {
        "cpu"
    }

    fn collect(&mut self, proc_fs: &SimProc, hostname: &str, ts: Timestamp) -> Vec<Point> {
        let Some(stat) = proc_fs.read("/proc/stat") else { return Vec::new() };
        let now = Self::parse(&stat);
        let prev = self.prev.replace(now.clone());
        let Some(prev) = prev else { return Vec::new() };
        let mut out = Vec::new();
        for (row, (cur, old)) in now.iter().zip(&prev).enumerate() {
            let delta: Vec<f64> = cur.iter().zip(old).map(|(a, b)| (a - b.min(a)) as f64).collect();
            let total: f64 = delta.iter().sum();
            if total <= 0.0 {
                continue;
            }
            let mut p = if row == 0 {
                base_point("cpu_total", hostname, ts)
            } else {
                let mut p = base_point("cpu", hostname, ts);
                p.add_tag("cpu", (row - 1).to_string());
                p
            };
            p.add_field("user", delta[0] / total)
                .add_field("system", delta[2] / total)
                .add_field("idle", delta[3] / total)
                .add_field("iowait", delta[4] / total)
                .add_field("busy", 1.0 - delta[3] / total);
            out.push(p);
        }
        out
    }
}

/// Memory usage from `/proc/meminfo` (gauge; emits every call).
#[derive(Debug, Default)]
pub struct MemoryCollector;

impl MemoryCollector {
    /// New collector.
    pub fn new() -> Self {
        Self
    }
}

impl Collector for MemoryCollector {
    fn name(&self) -> &'static str {
        "memory"
    }

    fn collect(&mut self, proc_fs: &SimProc, hostname: &str, ts: Timestamp) -> Vec<Point> {
        let Some(text) = proc_fs.read("/proc/meminfo") else { return Vec::new() };
        let field = |name: &str| -> f64 {
            text.lines()
                .find(|l| l.starts_with(name))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse::<f64>().ok())
                .unwrap_or(0.0)
                * 1024.0 // kB → bytes
        };
        let total = field("MemTotal:");
        let available = field("MemAvailable:");
        let mut p = base_point("memory", hostname, ts);
        p.add_field("total_bytes", total)
            .add_field("available_bytes", available)
            .add_field("used_bytes", total - available)
            .add_field("used_frac", if total > 0.0 { (total - available) / total } else { 0.0 });
        vec![p]
    }
}

/// Network I/O rates from `/proc/net/dev` deltas (non-loopback interfaces).
#[derive(Debug, Default)]
pub struct NetworkCollector {
    prev: Option<(Timestamp, [u64; 4])>,
}

impl NetworkCollector {
    /// New collector.
    pub fn new() -> Self {
        Self::default()
    }

    fn parse(text: &str) -> [u64; 4] {
        let mut sum = [0u64; 4];
        for line in text.lines().skip(2) {
            let Some((iface, rest)) = line.split_once(':') else { continue };
            if iface.trim() == "lo" {
                continue;
            }
            let f: Vec<u64> =
                rest.split_whitespace().map(|x| x.parse().unwrap_or(0)).collect();
            if f.len() >= 10 {
                sum[0] += f[0]; // rx bytes
                sum[1] += f[1]; // rx packets
                sum[2] += f[8]; // tx bytes
                sum[3] += f[9]; // tx packets
            }
        }
        sum
    }
}

impl Collector for NetworkCollector {
    fn name(&self) -> &'static str {
        "network"
    }

    fn collect(&mut self, proc_fs: &SimProc, hostname: &str, ts: Timestamp) -> Vec<Point> {
        let Some(text) = proc_fs.read("/proc/net/dev") else { return Vec::new() };
        let now = Self::parse(&text);
        let prev = self.prev.replace((ts, now));
        let Some((t0, old)) = prev else { return Vec::new() };
        let dt = ts.since(t0).as_secs_f64();
        if dt <= 0.0 {
            return Vec::new();
        }
        let rate = |a: u64, b: u64| (a.saturating_sub(b)) as f64 / dt;
        let mut p = base_point("network", hostname, ts);
        p.add_field("rx_bytes_per_s", rate(now[0], old[0]))
            .add_field("rx_packets_per_s", rate(now[1], old[1]))
            .add_field("tx_bytes_per_s", rate(now[2], old[2]))
            .add_field("tx_packets_per_s", rate(now[3], old[3]));
        vec![p]
    }
}

/// Disk I/O rates from `/proc/diskstats` deltas (whole devices).
#[derive(Debug, Default)]
pub struct DiskCollector {
    prev: Option<(Timestamp, [u64; 4])>,
}

impl DiskCollector {
    /// New collector.
    pub fn new() -> Self {
        Self::default()
    }

    fn parse(text: &str) -> [u64; 4] {
        let mut sum = [0u64; 4];
        for line in text.lines() {
            let f: Vec<&str> = line.split_whitespace().collect();
            if f.len() < 10 {
                continue;
            }
            // Skip partitions (name ends in a digit).
            if f[2].ends_with(|c: char| c.is_ascii_digit()) {
                continue;
            }
            sum[0] += f[3].parse().unwrap_or(0); // reads completed
            sum[1] += f[5].parse().unwrap_or(0); // sectors read
            sum[2] += f[7].parse().unwrap_or(0); // writes completed
            sum[3] += f[9].parse().unwrap_or(0); // sectors written
        }
        sum
    }
}

impl Collector for DiskCollector {
    fn name(&self) -> &'static str {
        "disk"
    }

    fn collect(&mut self, proc_fs: &SimProc, hostname: &str, ts: Timestamp) -> Vec<Point> {
        let Some(text) = proc_fs.read("/proc/diskstats") else { return Vec::new() };
        let now = Self::parse(&text);
        let prev = self.prev.replace((ts, now));
        let Some((t0, old)) = prev else { return Vec::new() };
        let dt = ts.since(t0).as_secs_f64();
        if dt <= 0.0 {
            return Vec::new();
        }
        let rate = |a: u64, b: u64| (a.saturating_sub(b)) as f64 / dt;
        let mut p = base_point("disk", hostname, ts);
        p.add_field("reads_per_s", rate(now[0], old[0]))
            .add_field("read_bytes_per_s", rate(now[1], old[1]) * 512.0)
            .add_field("writes_per_s", rate(now[2], old[2]))
            .add_field("write_bytes_per_s", rate(now[3], old[3]) * 512.0);
        vec![p]
    }
}

/// Load averages from `/proc/loadavg` (gauge).
#[derive(Debug, Default)]
pub struct LoadCollector;

impl LoadCollector {
    /// New collector.
    pub fn new() -> Self {
        Self
    }
}

impl Collector for LoadCollector {
    fn name(&self) -> &'static str {
        "load"
    }

    fn collect(&mut self, proc_fs: &SimProc, hostname: &str, ts: Timestamp) -> Vec<Point> {
        let Some(text) = proc_fs.read("/proc/loadavg") else { return Vec::new() };
        let mut f = text.split_whitespace().map(|x| x.parse::<f64>().unwrap_or(0.0));
        let mut p = base_point("load", hostname, ts);
        p.add_field("load1", f.next().unwrap_or(0.0))
            .add_field("load5", f.next().unwrap_or(0.0))
            .add_field("load15", f.next().unwrap_or(0.0));
        vec![p]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::procfs::NodeActivity;
    use std::time::Duration;

    fn advance(p: &mut SimProc, t: &mut Timestamp, d: Duration) {
        p.advance(d);
        *t = t.add(d);
    }

    #[test]
    fn cpu_collector_computes_utilization_deltas() {
        let mut proc_fs = SimProc::new(4, 1 << 20, 1);
        proc_fs.set_activity(NodeActivity::busy_compute(4));
        let mut c = CpuCollector::new();
        let mut ts = Timestamp::from_secs(100);
        assert!(c.collect(&proc_fs, "h1", ts).is_empty(), "first call primes");
        advance(&mut proc_fs, &mut ts, Duration::from_secs(10));
        let points = c.collect(&proc_fs, "h1", ts);
        assert_eq!(points.len(), 5); // total + 4 cpus
        let total = &points[0];
        assert_eq!(total.measurement(), "cpu_total");
        let busy = total.field("busy").unwrap().as_f64().unwrap();
        assert!(busy > 0.9, "busy = {busy}");
        let per_cpu = &points[1];
        assert_eq!(per_cpu.tag("cpu"), Some("0"));
    }

    #[test]
    fn cpu_collector_tracks_activity_change() {
        let mut proc_fs = SimProc::new(2, 1 << 20, 2);
        let mut c = CpuCollector::new();
        let mut ts = Timestamp::from_secs(0);
        c.collect(&proc_fs, "h1", ts);
        advance(&mut proc_fs, &mut ts, Duration::from_secs(5));
        let idle = c.collect(&proc_fs, "h1", ts);
        let idle_busy = idle[0].field("busy").unwrap().as_f64().unwrap();
        assert!(idle_busy < 0.05, "{idle_busy}");
        proc_fs.set_activity(NodeActivity::busy_compute(2));
        advance(&mut proc_fs, &mut ts, Duration::from_secs(5));
        let busy = c.collect(&proc_fs, "h1", ts);
        let busy_f = busy[0].field("busy").unwrap().as_f64().unwrap();
        assert!(busy_f > 0.9, "{busy_f}");
    }

    #[test]
    fn memory_collector_gauges() {
        let mut proc_fs = SimProc::new(1, 1_000_000, 3);
        proc_fs.set_activity(NodeActivity { mem_used_frac: 0.5, ..NodeActivity::idle() });
        proc_fs.advance(Duration::from_secs(1));
        let mut c = MemoryCollector::new();
        let points = c.collect(&proc_fs, "h1", Timestamp::from_secs(1));
        assert_eq!(points.len(), 1);
        let used_frac = points[0].field("used_frac").unwrap().as_f64().unwrap();
        assert!((used_frac - 0.5).abs() < 0.01, "{used_frac}");
        assert_eq!(
            points[0].field("total_bytes").unwrap().as_f64().unwrap(),
            1_000_000.0 * 1024.0
        );
    }

    #[test]
    fn network_collector_rates() {
        let mut proc_fs = SimProc::new(1, 1024, 4);
        proc_fs.set_activity(NodeActivity {
            net_rx_bytes: 100e6,
            net_tx_bytes: 10e6,
            ..NodeActivity::idle()
        });
        let mut c = NetworkCollector::new();
        let mut ts = Timestamp::from_secs(0);
        c.collect(&proc_fs, "h1", ts);
        advance(&mut proc_fs, &mut ts, Duration::from_secs(10));
        let points = c.collect(&proc_fs, "h1", ts);
        let rx = points[0].field("rx_bytes_per_s").unwrap().as_f64().unwrap();
        assert!((rx - 100e6).abs() / 100e6 < 0.1, "rx = {rx}");
        let tx = points[0].field("tx_bytes_per_s").unwrap().as_f64().unwrap();
        assert!((tx - 10e6).abs() / 10e6 < 0.1, "tx = {tx}");
    }

    #[test]
    fn disk_collector_rates() {
        let mut proc_fs = SimProc::new(1, 1024, 5);
        proc_fs.set_activity(NodeActivity::busy_io(1));
        let mut c = DiskCollector::new();
        let mut ts = Timestamp::from_secs(0);
        c.collect(&proc_fs, "h1", ts);
        advance(&mut proc_fs, &mut ts, Duration::from_secs(10));
        let points = c.collect(&proc_fs, "h1", ts);
        let wr = points[0].field("write_bytes_per_s").unwrap().as_f64().unwrap();
        assert!((wr - 250e6).abs() / 250e6 < 0.15, "write rate = {wr}");
    }

    #[test]
    fn load_collector() {
        let mut proc_fs = SimProc::new(8, 1024, 6);
        proc_fs.set_activity(NodeActivity::busy_compute(8));
        proc_fs.advance(Duration::from_secs(600));
        let mut c = LoadCollector::new();
        let points = c.collect(&proc_fs, "h1", Timestamp::from_secs(600));
        let l1 = points[0].field("load1").unwrap().as_f64().unwrap();
        assert!(l1 > 7.0, "load1 = {l1}");
        assert!(points[0].field("load15").is_some());
    }

    #[test]
    fn points_are_tagged_and_timestamped() {
        let proc_fs = SimProc::new(1, 1024, 7);
        let mut c = MemoryCollector::new();
        let ts = Timestamp::from_secs(42);
        let p = &c.collect(&proc_fs, "nodeX", ts)[0];
        assert_eq!(p.tag("hostname"), Some("nodeX"));
        assert_eq!(p.timestamp(), Some(ts.nanos()));
    }
}
