//! A gmond-compatible XML dump server.
//!
//! Ganglia's gmond answers any TCP connection to its port with a full XML
//! dump of the cluster state and closes. The paper integrates such legacy
//! sources through the router's pulling proxy; this module provides the
//! emitting side so the integration path can be exercised end to end.

use lms_util::{FxHashMap, Result};
use parking_lot::RwLock;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// One metric in the gmond state.
#[derive(Debug, Clone)]
pub struct GmondMetric {
    /// Metric name, e.g. `load_one`.
    pub name: String,
    /// Rendered value.
    pub value: String,
    /// Ganglia type: `float`, `uint32`, `string`, ...
    pub ty: &'static str,
    /// Units label.
    pub units: String,
}

#[derive(Debug, Default)]
struct State {
    /// host → (reported unix seconds, metrics by name).
    hosts: FxHashMap<String, (i64, FxHashMap<String, GmondMetric>)>,
    cluster: String,
}

fn escape_attr(s: &str) -> String {
    s.replace('&', "&amp;").replace('"', "&quot;").replace('<', "&lt;").replace('>', "&gt;")
}

impl State {
    fn render(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("<?xml version=\"1.0\" encoding=\"ISO-8859-1\"?>\n");
        out.push_str("<GANGLIA_XML VERSION=\"3.7.2\" SOURCE=\"gmond\">\n");
        out.push_str(&format!(
            "<CLUSTER NAME=\"{}\" LOCALTIME=\"0\" OWNER=\"lms\" URL=\"\">\n",
            escape_attr(&self.cluster)
        ));
        let mut hosts: Vec<_> = self.hosts.iter().collect();
        hosts.sort_by(|a, b| a.0.cmp(b.0));
        for (host, (reported, metrics)) in hosts {
            out.push_str(&format!(
                "<HOST NAME=\"{}\" IP=\"0.0.0.0\" REPORTED=\"{reported}\">\n",
                escape_attr(host)
            ));
            let mut ms: Vec<_> = metrics.values().collect();
            ms.sort_by(|a, b| a.name.cmp(&b.name));
            for m in ms {
                out.push_str(&format!(
                    "<METRIC NAME=\"{}\" VAL=\"{}\" TYPE=\"{}\" UNITS=\"{}\" TN=\"0\" TMAX=\"60\" SLOPE=\"both\"/>\n",
                    escape_attr(&m.name),
                    escape_attr(&m.value),
                    m.ty,
                    escape_attr(&m.units)
                ));
            }
            out.push_str("</HOST>\n");
        }
        out.push_str("</CLUSTER>\n</GANGLIA_XML>\n");
        out
    }
}

/// A running gmond-style server.
pub struct GmondServer {
    addr: SocketAddr,
    state: Arc<RwLock<State>>,
    stop: Arc<AtomicBool>,
    acceptor: Option<std::thread::JoinHandle<()>>,
}

impl GmondServer {
    /// Binds and starts answering connections with the XML dump.
    pub fn start<A: ToSocketAddrs>(addr: A, cluster: &str) -> Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let state = Arc::new(RwLock::new(State {
            cluster: cluster.to_string(),
            ..Default::default()
        }));
        let stop = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let state = state.clone();
            let stop = stop.clone();
            std::thread::Builder::new()
                .name("lms-gmond".into())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        if let Ok(mut s) = conn {
                            let xml = state.read().render();
                            let _ = s.write_all(xml.as_bytes());
                        }
                    }
                })
                .expect("spawn gmond acceptor")
        };
        Ok(GmondServer { addr: local, state, stop, acceptor: Some(acceptor) })
    }

    /// Bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Updates (or adds) a metric for a host.
    pub fn update(
        &self,
        host: &str,
        reported_unix: i64,
        name: &str,
        value: impl std::fmt::Display,
        ty: &'static str,
        units: &str,
    ) {
        let mut st = self.state.write();
        let entry = st.hosts.entry(host.to_string()).or_insert_with(|| (0, FxHashMap::default()));
        entry.0 = reported_unix;
        entry.1.insert(
            name.to_string(),
            GmondMetric {
                name: name.to_string(),
                value: value.to_string(),
                ty,
                units: units.to_string(),
            },
        );
    }

    /// The XML a client would receive right now.
    pub fn render(&self) -> String {
        self.state.read().render()
    }
}

impl Drop for GmondServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    #[test]
    fn serves_xml_dump_per_connection() {
        let server = GmondServer::start("127.0.0.1:0", "test-cluster").unwrap();
        server.update("h1", 1000, "load_one", 0.5, "float", "");
        server.update("h1", 1000, "mem_free", 12345u32, "uint32", "KB");
        server.update("h2", 1001, "load_one", 1.5, "float", "");

        let mut s = TcpStream::connect(server.addr()).unwrap();
        let mut xml = String::new();
        s.read_to_string(&mut xml).unwrap();
        assert!(xml.contains("<CLUSTER NAME=\"test-cluster\""));
        assert!(xml.contains("<HOST NAME=\"h1\""));
        assert!(xml.contains("NAME=\"load_one\" VAL=\"0.5\" TYPE=\"float\""));
        assert!(xml.contains("NAME=\"mem_free\" VAL=\"12345\" TYPE=\"uint32\" UNITS=\"KB\""));
        assert!(xml.contains("<HOST NAME=\"h2\""));

        // Updates replace, not append.
        server.update("h1", 1002, "load_one", 0.7, "float", "");
        let rendered = server.render();
        assert!(rendered.contains("VAL=\"0.7\""));
        assert!(!rendered.contains("VAL=\"0.5\""));
    }

    #[test]
    fn escapes_attribute_values() {
        let server = GmondServer::start("127.0.0.1:0", "c<\">&x").unwrap();
        server.update("h1", 1, "os", "4.4 \"LTS\" <x>", "string", "");
        let xml = server.render();
        assert!(xml.contains("NAME=\"c&lt;&quot;&gt;&amp;x\""));
        assert!(xml.contains("VAL=\"4.4 &quot;LTS&quot; &lt;x&gt;\""));
    }
}
