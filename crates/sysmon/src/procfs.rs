//! The simulated `/proc` filesystem.
//!
//! [`SimProc`] maintains the kernel counters a node would expose and
//! renders them in the exact text formats of the real files. Counters
//! advance with virtual time according to the current [`NodeActivity`] —
//! which the cluster simulation switches when jobs start and end.

use lms_util::rng::XorShift64;
use std::time::Duration;

/// What the node is currently doing, as rates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeActivity {
    /// Fraction of CPU time spent in user mode, `0.0..=1.0` (per cpu).
    pub cpu_user: f64,
    /// Fraction spent in system mode.
    pub cpu_system: f64,
    /// Fraction spent in iowait.
    pub cpu_iowait: f64,
    /// Used memory fraction of total, `0.0..=1.0`.
    pub mem_used_frac: f64,
    /// Network receive rate in bytes/s (node total).
    pub net_rx_bytes: f64,
    /// Network transmit rate in bytes/s.
    pub net_tx_bytes: f64,
    /// Disk read rate in bytes/s.
    pub disk_read_bytes: f64,
    /// Disk write rate in bytes/s.
    pub disk_write_bytes: f64,
    /// 1-minute load average target.
    pub load: f64,
}

impl NodeActivity {
    /// An idle node.
    pub fn idle() -> Self {
        NodeActivity {
            cpu_user: 0.005,
            cpu_system: 0.003,
            cpu_iowait: 0.001,
            mem_used_frac: 0.05,
            net_rx_bytes: 2e3,
            net_tx_bytes: 2e3,
            disk_read_bytes: 1e3,
            disk_write_bytes: 5e3,
            load: 0.05,
        }
    }

    /// A node running a CPU-heavy parallel job on all cores.
    pub fn busy_compute(ncpu: u32) -> Self {
        NodeActivity {
            cpu_user: 0.96,
            cpu_system: 0.02,
            cpu_iowait: 0.0,
            mem_used_frac: 0.55,
            net_rx_bytes: 40e6,
            net_tx_bytes: 40e6,
            disk_read_bytes: 1e5,
            disk_write_bytes: 8e5,
            load: ncpu as f64,
        }
    }

    /// An I/O-heavy job (checkpointing, postprocessing).
    pub fn busy_io(ncpu: u32) -> Self {
        NodeActivity {
            cpu_user: 0.25,
            cpu_system: 0.12,
            cpu_iowait: 0.35,
            mem_used_frac: 0.35,
            net_rx_bytes: 200e6,
            net_tx_bytes: 30e6,
            disk_read_bytes: 150e6,
            disk_write_bytes: 250e6,
            load: ncpu as f64 * 0.6,
        }
    }
}

/// Kernel counter state of one simulated node.
#[derive(Debug)]
pub struct SimProc {
    ncpu: u32,
    mem_total_kb: u64,
    hz: u64, // USER_HZ: jiffies per second
    activity: NodeActivity,
    /// Per-cpu jiffy counters: user, nice, system, idle, iowait.
    cpu_jiffies: Vec<[u64; 5]>,
    /// eth0 cumulative byte/packet counters: rx_bytes, rx_pkts, tx_bytes, tx_pkts.
    net: [u64; 4],
    /// sda cumulative: reads completed, sectors read, writes completed, sectors written.
    disk: [u64; 4],
    load1: f64,
    load5: f64,
    load15: f64,
    uptime: Duration,
    rng: XorShift64,
    /// Fractional jiffy remainders to avoid losing time in small steps.
    jiffy_rem: Vec<[f64; 5]>,
}

impl SimProc {
    /// A node with `ncpu` logical CPUs and `mem_total_kb` KiB of memory.
    pub fn new(ncpu: u32, mem_total_kb: u64, seed: u64) -> Self {
        SimProc {
            ncpu: ncpu.max(1),
            mem_total_kb,
            hz: 100,
            activity: NodeActivity::idle(),
            cpu_jiffies: vec![[0; 5]; ncpu.max(1) as usize],
            net: [0; 4],
            disk: [0; 4],
            load1: 0.0,
            load5: 0.0,
            load15: 0.0,
            uptime: Duration::ZERO,
            rng: XorShift64::new(seed),
            jiffy_rem: vec![[0.0; 5]; ncpu.max(1) as usize],
        }
    }

    /// Number of simulated CPUs.
    pub fn ncpu(&self) -> u32 {
        self.ncpu
    }

    /// Switches the activity model (job start/end).
    pub fn set_activity(&mut self, activity: NodeActivity) {
        self.activity = activity;
    }

    /// The current activity model.
    pub fn activity(&self) -> NodeActivity {
        self.activity
    }

    /// Advances virtual time, accumulating all counters.
    pub fn advance(&mut self, dt: Duration) {
        let secs = dt.as_secs_f64();
        if secs <= 0.0 {
            return;
        }
        let a = self.activity;
        let jiffies_total = secs * self.hz as f64;
        for (cpu, counters) in self.cpu_jiffies.iter_mut().enumerate() {
            let jitter = 1.0 + self.rng.range_f64(-0.03, 0.03);
            let user = a.cpu_user * jiffies_total * jitter;
            let system = a.cpu_system * jiffies_total * jitter;
            let iowait = a.cpu_iowait * jiffies_total * jitter;
            let idle = (jiffies_total - user - system - iowait).max(0.0);
            let rem = &mut self.jiffy_rem[cpu];
            for (slot, add) in [(0usize, user), (2, system), (3, idle), (4, iowait)] {
                let total = rem[slot] + add;
                let whole = total.floor();
                counters[slot] += whole as u64;
                rem[slot] = total - whole;
            }
        }
        let j = 1.0 + self.rng.range_f64(-0.05, 0.05);
        self.net[0] += (a.net_rx_bytes * secs * j) as u64;
        self.net[1] += (a.net_rx_bytes * secs * j / 1400.0) as u64;
        self.net[2] += (a.net_tx_bytes * secs * j) as u64;
        self.net[3] += (a.net_tx_bytes * secs * j / 1400.0) as u64;
        self.disk[0] += (a.disk_read_bytes * secs * j / 65536.0) as u64;
        self.disk[1] += (a.disk_read_bytes * secs * j / 512.0) as u64;
        self.disk[2] += (a.disk_write_bytes * secs * j / 65536.0) as u64;
        self.disk[3] += (a.disk_write_bytes * secs * j / 512.0) as u64;
        // Load averages decay toward the target (1/5/15-minute windows).
        let target = a.load;
        for (load, window) in [
            (&mut self.load1, 60.0),
            (&mut self.load5, 300.0),
            (&mut self.load15, 900.0),
        ] {
            let alpha = 1.0 - (-secs / window).exp();
            *load += (target - *load) * alpha;
        }
        self.uptime += dt;
    }

    /// Reads a simulated proc file by path.
    ///
    /// Supported: `/proc/stat`, `/proc/meminfo`, `/proc/net/dev`,
    /// `/proc/diskstats`, `/proc/loadavg`, `/proc/uptime`.
    pub fn read(&self, path: &str) -> Option<String> {
        match path {
            "/proc/stat" => Some(self.render_stat()),
            "/proc/meminfo" => Some(self.render_meminfo()),
            "/proc/net/dev" => Some(self.render_netdev()),
            "/proc/diskstats" => Some(self.render_diskstats()),
            "/proc/loadavg" => Some(self.render_loadavg()),
            "/proc/uptime" => Some(format!("{:.2} 0.00\n", self.uptime.as_secs_f64())),
            _ => None,
        }
    }

    fn render_stat(&self) -> String {
        let mut out = String::with_capacity(64 * (self.ncpu as usize + 1));
        let mut total = [0u64; 5];
        for c in &self.cpu_jiffies {
            for i in 0..5 {
                total[i] += c[i];
            }
        }
        // cpu  user nice system idle iowait irq softirq
        out.push_str(&format!(
            "cpu  {} {} {} {} {} 0 0 0 0 0\n",
            total[0], total[1], total[2], total[3], total[4]
        ));
        for (i, c) in self.cpu_jiffies.iter().enumerate() {
            out.push_str(&format!(
                "cpu{i} {} {} {} {} {} 0 0 0 0 0\n",
                c[0], c[1], c[2], c[3], c[4]
            ));
        }
        out.push_str("intr 0\nctxt 0\nbtime 0\nprocesses 1\nprocs_running 1\nprocs_blocked 0\n");
        out
    }

    fn render_meminfo(&self) -> String {
        let used = (self.mem_total_kb as f64 * self.activity.mem_used_frac) as u64;
        let free = self.mem_total_kb - used.min(self.mem_total_kb);
        let cached = free / 4;
        format!(
            "MemTotal:       {:>8} kB\nMemFree:        {:>8} kB\nMemAvailable:   {:>8} kB\nBuffers:        {:>8} kB\nCached:         {:>8} kB\nSwapTotal:      {:>8} kB\nSwapFree:       {:>8} kB\n",
            self.mem_total_kb,
            free - cached,
            free,
            free / 16,
            cached,
            0,
            0
        )
    }

    fn render_netdev(&self) -> String {
        format!(
            "Inter-|   Receive                                                |  Transmit\n face |bytes    packets errs drop fifo frame compressed multicast|bytes    packets errs drop fifo colls carrier compressed\n    lo:       0       0    0    0    0     0          0         0        0       0    0    0    0     0       0          0\n  eth0: {:>8} {:>8}    0    0    0     0          0         0 {:>8} {:>8}    0    0    0     0       0          0\n",
            self.net[0], self.net[1], self.net[2], self.net[3]
        )
    }

    fn render_diskstats(&self) -> String {
        // major minor name reads merged sectors ms writes merged sectors ms ...
        format!(
            "   8       0 sda {} 0 {} 0 {} 0 {} 0 0 0 0\n",
            self.disk[0], self.disk[1], self.disk[2], self.disk[3]
        )
    }

    fn render_loadavg(&self) -> String {
        format!("{:.2} {:.2} {:.2} 1/100 12345\n", self.load1, self.load5, self.load15)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut p = SimProc::new(4, 16 * 1024 * 1024, 1);
        p.set_activity(NodeActivity::busy_compute(4));
        p.advance(Duration::from_secs(10));
        let stat = p.read("/proc/stat").unwrap();
        let first = stat.lines().next().unwrap();
        let fields: Vec<u64> =
            first.split_whitespace().skip(1).map(|f| f.parse().unwrap()).collect();
        // ~96% user over 10s × 100Hz × 4 cpus ≈ 3840 jiffies
        assert!(fields[0] > 3000, "user jiffies = {}", fields[0]);
        assert!(fields[3] < 600, "idle jiffies = {}", fields[3]);
    }

    #[test]
    fn jiffies_do_not_lose_time_in_small_steps() {
        let mut a = SimProc::new(1, 1024, 7);
        let mut b = SimProc::new(1, 1024, 7);
        a.set_activity(NodeActivity::busy_compute(1));
        b.set_activity(NodeActivity::busy_compute(1));
        // Same virtual time, different step sizes.
        a.advance(Duration::from_secs(10));
        for _ in 0..1000 {
            b.advance(Duration::from_millis(10));
        }
        let sum = |p: &SimProc| -> u64 {
            p.read("/proc/stat")
                .unwrap()
                .lines()
                .next()
                .unwrap()
                .split_whitespace()
                .skip(1)
                .map(|f| f.parse::<u64>().unwrap())
                .sum()
        };
        let (ja, jb) = (sum(&a), sum(&b));
        let diff = (ja as i64 - jb as i64).unsigned_abs();
        assert!(diff < 60, "jiffy totals diverge: {ja} vs {jb}");
    }

    #[test]
    fn meminfo_reflects_activity() {
        let mut p = SimProc::new(1, 1_000_000, 2);
        p.set_activity(NodeActivity { mem_used_frac: 0.75, ..NodeActivity::idle() });
        p.advance(Duration::from_secs(1));
        let mem = p.read("/proc/meminfo").unwrap();
        assert!(mem.contains("MemTotal:        1000000 kB"));
        let avail: u64 = mem
            .lines()
            .find(|l| l.starts_with("MemAvailable"))
            .and_then(|l| l.split_whitespace().nth(1))
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(avail, 250_000);
    }

    #[test]
    fn netdev_and_diskstats_grow() {
        let mut p = SimProc::new(1, 1024, 3);
        p.set_activity(NodeActivity::busy_io(1));
        p.advance(Duration::from_secs(5));
        let net1 = p.read("/proc/net/dev").unwrap();
        p.advance(Duration::from_secs(5));
        let net2 = p.read("/proc/net/dev").unwrap();
        assert_ne!(net1, net2);
        let disk = p.read("/proc/diskstats").unwrap();
        assert!(disk.contains("sda"));
        let sectors_written: u64 = disk.split_whitespace().nth(9).unwrap().parse().unwrap();
        assert!(sectors_written > 0);
    }

    #[test]
    fn load_average_decays_toward_target() {
        let mut p = SimProc::new(8, 1024, 4);
        p.set_activity(NodeActivity::busy_compute(8));
        p.advance(Duration::from_secs(300));
        let load = p.read("/proc/loadavg").unwrap();
        let load1: f64 = load.split_whitespace().next().unwrap().parse().unwrap();
        assert!(load1 > 7.5, "load1 = {load1}");
        p.set_activity(NodeActivity::idle());
        p.advance(Duration::from_secs(600));
        let load = p.read("/proc/loadavg").unwrap();
        let load1: f64 = load.split_whitespace().next().unwrap().parse().unwrap();
        assert!(load1 < 0.5, "load1 after idling = {load1}");
    }

    #[test]
    fn unknown_path_is_none() {
        let p = SimProc::new(1, 1024, 5);
        assert!(p.read("/proc/nope").is_none());
        assert!(p.read("/proc/uptime").is_some());
    }
}
