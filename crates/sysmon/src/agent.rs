//! The Diamond-like host agent.
//!
//! One [`HostAgent`] runs on each monitored node: it owns a set of
//! [`Collector`]s, runs them on a tick, batches the resulting points in
//! line protocol and POSTs the batch to the metrics router's `/write`
//! endpoint (or hands it to an in-process sink for the embedded stack).
//! Batching is the paper's stated reason for the line protocol choice —
//! the whole tick travels as one HTTP request.

use crate::collectors::Collector;
use crate::procfs::SimProc;
use lms_http::HttpClient;
use lms_lineproto::BatchBuilder;
use lms_rollup::WindowAggregator;
use lms_util::{Clock, Result};
use std::net::SocketAddr;

/// Closure sink for 1m rollup-row batches (embedded stack, tests).
type RollupSink = Box<dyn FnMut(&str) + Send>;

/// Where a finished batch goes.
enum Sink {
    /// POST to a router/database `/write` endpoint.
    Http { client: HttpClient, db: String },
    /// Hand to a closure (embedded stack, tests).
    Func(Box<dyn FnMut(&str) + Send>),
    /// Discard (benchmarks of collection cost).
    Null,
}

/// A per-node collection daemon.
pub struct HostAgent {
    hostname: String,
    clock: Clock,
    collectors: Vec<Box<dyn Collector>>,
    batch: BatchBuilder,
    sink: Sink,
    /// 60s pre-aggregation windows over the raw stream; closed windows
    /// ship as a second, rollup-row batch tagged for the 1m tier.
    pre_agg: Option<WindowAggregator>,
    /// Where 1m batches go when the raw sink is a closure (the embedded
    /// stack routes them into the tier database itself).
    rollup_sink: Option<RollupSink>,
    ticks: u64,
    points_sent: u64,
    rollup_rows: u64,
    send_errors: u64,
}

impl HostAgent {
    /// Creates an agent with no collectors and a null sink.
    pub fn new(hostname: impl Into<String>, clock: Clock) -> Self {
        HostAgent {
            hostname: hostname.into(),
            clock,
            collectors: Vec::new(),
            batch: BatchBuilder::with_capacity(4096),
            sink: Sink::Null,
            pre_agg: None,
            rollup_sink: None,
            ticks: 0,
            points_sent: 0,
            rollup_rows: 0,
            send_errors: 0,
        }
    }

    /// Adds a collector.
    pub fn add_collector(&mut self, c: Box<dyn Collector>) -> &mut Self {
        self.collectors.push(c);
        self
    }

    /// Installs the standard collector set (cpu, memory, network, disk,
    /// load) — what a Diamond deployment enables by default.
    pub fn with_standard_collectors(mut self) -> Self {
        use crate::collectors::*;
        self.add_collector(Box::new(CpuCollector::new()));
        self.add_collector(Box::new(MemoryCollector::new()));
        self.add_collector(Box::new(NetworkCollector::new()));
        self.add_collector(Box::new(DiskCollector::new()));
        self.add_collector(Box::new(LoadCollector::new()));
        self
    }

    /// Sends batches to the router at `addr`, database `db`.
    pub fn send_to(&mut self, addr: SocketAddr, db: &str) -> Result<()> {
        self.sink = Sink::Http { client: HttpClient::connect(addr)?, db: db.to_string() };
        Ok(())
    }

    /// Sends batches to a closure (embedded mode).
    pub fn send_to_fn(&mut self, f: impl FnMut(&str) + Send + 'static) {
        self.sink = Sink::Func(Box::new(f));
    }

    /// Enables the agent-side pre-aggregation stream: alongside the 1s raw
    /// batches, the agent folds every point into per-series 1-minute
    /// windows and ships each closed window as rollup rows (count / sum /
    /// min / max / first / last stat fields, window-start timestamps) for
    /// direct ingestion into the 1m tier. The HTTP sink posts them to
    /// `/write?db=...&tier=1m`; closure sinks receive them through
    /// [`HostAgent::send_rollups_to_fn`].
    ///
    /// The database-side rollup pass recomputes any window it also saw raw
    /// points for (last-write-wins), so the two streams converge — the
    /// pre-aggregated rows matter when raw ingestion is shed or sampled.
    pub fn enable_pre_aggregation(&mut self) {
        self.pre_agg = Some(WindowAggregator::minute());
    }

    /// Sends 1m pre-aggregated batches to a closure (embedded mode).
    pub fn send_rollups_to_fn(&mut self, f: impl FnMut(&str) + Send + 'static) {
        self.rollup_sink = Some(Box::new(f));
    }

    /// The node's hostname.
    pub fn hostname(&self) -> &str {
        &self.hostname
    }

    /// Runs all collectors once and ships the batch.
    /// Returns the number of points collected this tick.
    pub fn tick(&mut self, proc_fs: &SimProc) -> usize {
        let ts = self.clock.now();
        self.batch.clear();
        for collector in &mut self.collectors {
            for point in collector.collect(proc_fs, &self.hostname, ts) {
                if let Some(agg) = &mut self.pre_agg {
                    agg.push(&point, point.timestamp().unwrap_or(ts.nanos()));
                }
                self.batch.push(&point);
            }
        }
        self.ticks += 1;
        let n = self.batch.len();
        if n > 0 {
            self.points_sent += n as u64;
            match &mut self.sink {
                Sink::Http { client, db } => {
                    let target = format!("/write?db={db}");
                    match client.post_text(&target, self.batch.as_str()) {
                        Ok(resp) if resp.is_success() => {}
                        _ => self.send_errors += 1,
                    }
                }
                Sink::Func(f) => f(self.batch.as_str()),
                Sink::Null => {}
            }
        }
        if let Some(agg) = &mut self.pre_agg {
            let closed = agg.close_before(ts.nanos());
            if !closed.is_empty() {
                let mut batch = String::new();
                for p in &closed {
                    batch.push_str(&p.to_line());
                    batch.push('\n');
                }
                self.rollup_rows += closed.len() as u64;
                self.ship_rollups(&batch);
            }
        }
        n
    }

    /// Force-closes every open pre-aggregation window and ships the rows
    /// (agent shutdown: a partial window beats a lost one).
    pub fn flush_pre_aggregation(&mut self) {
        let Some(agg) = &mut self.pre_agg else { return };
        let open = agg.flush();
        if open.is_empty() {
            return;
        }
        let mut batch = String::new();
        for p in &open {
            batch.push_str(&p.to_line());
            batch.push('\n');
        }
        self.rollup_rows += open.len() as u64;
        self.ship_rollups(&batch);
    }

    fn ship_rollups(&mut self, batch: &str) {
        match &mut self.sink {
            Sink::Http { client, db } => {
                let target = format!("/write?db={db}&tier=1m");
                match client.post_text(&target, batch) {
                    Ok(resp) if resp.is_success() => {}
                    _ => self.send_errors += 1,
                }
            }
            _ => {
                if let Some(f) = &mut self.rollup_sink {
                    f(batch);
                }
            }
        }
    }

    /// `(ticks, points, send errors)` counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.ticks, self.points_sent, self.send_errors)
    }

    /// 1m pre-aggregated rollup rows shipped so far.
    pub fn rollup_rows_sent(&self) -> u64 {
        self.rollup_rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::procfs::NodeActivity;
    use lms_util::Timestamp;
    use parking_lot::Mutex;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn standard_collectors_produce_a_full_batch() {
        let clock = Clock::simulated(Timestamp::from_secs(100));
        let mut agent = HostAgent::new("h1", clock.clone()).with_standard_collectors();
        let captured: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = captured.clone();
        agent.send_to_fn(move |batch| sink.lock().push(batch.to_string()));

        let mut proc_fs = SimProc::new(4, 1 << 20, 1);
        proc_fs.set_activity(NodeActivity::busy_compute(4));

        // First tick primes rate collectors (memory/load still emit).
        agent.tick(&proc_fs);
        proc_fs.advance(Duration::from_secs(10));
        clock.advance(Duration::from_secs(10));
        let n = agent.tick(&proc_fs);
        assert!(n >= 8, "expected a full batch, got {n}");

        let batches = captured.lock();
        let last = batches.last().unwrap();
        let parsed = lms_lineproto::parse_batch(last);
        assert!(parsed.is_clean());
        assert!(parsed.lines.iter().all(|l| l.hostname() == Some("h1")));
        let measurements: Vec<&str> =
            parsed.lines.iter().map(|l| l.measurement.as_ref()).collect();
        for expect in ["cpu_total", "memory", "network", "disk", "load"] {
            assert!(measurements.contains(&expect), "missing {expect} in {measurements:?}");
        }
    }

    #[test]
    fn http_sink_posts_to_write_endpoint() {
        use lms_http::{Response, Server};
        let received: Arc<Mutex<Vec<(String, String)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = received.clone();
        let server = Server::bind("127.0.0.1:0", 1, move |req| {
            sink.lock().push((
                format!("{}?db={}", req.path, req.query_param("db").unwrap_or("")),
                req.body_str().into_owned(),
            ));
            Response::no_content()
        })
        .unwrap();

        let clock = Clock::simulated(Timestamp::from_secs(100));
        let mut agent = HostAgent::new("h1", clock.clone()).with_standard_collectors();
        agent.send_to(server.addr(), "lms").unwrap();
        let mut proc_fs = SimProc::new(2, 1 << 20, 2);
        agent.tick(&proc_fs);
        proc_fs.advance(Duration::from_secs(5));
        clock.advance(Duration::from_secs(5));
        agent.tick(&proc_fs);

        let got = received.lock();
        assert!(!got.is_empty());
        assert_eq!(got[0].0, "/write?db=lms");
        assert!(got.last().unwrap().1.contains("cpu_total,hostname=h1"));
        let (_, _, errors) = agent.stats();
        assert_eq!(errors, 0);
        server.shutdown();
    }

    #[test]
    fn send_errors_are_counted_not_fatal() {
        let clock = Clock::simulated(Timestamp::from_secs(100));
        let mut agent = HostAgent::new("h1", clock.clone()).with_standard_collectors();
        // Bind a listener and close it to get a dead port.
        let dead = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        agent.send_to(dead, "lms").unwrap();
        let mut proc_fs = SimProc::new(1, 1024, 3);
        agent.tick(&proc_fs);
        proc_fs.advance(Duration::from_secs(5));
        clock.advance(Duration::from_secs(5));
        agent.tick(&proc_fs);
        let (ticks, _, errors) = agent.stats();
        assert_eq!(ticks, 2);
        assert!(errors > 0);
    }
}
