//! Cluster delivery: one [`Forwarder`] per database node behind a seeded
//! rendezvous ring.
//!
//! The single-database stack is the degenerate one-node cluster, so the
//! router always talks to a [`ClusterForwarder`]; with one node there is no
//! per-line hashing and the classic fast path is untouched. With N nodes,
//! every line's **series key** (db + measurement + canonical tags) places
//! it on R owners; each owner gets its own bounded queue, worker pool,
//! circuit breaker and — crucially — its own on-disk spool subdirectory,
//! which is what turns the PR 2 durability machinery into **hinted
//! handoff**: a down node's share spills to *that node's* spool and the
//! drainer replays it, in order, once the node's `/ping` answers again.
//!
//! Writes acknowledge at a configurable quorum W of the R owners; an
//! "accepted" node-batch means queued for delivery or durably spooled.
//! Reads scatter to every node and merge by the storage engine's LWW rule
//! (see `lms-cluster`).

use crate::breaker::BreakerState;
use crate::forward::{ForwardConfig, ForwardStats, Forwarder};
use lms_cluster::{ClusterConfig, HashRing};
use lms_influx::{InfluxClient, QueryResult};
use lms_lineproto::{BatchBuilder, ParsedLine, Point};
use lms_util::hash::fx_hash;
use lms_util::rng::XorShift64;
use lms_util::{Result, WorkerReport};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Per-destination statistics, for the `/stats` `destinations` array.
#[derive(Debug, Clone)]
pub struct DestinationStats {
    /// The node's address.
    pub addr: SocketAddr,
    /// Its forwarder's counters (breaker state, spool depth, replay
    /// counters included).
    pub stats: ForwardStats,
}

struct Node {
    addr: SocketAddr,
    forwarder: Forwarder,
}

/// The router's delivery fabric: per-node forwarders plus the placement
/// ring.
pub struct ClusterForwarder {
    nodes: Vec<Node>,
    ring: HashRing,
    replication: usize,
    write_quorum: usize,
    seed: u64,
    io_timeout: Duration,
}

impl ClusterForwarder {
    /// Starts one forwarder per cluster node from the shared `template`
    /// config. The template's `db_addr` is ignored; its spool directory
    /// (when set) becomes the parent of per-node `node-<i>` spool
    /// subdirectories, so each destination's hinted handoff is isolated
    /// and replays only to its own node. Fails when the cluster config is
    /// invalid or a spool directory is unusable.
    pub fn start(cluster: &ClusterConfig, template: &ForwardConfig) -> Result<Self> {
        cluster.validate()?;
        let multi = cluster.nodes.len() > 1;
        let mut nodes = Vec::with_capacity(cluster.nodes.len());
        for (i, &addr) in cluster.nodes.iter().enumerate() {
            let mut config = template.clone();
            config.db_addr = addr;
            if multi {
                // Decorrelate the per-node worker jitter streams.
                config.seed = XorShift64::new(template.seed ^ (0xA0DE << 16 | i as u64)).next_u64();
                if let Some(spool) = &mut config.spool {
                    spool.dir = spool.dir.join(format!("node-{i}"));
                }
            }
            nodes.push(Node { addr, forwarder: Forwarder::start(config)? });
        }
        Ok(ClusterForwarder {
            nodes,
            ring: cluster.ring(),
            replication: cluster.replication,
            write_quorum: cluster.write_quorum,
            seed: cluster.seed,
            io_timeout: template.io_timeout,
        })
    }

    /// Number of database nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The replication factor R.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// The ring seed (shared with the storage nodes for digest grouping).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Node addresses, in ring order.
    pub fn addrs(&self) -> Vec<SocketAddr> {
        self.nodes.iter().map(|n| n.addr).collect()
    }

    /// A fresh per-db batch accumulator routed over this cluster.
    pub fn batch(&self, db: &str) -> RoutedBatch<'_> {
        RoutedBatch {
            cluster: self,
            db: db.to_string(),
            builders: (0..self.nodes.len()).map(|_| BatchBuilder::new()).collect(),
            owners: Vec::with_capacity(self.replication),
            key: String::with_capacity(64),
        }
    }

    /// Direct single-node enqueue (the one-node fast path).
    pub fn enqueue_single(&self, db: &str, body: String) -> bool {
        debug_assert_eq!(self.nodes.len(), 1);
        self.nodes[0].forwarder.enqueue(db, body)
    }

    /// True when any destination's pipeline is saturated. Conservative:
    /// with an overloaded replica the whole write path sheds rather than
    /// silently dropping that replica's share.
    pub fn saturated(&self) -> bool {
        self.nodes.iter().any(|n| n.forwarder.saturated())
    }

    /// Readiness of every node's supervised workers.
    pub fn workers_ready(&self) -> bool {
        self.nodes.iter().all(|n| n.forwarder.workers_ready())
    }

    /// Health reports across all nodes' supervised threads.
    pub fn worker_reports(&self) -> Vec<WorkerReport> {
        self.nodes.iter().flat_map(|n| n.forwarder.worker_reports()).collect()
    }

    /// Fault injection: panic every node's spool drainer `n` times.
    pub fn inject_drainer_panics(&self, n: u64) {
        for node in &self.nodes {
            node.forwarder.inject_drainer_panics(n);
        }
    }

    /// Aggregate forwarder statistics (sums; breaker reports the worst
    /// state across destinations so the flat `/stats` fields keep their
    /// pre-cluster meaning).
    pub fn stats(&self) -> ForwardStats {
        let mut agg = ForwardStats::default();
        for node in &self.nodes {
            let s = node.forwarder.stats();
            agg.delivered += s.delivered;
            agg.rejected += s.rejected;
            agg.dropped += s.dropped;
            agg.spooled += s.spooled;
            agg.replayed += s.replayed;
            agg.retries += s.retries;
            agg.coalesced += s.coalesced;
            agg.spool_pending += s.spool_pending;
            agg.replay_in_flight += s.replay_in_flight;
            agg.breaker_opens += s.breaker_opens;
            agg.breaker = match (agg.breaker, s.breaker) {
                (BreakerState::Open, _) | (_, BreakerState::Open) => BreakerState::Open,
                (BreakerState::HalfOpen, _) | (_, BreakerState::HalfOpen) => BreakerState::HalfOpen,
                _ => BreakerState::Closed,
            };
        }
        agg
    }

    /// Per-destination statistics, in ring order.
    pub fn destination_stats(&self) -> Vec<DestinationStats> {
        self.nodes
            .iter()
            .map(|n| DestinationStats { addr: n.addr, stats: n.forwarder.stats() })
            .collect()
    }

    /// The breaker state of node `i`.
    pub fn breaker_state(&self, i: usize) -> BreakerState {
        self.nodes[i].forwarder.stats().breaker
    }

    /// One node's `/query`, with the delivery I/O timeout.
    pub fn query_node(&self, i: usize, db: &str, q: &str) -> Result<QueryResult> {
        let mut client = self.client(i)?;
        client.query(db, q)
    }

    /// One node's `/query_range`, with the delivery I/O timeout.
    pub fn query_range_node(
        &self,
        i: usize,
        db: &str,
        q: &str,
        start: i64,
        end: i64,
        step: Option<i64>,
    ) -> Result<QueryResult> {
        let mut client = self.client(i)?;
        client.query_range(db, q, start, end, step)
    }

    /// One node's `/metrics` listing.
    pub fn metrics_node(&self, i: usize, db: &str) -> Result<Vec<String>> {
        let mut client = self.client(i)?;
        client.metrics(db)
    }

    /// One node's `/labels/{measurement}` listing.
    pub fn labels_node(&self, i: usize, db: &str, measurement: &str) -> Result<Vec<String>> {
        let mut client = self.client(i)?;
        client.labels(db, measurement)
    }

    /// One node's `/integrity` digests, computed against this cluster's
    /// ring geometry (node count, replication, seed) so every node groups
    /// series by the same owner sets the router places by.
    pub fn integrity_node(&self, i: usize, db: &str) -> Result<Vec<lms_cluster::BucketDigest>> {
        let mut client = self.client(i)?;
        client.integrity(db, self.nodes.len(), self.replication, self.seed)
    }

    /// One node's `/integrity/export` of `[start, end)` ns — canonical
    /// line protocol for replay through the write path.
    pub fn integrity_export_node(
        &self,
        i: usize,
        db: &str,
        start: i64,
        end: i64,
    ) -> Result<String> {
        let mut client = self.client(i)?;
        client.integrity_export(db, start, end)
    }

    fn client(&self, i: usize) -> Result<InfluxClient> {
        let mut client = InfluxClient::connect(self.nodes[i].addr)?;
        client.set_timeout(self.io_timeout);
        Ok(client)
    }

    /// Flushes every node completely (queue + in-flight + replay + spool).
    /// All nodes share the one deadline.
    pub fn flush(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        self.nodes.iter().all(|n| {
            n.forwarder.flush(deadline.saturating_duration_since(Instant::now()))
        })
    }

    /// Graceful-drain flush: waits for queues, in-flight batches and any
    /// replay already started, but does not block on the spool of an
    /// unreachable (breaker-open) node — its hinted handoff is durable and
    /// replays after recovery or restart.
    pub fn flush_or_hinted(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        self.nodes.iter().all(|n| {
            n.forwarder.flush_or_hinted(deadline.saturating_duration_since(Instant::now()))
        })
    }
}

/// Per-db, per-node batch accumulator: lines are pushed once and copied
/// into the builder of each of their R owners; `submit` enqueues every
/// non-empty node-batch and reports whether the write quorum was met.
pub struct RoutedBatch<'a> {
    cluster: &'a ClusterForwarder,
    db: String,
    builders: Vec<BatchBuilder>,
    owners: Vec<usize>,
    key: String,
}

impl RoutedBatch<'_> {
    fn owners_of_key(&mut self) {
        let hash = fx_hash(&(self.db.as_str(), self.key.as_str()));
        self.cluster.ring.owners_into(hash, self.cluster.replication, &mut self.owners);
    }

    /// Routes a parsed line verbatim (the enrichment-free fast path).
    pub fn push_raw(&mut self, line: &ParsedLine) {
        self.key.clear();
        line.series_key_into(&mut self.key);
        self.owners_of_key();
        for i in 0..self.owners.len() {
            self.builders[self.owners[i]].push_raw(line.raw);
        }
    }

    /// Routes a materialized point (enriched / re-stamped lines, events).
    pub fn push_point(&mut self, point: &Point) {
        self.key.clear();
        self.key.push_str(&point.series_key());
        self.owners_of_key();
        for i in 0..self.owners.len() {
            self.builders[self.owners[i]].push(point);
        }
    }

    /// True when nothing has been routed.
    pub fn is_empty(&self) -> bool {
        self.builders.iter().all(BatchBuilder::is_empty)
    }

    /// Enqueues every non-empty node-batch. Returns true when the write
    /// quorum held: at most `R − W` involved node-batches failed to be
    /// accepted (neither queued nor durably spooled).
    ///
    /// Quorum accounting is at node-batch granularity — a failed
    /// node-batch may hold any subset of the request's lines, so the
    /// conservative rule is: the *request* acks only if the number of
    /// failed node-batches could not have pushed any single line below W
    /// surviving copies.
    pub fn submit(mut self) -> bool {
        let tolerated = self.cluster.replication - self.cluster.write_quorum;
        let mut failed = 0usize;
        for (i, builder) in self.builders.iter_mut().enumerate() {
            if builder.is_empty() {
                continue;
            }
            if !self.cluster.nodes[i].forwarder.enqueue(&self.db, builder.take()) {
                failed += 1;
            }
        }
        failed <= tolerated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lms_influx::{Influx, InfluxServer};
    use lms_lineproto::parse_batch;
    use lms_util::{Clock, Timestamp};

    fn cluster_of(n: usize, replication: usize) -> (Vec<InfluxServer>, Vec<Influx>, ClusterForwarder) {
        let mut servers = Vec::new();
        let mut handles = Vec::new();
        for _ in 0..n {
            let ix = Influx::new(Clock::simulated(Timestamp::from_secs(1000)));
            servers.push(InfluxServer::start("127.0.0.1:0", ix.clone()).unwrap());
            handles.push(ix);
        }
        let cfg = ClusterConfig {
            nodes: servers.iter().map(|s| s.addr()).collect(),
            replication,
            write_quorum: 1,
            seed: 7,
        };
        let template = ForwardConfig {
            io_timeout: Duration::from_secs(2),
            ..ForwardConfig::new(servers[0].addr())
        };
        let cf = ClusterForwarder::start(&cfg, &template).unwrap();
        (servers, handles, cf)
    }

    #[test]
    fn replicated_lines_land_on_r_nodes() {
        let (servers, handles, cf) = cluster_of(3, 2);
        let mut batch = cf.batch("lms");
        let body: String =
            (0..50).map(|i| format!("m,hostname=h{i} v={i} {}\n", (i + 1) * 100)).collect();
        let parsed = parse_batch(&body);
        for line in &parsed.lines {
            batch.push_raw(line);
        }
        assert!(batch.submit());
        assert!(cf.flush(Duration::from_secs(10)));
        let total: usize = handles.iter().map(|h| h.point_count("lms")).sum();
        assert_eq!(total, 100, "every line stored on exactly R=2 nodes");
        for (i, h) in handles.iter().enumerate() {
            assert!(h.point_count("lms") > 0, "node {i} owns no series of 50");
        }
        for s in servers {
            s.shutdown();
        }
    }

    #[test]
    fn quorum_fails_only_when_too_many_node_batches_drop() {
        // No spool, dead nodes, tiny queue: enqueue drops once full.
        let (servers, _handles, _cf) = cluster_of(3, 2);
        let addrs: Vec<_> = servers.iter().map(|s| s.addr()).collect();
        for s in servers {
            s.shutdown();
        }
        let cfg = ClusterConfig { nodes: addrs.clone(), replication: 2, write_quorum: 2, seed: 7 };
        let template = ForwardConfig {
            queue_capacity: 1,
            max_retries: 10,
            workers: 1,
            io_timeout: Duration::from_millis(200),
            ..ForwardConfig::new(addrs[0])
        };
        let cf = ClusterForwarder::start(&cfg, &template).unwrap();
        // Saturate the queues; with W=R=2 a single dropped node-batch must
        // fail the request.
        let mut saw_nack = false;
        for round in 0..200 {
            let mut batch = cf.batch("lms");
            let body: String =
                (0..20).map(|i| format!("m,hostname=h{i} v={i} {}\n", round * 20 + i + 1)).collect();
            for line in &parse_batch(&body).lines {
                batch.push_raw(line);
            }
            if !batch.submit() {
                saw_nack = true;
                break;
            }
        }
        assert!(saw_nack, "over-capacity writes with W=R must eventually nack");
    }

    #[test]
    fn single_node_cluster_behaves_like_plain_forwarder() {
        let (servers, handles, cf) = cluster_of(1, 1);
        assert!(cf.enqueue_single("lms", "m v=1 1\nm v=2 2".into()));
        assert!(cf.flush(Duration::from_secs(5)));
        assert_eq!(handles[0].point_count("lms"), 2);
        assert_eq!(cf.stats().delivered, 1);
        assert_eq!(cf.destination_stats().len(), 1);
        for s in servers {
            s.shutdown();
        }
    }
}
