//! The router's HTTP endpoints.
//!
//! | endpoint | behaviour |
//! |---|---|
//! | `GET /ping` | liveness, like the database it mimics |
//! | `POST /write?db=<db>` | line-protocol batch → enrich → forward (`204`) |
//! | `POST /signal/start?job=<id>&user=<u>&hosts=<h1,h2>&<k>=<v>…` | job-start signal; extra query params become job tags |
//! | `POST /signal/end?job=<id>` | job-end signal |
//! | `GET/POST /query_range?db=&q=&start=&end=&step=` | bounded, bucketed scatter-gather read |
//! | `GET /metrics?db=<db>` | union of the cluster's measurement names |
//! | `GET /labels/<measurement>?db=<db>` | union of a measurement's tag keys |
//! | `GET /jobs` | running jobs with hosts (admin view source) |
//! | `GET /stats` | router counters as JSON |
//! | `GET /health/live` | process liveness (`204` while serving) |
//! | `GET /health/ready` | readiness: supervised workers healthy (`204`/`503`) |
//!
//! Overload behaviour: when the delivery pipeline is saturated, `POST
//! /write` is shed with `503` + `Retry-After` — job signals are *always*
//! admitted (they are tiny, rare, and losing one corrupts enrichment for a
//! job's whole lifetime).

use crate::router::{parse_hosts, Router};
use crate::tagstore::JobSignal;
use lms_http::{Request, Response, Server, ServerConfig};
use lms_util::{Json, Result};
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::Arc;

/// A running router server.
pub struct RouterServer {
    server: Server,
    router: Arc<Router>,
}

impl RouterServer {
    /// Starts serving `router` on `addr` with default admission limits.
    pub fn start<A: ToSocketAddrs>(addr: A, router: Arc<Router>) -> Result<Self> {
        Self::start_with(addr, ServerConfig::default(), router)
    }

    /// Starts serving with explicit connection/body/deadline limits.
    pub fn start_with<A: ToSocketAddrs>(
        addr: A,
        config: ServerConfig,
        router: Arc<Router>,
    ) -> Result<Self> {
        let handler_router = router.clone();
        let server = Server::bind_with(addr, config, move |req| handle(&handler_router, req))?;
        Ok(RouterServer { server, router })
    }

    /// Connections shed at the door with `503` (over connection capacity).
    pub fn shed_connections(&self) -> u64 {
        self.server.shed_connections()
    }

    /// Bound address.
    pub fn addr(&self) -> SocketAddr {
        self.server.addr()
    }

    /// The wrapped router.
    pub fn router(&self) -> &Arc<Router> {
        &self.router
    }

    /// Stops the server.
    pub fn shutdown(self) {
        self.server.shutdown();
    }
}

fn handle(router: &Router, req: Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/ping") | ("HEAD", "/ping") => Response::no_content(),
        ("POST", "/write") => {
            // Priority-aware shedding: bulk metric writes are refused when
            // the delivery pipeline is saturated; signals (below) never are.
            if !router.try_admit_write() {
                return Response::service_unavailable("delivery pipeline saturated", 1);
            }
            let db = req.query_param("db");
            // `tier=1m`/`tier=1h`: an agent-side pre-aggregated batch bound
            // for the database's rollup tier sibling. Rewriting the target
            // name here reuses the whole enrich/forward pipeline — tier
            // rows carry the same tags, so job enrichment applies equally.
            let tier_db = match req.query_param("tier") {
                None => None,
                Some(raw) => match (lms_rollup::Tier::parse(raw), db) {
                    (Some(tier), Some(db)) => Some(lms_rollup::rollup_db_name(db, tier)),
                    (Some(_), None) => return Response::bad_request("`tier` requires `db`"),
                    (None, _) => {
                        return Response::bad_request("bad `tier`: expected 1m or 1h")
                    }
                },
            };
            let outcome = router.handle_write(tier_db.as_deref().or(db), &req.body_str());
            if outcome.accepted == 0 && outcome.rejected > 0 {
                Response::bad_request("all lines malformed")
            } else if !outcome.acked {
                // The write quorum was missed: too many owner nodes could
                // neither queue nor durably spool their share. The data
                // was *not* acknowledged — the collector must retry.
                Response::service_unavailable("write quorum not met", 1)
            } else {
                Response::no_content()
            }
        }
        // Scatter-gather read across the cluster (one node: plain proxy).
        // Dashboards point here exactly like at the database; a partial
        // answer (replica down) is flagged in the JSON and the
        // `X-Lms-Partial` header instead of failing the query.
        ("GET", "/query") | ("POST", "/query") => {
            let Some(q) = req.query_param("q") else {
                return Response::bad_request("missing `q`");
            };
            let db = req.query_param("db").unwrap_or("");
            if db.is_empty() {
                return Response::bad_request("missing `db`");
            }
            query_response(router.handle_query(db, q))
        }
        // Bounded, bucketed read: `start`/`end` (required) and `step`
        // (optional) are nanosecond integers or duration literals; the
        // nodes apply the bounds before answering, and the merge is the
        // same as `/query` — including the exact partial-aggregate path
        // and the `X-Lms-Partial` degradation flag.
        ("GET", "/query_range") | ("POST", "/query_range") => {
            let Some(q) = req.query_param("q") else {
                return Response::bad_request("missing `q`");
            };
            let db = req.query_param("db").unwrap_or("");
            if db.is_empty() {
                return Response::bad_request("missing `db`");
            }
            let (start, end) = match (parse_ns(&req, "start"), parse_ns(&req, "end")) {
                (Ok(Some(s)), Ok(Some(e))) => (s, e),
                (Ok(None), _) | (_, Ok(None)) => {
                    return Response::bad_request("missing `start` or `end`")
                }
                (Err(resp), _) | (_, Err(resp)) => return resp,
            };
            let step = match parse_ns(&req, "step") {
                Ok(step) => step,
                Err(resp) => return resp,
            };
            query_response(router.handle_query_range(db, q, start, end, step))
        }
        ("GET", "/metrics") => {
            let db = req.query_param("db").unwrap_or("");
            if db.is_empty() {
                return Response::bad_request("missing `db`");
            }
            listing_response(router.handle_metrics(db), "metrics")
        }
        ("GET", path) if path.starts_with("/labels/") => {
            let db = req.query_param("db").unwrap_or("");
            if db.is_empty() {
                return Response::bad_request("missing `db`");
            }
            let measurement = &path["/labels/".len()..];
            listing_response(router.handle_labels(db, measurement), "labels")
        }
        ("POST", "/signal/start") => {
            let Some(job) = req.query_param("job") else {
                return Response::bad_request("missing `job`");
            };
            let hosts = parse_hosts(req.query_param("hosts").unwrap_or(""));
            if hosts.is_empty() {
                return Response::bad_request("missing `hosts`");
            }
            let user = req.query_param("user").unwrap_or("unknown").to_string();
            let extra_tags: Vec<(String, String)> = req
                .query
                .iter()
                .filter(|(k, _)| !matches!(k.as_str(), "job" | "user" | "hosts"))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect();
            router.handle_job_start(JobSignal {
                job_id: job.to_string(),
                user,
                hosts,
                extra_tags,
            });
            Response::no_content()
        }
        ("POST", "/signal/end") => {
            let Some(job) = req.query_param("job") else {
                return Response::bad_request("missing `job`");
            };
            router.handle_job_end(job);
            Response::no_content()
        }
        ("GET", "/jobs") => {
            let json = router.with_tags(|tags| {
                Json::arr(tags.running_jobs().into_iter().map(|job| {
                    let hosts = tags
                        .hosts_of(job)
                        .map(|h| Json::arr(h.iter().map(|x| Json::str(x.as_str()))))
                        .unwrap_or(Json::Arr(vec![]));
                    let user = tags
                        .hosts_of(job)
                        .and_then(|h| h.first())
                        .map(|host| {
                            tags.tags_of(host)
                                .iter()
                                .find(|(k, _)| k == "user")
                                .map(|(_, v)| v.clone())
                                .unwrap_or_default()
                        })
                        .unwrap_or_default();
                    Json::obj([
                        ("jobid", Json::str(job)),
                        ("user", Json::str(user)),
                        ("hosts", hosts),
                    ])
                }))
            });
            Response::json(200, json.to_string())
        }
        ("GET", "/stats") => {
            let s = router.stats();
            // Per-destination detail: a stuck replica (breaker open, spool
            // depth growing, replay counters flat) is diagnosable from
            // this one endpoint.
            let destinations = Json::arr(s.destinations.iter().map(|d| {
                Json::obj([
                    ("addr", Json::str(d.addr.to_string())),
                    ("breaker", Json::str(d.stats.breaker.as_str())),
                    ("breaker_opens", Json::from(d.stats.breaker_opens as i64)),
                    ("delivered", Json::from(d.stats.delivered as i64)),
                    ("spooled", Json::from(d.stats.spooled as i64)),
                    ("spool_pending", Json::from(d.stats.spool_pending as i64)),
                    ("replayed", Json::from(d.stats.replayed as i64)),
                    ("replay_in_flight", Json::from(d.stats.replay_in_flight as i64)),
                    ("dropped", Json::from(d.stats.dropped as i64)),
                    ("retries", Json::from(d.stats.retries as i64)),
                ])
            }));
            Response::json(
                200,
                Json::obj([
                    ("lines_in", Json::from(s.lines_in as i64)),
                    ("lines_enriched", Json::from(s.lines_enriched as i64)),
                    ("lines_rejected", Json::from(s.lines_rejected as i64)),
                    ("signals", Json::from(s.signals as i64)),
                    ("writes_shed", Json::from(s.writes_shed as i64)),
                    ("quorum_failures", Json::from(s.quorum_failures as i64)),
                    ("partial_queries", Json::from(s.partial_queries as i64)),
                    ("repair_passes", Json::from(s.repair_passes as i64)),
                    ("repaired_ranges", Json::from(s.repaired_ranges as i64)),
                    ("workers_ready", Json::Bool(router.workers_ready())),
                    ("forward_delivered", Json::from(s.forward.delivered as i64)),
                    ("forward_rejected", Json::from(s.forward.rejected as i64)),
                    ("forward_dropped", Json::from(s.forward.dropped as i64)),
                    ("forward_spooled", Json::from(s.forward.spooled as i64)),
                    ("forward_replayed", Json::from(s.forward.replayed as i64)),
                    ("forward_retries", Json::from(s.forward.retries as i64)),
                    ("spool_pending", Json::from(s.forward.spool_pending as i64)),
                    ("replay_in_flight", Json::from(s.forward.replay_in_flight as i64)),
                    ("breaker", Json::str(s.forward.breaker.as_str())),
                    ("destinations", destinations),
                ])
                .to_string(),
            )
        }
        // Liveness: the process accepts and answers requests.
        ("GET", "/health/live") | ("HEAD", "/health/live") => Response::no_content(),
        // Readiness: every supervised forwarder/drainer thread is healthy
        // (or cleanly stopped). While one is mid-restart or has exhausted
        // its restart budget, report 503 with the per-worker detail.
        ("GET", "/health/ready") | ("HEAD", "/health/ready") => {
            if router.workers_ready() {
                Response::no_content()
            } else {
                let workers = Json::arr(router.worker_reports().into_iter().map(|w| {
                    Json::obj([
                        ("name", Json::str(w.name)),
                        ("health", Json::str(w.health.as_str())),
                        ("restarts", Json::from(w.restarts as i64)),
                    ])
                }));
                Response::json(
                    503,
                    Json::obj([("ready", Json::Bool(false)), ("workers", workers)]).to_string(),
                )
            }
        }
        _ => Response::not_found("unknown endpoint"),
    }
}

/// A scatter-gather query outcome as an HTTP response: partial answers
/// carry the `X-Lms-Partial` header, node-side errors keep their real
/// status, transient cluster failures answer 503 + Retry-After.
fn query_response(result: lms_util::Result<lms_influx::QueryResult>) -> Response {
    match result {
        Ok(result) => {
            let mut resp = Response::json(200, result.to_json().to_string());
            if result.partial {
                resp.headers.push(("x-lms-partial".into(), "true".into()));
            }
            resp
        }
        Err(lms_util::Error::Remote { status, message }) => {
            Response::json(status, Json::obj([("error", Json::str(message))]).to_string())
        }
        Err(e) if e.is_transient() => {
            Response::service_unavailable(&format!("cluster unreachable: {e}"), 1)
        }
        Err(e) => Response::bad_request(&format!("{e}")),
    }
}

/// A name-listing outcome as `{"<key>": [...]}` with the same error
/// mapping as [`query_response`].
fn listing_response(result: lms_util::Result<Vec<String>>, key: &str) -> Response {
    match result {
        Ok(names) => Response::json(
            200,
            Json::obj([(key, Json::arr(names.iter().map(|n| Json::str(n.as_str()))))])
                .to_string(),
        ),
        Err(lms_util::Error::Remote { status, message }) => {
            Response::json(status, Json::obj([("error", Json::str(message))]).to_string())
        }
        Err(e) if e.is_transient() => {
            Response::service_unavailable(&format!("cluster unreachable: {e}"), 1)
        }
        Err(e) => Response::bad_request(&format!("{e}")),
    }
}

/// Parses a nanosecond query parameter: a plain integer or a duration
/// literal (`15m`, `1h`). Absent → `Ok(None)`; malformed → the 400 to
/// answer with.
fn parse_ns(req: &Request, name: &str) -> std::result::Result<Option<i64>, Response> {
    let Some(raw) = req.query_param(name) else {
        return Ok(None);
    };
    if let Ok(ns) = raw.parse::<i64>() {
        return Ok(Some(ns));
    }
    match lms_influx::query::parse_duration_ns(raw) {
        Ok(ns) => Ok(Some(ns)),
        Err(_) => Err(Response::bad_request(&format!("bad `{name}`: {raw:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::RouterConfig;
    use lms_http::HttpClient;
    use lms_influx::{Influx, InfluxServer};
    use lms_util::{Clock, Timestamp};
    use std::time::Duration;

    fn stack() -> (InfluxServer, Influx, RouterServer, HttpClient) {
        let clock = Clock::simulated(Timestamp::from_secs(9000));
        let influx = Influx::new(clock.clone());
        let db = InfluxServer::start("127.0.0.1:0", influx.clone()).unwrap();
        let router =
            Arc::new(Router::new(db.addr(), RouterConfig::default(), clock, None).unwrap());
        let rs = RouterServer::start("127.0.0.1:0", router).unwrap();
        let client = HttpClient::connect(rs.addr()).unwrap();
        (db, influx, rs, client)
    }

    #[test]
    fn full_signal_write_cycle_over_http() {
        let (db, influx, rs, mut c) = stack();
        // Job start with an extra tag.
        let r = c
            .post("/signal/start?job=42&user=alice&hosts=h1,h2&queue=batch", b"")
            .unwrap();
        assert_eq!(r.status, 204);
        // Agent writes through the router like it were InfluxDB.
        let r = c
            .post_text("/write?db=lms", "cpu,hostname=h1 value=0.9 100")
            .unwrap();
        assert_eq!(r.status, 204);
        assert!(rs.router().flush(Duration::from_secs(5)));
        let q = influx
            .query("lms", "SELECT value FROM cpu WHERE jobid = '42' AND queue = 'batch'")
            .unwrap();
        assert_eq!(q.series[0].values.len(), 1);

        // Admin view shows the running job.
        let jobs = Json::parse(&c.get("/jobs").unwrap().body_str()).unwrap();
        assert_eq!(jobs.idx(0).unwrap().get("jobid").unwrap().as_str(), Some("42"));
        assert_eq!(jobs.idx(0).unwrap().get("user").unwrap().as_str(), Some("alice"));

        // End the job; admin view empties.
        assert_eq!(c.post("/signal/end?job=42", b"").unwrap().status, 204);
        let jobs = Json::parse(&c.get("/jobs").unwrap().body_str()).unwrap();
        assert_eq!(jobs.as_arr().unwrap().len(), 0);

        rs.shutdown();
        db.shutdown();
    }

    #[test]
    fn signal_validation() {
        let (db, _ix, rs, mut c) = stack();
        assert_eq!(c.post("/signal/start?user=x&hosts=h1", b"").unwrap().status, 400);
        assert_eq!(c.post("/signal/start?job=1&user=x", b"").unwrap().status, 400);
        assert_eq!(c.post("/signal/end", b"").unwrap().status, 400);
        rs.shutdown();
        db.shutdown();
    }

    #[test]
    fn write_validation_and_stats() {
        let (db, _ix, rs, mut c) = stack();
        assert_eq!(c.post_text("/write", "broken").unwrap().status, 400);
        assert_eq!(c.post_text("/write", "ok v=1 1").unwrap().status, 204);
        let stats = Json::parse(&c.get("/stats").unwrap().body_str()).unwrap();
        assert_eq!(stats.get("lines_in").unwrap().as_i64(), Some(1));
        assert_eq!(stats.get("lines_rejected").unwrap().as_i64(), Some(1));
        assert_eq!(stats.get("forward_spooled").unwrap().as_i64(), Some(0));
        assert_eq!(stats.get("spool_pending").unwrap().as_i64(), Some(0));
        assert_eq!(stats.get("breaker").unwrap().as_str(), Some("closed"));
        rs.shutdown();
        db.shutdown();
    }

    #[test]
    fn saturated_pipeline_sheds_writes_but_not_signals() {
        use std::time::Instant;
        // Dead DB + 1-batch queue + single worker: batches pile up and the
        // admission gate trips.
        let clock = Clock::simulated(Timestamp::from_secs(9000));
        let influx = Influx::new(clock.clone());
        let db = InfluxServer::start("127.0.0.1:0", influx).unwrap();
        let dead = db.addr();
        db.shutdown();
        let config = RouterConfig {
            queue_capacity: 1,
            forward_workers: 1,
            max_retries: 10,
            ..Default::default()
        };
        let router = Arc::new(Router::new(dead, config, clock, None).unwrap());
        let rs = RouterServer::start("127.0.0.1:0", router).unwrap();
        let mut c = HttpClient::connect(rs.addr()).unwrap();

        let deadline = Instant::now() + Duration::from_secs(10);
        let mut shed = None;
        let mut i = 0u32;
        while Instant::now() < deadline && shed.is_none() {
            let r = c.post_text("/write", format!("m v={i} {i}").as_str()).unwrap();
            i += 1;
            if r.status == 503 {
                shed = Some(r);
            }
        }
        let r = shed.expect("a bulk write should have been shed with 503");
        assert!(r.header("retry-after").is_some(), "shed response must carry Retry-After");
        // Signals bypass admission: always 204, even while saturated.
        assert_eq!(c.post("/signal/start?job=1&user=u&hosts=h1", b"").unwrap().status, 204);
        assert_eq!(c.post("/signal/end?job=1", b"").unwrap().status, 204);
        let stats = Json::parse(&c.get("/stats").unwrap().body_str()).unwrap();
        assert!(stats.get("writes_shed").unwrap().as_i64().unwrap() >= 1);
        rs.shutdown();
    }

    #[test]
    fn range_and_listing_endpoints_over_http() {
        let (db, _ix, rs, mut c) = stack();
        let body = "cpu,hostname=h1 value=1 2000000000\ncpu,hostname=h1 value=2 70000000000";
        assert_eq!(c.post_text("/write?db=lms", body).unwrap().status, 204);
        assert!(rs.router().flush(Duration::from_secs(5)));

        // start/end/step accept both raw nanoseconds and duration literals.
        let q = lms_http::url::percent_encode("SELECT sum(value) FROM cpu");
        let r = c
            .get(&format!("/query_range?db=lms&q={q}&start=0&end=2m&step=1m"))
            .unwrap();
        assert_eq!(r.status, 200, "{}", r.body_str());
        let json = Json::parse(&r.body_str()).unwrap();
        let series = json.get("results").unwrap().idx(0).unwrap().get("series").unwrap();
        let values = series.idx(0).unwrap().get("values").unwrap();
        assert_eq!(values.idx(0).unwrap().idx(1).unwrap().as_f64(), Some(1.0));
        assert_eq!(values.idx(1).unwrap().idx(1).unwrap().as_f64(), Some(2.0));

        let r = c.get(&format!("/query_range?db=lms&q={q}&start=0")).unwrap();
        assert_eq!(r.status, 400);
        let r = c.get(&format!("/query_range?db=lms&q={q}&start=0&end=bogus")).unwrap();
        assert_eq!(r.status, 400);

        let r = c.get("/metrics?db=lms").unwrap();
        assert_eq!(r.status, 200);
        let json = Json::parse(&r.body_str()).unwrap();
        assert_eq!(json.get("metrics").unwrap().idx(0).unwrap().as_str(), Some("cpu"));
        let r = c.get("/labels/cpu?db=lms").unwrap();
        assert_eq!(r.status, 200);
        let json = Json::parse(&r.body_str()).unwrap();
        assert_eq!(json.get("labels").unwrap().idx(0).unwrap().as_str(), Some("hostname"));
        assert_eq!(c.get("/metrics?db=ghost").unwrap().status, 404);
        assert_eq!(c.get("/metrics").unwrap().status, 400);
        rs.shutdown();
        db.shutdown();
    }

    #[test]
    fn health_endpoints() {
        let (db, _ix, rs, mut c) = stack();
        assert_eq!(c.get("/health/live").unwrap().status, 204);
        assert_eq!(c.get("/health/ready").unwrap().status, 204);
        rs.shutdown();
        db.shutdown();
    }

    #[test]
    fn ping_and_unknown() {
        let (db, _ix, rs, mut c) = stack();
        assert_eq!(c.get("/ping").unwrap().status, 204);
        assert_eq!(c.get("/nope").unwrap().status, 404);
        rs.shutdown();
        db.shutdown();
    }
}
