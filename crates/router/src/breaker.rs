//! Per-destination circuit breaker for the delivery path.
//!
//! During an extended database outage every forwarder worker would
//! otherwise burn its full retry/backoff budget per batch before giving
//! up. The breaker shares outage knowledge across the pool: after N
//! consecutive transient failures it **opens** and workers route batches
//! straight to the spool; after a cool-down one **half-open probe** is
//! allowed through, and its outcome either closes the breaker or re-opens
//! it for another cool-down.
//!
//! ```text
//! Closed --N consecutive failures--> Open --cool-down elapsed--> HalfOpen
//!   ^                                  ^                            |
//!   +------- probe succeeds -----------+------- probe fails --------+
//! ```

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Breaker tuning.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Consecutive transient failures that open the breaker.
    pub failure_threshold: u32,
    /// Cool-down before a half-open probe is allowed.
    pub open_for: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig { failure_threshold: 5, open_for: Duration::from_secs(1) }
    }
}

/// Observable breaker state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum BreakerState {
    /// Deliveries flow normally.
    #[default]
    Closed,
    /// Destination considered down; deliveries go to the spool.
    Open,
    /// Cool-down elapsed; one probe delivery is in flight.
    HalfOpen,
}

impl BreakerState {
    /// Lower-case name for stats endpoints.
    pub fn as_str(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

#[derive(Debug)]
struct BreakerInner {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Instant,
    probe_in_flight: bool,
    opens: u64,
}

/// A thread-safe circuit breaker shared by all workers delivering to one
/// destination.
#[derive(Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    inner: Mutex<BreakerInner>,
}

impl CircuitBreaker {
    /// Creates a closed breaker.
    pub fn new(cfg: BreakerConfig) -> Self {
        CircuitBreaker {
            cfg,
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at: Instant::now(),
                probe_in_flight: false,
                opens: 0,
            }),
        }
    }

    /// Asks whether a delivery attempt may proceed right now. In the
    /// half-open state only one caller at a time gets `true` (the probe);
    /// the answer commits the caller to reporting the outcome via
    /// [`record_success`](Self::record_success) /
    /// [`record_failure`](Self::record_failure).
    pub fn allow(&self) -> bool {
        let inner = &mut *self.inner.lock().expect("breaker lock");
        match inner.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                if inner.opened_at.elapsed() >= self.cfg.open_for {
                    inner.state = BreakerState::HalfOpen;
                    inner.probe_in_flight = true;
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => {
                if inner.probe_in_flight {
                    false
                } else {
                    inner.probe_in_flight = true;
                    true
                }
            }
        }
    }

    /// Reports a successful delivery: closes the breaker.
    pub fn record_success(&self) {
        let inner = &mut *self.inner.lock().expect("breaker lock");
        inner.state = BreakerState::Closed;
        inner.consecutive_failures = 0;
        inner.probe_in_flight = false;
    }

    /// Reports a transient delivery failure: counts toward opening, or
    /// re-opens immediately when it was the half-open probe.
    pub fn record_failure(&self) {
        let inner = &mut *self.inner.lock().expect("breaker lock");
        match inner.state {
            BreakerState::Closed => {
                inner.consecutive_failures += 1;
                if inner.consecutive_failures >= self.cfg.failure_threshold {
                    inner.state = BreakerState::Open;
                    inner.opened_at = Instant::now();
                    inner.opens += 1;
                }
            }
            BreakerState::HalfOpen => {
                inner.state = BreakerState::Open;
                inner.opened_at = Instant::now();
                inner.probe_in_flight = false;
                inner.opens += 1;
            }
            BreakerState::Open => {}
        }
    }

    /// Current state (resolving an elapsed cool-down as `HalfOpen` is left
    /// to [`allow`](Self::allow); this is the raw stored state).
    pub fn state(&self) -> BreakerState {
        self.inner.lock().expect("breaker lock").state
    }

    /// How many times the breaker has opened.
    pub fn opens(&self) -> u64 {
        self.inner.lock().expect("breaker lock").opens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(threshold: u32, open_ms: u64) -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            failure_threshold: threshold,
            open_for: Duration::from_millis(open_ms),
        })
    }

    #[test]
    fn opens_after_threshold_consecutive_failures() {
        let b = breaker(3, 10_000);
        assert!(b.allow());
        b.record_failure();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow());
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow());
        assert_eq!(b.opens(), 1);
    }

    #[test]
    fn success_resets_failure_streak() {
        let b = breaker(2, 10_000);
        b.record_failure();
        b.record_success();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed, "streak must restart after success");
    }

    #[test]
    fn half_open_allows_exactly_one_probe() {
        let b = breaker(1, 20);
        b.record_failure();
        assert!(!b.allow());
        std::thread::sleep(Duration::from_millis(30));
        assert!(b.allow(), "cool-down elapsed: probe goes through");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.allow(), "second caller denied while probe in flight");
    }

    #[test]
    fn probe_failure_reopens_probe_success_closes() {
        let b = breaker(1, 20);
        b.record_failure();
        std::thread::sleep(Duration::from_millis(30));
        assert!(b.allow());
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens(), 2);
        std::thread::sleep(Duration::from_millis(30));
        assert!(b.allow());
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow());
    }
}
