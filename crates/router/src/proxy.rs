//! The Ganglia pull proxy.
//!
//! "For data that needs to be pulled from other sources, like the
//! XML-interface of Ganglia's monitoring daemon gmond, a pulling proxy can
//! push the data into the router."
//!
//! Real gmond dumps its cluster state as XML to anyone who connects to its
//! TCP port; [`pull_gmond`] does exactly that, [`parse_gmond_xml`] converts
//! the `<HOST>`/`<METRIC>` tree into line-protocol points (measurement
//! `ganglia_<metric>`, `hostname` tag, host report time), and
//! [`GangliaProxy`] periodically pushes the result into a router.
//!
//! The XML subset parser below handles exactly what gmond emits: nested
//! elements with double-quoted attributes, self-closing tags, XML
//! declarations/doctype lines, and `&...;` entities in attribute values.

use crate::router::Router;
use lms_lineproto::Point;
use lms_util::{Error, Result};
use std::io::Read;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A minimal XML tag event.
#[derive(Debug, PartialEq)]
enum XmlEvent<'a> {
    /// `<NAME attr="v" …>` — `self_closing` when `/>`.
    Open { name: &'a str, attrs: Vec<(&'a str, String)>, self_closing: bool },
    /// `</NAME>`
    Close(&'a str),
}

fn decode_entities(s: &str) -> String {
    if !s.contains('&') {
        return s.to_string();
    }
    s.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&apos;", "'")
        .replace("&amp;", "&")
}

/// Iterates tag events over an XML document, skipping text content,
/// comments, processing instructions and doctypes.
fn xml_events(xml: &str) -> Result<Vec<XmlEvent<'_>>> {
    let mut events = Vec::new();
    let bytes = xml.as_bytes();
    let mut i = 0;
    while let Some(lt) = xml[i..].find('<') {
        let start = i + lt;
        let Some(gt) = xml[start..].find('>') else {
            return Err(Error::protocol("xml: unterminated tag"));
        };
        let end = start + gt;
        let inner = &xml[start + 1..end];
        i = end + 1;
        if inner.starts_with('?') || inner.starts_with('!') {
            continue; // declaration, doctype, comment (gmond's are one-liners)
        }
        if let Some(name) = inner.strip_prefix('/') {
            events.push(XmlEvent::Close(name.trim()));
            continue;
        }
        let self_closing = inner.ends_with('/');
        let inner = inner.strip_suffix('/').unwrap_or(inner);
        let name_end = inner.find(char::is_whitespace).unwrap_or(inner.len());
        let name = &inner[..name_end];
        if name.is_empty() {
            return Err(Error::protocol(format!("xml: empty tag name at byte {start}")));
        }
        let mut attrs = Vec::new();
        let mut rest = inner[name_end..].trim_start();
        while !rest.is_empty() {
            let Some(eq) = rest.find('=') else {
                return Err(Error::protocol(format!("xml: bad attribute in <{name}>")));
            };
            let key = rest[..eq].trim();
            let after = rest[eq + 1..].trim_start();
            let Some(q) = after.strip_prefix('"') else {
                return Err(Error::protocol(format!("xml: unquoted attribute in <{name}>")));
            };
            let Some(close) = q.find('"') else {
                return Err(Error::protocol(format!("xml: unterminated attribute in <{name}>")));
            };
            attrs.push((key, decode_entities(&q[..close])));
            rest = q[close + 1..].trim_start();
        }
        let _ = bytes;
        events.push(XmlEvent::Open { name, attrs, self_closing });
    }
    Ok(events)
}

/// Converts a gmond XML dump into line-protocol points.
///
/// Numeric metric types (`float`, `double`, `uint*`, `int*`) become float
/// fields named `value`; string metrics become string fields. Timestamps
/// come from the enclosing `<HOST REPORTED="...">` (seconds → ns).
pub fn parse_gmond_xml(xml: &str) -> Result<Vec<Point>> {
    let mut out = Vec::new();
    let mut current_host: Option<(String, i64)> = None;
    for event in xml_events(xml)? {
        match event {
            XmlEvent::Open { name: "HOST", attrs, .. } => {
                let host = attrs
                    .iter()
                    .find(|(k, _)| *k == "NAME")
                    .map(|(_, v)| v.clone())
                    .ok_or_else(|| Error::protocol("gmond: HOST without NAME"))?;
                let reported: i64 = attrs
                    .iter()
                    .find(|(k, _)| *k == "REPORTED")
                    .and_then(|(_, v)| v.parse().ok())
                    .unwrap_or(0);
                current_host = Some((host, reported.saturating_mul(1_000_000_000)));
            }
            XmlEvent::Close("HOST") => current_host = None,
            XmlEvent::Open { name: "METRIC", attrs, .. } => {
                let Some((host, ts)) = &current_host else {
                    return Err(Error::protocol("gmond: METRIC outside HOST"));
                };
                let get = |key: &str| attrs.iter().find(|(k, _)| *k == key).map(|(_, v)| v.as_str());
                let Some(metric) = get("NAME") else { continue };
                let Some(val) = get("VAL") else { continue };
                let ty = get("TYPE").unwrap_or("string");
                let mut p = Point::new(format!("ganglia_{metric}"));
                p.add_tag("hostname", host.as_str());
                if let Some(units) = get("UNITS").filter(|u| !u.is_empty()) {
                    p.add_tag("units", units);
                }
                let numeric = matches!(
                    ty,
                    "float" | "double" | "uint8" | "uint16" | "uint32" | "uint64" | "int8"
                        | "int16" | "int32" | "int64"
                );
                if numeric {
                    match val.parse::<f64>() {
                        Ok(v) => {
                            p.add_field("value", v);
                        }
                        Err(_) => continue, // skip unparseable numeric metric
                    }
                } else {
                    p.add_field("value", val);
                }
                p.set_timestamp(*ts);
                out.push(p);
            }
            _ => {}
        }
    }
    Ok(out)
}

/// Connects to a gmond-style TCP dump port and reads the full XML document.
pub fn pull_gmond<A: ToSocketAddrs>(addr: A) -> Result<String> {
    let addr: SocketAddr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| Error::config("gmond address resolved to nothing"))?;
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let mut xml = String::new();
    stream.read_to_string(&mut xml)?;
    Ok(xml)
}

/// Periodic puller pushing gmond data into a router.
pub struct GangliaProxy {
    gmond_addr: SocketAddr,
}

impl GangliaProxy {
    /// Creates a proxy for one gmond endpoint.
    pub fn new<A: ToSocketAddrs>(gmond_addr: A) -> Result<Self> {
        let gmond_addr = gmond_addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| Error::config("gmond address resolved to nothing"))?;
        Ok(GangliaProxy { gmond_addr })
    }

    /// Pulls once and pushes the converted batch into the router.
    /// Returns the number of points pushed.
    pub fn pull_once(&self, router: &Router) -> Result<usize> {
        let xml = pull_gmond(self.gmond_addr)?;
        let points = parse_gmond_xml(&xml)?;
        let mut batch = lms_lineproto::BatchBuilder::with_capacity(points.len() * 48);
        for p in &points {
            batch.push(p);
        }
        let n = batch.len();
        router.handle_write(None, batch.as_str());
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"<?xml version="1.0" encoding="ISO-8859-1"?>
<!DOCTYPE GANGLIA_XML [ ]>
<GANGLIA_XML VERSION="3.7.2" SOURCE="gmond">
<CLUSTER NAME="lms-cluster" LOCALTIME="1501804800" OWNER="rrze" URL="">
<HOST NAME="h1" IP="10.0.0.1" REPORTED="1501804800">
<METRIC NAME="load_one" VAL="0.53" TYPE="float" UNITS="" TN="10" TMAX="70" SLOPE="both"/>
<METRIC NAME="mem_free" VAL="1048576" TYPE="uint32" UNITS="KB" TN="20" TMAX="180" SLOPE="both"/>
<METRIC NAME="os_release" VAL="4.4 &quot;LTS&quot;" TYPE="string" UNITS="" TN="30" TMAX="1200" SLOPE="zero"/>
</HOST>
<HOST NAME="h2" IP="10.0.0.2" REPORTED="1501804860">
<METRIC NAME="load_one" VAL="1.97" TYPE="float" UNITS="" TN="12" TMAX="70" SLOPE="both"/>
</HOST>
</CLUSTER>
</GANGLIA_XML>
"#;

    #[test]
    fn parses_gmond_dump() {
        let points = parse_gmond_xml(SAMPLE).unwrap();
        assert_eq!(points.len(), 4);
        let p = &points[0];
        assert_eq!(p.measurement(), "ganglia_load_one");
        assert_eq!(p.tag("hostname"), Some("h1"));
        assert_eq!(p.field("value").unwrap().as_f64(), Some(0.53));
        assert_eq!(p.timestamp(), Some(1_501_804_800_000_000_000));
        // uint metric with units tag
        let mem = &points[1];
        assert_eq!(mem.tag("units"), Some("KB"));
        assert_eq!(mem.field("value").unwrap().as_f64(), Some(1_048_576.0));
        // string metric with entity-decoded value
        let os = &points[2];
        assert_eq!(os.field("value").unwrap().as_text(), Some(r#"4.4 "LTS""#));
        // second host's report time differs
        assert_eq!(points[3].timestamp(), Some(1_501_804_860_000_000_000));
    }

    #[test]
    fn rejects_malformed_xml() {
        assert!(parse_gmond_xml("<HOST NAME=\"h1\"").is_err()); // unterminated
        assert!(parse_gmond_xml("<METRIC NAME=\"x\" VAL=\"1\" TYPE=\"float\"/>").is_err()); // outside HOST
        assert!(parse_gmond_xml("<HOST REPORTED=\"1\"><METRIC/></HOST>").is_err()); // no NAME
        assert!(parse_gmond_xml("<A b=c>").is_err()); // unquoted attr
    }

    #[test]
    fn skips_unparseable_numeric_values() {
        let xml = r#"<HOST NAME="h1" REPORTED="1">
<METRIC NAME="bad" VAL="not-a-number" TYPE="float"/>
<METRIC NAME="good" VAL="2.5" TYPE="float"/>
</HOST>"#;
        let points = parse_gmond_xml(xml).unwrap();
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].measurement(), "ganglia_good");
    }

    #[test]
    fn pull_once_pushes_into_router() {
        use lms_influx::{Influx, InfluxServer};
        use lms_util::{Clock, Timestamp};
        use std::io::Write as _;

        // gmond-style dump server: write XML, close.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let gmond_addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            if let Ok((mut s, _)) = listener.accept() {
                let _ = s.write_all(SAMPLE.as_bytes());
            }
        });

        let clock = Clock::simulated(Timestamp::from_secs(2_000_000_000));
        let influx = Influx::new(clock.clone());
        let db = InfluxServer::start("127.0.0.1:0", influx.clone()).unwrap();
        let router = Router::new(db.addr(), Default::default(), clock, None).unwrap();

        let proxy = GangliaProxy::new(gmond_addr).unwrap();
        let n = proxy.pull_once(&router).unwrap();
        assert_eq!(n, 4);
        assert!(router.flush(Duration::from_secs(5)));
        let r = influx.query("lms", "SELECT value FROM ganglia_load_one").unwrap();
        let total: usize = r.series.iter().map(|s| s.values.len()).sum();
        assert_eq!(total, 2);
        t.join().unwrap();
        db.shutdown();
    }
}
