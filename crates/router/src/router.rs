//! The enrichment core: parse → tag → forward → duplicate → publish.

use crate::breaker::{BreakerConfig, BreakerState};
use crate::delivery::{ClusterForwarder, DestinationStats};
use crate::forward::{ForwardConfig, ForwardStats};
use crate::tagstore::{JobSignal, TagStore};
use lms_cluster::{merge_results, partial_plan, ClusterConfig, PartialPlan};
use lms_influx::QueryResult;
use lms_lineproto::{parse_batch, BatchBuilder, Point};
use lms_mq::Publisher;
use lms_spool::SpoolConfig;
use lms_util::{Clock, Error, FxHashMap, Result};
use parking_lot::RwLock;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// The global database all metrics land in.
    pub global_db: String,
    /// Duplicate metrics of tagged hosts into `user_<name>` databases
    /// (paper: "the router duplicates the metrics and store them in another
    /// storage location, e.g., a per-user database").
    pub per_user: bool,
    /// Forwarding queue capacity (batches).
    pub queue_capacity: usize,
    /// Delivery attempts per batch.
    pub max_retries: u32,
    /// Forwarder worker threads draining the queue concurrently
    /// (default: one per available core, at least two).
    pub forward_workers: usize,
    /// Durable spill-to-disk spool for the delivery path. `None` (the
    /// default) keeps the historical drop-and-count behaviour.
    pub spool: Option<SpoolConfig>,
    /// Circuit-breaker tuning for the database destination.
    pub breaker: BreakerConfig,
    /// Forwarder coalescing cap in body bytes: queued batches merge into
    /// one delivery (and one WAL group commit downstream) up to this
    /// size. `0` disables coalescing.
    pub coalesce_bytes: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            global_db: "lms".into(),
            per_user: false,
            queue_capacity: 1024,
            max_retries: 3,
            forward_workers: crate::forward::default_workers(),
            spool: None,
            breaker: BreakerConfig::default(),
            coalesce_bytes: 256 * 1024,
        }
    }
}

/// Router counters.
#[derive(Debug, Clone, Default)]
pub struct RouterStats {
    /// Lines accepted.
    pub lines_in: u64,
    /// Lines that received job tags.
    pub lines_enriched: u64,
    /// Malformed lines rejected.
    pub lines_rejected: u64,
    /// Job start/end signals processed.
    pub signals: u64,
    /// Bulk write requests shed because the delivery pipeline was
    /// saturated (job signals and events are never shed).
    pub writes_shed: u64,
    /// Write requests that missed the cluster write quorum (answered 503).
    pub quorum_failures: u64,
    /// Scatter-gather queries answered with a partial result.
    pub partial_queries: u64,
    /// Anti-entropy repair passes completed.
    pub repair_passes: u64,
    /// Divergent ranges re-fetched from a healthy replica and re-written
    /// through the write path.
    pub repaired_ranges: u64,
    /// Aggregate forwarder statistics (summed across destinations; the
    /// breaker field reports the worst state).
    pub forward: ForwardStats,
    /// Per-destination forwarder statistics, in ring order. One entry for
    /// the classic single-database stack.
    pub destinations: Vec<DestinationStats>,
}

/// Outcome of one `/write` request.
#[derive(Debug, Clone, Copy)]
pub struct WriteOutcome {
    /// Lines parsed and routed.
    pub accepted: usize,
    /// Malformed lines skipped.
    pub rejected: usize,
    /// True when every routed node-batch met the write quorum — the
    /// request may be acknowledged with 204. False means too many owners
    /// could neither queue nor spool their share; the HTTP layer answers
    /// 503 so the collector retries.
    pub acked: bool,
}

/// The metrics router.
pub struct Router {
    tags: RwLock<TagStore>,
    delivery: ClusterForwarder,
    publisher: Option<Publisher>,
    config: RouterConfig,
    clock: Clock,
    lines_in: AtomicU64,
    lines_enriched: AtomicU64,
    lines_rejected: AtomicU64,
    signals: AtomicU64,
    writes_shed: AtomicU64,
    quorum_failures: AtomicU64,
    partial_queries: AtomicU64,
    repair_passes: AtomicU64,
    repaired_ranges: AtomicU64,
}

impl Router {
    /// Creates a router forwarding to the single database server at
    /// `db_addr` — the degenerate one-node cluster. `publisher` enables
    /// the stream-analysis feed. Fails only when a configured spool
    /// directory is unusable.
    pub fn new(
        db_addr: SocketAddr,
        config: RouterConfig,
        clock: Clock,
        publisher: Option<Publisher>,
    ) -> Result<Self> {
        Self::new_cluster(ClusterConfig::single(db_addr), config, clock, publisher)
    }

    /// Creates a router spreading series over `cluster.nodes` with R-way
    /// replication and hinted handoff (per-node spool subdirectories when
    /// a spool is configured). Fails on invalid quorum arithmetic or an
    /// unusable spool directory.
    pub fn new_cluster(
        cluster: ClusterConfig,
        config: RouterConfig,
        clock: Clock,
        publisher: Option<Publisher>,
    ) -> Result<Self> {
        cluster.validate()?;
        let template = ForwardConfig {
            queue_capacity: config.queue_capacity,
            max_retries: config.max_retries,
            workers: config.forward_workers,
            spool: config.spool.clone(),
            breaker: config.breaker,
            coalesce_bytes: config.coalesce_bytes,
            ..ForwardConfig::new(cluster.nodes[0])
        };
        let delivery = ClusterForwarder::start(&cluster, &template)?;
        Ok(Router {
            tags: RwLock::new(TagStore::new()),
            delivery,
            publisher,
            config,
            clock,
            lines_in: AtomicU64::new(0),
            lines_enriched: AtomicU64::new(0),
            lines_rejected: AtomicU64::new(0),
            signals: AtomicU64::new(0),
            writes_shed: AtomicU64::new(0),
            quorum_failures: AtomicU64::new(0),
            partial_queries: AtomicU64::new(0),
            repair_passes: AtomicU64::new(0),
            repaired_ranges: AtomicU64::new(0),
        })
    }

    /// The configuration.
    pub fn config(&self) -> &RouterConfig {
        &self.config
    }

    /// Read access to the tag store (admin views).
    pub fn with_tags<R>(&self, f: impl FnOnce(&TagStore) -> R) -> R {
        f(&self.tags.read())
    }

    /// Priority-aware admission for **bulk** metric writes: returns false
    /// (and counts the shed) when the delivery pipeline is saturated, so
    /// the HTTP layer can answer 503 + Retry-After instead of piling more
    /// work onto an overloaded queue. Job signals and annotation events
    /// never go through this gate — they are always admitted.
    pub fn try_admit_write(&self) -> bool {
        if self.delivery.saturated() {
            self.writes_shed.fetch_add(1, Ordering::Relaxed);
            false
        } else {
            true
        }
    }

    /// Readiness of the supervised forwarder/drainer threads (all nodes).
    pub fn workers_ready(&self) -> bool {
        self.delivery.workers_ready()
    }

    /// Health reports of the supervised forwarder/drainer threads.
    pub fn worker_reports(&self) -> Vec<lms_util::WorkerReport> {
        self.delivery.worker_reports()
    }

    /// Fault injection: panic the spool drainer(s) on the next `n`
    /// iterations.
    pub fn inject_drainer_panics(&self, n: u64) {
        self.delivery.inject_drainer_panics(n);
    }

    /// The delivery fabric (cluster tests and admin tooling).
    pub fn delivery(&self) -> &ClusterForwarder {
        &self.delivery
    }

    /// Handles an incoming line-protocol batch (the `/write` endpoint).
    ///
    /// Each line is enriched with its host's job tags, stamped with the
    /// router clock when it carries no timestamp, routed to its series'
    /// owner node(s), duplicated per user when enabled, and published on
    /// the queue. Malformed lines are skipped and counted.
    pub fn handle_write(&self, db: Option<&str>, body: &str) -> WriteOutcome {
        let parsed = parse_batch(body);
        let rejected = parsed.errors.len();
        self.lines_rejected.fetch_add(rejected as u64, Ordering::Relaxed);
        if parsed.lines.is_empty() {
            return WriteOutcome { accepted: 0, rejected, acked: true };
        }
        self.lines_in.fetch_add(parsed.lines.len() as u64, Ordering::Relaxed);

        let default_ts = self.clock.now().nanos();
        let global_db = db.unwrap_or(&self.config.global_db).to_string();
        let mut accepted = 0usize;
        let mut global = self.sink(&global_db, body.len() + body.len() / 4);
        let mut per_user: FxHashMap<String, Sink<'_>> = FxHashMap::default();
        // Per-user duplication follows the tier: rollup rows bound for
        // `X__rollup_1m` land in `user_<name>__rollup_1m`, keeping each
        // user slice's raw and tier databases as clean siblings.
        let user_tier = lms_rollup::base_db_of(&global_db).map(|(_, tier)| tier);
        let mut enriched_count = 0u64;

        {
            let tags = self.tags.read();
            for line in &parsed.lines {
                // Pass-through fast path: a line that already carries a
                // timestamp, whose host has no job entry, and that per-user
                // duplication would not touch is forwarded byte-for-byte —
                // no Point materialization, no re-serialization. (In
                // cluster mode the series key is still hashed for
                // placement, but the raw bytes are never re-serialized.)
                if line.timestamp.is_some()
                    && !self.config.per_user
                    && line.hostname().is_none_or(|host| tags.tags_of(host).is_empty())
                {
                    global.push_raw(line);
                    accepted += 1;
                    if let Some(publisher) = &self.publisher {
                        publisher.publish(
                            &format!("metrics.{}", line.measurement),
                            line.raw.as_bytes(),
                        );
                    }
                    continue;
                }
                let mut point: Point = line.to_point();
                if point.timestamp().is_none() {
                    point.set_timestamp(default_ts);
                }
                let mut user: Option<String> = None;
                if let Some(host) = line.hostname() {
                    let job_tags = tags.tags_of(host);
                    if !job_tags.is_empty() {
                        enriched_count += 1;
                        for (k, v) in job_tags {
                            point.add_tag(k.as_str(), v.as_str());
                            if k == "user" {
                                user = Some(v.clone());
                            }
                        }
                    }
                }
                global.push_point(&point);
                accepted += 1;
                if self.config.per_user {
                    if let Some(user) = user {
                        let user_db = match user_tier {
                            Some(tier) => {
                                lms_rollup::rollup_db_name(&format!("user_{user}"), tier)
                            }
                            None => format!("user_{user}"),
                        };
                        per_user
                            .entry(user_db)
                            .or_insert_with_key(|user_db| self.sink(user_db, 256))
                            .push_point(&point);
                    }
                }
                if let Some(publisher) = &self.publisher {
                    publisher.publish(
                        &format!("metrics.{}", point.measurement()),
                        point.to_line().as_bytes(),
                    );
                }
            }
        }
        self.lines_enriched.fetch_add(enriched_count, Ordering::Relaxed);

        let mut acked = global.submit(&self.delivery);
        for (_, sink) in per_user {
            acked &= sink.submit(&self.delivery);
        }
        if !acked {
            self.quorum_failures.fetch_add(1, Ordering::Relaxed);
        }
        WriteOutcome { accepted, rejected, acked }
    }

    /// A batch sink for `db`: a plain builder on the single-node stack, a
    /// ring-routed per-node accumulator on a cluster.
    fn sink(&self, db: &str, capacity: usize) -> Sink<'_> {
        if self.delivery.node_count() == 1 {
            Sink::Single { db: db.to_string(), batch: BatchBuilder::with_capacity(capacity) }
        } else {
            Sink::Routed(self.delivery.batch(db))
        }
    }

    /// Scatter-gather read over the cluster (the `/query` endpoint).
    ///
    /// Fans the query to every node and merges the answers. Decomposable
    /// aggregates (`mean`/`sum`/`min`/`max`/`count` with default FILL) are
    /// rewritten into per-node `count`/`sum`/`min`/`max` partials grouped
    /// by the full tag set and recombined algebraically
    /// ([`lms_cluster::partial`]) — exact at any replication factor R ≤ N.
    /// Everything else merges with the storage engine's LWW rule
    /// (replicated series deduplicate; divergent replicas resolve
    /// deterministically). Unreachable nodes degrade the result to
    /// `partial` instead of failing it: a breaker-open node is skipped
    /// outright, a transient error is noted and skipped, and only genuine
    /// query errors (or *zero* reachable nodes) surface as errors. A node
    /// that does not know the database counts as an empty answer — with
    /// R < N, databases exist only on the nodes that own some of their
    /// series.
    pub fn handle_query(&self, db: &str, q: &str) -> Result<QueryResult> {
        let plan = self.plan_for(q);
        let sent = plan.as_ref().map_or(q, PartialPlan::partial_query);
        let (parts, partial) = self.scatter(db, |i| self.delivery.query_node(i, db, sent))?;
        Ok(self.merge(plan, parts, partial))
    }

    /// Scatter-gather range read over the cluster (the `/query_range`
    /// endpoint): each node bounds the query to `[start, end)` ns and
    /// buckets to `step` ns windows before answering; the merge is the
    /// same as [`handle_query`](Self::handle_query), including the exact
    /// partial-aggregate path.
    pub fn handle_query_range(
        &self,
        db: &str,
        q: &str,
        start: i64,
        end: i64,
        step: Option<i64>,
    ) -> Result<QueryResult> {
        let plan = self.plan_for(q);
        let sent = plan.as_ref().map_or(q, PartialPlan::partial_query);
        let (parts, partial) = self
            .scatter(db, |i| self.delivery.query_range_node(i, db, sent, start, end, step))?;
        Ok(self.merge(plan, parts, partial))
    }

    /// Cluster-wide measurement listing (the `/metrics` endpoint): the
    /// union of every reachable node's measurements, sorted.
    pub fn handle_metrics(&self, db: &str) -> Result<Vec<String>> {
        let (parts, _) = self.scatter(db, |i| self.delivery.metrics_node(i, db))?;
        Ok(union_sorted(parts))
    }

    /// Cluster-wide tag-key listing for one measurement (the
    /// `/labels/{measurement}` endpoint).
    pub fn handle_labels(&self, db: &str, measurement: &str) -> Result<Vec<String>> {
        let (parts, _) = self.scatter(db, |i| self.delivery.labels_node(i, db, measurement))?;
        Ok(union_sorted(parts))
    }

    /// The partial-aggregate plan for `q`, when the cluster has more than
    /// one node and the query decomposes. On a single node the node's own
    /// answer is already exact — no rewrite.
    fn plan_for(&self, q: &str) -> Option<PartialPlan> {
        if self.delivery.node_count() > 1 {
            partial_plan(q)
        } else {
            None
        }
    }

    /// The shared scatter skeleton: one request per node via `call`,
    /// breaker-open and transient nodes degrade to a partial answer, 404s
    /// count as empty answers, and zero reachable answers surface as the
    /// single-node stack's error.
    fn scatter<T>(&self, db: &str, call: impl Fn(usize) -> Result<T>) -> Result<(Vec<T>, bool)> {
        let nodes = self.delivery.node_count();
        let mut parts = Vec::with_capacity(nodes);
        let mut partial = false;
        let mut missing_db = 0usize;
        let mut last_transient: Option<Error> = None;
        for i in 0..nodes {
            if nodes > 1 && self.delivery.breaker_state(i) == BreakerState::Open {
                partial = true;
                continue;
            }
            match call(i) {
                Ok(r) => parts.push(r),
                Err(Error::Remote { status: 404, .. }) => missing_db += 1,
                Err(e) if e.is_transient() => {
                    partial = true;
                    last_transient = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        if parts.is_empty() {
            if missing_db > 0 {
                // Every reachable node answered 404: surface it as the
                // single-node stack would.
                return Err(Error::Remote {
                    status: 404,
                    message: format!("database {db:?} not found"),
                });
            }
            return Err(last_transient
                .unwrap_or_else(|| Error::unavailable("no cluster node reachable")));
        }
        Ok((parts, partial))
    }

    /// Recombines per-node answers — algebraically through `plan` when the
    /// query decomposed, by the LWW rule otherwise — and counts partials.
    fn merge(&self, plan: Option<PartialPlan>, parts: Vec<QueryResult>, partial: bool) -> QueryResult {
        let mut merged = match plan {
            Some(plan) => plan.merge(parts),
            None => merge_results(parts),
        };
        merged.partial |= partial;
        if merged.partial {
            self.partial_queries.fetch_add(1, Ordering::Relaxed);
        }
        merged
    }

    /// Handles a job-start signal: updates the tag store, records an
    /// annotation event per host in the database, publishes on the queue.
    pub fn handle_job_start(&self, signal: JobSignal) {
        self.signals.fetch_add(1, Ordering::Relaxed);
        self.tags.write().job_start(&signal);
        self.record_signal_event("job_start", &signal.job_id, &signal.user, &signal.hosts);
    }

    /// Handles a job-end signal.
    pub fn handle_job_end(&self, job_id: &str) {
        self.signals.fetch_add(1, Ordering::Relaxed);
        let info = {
            let mut tags = self.tags.write();
            let hosts = tags.hosts_of(job_id).map(<[String]>::to_vec);
            let user = hosts.as_ref().and_then(|h| {
                h.first().and_then(|host| {
                    tags.tags_of(host)
                        .iter()
                        .find(|(k, _)| k == "user")
                        .map(|(_, v)| v.clone())
                })
            });
            tags.job_end(job_id);
            hosts.map(|h| (h, user.unwrap_or_default()))
        };
        if let Some((hosts, user)) = info {
            self.record_signal_event("job_end", job_id, &user, &hosts);
        }
    }

    /// Writes the annotation events for a signal and publishes it.
    fn record_signal_event(&self, kind: &str, job_id: &str, user: &str, hosts: &[String]) {
        let ts = self.clock.now().nanos();
        let mut batch = self.sink(&self.config.global_db, 256);
        for host in hosts {
            let mut ev = Point::new("events");
            ev.add_tag("hostname", host.as_str())
                .add_tag("jobid", job_id)
                .add_tag("kind", kind)
                .add_field("text", format!("{kind} job {job_id} (user {user})"))
                .set_timestamp(ts);
            batch.push_point(&ev);
        }
        if let Some(publisher) = &self.publisher {
            publisher.publish(
                &format!("signal.{kind}"),
                format!("jobid={job_id} user={user} hosts={}", hosts.join(",")).as_bytes(),
            );
        }
        batch.submit(&self.delivery);
    }

    /// One anti-entropy repair pass over `dbs` (see [`crate::repair`]):
    /// per database, diff every node's `/integrity` digests and replay
    /// each divergent hour from its elected source through the normal
    /// replicated write path. A no-op below two nodes or two replicas.
    pub fn run_repair_pass(&self, dbs: &[&str]) -> crate::repair::RepairOutcome {
        let mut total = crate::repair::RepairOutcome::default();
        for db in dbs {
            total.add(crate::repair::repair_database(&self.delivery, db));
        }
        self.repair_passes.fetch_add(1, Ordering::Relaxed);
        self.repaired_ranges.fetch_add(total.repaired_ranges, Ordering::Relaxed);
        total
    }

    /// Current statistics.
    pub fn stats(&self) -> RouterStats {
        RouterStats {
            lines_in: self.lines_in.load(Ordering::Relaxed),
            lines_enriched: self.lines_enriched.load(Ordering::Relaxed),
            lines_rejected: self.lines_rejected.load(Ordering::Relaxed),
            signals: self.signals.load(Ordering::Relaxed),
            writes_shed: self.writes_shed.load(Ordering::Relaxed),
            quorum_failures: self.quorum_failures.load(Ordering::Relaxed),
            partial_queries: self.partial_queries.load(Ordering::Relaxed),
            repair_passes: self.repair_passes.load(Ordering::Relaxed),
            repaired_ranges: self.repaired_ranges.load(Ordering::Relaxed),
            forward: self.delivery.stats(),
            destinations: self.delivery.destination_stats(),
        }
    }

    /// Waits for every destination's forwarding queue (and spool) to drain
    /// completely (tests, shutdown of a healthy stack).
    pub fn flush(&self, timeout: std::time::Duration) -> bool {
        self.delivery.flush(timeout)
    }

    /// Graceful-drain flush: like [`flush`](Self::flush), but does not
    /// block on the hinted-handoff spool of an unreachable node — those
    /// hints are durable and replay after the node (or router) returns.
    /// In-flight replays are always waited for.
    pub fn flush_or_hinted(&self, timeout: std::time::Duration) -> bool {
        self.delivery.flush_or_hinted(timeout)
    }
}

/// A per-db batch under construction: plain on one node, ring-routed on a
/// cluster.
enum Sink<'a> {
    Single { db: String, batch: BatchBuilder },
    Routed(crate::delivery::RoutedBatch<'a>),
}

impl Sink<'_> {
    fn push_raw(&mut self, line: &lms_lineproto::ParsedLine<'_>) {
        match self {
            Sink::Single { batch, .. } => batch.push_raw(line.raw),
            Sink::Routed(b) => b.push_raw(line),
        }
    }

    fn push_point(&mut self, point: &Point) {
        match self {
            Sink::Single { batch, .. } => batch.push(point),
            Sink::Routed(b) => b.push_point(point),
        }
    }

    /// Enqueues the batch(es); true when the write quorum held (single
    /// node: the batch was queued or spooled).
    fn submit(self, delivery: &ClusterForwarder) -> bool {
        match self {
            Sink::Single { db, mut batch } => delivery.enqueue_single(&db, batch.take()),
            Sink::Routed(b) => b.submit(),
        }
    }
}

/// Union of per-node name listings, sorted and deduplicated.
fn union_sorted(parts: Vec<Vec<String>>) -> Vec<String> {
    let mut all: Vec<String> = parts.into_iter().flatten().collect();
    all.sort_unstable();
    all.dedup();
    all
}

/// Parses a `hosts` signal parameter: comma-separated hostnames.
pub fn parse_hosts(s: &str) -> Vec<String> {
    s.split(',').map(str::trim).filter(|h| !h.is_empty()).map(String::from).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lms_influx::{Influx, InfluxServer};
    use lms_util::Timestamp;
    use std::time::Duration;

    fn setup(config: RouterConfig) -> (InfluxServer, Influx, Router) {
        let clock = Clock::simulated(Timestamp::from_secs(5000));
        let influx = Influx::new(clock.clone());
        let server = InfluxServer::start("127.0.0.1:0", influx.clone()).unwrap();
        let router = Router::new(server.addr(), config, clock, None).unwrap();
        (server, influx, router)
    }

    fn signal(job: &str, user: &str, hosts: &[&str]) -> JobSignal {
        JobSignal {
            job_id: job.into(),
            user: user.into(),
            hosts: hosts.iter().map(|h| h.to_string()).collect(),
            extra_tags: vec![],
        }
    }

    #[test]
    fn enriches_metrics_of_job_hosts() {
        let (server, influx, router) = setup(RouterConfig::default());
        router.handle_job_start(signal("42", "alice", &["h1"]));
        router.handle_write(None, "cpu,hostname=h1 value=1 100\ncpu,hostname=h2 value=2 100");
        assert!(router.flush(Duration::from_secs(5)));

        let r = influx.query("lms", "SELECT value FROM cpu WHERE jobid = '42'").unwrap();
        assert_eq!(r.series[0].values.len(), 1);
        let r = influx.query("lms", "SELECT value FROM cpu WHERE user = 'alice'").unwrap();
        assert_eq!(r.series[0].values.len(), 1);
        // h2 has no job: stored untagged.
        let r = influx.query("lms", "SELECT value FROM cpu").unwrap();
        let total: usize = r.series.iter().map(|s| s.values.len()).sum();
        assert_eq!(total, 2);

        let stats = router.stats();
        assert_eq!(stats.lines_in, 2);
        assert_eq!(stats.lines_enriched, 1);
        server.shutdown();
    }

    #[test]
    fn job_end_stops_enrichment() {
        let (server, influx, router) = setup(RouterConfig::default());
        router.handle_job_start(signal("42", "alice", &["h1"]));
        router.handle_write(None, "m,hostname=h1 v=1 100");
        router.handle_job_end("42");
        router.handle_write(None, "m,hostname=h1 v=2 200");
        assert!(router.flush(Duration::from_secs(5)));
        let r = influx.query("lms", "SELECT v FROM m WHERE jobid = '42'").unwrap();
        assert_eq!(r.series[0].values.len(), 1);
        server.shutdown();
    }

    #[test]
    fn signals_become_annotation_events() {
        let (server, influx, router) = setup(RouterConfig::default());
        router.handle_job_start(signal("7", "bob", &["h1", "h2"]));
        router.handle_job_end("7");
        assert!(router.flush(Duration::from_secs(5)));
        let r = influx
            .query("lms", "SELECT text FROM events WHERE jobid = '7'")
            .unwrap();
        let total: usize = r.series.iter().map(|s| s.values.len()).sum();
        assert_eq!(total, 4); // start+end on two hosts
        let r = influx
            .query("lms", "SELECT text FROM events WHERE kind = 'job_start' AND hostname = 'h1'")
            .unwrap();
        assert!(r.series[0].values[0][1].as_str().unwrap().contains("job 7"));
        server.shutdown();
    }

    #[test]
    fn per_user_duplication() {
        let config = RouterConfig { per_user: true, ..Default::default() };
        let (server, influx, router) = setup(config);
        router.handle_job_start(signal("42", "alice", &["h1"]));
        router.handle_write(None, "m,hostname=h1 v=1 100\nm,hostname=h9 v=9 100");
        assert!(router.flush(Duration::from_secs(5)));
        // Global DB holds both; user DB holds only alice's.
        assert_eq!(influx.point_count("lms"), 2 + 1 /* start event */);
        assert_eq!(influx.point_count("user_alice"), 1);
        let r = influx.query("user_alice", "SELECT v FROM m").unwrap();
        assert_eq!(r.series[0].values[0][1].as_f64(), Some(1.0));
        server.shutdown();
    }

    #[test]
    fn passthrough_forwards_untagged_timestamped_lines_verbatim() {
        let (server, influx, router) = setup(RouterConfig::default());
        // h5 has no job entry and the line carries a timestamp: the router
        // forwards the original bytes without building a Point.
        let o = router.handle_write(None, "cpu,hostname=h5 value=0.5 12345");
        assert_eq!((o.accepted, o.rejected), (1, 0));
        assert!(o.acked);
        assert!(router.flush(Duration::from_secs(5)));
        let r = influx.query("lms", "SELECT value FROM cpu").unwrap();
        assert_eq!(r.series[0].values[0][0].as_i64(), Some(12345));
        assert_eq!(r.series[0].values[0][1].as_f64(), Some(0.5));
        assert_eq!(router.stats().lines_enriched, 0);
        server.shutdown();
    }

    #[test]
    fn untimestamped_lines_get_router_time() {
        let (server, influx, router) = setup(RouterConfig::default());
        router.handle_write(None, "m,hostname=h1 v=1");
        assert!(router.flush(Duration::from_secs(5)));
        let r = influx.query("lms", "SELECT v FROM m").unwrap();
        assert_eq!(r.series[0].values[0][0].as_i64(), Some(Timestamp::from_secs(5000).nanos()));
        server.shutdown();
    }

    #[test]
    fn malformed_lines_counted_but_batch_continues() {
        let (server, influx, router) = setup(RouterConfig::default());
        let o = router.handle_write(None, "m,hostname=h1 v=1 1\nbroken\nm,hostname=h1 v=2 2");
        assert_eq!((o.accepted, o.rejected), (2, 1));
        assert!(router.flush(Duration::from_secs(5)));
        assert_eq!(influx.point_count("lms"), 2);
        assert_eq!(router.stats().lines_rejected, 1);
        server.shutdown();
    }

    #[test]
    fn scatter_gather_treats_missing_db_as_empty_answer() {
        // R = 1 over 2 nodes: each series (and so each per-user database)
        // exists only on its owner. A whole-db query must merge the
        // owners' answers, treating the other nodes' 404s as empty — and
        // a database on *no* node must still surface the 404.
        let clock = Clock::simulated(Timestamp::from_secs(5000));
        let mut servers = Vec::new();
        let mut handles = Vec::new();
        for _ in 0..2 {
            let ix = Influx::new(clock.clone());
            servers.push(InfluxServer::start("127.0.0.1:0", ix.clone()).unwrap());
            handles.push(ix);
        }
        let cluster = ClusterConfig {
            nodes: servers.iter().map(|s| s.addr()).collect(),
            replication: 1,
            write_quorum: 1,
            seed: 7,
        };
        let router =
            Router::new_cluster(cluster, RouterConfig::default(), clock, None).unwrap();
        const N: usize = 32;
        let body: String =
            (1..=N).map(|i| format!("m,hostname=g{} v={i} {i}\n", i % 8)).collect();
        let o = router.handle_write(None, &body);
        assert!(o.acked);
        assert_eq!((o.accepted, o.rejected), (N, 0));
        assert!(router.flush(Duration::from_secs(10)));
        // Both nodes own a share, so each sees the other's 404-free gap.
        assert!(handles.iter().all(|h| h.point_count("lms") > 0));

        let r = router.handle_query("lms", "SELECT v FROM m").unwrap();
        assert!(!r.partial);
        let rows: usize = r.series.iter().map(|s| s.values.len()).sum();
        assert_eq!(rows, N, "union of both owners, nothing lost or duplicated");

        match router.handle_query("nope", "SELECT v FROM m") {
            Err(Error::Remote { status: 404, .. }) => {}
            other => panic!("expected 404 for a database on no node, got {other:?}"),
        }
        for s in servers {
            s.shutdown();
        }
    }

    /// An N-node cluster with R-way replication, pre-loaded with 32 points
    /// over 8 series: `m,hostname=g{i%8} v=i i` for i in 1..=32.
    fn loaded_cluster(n: usize, replication: usize) -> (Vec<InfluxServer>, Router) {
        let clock = Clock::simulated(Timestamp::from_secs(5000));
        let servers: Vec<InfluxServer> = (0..n)
            .map(|_| InfluxServer::start("127.0.0.1:0", Influx::new(clock.clone())).unwrap())
            .collect();
        let cluster = ClusterConfig {
            nodes: servers.iter().map(|s| s.addr()).collect(),
            replication,
            write_quorum: 1,
            seed: 7,
        };
        let router =
            Router::new_cluster(cluster, RouterConfig::default(), clock, None).unwrap();
        let body: String =
            (1..=32).map(|i| format!("m,hostname=g{} v={i} {i}\n", i % 8)).collect();
        assert!(router.handle_write(None, &body).acked);
        assert!(router.flush(Duration::from_secs(10)));
        (servers, router)
    }

    #[test]
    fn cluster_aggregates_recombine_exactly_at_r_less_than_n() {
        // R = 2 over 3 nodes: every series lives on two owners, no node
        // holds everything. A mean-of-means (or the old LWW merge of
        // per-node aggregate rows) would be wrong whenever the owners'
        // shares are unbalanced; the partial path recombines Σsum/Σcount
        // algebraically, so the answer matches a single node holding all
        // the data: mean 16.5, count 32, min 1, max 32.
        let (servers, router) = loaded_cluster(3, 2);
        let r = router
            .handle_query("lms", "SELECT mean(v), count(v), min(v), max(v) FROM m")
            .unwrap();
        assert!(!r.partial);
        assert_eq!(r.series.len(), 1, "{:?}", r.series);
        assert_eq!(
            r.series[0].columns,
            vec!["time", "mean", "count", "min", "max"]
        );
        let row = &r.series[0].values[0];
        assert_eq!(row[1].as_f64(), Some(16.5));
        assert_eq!(row[2].as_i64(), Some(32));
        assert_eq!(row[3].as_f64(), Some(1.0));
        assert_eq!(row[4].as_f64(), Some(32.0));
        for s in servers {
            s.shutdown();
        }
    }

    #[test]
    fn range_queries_scatter_gather_through_the_cluster() {
        // R = 1 over 2 nodes: each series on exactly one owner, so every
        // window's sum needs contributions from both — exactness here
        // means the range endpoint rode the same partial-aggregate path.
        let (servers, router) = loaded_cluster(2, 1);
        let r = router
            .handle_query_range("lms", "SELECT sum(v) FROM m", 0, 17, None)
            .unwrap();
        assert!(!r.partial);
        assert_eq!(r.series.len(), 1);
        assert_eq!(r.series[0].values[0][1].as_f64(), Some(136.0)); // 1+…+16

        // step buckets: [0,8) → 1+…+7, [8,16) → 8+…+15, [16,17) → 16.
        let r = router
            .handle_query_range("lms", "SELECT sum(v) FROM m", 0, 17, Some(8))
            .unwrap();
        let rows: Vec<(i64, f64)> = r.series[0]
            .values
            .iter()
            .map(|row| (row[0].as_i64().unwrap(), row[1].as_f64().unwrap()))
            .collect();
        assert_eq!(rows, vec![(0, 28.0), (8, 92.0), (16, 16.0)]);

        // Listings union across owners; a database on no node is a 404.
        assert_eq!(router.handle_metrics("lms").unwrap(), vec!["m"]);
        assert_eq!(router.handle_labels("lms", "m").unwrap(), vec!["hostname"]);
        match router.handle_query_range("nope", "SELECT v FROM m", 0, 10, None) {
            Err(Error::Remote { status: 404, .. }) => {}
            other => panic!("expected 404, got {other:?}"),
        }
        match router.handle_metrics("nope") {
            Err(Error::Remote { status: 404, .. }) => {}
            other => panic!("expected 404, got {other:?}"),
        }
        for s in servers {
            s.shutdown();
        }
    }

    #[test]
    fn explicit_db_parameter_overrides_global() {
        let (server, influx, router) = setup(RouterConfig::default());
        router.handle_write(Some("otherdb"), "m,hostname=h1 v=1 1");
        assert!(router.flush(Duration::from_secs(5)));
        assert_eq!(influx.point_count("otherdb"), 1);
        assert_eq!(influx.point_count("lms"), 0);
        server.shutdown();
    }

    #[test]
    fn publishes_metrics_and_signals() {
        let publisher = Publisher::bind("127.0.0.1:0").unwrap();
        let pub_addr = publisher.addr();
        let clock = Clock::simulated(Timestamp::from_secs(5000));
        let influx = Influx::new(clock.clone());
        let server = InfluxServer::start("127.0.0.1:0", influx).unwrap();
        let router =
            Router::new(server.addr(), RouterConfig::default(), clock, Some(publisher)).unwrap();

        let mut sub = lms_mq::Subscriber::connect(pub_addr).unwrap();
        sub.subscribe("").unwrap();
        // Wait for subscription to register.
        std::thread::sleep(Duration::from_millis(100));

        router.handle_job_start(signal("42", "alice", &["h1"]));
        router.handle_write(None, "cpu,hostname=h1 value=1 100");

        let mut topics = Vec::new();
        while let Some(m) = sub.recv_timeout(Duration::from_secs(2)).unwrap() {
            topics.push(m.topic.clone());
            if topics.len() == 2 {
                break;
            }
        }
        assert!(topics.contains(&"signal.job_start".to_string()), "{topics:?}");
        assert!(topics.contains(&"metrics.cpu".to_string()), "{topics:?}");
        server.shutdown();
    }

    #[test]
    fn parse_hosts_variants() {
        assert_eq!(parse_hosts("h1,h2, h3 ,,"), vec!["h1", "h2", "h3"]);
        assert!(parse_hosts("").is_empty());
    }
}
