//! The enrichment core: parse → tag → forward → duplicate → publish.

use crate::breaker::BreakerConfig;
use crate::forward::{ForwardConfig, ForwardStats, Forwarder};
use crate::tagstore::{JobSignal, TagStore};
use lms_lineproto::{parse_batch, BatchBuilder, Point};
use lms_mq::Publisher;
use lms_spool::SpoolConfig;
use lms_util::{Clock, FxHashMap, Result};
use parking_lot::RwLock;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// The global database all metrics land in.
    pub global_db: String,
    /// Duplicate metrics of tagged hosts into `user_<name>` databases
    /// (paper: "the router duplicates the metrics and store them in another
    /// storage location, e.g., a per-user database").
    pub per_user: bool,
    /// Forwarding queue capacity (batches).
    pub queue_capacity: usize,
    /// Delivery attempts per batch.
    pub max_retries: u32,
    /// Forwarder worker threads draining the queue concurrently
    /// (default: one per available core, at least two).
    pub forward_workers: usize,
    /// Durable spill-to-disk spool for the delivery path. `None` (the
    /// default) keeps the historical drop-and-count behaviour.
    pub spool: Option<SpoolConfig>,
    /// Circuit-breaker tuning for the database destination.
    pub breaker: BreakerConfig,
    /// Forwarder coalescing cap in body bytes: queued batches merge into
    /// one delivery (and one WAL group commit downstream) up to this
    /// size. `0` disables coalescing.
    pub coalesce_bytes: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            global_db: "lms".into(),
            per_user: false,
            queue_capacity: 1024,
            max_retries: 3,
            forward_workers: crate::forward::default_workers(),
            spool: None,
            breaker: BreakerConfig::default(),
            coalesce_bytes: 256 * 1024,
        }
    }
}

/// Router counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct RouterStats {
    /// Lines accepted.
    pub lines_in: u64,
    /// Lines that received job tags.
    pub lines_enriched: u64,
    /// Malformed lines rejected.
    pub lines_rejected: u64,
    /// Job start/end signals processed.
    pub signals: u64,
    /// Bulk write requests shed because the delivery pipeline was
    /// saturated (job signals and events are never shed).
    pub writes_shed: u64,
    /// Forwarder statistics.
    pub forward: ForwardStats,
}

/// The metrics router.
pub struct Router {
    tags: RwLock<TagStore>,
    forwarder: Forwarder,
    publisher: Option<Publisher>,
    config: RouterConfig,
    clock: Clock,
    lines_in: AtomicU64,
    lines_enriched: AtomicU64,
    lines_rejected: AtomicU64,
    signals: AtomicU64,
    writes_shed: AtomicU64,
}

impl Router {
    /// Creates a router forwarding to the database server at `db_addr`.
    /// `publisher` enables the stream-analysis feed. Fails only when a
    /// configured spool directory is unusable.
    pub fn new(
        db_addr: SocketAddr,
        config: RouterConfig,
        clock: Clock,
        publisher: Option<Publisher>,
    ) -> Result<Self> {
        let forwarder = Forwarder::start(ForwardConfig {
            queue_capacity: config.queue_capacity,
            max_retries: config.max_retries,
            workers: config.forward_workers,
            spool: config.spool.clone(),
            breaker: config.breaker,
            coalesce_bytes: config.coalesce_bytes,
            ..ForwardConfig::new(db_addr)
        })?;
        Ok(Router {
            tags: RwLock::new(TagStore::new()),
            forwarder,
            publisher,
            config,
            clock,
            lines_in: AtomicU64::new(0),
            lines_enriched: AtomicU64::new(0),
            lines_rejected: AtomicU64::new(0),
            signals: AtomicU64::new(0),
            writes_shed: AtomicU64::new(0),
        })
    }

    /// The configuration.
    pub fn config(&self) -> &RouterConfig {
        &self.config
    }

    /// Read access to the tag store (admin views).
    pub fn with_tags<R>(&self, f: impl FnOnce(&TagStore) -> R) -> R {
        f(&self.tags.read())
    }

    /// Priority-aware admission for **bulk** metric writes: returns false
    /// (and counts the shed) when the delivery pipeline is saturated, so
    /// the HTTP layer can answer 503 + Retry-After instead of piling more
    /// work onto an overloaded queue. Job signals and annotation events
    /// never go through this gate — they are always admitted.
    pub fn try_admit_write(&self) -> bool {
        if self.forwarder.saturated() {
            self.writes_shed.fetch_add(1, Ordering::Relaxed);
            false
        } else {
            true
        }
    }

    /// Readiness of the supervised forwarder/drainer threads.
    pub fn workers_ready(&self) -> bool {
        self.forwarder.workers_ready()
    }

    /// Health reports of the supervised forwarder/drainer threads.
    pub fn worker_reports(&self) -> Vec<lms_util::WorkerReport> {
        self.forwarder.worker_reports()
    }

    /// Fault injection: panic the spool drainer on its next `n` iterations.
    pub fn inject_drainer_panics(&self, n: u64) {
        self.forwarder.inject_drainer_panics(n);
    }

    /// Handles an incoming line-protocol batch (the `/write` endpoint).
    ///
    /// Each line is enriched with its host's job tags, stamped with the
    /// router clock when it carries no timestamp, forwarded to the global
    /// database, duplicated per user when enabled, and published on the
    /// queue. Malformed lines are skipped and counted.
    ///
    /// Returns `(accepted, rejected)` line counts.
    pub fn handle_write(&self, db: Option<&str>, body: &str) -> (usize, usize) {
        let parsed = parse_batch(body);
        let rejected = parsed.errors.len();
        self.lines_rejected.fetch_add(rejected as u64, Ordering::Relaxed);
        if parsed.lines.is_empty() {
            return (0, rejected);
        }
        self.lines_in.fetch_add(parsed.lines.len() as u64, Ordering::Relaxed);

        let default_ts = self.clock.now().nanos();
        let global_db = db.unwrap_or(&self.config.global_db).to_string();
        let mut global = BatchBuilder::with_capacity(body.len() + body.len() / 4);
        let mut per_user: FxHashMap<String, BatchBuilder> = FxHashMap::default();
        let mut enriched_count = 0u64;

        {
            let tags = self.tags.read();
            for line in &parsed.lines {
                // Pass-through fast path: a line that already carries a
                // timestamp, whose host has no job entry, and that per-user
                // duplication would not touch is forwarded byte-for-byte —
                // no Point materialization, no re-serialization.
                if line.timestamp.is_some()
                    && !self.config.per_user
                    && line.hostname().is_none_or(|host| tags.tags_of(host).is_empty())
                {
                    global.push_raw(line.raw);
                    if let Some(publisher) = &self.publisher {
                        publisher.publish(
                            &format!("metrics.{}", line.measurement),
                            line.raw.as_bytes(),
                        );
                    }
                    continue;
                }
                let mut point: Point = line.to_point();
                if point.timestamp().is_none() {
                    point.set_timestamp(default_ts);
                }
                let mut user: Option<String> = None;
                if let Some(host) = line.hostname() {
                    let job_tags = tags.tags_of(host);
                    if !job_tags.is_empty() {
                        enriched_count += 1;
                        for (k, v) in job_tags {
                            point.add_tag(k.as_str(), v.as_str());
                            if k == "user" {
                                user = Some(v.clone());
                            }
                        }
                    }
                }
                global.push(&point);
                if self.config.per_user {
                    if let Some(user) = user {
                        per_user
                            .entry(format!("user_{user}"))
                            .or_insert_with(|| BatchBuilder::with_capacity(256))
                            .push(&point);
                    }
                }
                if let Some(publisher) = &self.publisher {
                    publisher.publish(
                        &format!("metrics.{}", point.measurement()),
                        point.to_line().as_bytes(),
                    );
                }
            }
        }
        self.lines_enriched.fetch_add(enriched_count, Ordering::Relaxed);

        let accepted = global.len();
        self.forwarder.enqueue(&global_db, global.take());
        for (user_db, mut batch) in per_user {
            self.forwarder.enqueue(&user_db, batch.take());
        }
        (accepted, rejected)
    }

    /// Handles a job-start signal: updates the tag store, records an
    /// annotation event per host in the database, publishes on the queue.
    pub fn handle_job_start(&self, signal: JobSignal) {
        self.signals.fetch_add(1, Ordering::Relaxed);
        self.tags.write().job_start(&signal);
        self.record_signal_event("job_start", &signal.job_id, &signal.user, &signal.hosts);
    }

    /// Handles a job-end signal.
    pub fn handle_job_end(&self, job_id: &str) {
        self.signals.fetch_add(1, Ordering::Relaxed);
        let info = {
            let mut tags = self.tags.write();
            let hosts = tags.hosts_of(job_id).map(<[String]>::to_vec);
            let user = hosts.as_ref().and_then(|h| {
                h.first().and_then(|host| {
                    tags.tags_of(host)
                        .iter()
                        .find(|(k, _)| k == "user")
                        .map(|(_, v)| v.clone())
                })
            });
            tags.job_end(job_id);
            hosts.map(|h| (h, user.unwrap_or_default()))
        };
        if let Some((hosts, user)) = info {
            self.record_signal_event("job_end", job_id, &user, &hosts);
        }
    }

    /// Writes the annotation events for a signal and publishes it.
    fn record_signal_event(&self, kind: &str, job_id: &str, user: &str, hosts: &[String]) {
        let ts = self.clock.now().nanos();
        let mut batch = BatchBuilder::new();
        for host in hosts {
            let mut ev = Point::new("events");
            ev.add_tag("hostname", host.as_str())
                .add_tag("jobid", job_id)
                .add_tag("kind", kind)
                .add_field("text", format!("{kind} job {job_id} (user {user})"))
                .set_timestamp(ts);
            batch.push(&ev);
        }
        if let Some(publisher) = &self.publisher {
            publisher.publish(
                &format!("signal.{kind}"),
                format!("jobid={job_id} user={user} hosts={}", hosts.join(",")).as_bytes(),
            );
        }
        self.forwarder.enqueue(&self.config.global_db, batch.take());
    }

    /// Current statistics.
    pub fn stats(&self) -> RouterStats {
        RouterStats {
            lines_in: self.lines_in.load(Ordering::Relaxed),
            lines_enriched: self.lines_enriched.load(Ordering::Relaxed),
            lines_rejected: self.lines_rejected.load(Ordering::Relaxed),
            signals: self.signals.load(Ordering::Relaxed),
            writes_shed: self.writes_shed.load(Ordering::Relaxed),
            forward: self.forwarder.stats(),
        }
    }

    /// Waits for the forwarding queue to drain (tests, shutdown).
    pub fn flush(&self, timeout: std::time::Duration) -> bool {
        self.forwarder.flush(timeout)
    }
}

/// Parses a `hosts` signal parameter: comma-separated hostnames.
pub fn parse_hosts(s: &str) -> Vec<String> {
    s.split(',').map(str::trim).filter(|h| !h.is_empty()).map(String::from).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lms_influx::{Influx, InfluxServer};
    use lms_util::Timestamp;
    use std::time::Duration;

    fn setup(config: RouterConfig) -> (InfluxServer, Influx, Router) {
        let clock = Clock::simulated(Timestamp::from_secs(5000));
        let influx = Influx::new(clock.clone());
        let server = InfluxServer::start("127.0.0.1:0", influx.clone()).unwrap();
        let router = Router::new(server.addr(), config, clock, None).unwrap();
        (server, influx, router)
    }

    fn signal(job: &str, user: &str, hosts: &[&str]) -> JobSignal {
        JobSignal {
            job_id: job.into(),
            user: user.into(),
            hosts: hosts.iter().map(|h| h.to_string()).collect(),
            extra_tags: vec![],
        }
    }

    #[test]
    fn enriches_metrics_of_job_hosts() {
        let (server, influx, router) = setup(RouterConfig::default());
        router.handle_job_start(signal("42", "alice", &["h1"]));
        router.handle_write(None, "cpu,hostname=h1 value=1 100\ncpu,hostname=h2 value=2 100");
        assert!(router.flush(Duration::from_secs(5)));

        let r = influx.query("lms", "SELECT value FROM cpu WHERE jobid = '42'").unwrap();
        assert_eq!(r.series[0].values.len(), 1);
        let r = influx.query("lms", "SELECT value FROM cpu WHERE user = 'alice'").unwrap();
        assert_eq!(r.series[0].values.len(), 1);
        // h2 has no job: stored untagged.
        let r = influx.query("lms", "SELECT value FROM cpu").unwrap();
        let total: usize = r.series.iter().map(|s| s.values.len()).sum();
        assert_eq!(total, 2);

        let stats = router.stats();
        assert_eq!(stats.lines_in, 2);
        assert_eq!(stats.lines_enriched, 1);
        server.shutdown();
    }

    #[test]
    fn job_end_stops_enrichment() {
        let (server, influx, router) = setup(RouterConfig::default());
        router.handle_job_start(signal("42", "alice", &["h1"]));
        router.handle_write(None, "m,hostname=h1 v=1 100");
        router.handle_job_end("42");
        router.handle_write(None, "m,hostname=h1 v=2 200");
        assert!(router.flush(Duration::from_secs(5)));
        let r = influx.query("lms", "SELECT v FROM m WHERE jobid = '42'").unwrap();
        assert_eq!(r.series[0].values.len(), 1);
        server.shutdown();
    }

    #[test]
    fn signals_become_annotation_events() {
        let (server, influx, router) = setup(RouterConfig::default());
        router.handle_job_start(signal("7", "bob", &["h1", "h2"]));
        router.handle_job_end("7");
        assert!(router.flush(Duration::from_secs(5)));
        let r = influx
            .query("lms", "SELECT text FROM events WHERE jobid = '7'")
            .unwrap();
        let total: usize = r.series.iter().map(|s| s.values.len()).sum();
        assert_eq!(total, 4); // start+end on two hosts
        let r = influx
            .query("lms", "SELECT text FROM events WHERE kind = 'job_start' AND hostname = 'h1'")
            .unwrap();
        assert!(r.series[0].values[0][1].as_str().unwrap().contains("job 7"));
        server.shutdown();
    }

    #[test]
    fn per_user_duplication() {
        let config = RouterConfig { per_user: true, ..Default::default() };
        let (server, influx, router) = setup(config);
        router.handle_job_start(signal("42", "alice", &["h1"]));
        router.handle_write(None, "m,hostname=h1 v=1 100\nm,hostname=h9 v=9 100");
        assert!(router.flush(Duration::from_secs(5)));
        // Global DB holds both; user DB holds only alice's.
        assert_eq!(influx.point_count("lms"), 2 + 1 /* start event */);
        assert_eq!(influx.point_count("user_alice"), 1);
        let r = influx.query("user_alice", "SELECT v FROM m").unwrap();
        assert_eq!(r.series[0].values[0][1].as_f64(), Some(1.0));
        server.shutdown();
    }

    #[test]
    fn passthrough_forwards_untagged_timestamped_lines_verbatim() {
        let (server, influx, router) = setup(RouterConfig::default());
        // h5 has no job entry and the line carries a timestamp: the router
        // forwards the original bytes without building a Point.
        let (acc, rej) = router.handle_write(None, "cpu,hostname=h5 value=0.5 12345");
        assert_eq!((acc, rej), (1, 0));
        assert!(router.flush(Duration::from_secs(5)));
        let r = influx.query("lms", "SELECT value FROM cpu").unwrap();
        assert_eq!(r.series[0].values[0][0].as_i64(), Some(12345));
        assert_eq!(r.series[0].values[0][1].as_f64(), Some(0.5));
        assert_eq!(router.stats().lines_enriched, 0);
        server.shutdown();
    }

    #[test]
    fn untimestamped_lines_get_router_time() {
        let (server, influx, router) = setup(RouterConfig::default());
        router.handle_write(None, "m,hostname=h1 v=1");
        assert!(router.flush(Duration::from_secs(5)));
        let r = influx.query("lms", "SELECT v FROM m").unwrap();
        assert_eq!(r.series[0].values[0][0].as_i64(), Some(Timestamp::from_secs(5000).nanos()));
        server.shutdown();
    }

    #[test]
    fn malformed_lines_counted_but_batch_continues() {
        let (server, influx, router) = setup(RouterConfig::default());
        let (acc, rej) = router.handle_write(None, "m,hostname=h1 v=1 1\nbroken\nm,hostname=h1 v=2 2");
        assert_eq!((acc, rej), (2, 1));
        assert!(router.flush(Duration::from_secs(5)));
        assert_eq!(influx.point_count("lms"), 2);
        assert_eq!(router.stats().lines_rejected, 1);
        server.shutdown();
    }

    #[test]
    fn explicit_db_parameter_overrides_global() {
        let (server, influx, router) = setup(RouterConfig::default());
        router.handle_write(Some("otherdb"), "m,hostname=h1 v=1 1");
        assert!(router.flush(Duration::from_secs(5)));
        assert_eq!(influx.point_count("otherdb"), 1);
        assert_eq!(influx.point_count("lms"), 0);
        server.shutdown();
    }

    #[test]
    fn publishes_metrics_and_signals() {
        let publisher = Publisher::bind("127.0.0.1:0").unwrap();
        let pub_addr = publisher.addr();
        let clock = Clock::simulated(Timestamp::from_secs(5000));
        let influx = Influx::new(clock.clone());
        let server = InfluxServer::start("127.0.0.1:0", influx).unwrap();
        let router =
            Router::new(server.addr(), RouterConfig::default(), clock, Some(publisher)).unwrap();

        let mut sub = lms_mq::Subscriber::connect(pub_addr).unwrap();
        sub.subscribe("").unwrap();
        // Wait for subscription to register.
        std::thread::sleep(Duration::from_millis(100));

        router.handle_job_start(signal("42", "alice", &["h1"]));
        router.handle_write(None, "cpu,hostname=h1 value=1 100");

        let mut topics = Vec::new();
        while let Some(m) = sub.recv_timeout(Duration::from_secs(2)).unwrap() {
            topics.push(m.topic.clone());
            if topics.len() == 2 {
                break;
            }
        }
        assert!(topics.contains(&"signal.job_start".to_string()), "{topics:?}");
        assert!(topics.contains(&"metrics.cpu".to_string()), "{topics:?}");
        server.shutdown();
    }

    #[test]
    fn parse_hosts_variants() {
        assert_eq!(parse_hosts("h1,h2, h3 ,,"), vec!["h1", "h2", "h3"]);
        assert!(parse_hosts("").is_empty());
    }
}
