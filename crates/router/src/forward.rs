//! Buffered, retrying delivery to the database back-end.
//!
//! The router must keep accepting metrics while the database hiccups: the
//! forwarder decouples the HTTP handler from database I/O with a bounded
//! queue and a pool of worker threads that retry transient failures with
//! exponential backoff. Each worker holds its own database connection and
//! competes for batches on the shared channel, so delivery parallelism
//! matches the sharded engine's concurrent write path. When the queue
//! overflows (database down for long), the newest batches are dropped and
//! counted — monitoring data is replaceable; blocking the cluster's
//! collectors is not.

use crossbeam_channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use lms_influx::InfluxClient;
use lms_util::Result;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One unit of forwarding work.
#[derive(Debug)]
struct Batch {
    db: String,
    body: String,
}

/// Forwarder statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ForwardStats {
    /// Batches delivered successfully.
    pub delivered: u64,
    /// Batches dropped (queue overflow or retries exhausted).
    pub dropped: u64,
    /// Retry attempts performed.
    pub retries: u64,
}

struct Shared {
    delivered: AtomicU64,
    dropped: AtomicU64,
    retries: AtomicU64,
}

/// Handle to the forwarding worker pool.
pub struct Forwarder {
    tx: Option<Sender<Batch>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    shared: Arc<Shared>,
}

/// The default worker-pool size: one per available core, at least two so
/// one slow/retrying delivery cannot stall the whole queue.
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2).max(2)
}

impl Forwarder {
    /// Creates a forwarder delivering to the database server at `db_addr`.
    ///
    /// `queue_capacity` bounds the number of buffered batches; `max_retries`
    /// bounds delivery attempts per batch (with 50 ms → 100 ms → … backoff);
    /// `workers` threads drain the queue concurrently (clamped to ≥ 1).
    pub fn start(
        db_addr: SocketAddr,
        queue_capacity: usize,
        max_retries: u32,
        workers: usize,
    ) -> Self {
        let (tx, rx): (Sender<Batch>, Receiver<Batch>) = bounded(queue_capacity.max(1));
        let shared = Arc::new(Shared {
            delivered: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            retries: AtomicU64::new(0),
        });
        let workers = (0..workers.max(1))
            .map(|i| {
                let shared = shared.clone();
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("lms-router-forwarder-{i}"))
                    .spawn(move || worker_loop(rx, db_addr, max_retries, shared))
                    .expect("spawn forwarder")
            })
            .collect();
        Forwarder { tx: Some(tx), workers, shared }
    }

    /// Enqueues a batch. On a full queue the **new** batch is dropped and
    /// counted (back-pressure would stall the HTTP handler; newest-drop is
    /// the cheapest policy that keeps the pipeline live).
    pub fn enqueue(&self, db: &str, body: String) {
        if body.is_empty() {
            return;
        }
        let tx = self.tx.as_ref().expect("forwarder running");
        match tx.try_send(Batch { db: db.to_string(), body }) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.shared.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> ForwardStats {
        ForwardStats {
            delivered: self.shared.delivered.load(Ordering::Relaxed),
            dropped: self.shared.dropped.load(Ordering::Relaxed),
            retries: self.shared.retries.load(Ordering::Relaxed),
        }
    }

    /// Blocks until the queue is drained or the timeout expires. Returns
    /// true when drained (used by tests and graceful shutdown).
    pub fn flush(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        while std::time::Instant::now() < deadline {
            if self.tx.as_ref().is_none_or(|tx| tx.is_empty()) {
                // Queue empty; give the worker a beat to finish in-flight I/O.
                std::thread::sleep(Duration::from_millis(20));
                return true;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        false
    }
}

impl Drop for Forwarder {
    fn drop(&mut self) {
        self.tx.take(); // close the channel; workers drain and exit
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(
    rx: Receiver<Batch>,
    db_addr: SocketAddr,
    max_retries: u32,
    shared: Arc<Shared>,
) {
    let mut client: Option<InfluxClient> = None;
    loop {
        let batch = match rx.recv_timeout(Duration::from_secs(1)) {
            Ok(b) => b,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return,
        };
        let mut delivered = false;
        for attempt in 0..=max_retries {
            if attempt > 0 {
                shared.retries.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(50 << (attempt - 1).min(4)));
            }
            let result: Result<()> = (|| {
                if client.is_none() {
                    client = Some(InfluxClient::connect(db_addr)?);
                }
                client.as_mut().expect("just set").write(&batch.db, &batch.body)
            })();
            match result {
                Ok(()) => {
                    delivered = true;
                    break;
                }
                Err(e) if e.is_transient() => {
                    client = None;
                    continue;
                }
                Err(_) => break, // permanent (protocol) error: do not retry
            }
        }
        if delivered {
            shared.delivered.fetch_add(1, Ordering::Relaxed);
        } else {
            shared.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lms_influx::{Influx, InfluxServer};
    use lms_util::{Clock, Timestamp};

    fn db() -> (InfluxServer, Influx) {
        let influx = Influx::new(Clock::simulated(Timestamp::from_secs(1000)));
        let server = InfluxServer::start("127.0.0.1:0", influx.clone()).unwrap();
        (server, influx)
    }

    #[test]
    fn delivers_batches() {
        let (server, influx) = db();
        let f = Forwarder::start(server.addr(), 64, 2, 2);
        f.enqueue("lms", "m v=1 1\nm v=2 2".to_string());
        f.enqueue("lms", "m v=3 3".to_string());
        assert!(f.flush(Duration::from_secs(5)));
        assert_eq!(influx.point_count("lms"), 3);
        assert_eq!(f.stats().delivered, 2);
        assert_eq!(f.stats().dropped, 0);
        server.shutdown();
    }

    #[test]
    fn empty_batches_are_skipped() {
        let (server, _influx) = db();
        let f = Forwarder::start(server.addr(), 4, 0, 1);
        f.enqueue("lms", String::new());
        assert!(f.flush(Duration::from_secs(1)));
        assert_eq!(f.stats(), ForwardStats::default());
        server.shutdown();
    }

    #[test]
    fn survives_database_restart() {
        let (server, _old) = db();
        let addr = server.addr();
        let f = Forwarder::start(addr, 64, 5, 2);
        f.enqueue("lms", "m v=1 1".to_string());
        assert!(f.flush(Duration::from_secs(5)));
        server.shutdown();

        // DB is down: the next batch should retry, then a new DB on the
        // same port picks it up.
        f.enqueue("lms", "m v=2 2".to_string());
        std::thread::sleep(Duration::from_millis(100));
        let influx2 = Influx::new(Clock::simulated(Timestamp::from_secs(2000)));
        let server2 = InfluxServer::start(addr, influx2.clone()).unwrap();
        assert!(f.flush(Duration::from_secs(10)));
        // Worker may still be mid-retry; wait for delivery.
        for _ in 0..100 {
            if influx2.point_count("lms") > 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        assert_eq!(influx2.point_count("lms"), 1);
        assert!(f.stats().retries > 0);
        server2.shutdown();
    }

    #[test]
    fn overflow_drops_newest_and_counts() {
        // Point at a dead address: worker shall retry while queue fills.
        let (server, _ix) = db();
        let dead = server.addr();
        server.shutdown();
        let f = Forwarder::start(dead, 2, 10, 1);
        for i in 0..50 {
            f.enqueue("lms", format!("m v={i} {i}"));
        }
        assert!(f.stats().dropped > 0);
    }

    #[test]
    fn worker_pool_drains_concurrently() {
        let (server, influx) = db();
        let f = Forwarder::start(server.addr(), 256, 2, 4);
        for i in 0..40 {
            f.enqueue("lms", format!("m,w=a v={i} {i}"));
        }
        assert!(f.flush(Duration::from_secs(10)));
        // Workers may still be mid-write after the queue empties.
        for _ in 0..100 {
            if f.stats().delivered == 40 {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert_eq!(f.stats().delivered, 40);
        assert_eq!(influx.point_count("lms"), 40);
        server.shutdown();
    }

    #[test]
    fn default_workers_is_at_least_two() {
        assert!(default_workers() >= 2);
    }
}
