//! Buffered, durable, retrying delivery to the database back-end.
//!
//! The router must keep accepting metrics while the database hiccups: the
//! forwarder decouples the HTTP handler from database I/O with a bounded
//! queue and a pool of worker threads that retry transient failures with
//! full-jitter exponential backoff. Each worker holds its own database
//! connection and competes for batches on the shared channel, so delivery
//! parallelism matches the sharded engine's concurrent write path.
//!
//! The failure model (see `DESIGN.md` §"Delivery durability"):
//!
//! - **transient** errors (I/O, remote 5xx/429) are retried with backoff;
//! - a shared **circuit breaker** opens after N consecutive transient
//!   failures so an extended outage stops burning per-batch retry budgets;
//! - when the queue overflows, retries exhaust, or the breaker is open,
//!   batches **spill to the on-disk spool** (when configured) instead of
//!   being dropped; a background **drainer** probes the database and
//!   replays the spool in order once it is healthy again;
//! - **permanent** errors (protocol violations, remote 4xx) are rejected
//!   immediately — never retried, never spooled;
//! - only when no spool is configured (or the spool itself fails/evicts)
//!   is a batch dropped, and then it is counted.

use crate::breaker::{BreakerConfig, BreakerState, CircuitBreaker};
use crossbeam_channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use lms_influx::InfluxClient;
use lms_spool::{Spool, SpoolConfig};
use lms_util::rng::XorShift64;
use lms_util::{Result, Supervisor, SupervisorConfig, WorkerReport};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// One unit of forwarding work.
#[derive(Debug)]
struct Batch {
    db: String,
    body: String,
}

/// Forwarder configuration.
#[derive(Debug, Clone)]
pub struct ForwardConfig {
    /// The database server to deliver to.
    pub db_addr: SocketAddr,
    /// Bounded queue capacity (batches).
    pub queue_capacity: usize,
    /// Retry attempts per batch after the first try.
    pub max_retries: u32,
    /// Worker threads draining the queue concurrently (clamped to ≥ 1).
    pub workers: usize,
    /// Durable spill-to-disk spool; `None` reverts to drop-and-count.
    pub spool: Option<SpoolConfig>,
    /// Circuit-breaker tuning for the destination.
    pub breaker: BreakerConfig,
    /// Base delay of the full-jitter exponential backoff.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Per-request I/O timeout on worker/drainer connections.
    pub io_timeout: Duration,
    /// Coalescing cap: after receiving a batch, a worker opportunistically
    /// drains whatever else is already queued (up to this many body bytes)
    /// and delivers runs of consecutive same-db batches as **one** HTTP
    /// write — and therefore one WAL group commit downstream. `0` disables
    /// coalescing. Line-level errors inside a merged run behave exactly as
    /// they do inside a single batch: the database skips bad lines and
    /// acknowledges the rest.
    pub coalesce_bytes: usize,
    /// Drainer poll interval while the spool is empty or the breaker open.
    pub drain_idle: Duration,
    /// Seed for the per-worker jitter RNGs (workers derive distinct
    /// streams from it; fixed seeds give reproducible chaos tests).
    pub seed: u64,
    /// Restart policy for the supervised worker/drainer threads.
    pub supervisor: SupervisorConfig,
}

impl ForwardConfig {
    /// Defaults matching the router's: 1024-batch queue, 3 retries,
    /// one worker per core, no spool, 5-failure/1 s breaker,
    /// 50 ms → 2 s backoff, 10 s I/O timeout.
    pub fn new(db_addr: SocketAddr) -> Self {
        ForwardConfig {
            db_addr,
            queue_capacity: 1024,
            max_retries: 3,
            workers: default_workers(),
            spool: None,
            breaker: BreakerConfig::default(),
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            io_timeout: Duration::from_secs(10),
            coalesce_bytes: 256 * 1024,
            drain_idle: Duration::from_millis(100),
            seed: 0x1a55_eed7,
            supervisor: SupervisorConfig::default(),
        }
    }
}

/// Forwarder statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ForwardStats {
    /// Batches delivered successfully from the queue.
    pub delivered: u64,
    /// Batches rejected on permanent (protocol) errors — never retried.
    pub rejected: u64,
    /// Batches lost: overflow/exhaustion with no spool configured, spool
    /// append failures, and spool cap evictions.
    pub dropped: u64,
    /// Batches spilled to the on-disk spool.
    pub spooled: u64,
    /// Spooled batches replayed into the database.
    pub replayed: u64,
    /// Retry attempts performed.
    pub retries: u64,
    /// Batches delivered as part of a coalesced (merged) write.
    pub coalesced: u64,
    /// Spooled batches still awaiting replay.
    pub spool_pending: u64,
    /// Spooled batches the drainer is replaying *right now* (peeked and
    /// being written, not yet acknowledged). Graceful drain waits for this
    /// to reach zero so an in-flight hinted-handoff replay is never
    /// abandoned mid-write.
    pub replay_in_flight: u64,
    /// Times the destination's circuit breaker has opened.
    pub breaker_opens: u64,
    /// Circuit-breaker state for the destination.
    pub breaker: BreakerState,
}

struct Shared {
    delivered: AtomicU64,
    rejected: AtomicU64,
    dropped: AtomicU64,
    spooled: AtomicU64,
    retries: AtomicU64,
    coalesced: AtomicU64,
    /// Batches accepted into the queue and not yet fully processed
    /// (queued + in flight). `flush` waits for this to reach zero, which
    /// closes the old "queue empty but worker still writing" race.
    outstanding: AtomicU64,
    /// Spool entries the drainer has peeked and is currently delivering.
    /// Graceful drain waits on this too: `spool_pending` alone can reach
    /// zero via a permanent-error ack while the drainer is still mid-
    /// iteration, and the cluster drain path skips the spool of an
    /// unreachable node entirely — but never an actively replaying one.
    replaying: AtomicU64,
    progress: Mutex<()>,
    progress_cv: Condvar,
    breaker: CircuitBreaker,
    spool: Option<Spool>,
    stop: AtomicBool,
    /// Queue capacity, for the saturation signal.
    capacity: u64,
    /// Fault injection: pending drainer panics (each iteration consumes
    /// one); exercises the supervisor's restart path in tests.
    drainer_panics: AtomicU64,
}

impl Shared {
    fn notify_progress(&self) {
        let _guard = self.progress.lock().expect("progress lock");
        self.progress_cv.notify_all();
    }

    fn spool_pending(&self) -> u64 {
        self.spool.as_ref().map_or(0, Spool::pending)
    }

    /// Spills a batch to the spool, or counts it dropped when the spool
    /// is absent or failing. Returns true when the batch is durably held
    /// (spooled), false when it was dropped — the cluster write path uses
    /// this to decide whether a node-batch still counts toward the write
    /// quorum.
    fn spill(&self, db: &str, body: &str) -> bool {
        match &self.spool {
            Some(spool) => match spool.append(db, body) {
                Ok(()) => {
                    self.spooled.fetch_add(1, Ordering::Relaxed);
                    true
                }
                Err(_) => {
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                    false
                }
            },
            None => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }
}

/// Handle to the forwarding worker pool and spool drainer, all supervised:
/// a panicking worker spills its in-flight batch and is restarted with
/// backoff instead of silently shrinking the pool.
pub struct Forwarder {
    tx: Option<Sender<Batch>>,
    supervisor: Supervisor,
    shared: Arc<Shared>,
}

/// The default worker-pool size: one per available core, at least two so
/// one slow/retrying delivery cannot stall the whole queue.
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2).max(2)
}

impl Forwarder {
    /// Starts the worker pool (and the spool drainer when a spool is
    /// configured). Fails only when the spool directory is unusable.
    pub fn start(config: ForwardConfig) -> Result<Self> {
        let (tx, rx): (Sender<Batch>, Receiver<Batch>) = bounded(config.queue_capacity.max(1));
        let spool = config.spool.clone().map(Spool::open).transpose()?;
        let shared = Arc::new(Shared {
            delivered: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            spooled: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            outstanding: AtomicU64::new(0),
            replaying: AtomicU64::new(0),
            progress: Mutex::new(()),
            progress_cv: Condvar::new(),
            breaker: CircuitBreaker::new(config.breaker),
            spool,
            stop: AtomicBool::new(false),
            capacity: config.queue_capacity.max(1) as u64,
            drainer_panics: AtomicU64::new(0),
        });
        let supervisor = Supervisor::new(config.supervisor.clone());
        for i in 0..config.workers.max(1) {
            let shared = shared.clone();
            let rx = rx.clone();
            let config = config.clone();
            supervisor.spawn(&format!("forwarder-{i}"), move |_ctx| {
                worker_loop(&rx, &config, &shared, i as u64)
            })?;
        }
        if shared.spool.is_some() {
            let shared = shared.clone();
            let config = config.clone();
            supervisor.spawn("spool-drainer", move |_ctx| drainer_loop(&config, &shared))?;
        }
        Ok(Forwarder { tx: Some(tx), supervisor, shared })
    }

    /// Enqueues a batch. On a full queue the **new** batch spills to the
    /// spool (back-pressure would stall the HTTP handler; collectors must
    /// never block); without a spool it is dropped and counted.
    ///
    /// Returns true when the batch was **accepted** — queued for delivery
    /// or durably spooled. False means it was dropped on the floor (full
    /// queue and no working spool); the cluster write path counts such a
    /// node-batch against the write quorum.
    pub fn enqueue(&self, db: &str, body: String) -> bool {
        if body.is_empty() {
            return true;
        }
        let tx = self.tx.as_ref().expect("forwarder running");
        self.shared.outstanding.fetch_add(1, Ordering::AcqRel);
        match tx.try_send(Batch { db: db.to_string(), body }) {
            Ok(()) => true,
            Err(TrySendError::Full(b)) | Err(TrySendError::Disconnected(b)) => {
                let held = self.shared.spill(&b.db, &b.body);
                self.shared.outstanding.fetch_sub(1, Ordering::AcqRel);
                self.shared.notify_progress();
                held
            }
        }
    }

    /// True when the delivery pipeline is saturated: as many batches are
    /// queued or in flight as the queue can hold, so a new bulk batch
    /// would overflow straight to the spool (or be dropped). The router
    /// uses this as its load-shedding signal for low-priority writes.
    pub fn saturated(&self) -> bool {
        self.shared.outstanding.load(Ordering::Acquire) >= self.shared.capacity
    }

    /// Readiness of the supervised worker/drainer threads: `false` while
    /// any of them is mid-restart or has exhausted its restart budget.
    pub fn workers_ready(&self) -> bool {
        self.supervisor.is_ready()
    }

    /// Health reports of the supervised worker/drainer threads.
    pub fn worker_reports(&self) -> Vec<WorkerReport> {
        self.supervisor.reports()
    }

    /// Fault injection: make the spool drainer panic on its next `n`
    /// iterations (each iteration consumes one pending panic).
    pub fn inject_drainer_panics(&self, n: u64) {
        self.shared.drainer_panics.store(n, Ordering::SeqCst);
    }

    /// Current statistics (queue, retry, spool and breaker counters in
    /// one consistent-enough snapshot).
    pub fn stats(&self) -> ForwardStats {
        let spool = self.shared.spool.as_ref().map(Spool::stats).unwrap_or_default();
        ForwardStats {
            delivered: self.shared.delivered.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            dropped: self.shared.dropped.load(Ordering::Relaxed) + spool.evicted,
            spooled: self.shared.spooled.load(Ordering::Relaxed),
            replayed: spool.replayed,
            retries: self.shared.retries.load(Ordering::Relaxed),
            coalesced: self.shared.coalesced.load(Ordering::Relaxed),
            spool_pending: spool.pending,
            replay_in_flight: self.shared.replaying.load(Ordering::Acquire),
            breaker_opens: self.shared.breaker.opens(),
            breaker: self.shared.breaker.state(),
        }
    }

    /// Blocks until every accepted batch has been fully resolved —
    /// queue empty, **no batch in flight in any worker**, no replay in
    /// flight in the drainer, and the spool drained — or the timeout
    /// expires. Returns true when fully drained.
    pub fn flush(&self, timeout: Duration) -> bool {
        self.flush_until(timeout, |s| {
            s.outstanding.load(Ordering::Acquire) == 0
                && s.replaying.load(Ordering::Acquire) == 0
                && s.spool_pending() == 0
        })
    }

    /// Graceful-drain variant for cluster destinations: like [`flush`],
    /// but an **unreachable** destination (breaker open) does not block on
    /// its spool — hinted handoff is durable on disk and replays after the
    /// node recovers (or after a router restart). The drain still waits
    /// for the queue, in-flight worker batches, and any replay the
    /// drainer has already started, so no accepted batch is ever dropped
    /// from memory.
    pub fn flush_or_hinted(&self, timeout: Duration) -> bool {
        self.flush_until(timeout, |s| {
            s.outstanding.load(Ordering::Acquire) == 0
                && s.replaying.load(Ordering::Acquire) == 0
                && (s.spool_pending() == 0 || s.breaker.state() == BreakerState::Open)
        })
    }

    fn flush_until(&self, timeout: Duration, done: impl Fn(&Shared) -> bool) -> bool {
        let deadline = Instant::now() + timeout;
        let mut guard = self.shared.progress.lock().expect("progress lock");
        loop {
            if done(&self.shared) {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            // Bounded waits guard against a missed wake-up (e.g. spool
            // counters changed by eviction without a notification).
            let wait = (deadline - now).min(Duration::from_millis(50));
            let (g, _) = self
                .shared
                .progress_cv
                .wait_timeout(guard, wait)
                .expect("progress lock");
            guard = g;
        }
    }
}

impl Drop for Forwarder {
    fn drop(&mut self) {
        self.tx.take(); // close the channel; workers drain and exit
        self.shared.stop.store(true, Ordering::Release);
        // Joins every supervised thread (workers finish draining the
        // closed channel first, then return cleanly).
        self.supervisor.shutdown();
    }
}

/// Connects (with the configured timeout) if needed, then writes.
fn try_write(
    client: &mut Option<InfluxClient>,
    config: &ForwardConfig,
    db: &str,
    body: &str,
) -> Result<()> {
    if client.is_none() {
        let mut c = InfluxClient::connect(config.db_addr)?;
        c.set_timeout(config.io_timeout);
        *client = Some(c);
    }
    client.as_mut().expect("just set").write(db, body)
}

fn worker_loop(rx: &Receiver<Batch>, config: &ForwardConfig, shared: &Shared, index: u64) {
    let mut client: Option<InfluxClient> = None;
    let mut rng = XorShift64::new(config.seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    loop {
        let first = match rx.recv_timeout(Duration::from_secs(1)) {
            Ok(b) => b,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return,
        };
        // Opportunistic pickup: whatever is already queued rides along
        // with the batch just received, up to the coalescing byte cap.
        // Under a backlog this turns N queued batches into one delivery
        // per db run instead of N round trips.
        let mut group = vec![first];
        if config.coalesce_bytes > 0 {
            let mut bytes = group[0].body.len();
            while bytes < config.coalesce_bytes {
                match rx.try_recv() {
                    Ok(b) => {
                        bytes += b.body.len();
                        group.push(b);
                    }
                    Err(_) => break,
                }
            }
        }
        // Deliver runs of consecutive same-db batches together; order
        // within a db is preserved.
        let mut i = 0;
        while i < group.len() {
            let mut j = i + 1;
            while j < group.len() && group[j].db == group[i].db {
                j += 1;
            }
            let run = &group[i..j];
            // A panic mid-delivery must not lose accepted batches or
            // leave `outstanding` stuck (which would wedge flush()
            // forever): spill the run, settle the counters, then
            // re-raise so the supervisor records the panic and restarts
            // this worker with backoff.
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                process_run(run, &mut client, config, shared, &mut rng);
            }));
            if let Err(panic) = result {
                // Spill *before* settling `outstanding`: a flush() racing
                // this panic must not observe zero while the run exists
                // only in memory — the spool write makes it durable first.
                for b in run {
                    shared.spill(&b.db, &b.body);
                }
                shared.outstanding.fetch_sub(run.len() as u64, Ordering::AcqRel);
                shared.notify_progress();
                std::panic::resume_unwind(panic);
            }
            shared.outstanding.fetch_sub(run.len() as u64, Ordering::AcqRel);
            shared.notify_progress();
            i = j;
        }
    }
}

/// Delivers a run of same-db batches as one merged write. Accounting
/// stays per-batch: success counts every batch delivered (and marks the
/// merged ones `coalesced`); giving up spills each original body
/// separately so spool replay granularity is unchanged.
fn process_run(
    run: &[Batch],
    client: &mut Option<InfluxClient>,
    config: &ForwardConfig,
    shared: &Shared,
    rng: &mut XorShift64,
) {
    if run.len() == 1 {
        process_batch(&run[0], client, config, shared, rng);
        return;
    }
    let spill_all = || {
        for b in run {
            shared.spill(&b.db, &b.body);
        }
    };
    // Mirrors process_batch: breaker already open with a spool available
    // means spill immediately instead of burning a retry budget.
    if shared.spool.is_some() && !shared.breaker.allow() {
        spill_all();
        return;
    }
    let db = &run[0].db;
    let mut body = String::with_capacity(run.iter().map(|b| b.body.len() + 1).sum());
    for b in run {
        if !body.is_empty() {
            body.push('\n');
        }
        body.push_str(&b.body);
    }
    let n = run.len() as u64;
    let mut attempt = 0u32;
    loop {
        if attempt > 0 {
            shared.retries.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(rng.backoff(config.backoff_base, config.backoff_cap, attempt - 1));
            if shared.spool.is_some() && !shared.breaker.allow() {
                spill_all();
                return;
            }
        }
        match try_write(client, config, db, &body) {
            Ok(()) => {
                shared.delivered.fetch_add(n, Ordering::Relaxed);
                shared.coalesced.fetch_add(n, Ordering::Relaxed);
                shared.breaker.record_success();
                return;
            }
            Err(e) if e.is_transient() => {
                shared.breaker.record_failure();
                *client = None; // reconnect on next attempt
                attempt += 1;
                let give_up = attempt > config.max_retries
                    || (shared.spool.is_some() && shared.breaker.state() == BreakerState::Open);
                if give_up {
                    spill_all();
                    return;
                }
            }
            Err(_) => {
                // Permanent refusal of the merged body. The database
                // rejects a write only when *nothing* in it parses, so
                // every batch in the run was malformed — reject them all.
                // (Mixed runs are partially accepted and land in Ok.)
                shared.breaker.record_success();
                shared.rejected.fetch_add(n, Ordering::Relaxed);
                return;
            }
        }
    }
}

fn process_batch(
    batch: &Batch,
    client: &mut Option<InfluxClient>,
    config: &ForwardConfig,
    shared: &Shared,
    rng: &mut XorShift64,
) {
    // Breaker already open and a spool available: spill immediately
    // instead of burning a full retry/backoff budget per batch. (Without
    // a spool the worker still tries — dropping data because a breaker
    // said so would be worse than a wasted retry.)
    if shared.spool.is_some() && !shared.breaker.allow() {
        shared.spill(&batch.db, &batch.body);
        return;
    }
    let mut attempt = 0u32;
    loop {
        if attempt > 0 {
            shared.retries.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(rng.backoff(config.backoff_base, config.backoff_cap, attempt - 1));
            // Consult the breaker only *after* the backoff: allow() may
            // claim the single half-open probe slot, and holding it
            // through the sleep would block the drainer and every other
            // worker from delivering for the whole backoff.
            if shared.spool.is_some() && !shared.breaker.allow() {
                shared.spill(&batch.db, &batch.body);
                return;
            }
        }
        match try_write(client, config, &batch.db, &batch.body) {
            Ok(()) => {
                shared.delivered.fetch_add(1, Ordering::Relaxed);
                shared.breaker.record_success();
                return;
            }
            Err(e) if e.is_transient() => {
                shared.breaker.record_failure();
                *client = None; // reconnect on next attempt
                attempt += 1;
                // `state()` (not `allow()`): a plain read cannot claim
                // the probe slot this arm would then never report on.
                let give_up = attempt > config.max_retries
                    || (shared.spool.is_some() && shared.breaker.state() == BreakerState::Open);
                if give_up {
                    shared.spill(&batch.db, &batch.body);
                    return;
                }
            }
            Err(_) => {
                // Permanent (protocol) error: retrying or replaying the
                // same bytes can never succeed. The destination *did*
                // answer, so report success — this releases a half-open
                // probe claimed by allow() (leaving it claimed would wedge
                // the breaker HalfOpen forever) and resets the failure
                // streak.
                shared.breaker.record_success();
                shared.rejected.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
    }
}

/// Replays spooled batches in order once the database is healthy. The
/// drainer owns the half-open probe: after the breaker's cool-down it
/// pings, and a healthy answer starts the replay (which closes the
/// breaker for the workers too).
fn drainer_loop(config: &ForwardConfig, shared: &Shared) {
    let spool = shared.spool.as_ref().expect("drainer requires spool");
    let mut client: Option<InfluxClient> = None;
    let mut rng = XorShift64::new(config.seed ^ 0xD5A1_4E55);
    let mut failures: u32 = 0;
    while !shared.stop.load(Ordering::Acquire) {
        // Fault injection: consume one pending panic per iteration so
        // tests can exercise the supervisor's restart/budget path.
        if shared
            .drainer_panics
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok()
        {
            panic!("injected spool drainer panic");
        }
        let Some(entry) = spool.peek() else {
            shared.notify_progress();
            sleep_unless_stopped(shared, config.drain_idle);
            continue;
        };
        if !shared.breaker.allow() {
            sleep_unless_stopped(shared, config.drain_idle);
            continue;
        }
        // Mark the replay in flight for the whole deliver-and-ack window
        // so a graceful drain never abandons a replay the destination may
        // already be applying. The guard settles the gauge on every exit
        // path, including a panic unwinding through the supervisor.
        let backoff = {
            let _replaying = ReplayGuard::enter(shared);
            let result = (|| {
                if client.is_none() {
                    let mut c = InfluxClient::connect(config.db_addr)?;
                    c.set_timeout(config.io_timeout);
                    c.ping()?; // health probe before replaying a backlog
                    client = Some(c);
                }
                client.as_mut().expect("just set").write(&entry.db, &entry.body)
            })();
            match result {
                Ok(()) => {
                    spool.ack(&entry);
                    shared.breaker.record_success();
                    failures = 0;
                    None
                }
                Err(e) if e.is_transient() => {
                    shared.breaker.record_failure();
                    client = None;
                    failures += 1;
                    Some(rng.backoff(
                        config.backoff_base,
                        config.backoff_cap,
                        (failures - 1).min(16),
                    ))
                }
                Err(_) => {
                    // Permanent: this batch would wedge the spool head
                    // forever; reject it and move on. The destination
                    // answered, so report success to release the half-open
                    // probe this delivery may hold — otherwise the breaker
                    // stays wedged HalfOpen and the spool never drains.
                    shared.breaker.record_success();
                    spool.ack(&entry);
                    shared.rejected.fetch_add(1, Ordering::Relaxed);
                    failures = 0;
                    None
                }
            }
            // Guard drops here: progress (incl. the gauge reaching zero)
            // is notified by the guard itself, and the backoff sleep below
            // must not count as "replay in flight".
        };
        if let Some(backoff) = backoff {
            sleep_unless_stopped(shared, backoff);
        }
    }
}

/// RAII marker for a drainer replay in flight: increments the gauge on
/// entry and settles it (with a progress notification for waiting
/// flushes) on every exit path, including panics.
struct ReplayGuard<'a> {
    shared: &'a Shared,
}

impl<'a> ReplayGuard<'a> {
    fn enter(shared: &'a Shared) -> Self {
        shared.replaying.fetch_add(1, Ordering::AcqRel);
        ReplayGuard { shared }
    }
}

impl Drop for ReplayGuard<'_> {
    fn drop(&mut self) {
        self.shared.replaying.fetch_sub(1, Ordering::AcqRel);
        self.shared.notify_progress();
    }
}

/// Sleeps in slices so shutdown is prompt even mid-backoff.
fn sleep_unless_stopped(shared: &Shared, total: Duration) {
    let deadline = Instant::now() + total;
    while Instant::now() < deadline && !shared.stop.load(Ordering::Acquire) {
        std::thread::sleep((deadline - Instant::now()).min(Duration::from_millis(20)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lms_influx::{Influx, InfluxServer};
    use lms_util::{Clock, Timestamp};
    use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

    fn db() -> (InfluxServer, Influx) {
        let influx = Influx::new(Clock::simulated(Timestamp::from_secs(1000)));
        let server = InfluxServer::start("127.0.0.1:0", influx.clone()).unwrap();
        (server, influx)
    }

    fn tmp_spool(tag: &str) -> SpoolConfig {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "lms-fwd-{}-{}-{}",
            std::process::id(),
            tag,
            N.fetch_add(1, AtomicOrdering::SeqCst)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        SpoolConfig::new(dir)
    }

    fn cfg(addr: SocketAddr, queue: usize, retries: u32, workers: usize) -> ForwardConfig {
        ForwardConfig {
            queue_capacity: queue,
            max_retries: retries,
            workers,
            backoff_cap: Duration::from_millis(200),
            io_timeout: Duration::from_secs(2),
            breaker: BreakerConfig {
                failure_threshold: 3,
                open_for: Duration::from_millis(100),
            },
            drain_idle: Duration::from_millis(20),
            seed: 42,
            ..ForwardConfig::new(addr)
        }
    }

    #[test]
    fn delivers_batches() {
        let (server, influx) = db();
        let f = Forwarder::start(cfg(server.addr(), 64, 2, 2)).unwrap();
        f.enqueue("lms", "m v=1 1\nm v=2 2".to_string());
        f.enqueue("lms", "m v=3 3".to_string());
        assert!(f.flush(Duration::from_secs(5)));
        // flush() returning means delivery completed — no settling sleep.
        assert_eq!(influx.point_count("lms"), 3);
        assert_eq!(f.stats().delivered, 2);
        assert_eq!(f.stats().dropped, 0);
        server.shutdown();
    }

    #[test]
    fn empty_batches_are_skipped() {
        let (server, _influx) = db();
        let f = Forwarder::start(cfg(server.addr(), 4, 0, 1)).unwrap();
        f.enqueue("lms", String::new());
        assert!(f.flush(Duration::from_secs(1)));
        assert_eq!(f.stats(), ForwardStats::default());
        server.shutdown();
    }

    #[test]
    fn survives_database_restart_via_spool() {
        let (server, _old) = db();
        let addr = server.addr();
        let f = Forwarder::start(ForwardConfig {
            spool: Some(tmp_spool("restart")),
            ..cfg(addr, 64, 5, 2)
        })
        .unwrap();
        f.enqueue("lms", "m v=1 1".to_string());
        assert!(f.flush(Duration::from_secs(5)));
        server.shutdown();

        // DB is down: the next batch retries, trips the breaker or
        // exhausts, and lands in the spool. A new DB on the same port
        // picks it up through the drainer — flush() alone proves it.
        f.enqueue("lms", "m v=2 2".to_string());
        std::thread::sleep(Duration::from_millis(100));
        let influx2 = Influx::new(Clock::simulated(Timestamp::from_secs(2000)));
        let server2 = InfluxServer::start(addr, influx2.clone()).unwrap();
        assert!(f.flush(Duration::from_secs(10)));
        assert_eq!(influx2.point_count("lms"), 1);
        assert!(f.stats().retries > 0);
        assert_eq!(f.stats().dropped, 0);
        server2.shutdown();
    }

    #[test]
    fn overflow_drops_newest_and_counts_without_spool() {
        // Point at a dead address: worker shall retry while queue fills.
        let (server, _ix) = db();
        let dead = server.addr();
        server.shutdown();
        let f = Forwarder::start(cfg(dead, 2, 10, 1)).unwrap();
        for i in 0..50 {
            f.enqueue("lms", format!("m v={i} {i}"));
        }
        assert!(f.stats().dropped > 0);
    }

    #[test]
    fn overflow_spills_to_spool_and_loses_nothing() {
        let (server, _ix) = db();
        let addr = server.addr();
        server.shutdown();
        let f = Forwarder::start(ForwardConfig {
            spool: Some(tmp_spool("overflow")),
            ..cfg(addr, 2, 1, 1)
        })
        .unwrap();
        for i in 0..50 {
            f.enqueue("lms", format!("m v={i} {i}"));
        }
        // Everything lands in the spool (the DB is down); nothing is lost.
        let deadline = Instant::now() + Duration::from_secs(10);
        while f.stats().spooled < 50 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
        let s = f.stats();
        assert_eq!(s.dropped, 0, "{s:?}");
        assert_eq!(s.spooled, 50, "{s:?}");

        // Bring the DB back: the drainer replays every spooled batch.
        let influx2 = Influx::new(Clock::simulated(Timestamp::from_secs(3000)));
        let server2 = InfluxServer::start(addr, influx2.clone()).unwrap();
        assert!(f.flush(Duration::from_secs(15)));
        assert_eq!(influx2.point_count("lms"), 50);
        assert_eq!(f.stats().replayed, 50);
        server2.shutdown();
    }

    #[test]
    fn breaker_opens_and_batches_bypass_retries() {
        let (server, _ix) = db();
        let addr = server.addr();
        server.shutdown();
        let f = Forwarder::start(ForwardConfig {
            spool: Some(tmp_spool("breaker")),
            breaker: BreakerConfig {
                failure_threshold: 2,
                open_for: Duration::from_secs(60),
            },
            ..cfg(addr, 64, 10, 1)
        })
        .unwrap();
        f.enqueue("lms", "m v=1 1".to_string());
        let deadline = Instant::now() + Duration::from_secs(5);
        while f.stats().breaker != BreakerState::Open && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(f.stats().breaker, BreakerState::Open);
        let retries_when_open = f.stats().retries;

        // With the breaker open, further batches go straight to the spool
        // without new retry attempts.
        for i in 0..10 {
            f.enqueue("lms", format!("m v={i} {i}"));
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while f.stats().spooled < 11 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        let s = f.stats();
        assert_eq!(s.spooled, 11, "{s:?}");
        assert_eq!(s.retries, retries_when_open, "open breaker must not retry: {s:?}");
    }

    #[test]
    fn permanent_errors_are_rejected_not_spooled() {
        let (server, influx) = db();
        let f = Forwarder::start(ForwardConfig {
            spool: Some(tmp_spool("reject")),
            // With one worker the two enqueues below could merge, and the
            // database partially accepts a mixed body — disable coalescing
            // so the malformed batch is refused on its own.
            coalesce_bytes: 0,
            ..cfg(server.addr(), 64, 3, 1)
        })
        .unwrap();
        // The database answers 404 for a missing db only on query; for
        // writes, a malformed batch yields 400 — a permanent error.
        f.enqueue("lms", "completely broken line".to_string());
        f.enqueue("lms", "ok v=1 1".to_string());
        assert!(f.flush(Duration::from_secs(5)));
        let s = f.stats();
        assert_eq!(s.rejected, 1, "{s:?}");
        assert_eq!(s.delivered, 1, "{s:?}");
        assert_eq!(s.spooled, 0, "{s:?}");
        assert_eq!(s.retries, 0, "permanent errors must not be retried: {s:?}");
        assert_eq!(influx.point_count("lms"), 1);
        server.shutdown();
    }

    #[test]
    fn permanent_error_on_half_open_probe_releases_breaker() {
        let (server, _ix) = db();
        let addr = server.addr();
        server.shutdown();
        let f = Forwarder::start(ForwardConfig {
            spool: Some(tmp_spool("probe-reject")),
            breaker: BreakerConfig {
                failure_threshold: 1,
                open_for: Duration::from_millis(50),
            },
            ..cfg(addr, 64, 0, 1)
        })
        .unwrap();
        // DB down: both batches spill, the malformed one at the spool head.
        f.enqueue("lms", "completely broken line".to_string());
        f.enqueue("lms", "ok v=1 1".to_string());
        let deadline = Instant::now() + Duration::from_secs(5);
        while f.stats().spooled < 2 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(f.stats().spooled, 2);

        // DB back: the drainer's half-open probe hits the malformed batch
        // and gets a permanent 400. The breaker must be released (not
        // stay wedged HalfOpen with the probe claimed) so the good batch
        // still replays — flush() alone proves it.
        let influx2 = Influx::new(Clock::simulated(Timestamp::from_secs(4000)));
        let server2 = InfluxServer::start(addr, influx2.clone()).unwrap();
        assert!(f.flush(Duration::from_secs(10)));
        let s = f.stats();
        assert_eq!(s.rejected, 1, "{s:?}");
        assert_eq!(s.replayed, 2, "{s:?}");
        assert_eq!(s.dropped, 0, "{s:?}");
        assert_eq!(influx2.point_count("lms"), 1);
        server2.shutdown();
    }

    #[test]
    fn spool_survives_forwarder_restart() {
        let (server, _ix) = db();
        let addr = server.addr();
        server.shutdown();
        let spool_cfg = tmp_spool("fwd-restart");
        {
            let f = Forwarder::start(ForwardConfig {
                spool: Some(spool_cfg.clone()),
                ..cfg(addr, 64, 1, 2)
            })
            .unwrap();
            for i in 0..5 {
                f.enqueue("lms", format!("m v={i} {i}"));
            }
            let deadline = Instant::now() + Duration::from_secs(10);
            while f.stats().spooled < 5 && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(20));
            }
            assert_eq!(f.stats().spooled, 5);
        } // forwarder drops — simulated crash/restart

        let influx2 = Influx::new(Clock::simulated(Timestamp::from_secs(2000)));
        let server2 = InfluxServer::start(addr, influx2.clone()).unwrap();
        let f = Forwarder::start(ForwardConfig {
            spool: Some(spool_cfg),
            ..cfg(addr, 64, 1, 2)
        })
        .unwrap();
        assert!(f.flush(Duration::from_secs(10)));
        assert_eq!(influx2.point_count("lms"), 5);
        assert_eq!(f.stats().replayed, 5);
        server2.shutdown();
    }

    #[test]
    fn coalesces_queued_backlog_into_fewer_deliveries() {
        // Reserve an address, then take the database down so the single
        // worker's first batch sits in retry backoff while the rest of
        // the burst queues up behind it.
        let (server, _ix) = db();
        let addr = server.addr();
        server.shutdown();
        let f = Forwarder::start(ForwardConfig {
            backoff_base: Duration::from_millis(150),
            ..cfg(addr, 64, 40, 1)
        })
        .unwrap();
        f.enqueue("lms", "m v=0 100000000000".to_string());
        for i in 1..21u32 {
            f.enqueue("lms", format!("m v={i} {}000000000", 100 + i));
        }
        // Bring the database back: the worker delivers the first batch,
        // then picks up the whole queued backlog as merged runs.
        let influx2 = Influx::new(Clock::simulated(Timestamp::from_secs(5000)));
        let server2 = InfluxServer::start(addr, influx2.clone()).unwrap();
        assert!(f.flush(Duration::from_secs(15)));
        let s = f.stats();
        assert_eq!(s.delivered, 21, "{s:?}");
        assert_eq!(s.dropped, 0, "{s:?}");
        assert_eq!(s.rejected, 0, "{s:?}");
        assert!(s.coalesced >= 2, "queued burst should merge: {s:?}");
        assert_eq!(influx2.point_count("lms"), 21);
        server2.shutdown();
    }

    #[test]
    fn worker_pool_drains_concurrently() {
        let (server, influx) = db();
        let f = Forwarder::start(cfg(server.addr(), 256, 2, 4)).unwrap();
        for i in 0..40 {
            f.enqueue("lms", format!("m,w=a v={i} {i}"));
        }
        assert!(f.flush(Duration::from_secs(10)));
        // flush() waits for in-flight batches too — assert immediately.
        assert_eq!(f.stats().delivered, 40);
        assert_eq!(influx.point_count("lms"), 40);
        server.shutdown();
    }

    #[test]
    fn default_workers_is_at_least_two() {
        assert!(default_workers() >= 2);
    }
}
