//! # lms-router
//!
//! The **metrics router** — the central component of the LIKWID Monitoring
//! Stack (paper Sec. III-B). It:
//!
//! - mimics the HTTP write interface of an InfluxDB database, so any
//!   existing collector (Diamond, curl cronjobs, Ganglia pull proxies) can
//!   point at it unchanged,
//! - adds an endpoint for **job start/end signals** from the scheduler;
//!   signals are piggy-backed with tags that land in the **tag store**,
//!   keyed by hostname,
//! - **enriches** every incoming metric and event with the job tags of its
//!   host before forwarding to the database,
//! - forwards signals into the database as events ("to be used later as
//!   annotations in the graphs"),
//! - optionally **duplicates** metrics into per-user databases,
//! - optionally **publishes** metrics and meta information via the message
//!   queue for stream analyzers.
//!
//! Modules: [`tagstore`] (hostname → job tags), [`forward`] (buffered,
//! durable, retrying delivery to one database), [`delivery`] (the cluster
//! fabric: per-node forwarders behind a seeded rendezvous ring, quorum
//! writes, hinted handoff, scatter-gather reads), [`breaker`] (the
//! per-destination circuit breaker), [`repair`] (anti-entropy read-repair:
//! digest diffing and divergent-range replay), [`router`] (the enrichment
//! core), [`server`] (HTTP endpoints), [`proxy`] (the Ganglia gmond pull
//! proxy).

pub mod breaker;
pub mod delivery;
pub mod forward;
pub mod proxy;
pub mod repair;
pub mod router;
pub mod server;
pub mod tagstore;

pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use delivery::{ClusterForwarder, DestinationStats};
pub use forward::{ForwardConfig, ForwardStats, Forwarder};
pub use lms_cluster::ClusterConfig;
pub use repair::RepairOutcome;
pub use router::{Router, RouterConfig, RouterStats, WriteOutcome};
pub use server::RouterServer;
pub use tagstore::{JobSignal, TagStore};
