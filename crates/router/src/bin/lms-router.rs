//! `lms-router` — the metrics router as a standalone daemon.
//!
//! ```text
//! lms-router --db <host:port> [--listen 127.0.0.1:8087]
//!            [--per-user] [--publish 127.0.0.1:5556]
//!            [--spool-dir <path>] [--coalesce-bytes N]
//!            [--max-connections N] [--max-body-bytes N]
//!            [--gmond <host:port> --gmond-interval <secs>]
//! ```
//!
//! Accepts InfluxDB-style writes on `--listen`, enriches them with job
//! tags from `/signal/start|end`, and forwards to the database at `--db`.
//! With `--spool-dir`, batches the database cannot accept spill to a
//! durable on-disk spool and are replayed once it recovers; without it,
//! overflow is dropped (and counted). With `--publish`, metrics and
//! signals fan out on the message queue; with `--gmond`, a pulling proxy
//! polls a Ganglia gmond.

use lms_http::ServerConfig;
use lms_mq::Publisher;
use lms_router::proxy::GangliaProxy;
use lms_router::{Router, RouterConfig, RouterServer};
use lms_spool::SpoolConfig;
use lms_util::{Clock, Error, Result};
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

fn resolve(value: &str, what: &str) -> Result<SocketAddr> {
    value
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| Error::config(format!("{what} `{value}` resolved to nothing")))
}

fn run() -> Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut listen = "127.0.0.1:8087".to_string();
    let mut db: Option<SocketAddr> = None;
    let mut per_user = false;
    let mut publish: Option<SocketAddr> = None;
    let mut gmond: Option<SocketAddr> = None;
    let mut gmond_interval = Duration::from_secs(60);
    let mut spool_dir: Option<String> = None;
    let mut coalesce_bytes: Option<usize> = None;
    let mut server_config = ServerConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--listen" => {
                listen = it.next().ok_or_else(|| Error::config("--listen needs an address"))?.clone()
            }
            "--db" => {
                db = Some(resolve(
                    it.next().ok_or_else(|| Error::config("--db needs an address"))?,
                    "database",
                )?)
            }
            "--per-user" => per_user = true,
            "--max-connections" => {
                server_config.max_connections = it
                    .next()
                    .ok_or_else(|| Error::config("--max-connections needs a value"))?
                    .parse()
                    .map_err(|_| Error::config("bad --max-connections"))?
            }
            "--max-body-bytes" => {
                server_config.max_body_bytes = it
                    .next()
                    .ok_or_else(|| Error::config("--max-body-bytes needs a value"))?
                    .parse()
                    .map_err(|_| Error::config("bad --max-body-bytes"))?
            }
            "--spool-dir" => {
                spool_dir =
                    Some(it.next().ok_or_else(|| Error::config("--spool-dir needs a path"))?.clone())
            }
            "--coalesce-bytes" => {
                coalesce_bytes = Some(
                    it.next()
                        .ok_or_else(|| Error::config("--coalesce-bytes needs a value"))?
                        .parse()
                        .map_err(|_| Error::config("bad --coalesce-bytes"))?,
                )
            }
            "--publish" => {
                publish = Some(resolve(
                    it.next().ok_or_else(|| Error::config("--publish needs an address"))?,
                    "publisher",
                )?)
            }
            "--gmond" => {
                gmond = Some(resolve(
                    it.next().ok_or_else(|| Error::config("--gmond needs an address"))?,
                    "gmond",
                )?)
            }
            "--gmond-interval" => {
                let s: u64 = it
                    .next()
                    .ok_or_else(|| Error::config("--gmond-interval needs seconds"))?
                    .parse()
                    .map_err(|_| Error::config("bad --gmond-interval"))?;
                gmond_interval = Duration::from_secs(s.max(1));
            }
            "--help" | "-h" => {
                println!(
                    "usage: lms-router --db host:port [--listen addr] [--per-user] \
                     [--spool-dir path] [--coalesce-bytes N] [--publish addr] \
                     [--max-connections N] [--max-body-bytes N] \
                     [--gmond addr --gmond-interval secs]"
                );
                return Ok(());
            }
            other => return Err(Error::config(format!("unknown argument `{other}`"))),
        }
    }
    let db = db.ok_or_else(|| Error::config("--db is required"))?;

    let publisher = match publish {
        Some(addr) => {
            let p = Publisher::bind(addr)?;
            println!("publishing on {}", p.addr());
            Some(p)
        }
        None => None,
    };
    let mut config = RouterConfig {
        per_user,
        spool: spool_dir.map(SpoolConfig::new),
        ..Default::default()
    };
    if let Some(b) = coalesce_bytes {
        config.coalesce_bytes = b;
    }
    let router = Arc::new(Router::new(db, config, Clock::system(), publisher)?);
    let server = RouterServer::start_with(listen.as_str(), server_config, router.clone())?;
    println!("lms-router listening on http://{} → db http://{db}", server.addr());

    let proxy = gmond.map(GangliaProxy::new).transpose()?;
    if let Some(addr) = gmond {
        println!("pulling gmond at {addr} every {}s", gmond_interval.as_secs());
    }

    loop {
        std::thread::sleep(gmond_interval);
        if let Some(proxy) = &proxy {
            match proxy.pull_once(&router) {
                Ok(n) => println!("gmond: pulled {n} points"),
                Err(e) => eprintln!("gmond pull failed: {e}"),
            }
        }
        let s = router.stats();
        println!(
            "stats: in={} enriched={} rejected={} signals={} delivered={} dropped={} \
             spooled={} replayed={} pending={} breaker={}",
            s.lines_in,
            s.lines_enriched,
            s.lines_rejected,
            s.signals,
            s.forward.delivered,
            s.forward.dropped,
            s.forward.spooled,
            s.forward.replayed,
            s.forward.spool_pending,
            s.forward.breaker.as_str()
        );
    }
}

fn main() {
    if let Err(e) = run() {
        eprintln!("lms-router: {e}");
        std::process::exit(1);
    }
}
