//! `lms-router` — the metrics router as a standalone daemon.
//!
//! ```text
//! lms-router --db <host:port> [--listen 127.0.0.1:8087]
//!            [--per-user] [--publish 127.0.0.1:5556]
//!            [--spool-dir <path>] [--coalesce-bytes N]
//!            [--max-connections N] [--max-body-bytes N]
//!            [--gmond <host:port> --gmond-interval <secs>]
//! lms-router --cluster-node <host:port> [--cluster-node <host:port> ...]
//!            [--replication R] [--write-quorum W] [--repair-interval-secs N]
//!            [...]
//! ```
//!
//! Accepts InfluxDB-style writes on `--listen`, enriches them with job
//! tags from `/signal/start|end`, and forwards to the database at `--db`.
//! With `--spool-dir`, batches the database cannot accept spill to a
//! durable on-disk spool and are replayed once it recovers; without it,
//! overflow is dropped (and counted). With `--publish`, metrics and
//! signals fan out on the message queue; with `--gmond`, a pulling proxy
//! polls a Ganglia gmond.
//!
//! **Cluster mode:** pass `--cluster-node` once per database node instead
//! of `--db`. Series are placed on `--replication R` nodes by a seeded
//! rendezvous hash ring; a write is acknowledged once `--write-quorum W`
//! node-batches are queued or durably spooled. A node behind an open
//! circuit breaker has its share spilled to a per-node spool as hinted
//! handoff and replayed after recovery. Queries scatter-gather across all
//! nodes and merge last-writer-wins, degrading to partial results. With
//! `--repair-interval-secs` (and R ≥ 2) the router periodically runs an
//! anti-entropy pass: it diffs the nodes' `/integrity` digests and replays
//! each divergent hour from its healthiest replica through the write path.

use lms_http::ServerConfig;
use lms_mq::Publisher;
use lms_router::proxy::GangliaProxy;
use lms_router::{ClusterConfig, Router, RouterConfig, RouterServer};
use lms_spool::SpoolConfig;
use lms_util::{Clock, Error, Result};
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

fn resolve(value: &str, what: &str) -> Result<SocketAddr> {
    value
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| Error::config(format!("{what} `{value}` resolved to nothing")))
}

fn run() -> Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut listen = "127.0.0.1:8087".to_string();
    let mut db: Option<SocketAddr> = None;
    let mut cluster_nodes: Vec<SocketAddr> = Vec::new();
    let mut replication: usize = 1;
    let mut write_quorum: usize = 1;
    let mut per_user = false;
    let mut publish: Option<SocketAddr> = None;
    let mut gmond: Option<SocketAddr> = None;
    let mut gmond_interval = Duration::from_secs(60);
    let mut spool_dir: Option<String> = None;
    let mut coalesce_bytes: Option<usize> = None;
    let mut repair_interval: Option<Duration> = None;
    let mut server_config = ServerConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--listen" => {
                listen = it.next().ok_or_else(|| Error::config("--listen needs an address"))?.clone()
            }
            "--db" => {
                db = Some(resolve(
                    it.next().ok_or_else(|| Error::config("--db needs an address"))?,
                    "database",
                )?)
            }
            "--cluster-node" => cluster_nodes.push(resolve(
                it.next().ok_or_else(|| Error::config("--cluster-node needs an address"))?,
                "cluster node",
            )?),
            "--replication" => {
                replication = it
                    .next()
                    .ok_or_else(|| Error::config("--replication needs a value"))?
                    .parse()
                    .map_err(|_| Error::config("bad --replication"))?
            }
            "--write-quorum" => {
                write_quorum = it
                    .next()
                    .ok_or_else(|| Error::config("--write-quorum needs a value"))?
                    .parse()
                    .map_err(|_| Error::config("bad --write-quorum"))?
            }
            "--per-user" => per_user = true,
            "--max-connections" => {
                server_config.max_connections = it
                    .next()
                    .ok_or_else(|| Error::config("--max-connections needs a value"))?
                    .parse()
                    .map_err(|_| Error::config("bad --max-connections"))?
            }
            "--max-body-bytes" => {
                server_config.max_body_bytes = it
                    .next()
                    .ok_or_else(|| Error::config("--max-body-bytes needs a value"))?
                    .parse()
                    .map_err(|_| Error::config("bad --max-body-bytes"))?
            }
            "--spool-dir" => {
                spool_dir =
                    Some(it.next().ok_or_else(|| Error::config("--spool-dir needs a path"))?.clone())
            }
            // Anti-entropy repair cadence; 0 (the default) disables it.
            "--repair-interval-secs" => {
                let s: u64 = it
                    .next()
                    .ok_or_else(|| Error::config("--repair-interval-secs needs seconds"))?
                    .parse()
                    .map_err(|_| Error::config("bad --repair-interval-secs"))?;
                repair_interval = (s > 0).then(|| Duration::from_secs(s));
            }
            "--coalesce-bytes" => {
                coalesce_bytes = Some(
                    it.next()
                        .ok_or_else(|| Error::config("--coalesce-bytes needs a value"))?
                        .parse()
                        .map_err(|_| Error::config("bad --coalesce-bytes"))?,
                )
            }
            "--publish" => {
                publish = Some(resolve(
                    it.next().ok_or_else(|| Error::config("--publish needs an address"))?,
                    "publisher",
                )?)
            }
            "--gmond" => {
                gmond = Some(resolve(
                    it.next().ok_or_else(|| Error::config("--gmond needs an address"))?,
                    "gmond",
                )?)
            }
            "--gmond-interval" => {
                let s: u64 = it
                    .next()
                    .ok_or_else(|| Error::config("--gmond-interval needs seconds"))?
                    .parse()
                    .map_err(|_| Error::config("bad --gmond-interval"))?;
                gmond_interval = Duration::from_secs(s.max(1));
            }
            "--help" | "-h" => {
                println!(
                    "usage: lms-router --db host:port [--listen addr] [--per-user] \
                     [--spool-dir path] [--coalesce-bytes N] [--publish addr] \
                     [--max-connections N] [--max-body-bytes N] \
                     [--gmond addr --gmond-interval secs]\n       \
                     lms-router --cluster-node host:port [--cluster-node ...] \
                     [--replication R] [--write-quorum W] \
                     [--repair-interval-secs N] [...]"
                );
                return Ok(());
            }
            other => return Err(Error::config(format!("unknown argument `{other}`"))),
        }
    }
    let cluster = match (db, cluster_nodes.is_empty()) {
        (Some(_), false) => {
            return Err(Error::config("--db and --cluster-node are mutually exclusive"))
        }
        (Some(addr), true) => ClusterConfig::single(addr),
        (None, false) => {
            let mut c = ClusterConfig::new(cluster_nodes, replication);
            c.write_quorum = write_quorum;
            c
        }
        (None, true) => return Err(Error::config("--db or --cluster-node is required")),
    };

    let publisher = match publish {
        Some(addr) => {
            let p = Publisher::bind(addr)?;
            println!("publishing on {}", p.addr());
            Some(p)
        }
        None => None,
    };
    let mut config = RouterConfig {
        per_user,
        spool: spool_dir.map(SpoolConfig::new),
        ..Default::default()
    };
    if let Some(b) = coalesce_bytes {
        config.coalesce_bytes = b;
    }
    let describe = if cluster.nodes.len() == 1 {
        format!("db http://{}", cluster.nodes[0])
    } else {
        format!(
            "{} db nodes (R={}, W={})",
            cluster.nodes.len(),
            cluster.replication,
            cluster.write_quorum
        )
    };
    let router = Arc::new(Router::new_cluster(cluster, config, Clock::system(), publisher)?);
    let server = RouterServer::start_with(listen.as_str(), server_config, router.clone())?;
    println!("lms-router listening on http://{} → {describe}", server.addr());

    let proxy = gmond.map(GangliaProxy::new).transpose()?;
    if let Some(addr) = gmond {
        println!("pulling gmond at {addr} every {}s", gmond_interval.as_secs());
    }

    if let Some(interval) = repair_interval {
        println!("anti-entropy repair every {}s", interval.as_secs());
    }
    let tick = repair_interval.map_or(gmond_interval, |r| r.min(gmond_interval));
    let mut last_repair = std::time::Instant::now();
    let mut last_pull = std::time::Instant::now();
    loop {
        std::thread::sleep(tick);
        if let Some(proxy) = &proxy {
            if last_pull.elapsed() >= gmond_interval {
                last_pull = std::time::Instant::now();
                match proxy.pull_once(&router) {
                    Ok(n) => println!("gmond: pulled {n} points"),
                    Err(e) => eprintln!("gmond pull failed: {e}"),
                }
            }
        }
        if let Some(interval) = repair_interval {
            if last_repair.elapsed() >= interval {
                last_repair = std::time::Instant::now();
                let db = router.config().global_db.clone();
                let o = router.run_repair_pass(&[db.as_str()]);
                if o.divergent > 0 || o.errors > 0 {
                    println!(
                        "repair: {} divergent, {} repaired, {} lines, {} errors",
                        o.divergent, o.repaired_ranges, o.lines_rewritten, o.errors
                    );
                }
            }
        }
        let s = router.stats();
        println!(
            "stats: in={} enriched={} rejected={} signals={} delivered={} dropped={} \
             spooled={} replayed={} pending={} breaker={}",
            s.lines_in,
            s.lines_enriched,
            s.lines_rejected,
            s.signals,
            s.forward.delivered,
            s.forward.dropped,
            s.forward.spooled,
            s.forward.replayed,
            s.forward.spool_pending,
            s.forward.breaker.as_str()
        );
    }
}

fn main() {
    if let Err(e) = run() {
        eprintln!("lms-router: {e}");
        std::process::exit(1);
    }
}
