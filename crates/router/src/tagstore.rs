//! The tag store: hostname → job tags.
//!
//! "The signals are piggy-backed with tags, which are attached to all
//! measurements and events from the participating hosts during the job's
//! runtime. … Since all received metrics contain the hostname tag, the
//! hostname can be used as key for the hash table of the tag store."
//!
//! The store tracks which job owns which hosts; a job-end signal removes
//! exactly the tags its start installed. Nodes are assumed job-exclusive
//! (the commodity-cluster setting of the paper); a second job starting on
//! an occupied host replaces the mapping and the stale job's end signal
//! then leaves the newer mapping alone.

use lms_util::FxHashMap;

/// A parsed job lifecycle signal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSignal {
    /// Job identifier (scheduler job id).
    pub job_id: String,
    /// Owning user.
    pub user: String,
    /// Participating hostnames.
    pub hosts: Vec<String>,
    /// Additional tags to attach (queue, account, ...).
    pub extra_tags: Vec<(String, String)>,
}

#[derive(Debug, Clone)]
struct HostEntry {
    job_id: String,
    /// Fully materialized tag set for this host (jobid, user, extras).
    tags: Vec<(String, String)>,
}

/// Hostname-keyed tag store.
#[derive(Debug, Default)]
pub struct TagStore {
    hosts: FxHashMap<String, HostEntry>,
    /// job id → hosts (for end-signal cleanup and admin views).
    jobs: FxHashMap<String, Vec<String>>,
}

impl TagStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies a job-start signal: installs tags on all its hosts.
    ///
    /// A repeated start for the same job id (e.g. a requeued job) first
    /// clears the previous host mapping so no stale host keeps the tags.
    pub fn job_start(&mut self, signal: &JobSignal) {
        self.job_end(&signal.job_id);
        let mut tags = Vec::with_capacity(2 + signal.extra_tags.len());
        tags.push(("jobid".to_string(), signal.job_id.clone()));
        tags.push(("user".to_string(), signal.user.clone()));
        for (k, v) in &signal.extra_tags {
            if k != "jobid" && k != "user" && k != "hostname" {
                tags.push((k.clone(), v.clone()));
            }
        }
        for host in &signal.hosts {
            self.hosts.insert(
                host.clone(),
                HostEntry { job_id: signal.job_id.clone(), tags: tags.clone() },
            );
        }
        self.jobs.insert(signal.job_id.clone(), signal.hosts.clone());
    }

    /// Applies a job-end signal: removes the job's tags from hosts that
    /// still belong to it. Unknown job ids are a no-op (duplicate end
    /// signals are routine in schedulers).
    pub fn job_end(&mut self, job_id: &str) {
        let Some(hosts) = self.jobs.remove(job_id) else { return };
        for host in hosts {
            if self.hosts.get(&host).is_some_and(|e| e.job_id == job_id) {
                self.hosts.remove(&host);
            }
        }
    }

    /// The tags of a host (empty slice when no job runs there).
    pub fn tags_of(&self, hostname: &str) -> &[(String, String)] {
        self.hosts.get(hostname).map(|e| e.tags.as_slice()).unwrap_or(&[])
    }

    /// The job currently on a host.
    pub fn job_of(&self, hostname: &str) -> Option<&str> {
        self.hosts.get(hostname).map(|e| e.job_id.as_str())
    }

    /// The hosts of a running job.
    pub fn hosts_of(&self, job_id: &str) -> Option<&[String]> {
        self.jobs.get(job_id).map(Vec::as_slice)
    }

    /// All running job ids, sorted (admin view).
    pub fn running_jobs(&self) -> Vec<&str> {
        let mut ids: Vec<&str> = self.jobs.keys().map(String::as_str).collect();
        ids.sort_unstable();
        ids
    }

    /// Number of hosts currently tagged.
    pub fn tagged_host_count(&self) -> usize {
        self.hosts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signal(job: &str, user: &str, hosts: &[&str]) -> JobSignal {
        JobSignal {
            job_id: job.into(),
            user: user.into(),
            hosts: hosts.iter().map(|h| h.to_string()).collect(),
            extra_tags: vec![("queue".into(), "batch".into())],
        }
    }

    #[test]
    fn start_installs_tags_on_all_hosts() {
        let mut ts = TagStore::new();
        ts.job_start(&signal("42", "alice", &["h1", "h2"]));
        for h in ["h1", "h2"] {
            let tags = ts.tags_of(h);
            assert!(tags.contains(&("jobid".into(), "42".into())));
            assert!(tags.contains(&("user".into(), "alice".into())));
            assert!(tags.contains(&("queue".into(), "batch".into())));
        }
        assert!(ts.tags_of("h3").is_empty());
        assert_eq!(ts.job_of("h1"), Some("42"));
        assert_eq!(ts.hosts_of("42").unwrap().len(), 2);
    }

    #[test]
    fn end_removes_only_its_hosts() {
        let mut ts = TagStore::new();
        ts.job_start(&signal("42", "alice", &["h1", "h2"]));
        ts.job_start(&signal("43", "bob", &["h3"]));
        ts.job_end("42");
        assert!(ts.tags_of("h1").is_empty());
        assert!(ts.tags_of("h2").is_empty());
        assert_eq!(ts.job_of("h3"), Some("43"));
        assert_eq!(ts.running_jobs(), vec!["43"]);
        assert_eq!(ts.tagged_host_count(), 1);
    }

    #[test]
    fn duplicate_end_is_noop() {
        let mut ts = TagStore::new();
        ts.job_start(&signal("42", "alice", &["h1"]));
        ts.job_end("42");
        ts.job_end("42");
        ts.job_end("never-existed");
        assert_eq!(ts.tagged_host_count(), 0);
    }

    #[test]
    fn overlapping_job_replaces_and_stale_end_is_safe() {
        let mut ts = TagStore::new();
        ts.job_start(&signal("42", "alice", &["h1"]));
        // Scheduler reuses the node before the old end signal arrived.
        ts.job_start(&signal("99", "bob", &["h1"]));
        assert_eq!(ts.job_of("h1"), Some("99"));
        // The stale end for 42 must NOT strip job 99's tags.
        ts.job_end("42");
        assert_eq!(ts.job_of("h1"), Some("99"));
        ts.job_end("99");
        assert!(ts.tags_of("h1").is_empty());
    }

    #[test]
    fn reserved_extra_tags_are_filtered() {
        let mut ts = TagStore::new();
        let mut s = signal("42", "alice", &["h1"]);
        s.extra_tags.push(("jobid".into(), "evil".into()));
        s.extra_tags.push(("hostname".into(), "spoof".into()));
        ts.job_start(&s);
        let tags = ts.tags_of("h1");
        assert_eq!(tags.iter().filter(|(k, _)| k == "jobid").count(), 1);
        assert!(tags.contains(&("jobid".into(), "42".into())));
        assert!(!tags.iter().any(|(k, _)| k == "hostname"));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        // Random interleavings of start/end signals keep the store
        // consistent: every tagged host belongs to a running job that
        // lists it.
        proptest! {
            #[test]
            fn store_stays_consistent(ops in proptest::collection::vec(
                (0u8..2, 0u8..8, proptest::collection::vec(0u8..6, 1..4)), 1..40
            )) {
                let mut ts = TagStore::new();
                for (kind, job, hosts) in ops {
                    let job_id = format!("j{job}");
                    if kind == 0 {
                        let hosts: Vec<&str> = hosts.iter().map(|h| match h {
                            0 => "h0", 1 => "h1", 2 => "h2", 3 => "h3", 4 => "h4", _ => "h5",
                        }).collect();
                        let s = JobSignal {
                            job_id: job_id.clone(),
                            user: "u".into(),
                            hosts: hosts.iter().map(|h| h.to_string()).collect(),
                            extra_tags: vec![],
                        };
                        ts.job_start(&s);
                    } else {
                        ts.job_end(&job_id);
                    }
                    // Invariant: every tagged host's job is in running_jobs.
                    for h in ["h0", "h1", "h2", "h3", "h4", "h5"] {
                        if let Some(j) = ts.job_of(h) {
                            prop_assert!(ts.running_jobs().contains(&j));
                            let tags = ts.tags_of(h);
                            prop_assert!(tags.iter().any(|(k, v)| k == "jobid" && v == j));
                        }
                    }
                }
            }
        }
    }
}
