//! Anti-entropy read-repair: the router-side half of the integrity
//! protocol.
//!
//! Storage nodes summarise their data as per-(hour bucket, owner set)
//! digests (`GET /integrity`, see `lms_cluster::digest`). A repair pass:
//!
//! 1. fetches every node's digests for a database — an unreachable node is
//!    excluded from the comparison entirely (its share is the write path's
//!    hinted-handoff problem), while a reachable node that does not know
//!    the database counts as holding nothing,
//! 2. diffs them with [`diff_digests`], which elects the most-complete
//!    replica of each divergent bucket as the single source,
//! 3. re-fetches each divergent hour from the source (`/integrity/export`)
//!    and pushes the lines back through the normal routed write path.
//!
//! Replaying through the write path — rather than poking the stale node
//! directly — keeps repair idempotent and failure-tolerant for free:
//! last-write-wins makes over-delivery to already-healthy owners harmless,
//! and a stale owner that went down mid-repair receives its share as
//! hinted handoff instead of failing the pass.

use crate::delivery::ClusterForwarder;
use lms_cluster::{diff_digests, BucketDigest};
use lms_lineproto::parse_batch;
use lms_util::Error;
use std::collections::BTreeSet;

/// Counters from one repair pass (summable across databases and passes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairOutcome {
    /// Distinct (bucket, owner set) digest groups compared.
    pub buckets_checked: u64,
    /// Groups whose replicas disagreed.
    pub divergent: u64,
    /// Divergent ranges successfully re-fetched and re-written.
    pub repaired_ranges: u64,
    /// Lines replayed through the write path.
    pub lines_rewritten: u64,
    /// Nodes whose digests could not be fetched this pass.
    pub nodes_unreachable: u64,
    /// Export or re-write failures; the range stays divergent and the next
    /// pass retries it.
    pub errors: u64,
}

impl RepairOutcome {
    /// Accumulates another outcome into this one.
    pub fn add(&mut self, other: RepairOutcome) {
        self.buckets_checked += other.buckets_checked;
        self.divergent += other.divergent;
        self.repaired_ranges += other.repaired_ranges;
        self.lines_rewritten += other.lines_rewritten;
        self.nodes_unreachable += other.nodes_unreachable;
        self.errors += other.errors;
    }
}

/// Runs one anti-entropy pass for `db` over the cluster. A no-op (all
/// zeros) below two nodes or two replicas — with R = 1 no series has a
/// second copy to compare against.
pub fn repair_database(delivery: &ClusterForwarder, db: &str) -> RepairOutcome {
    let mut out = RepairOutcome::default();
    if delivery.node_count() < 2 || delivery.replication() < 2 {
        return out;
    }
    let per_node: Vec<Option<Vec<BucketDigest>>> = (0..delivery.node_count())
        .map(|i| match delivery.integrity_node(i, db) {
            Ok(digests) => Some(digests),
            // 404 = the node holds no series of this database: a valid,
            // empty answer (and a zero-count divergence if its peers in
            // some owner set do hold data).
            Err(Error::Remote { status: 404, .. }) => Some(Vec::new()),
            Err(_) => {
                out.nodes_unreachable += 1;
                None
            }
        })
        .collect();
    let groups: BTreeSet<(i64, u64)> = per_node
        .iter()
        .flatten()
        .flatten()
        .map(|d| (d.bucket_start, d.owners))
        .collect();
    out.buckets_checked = groups.len() as u64;

    let tasks = diff_digests(&per_node);
    out.divergent = tasks.len() as u64;
    for task in tasks {
        let lines = match delivery.integrity_export_node(task.source, db, task.start_ns, task.end_ns)
        {
            Ok(lines) => lines,
            Err(_) => {
                out.errors += 1;
                continue;
            }
        };
        // The export covers every series of the hour, not only the
        // divergent owner set — replay is LWW-idempotent, so the extra
        // copies are a bandwidth cost, not a correctness one.
        let parsed = parse_batch(&lines);
        if parsed.lines.is_empty() {
            out.errors += 1;
            continue;
        }
        let mut batch = delivery.batch(db);
        for line in &parsed.lines {
            batch.push_raw(line);
        }
        out.lines_rewritten += parsed.lines.len() as u64;
        if batch.submit() {
            out.repaired_ranges += 1;
        } else {
            out.errors += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forward::ForwardConfig;
    use lms_cluster::ClusterConfig;
    use lms_influx::{Influx, InfluxServer};
    use lms_lineproto::parse_batch;
    use lms_util::hash::fx_hash;
    use lms_util::ring::HashRing;
    use lms_util::{Clock, Timestamp};
    use std::time::Duration;

    fn cluster_of(n: usize, replication: usize) -> (Vec<InfluxServer>, Vec<Influx>, ClusterForwarder)
    {
        let mut servers = Vec::new();
        let mut handles = Vec::new();
        for _ in 0..n {
            let ix = Influx::new(Clock::simulated(Timestamp::from_secs(1000)));
            servers.push(InfluxServer::start("127.0.0.1:0", ix.clone()).unwrap());
            handles.push(ix);
        }
        let cfg = ClusterConfig {
            nodes: servers.iter().map(|s| s.addr()).collect(),
            replication,
            write_quorum: 1,
            seed: 7,
        };
        let template = ForwardConfig {
            io_timeout: Duration::from_secs(2),
            ..ForwardConfig::new(servers[0].addr())
        };
        let cf = ClusterForwarder::start(&cfg, &template).unwrap();
        (servers, handles, cf)
    }

    #[test]
    fn converged_cluster_finds_nothing_to_repair() {
        let (servers, _handles, cf) = cluster_of(3, 2);
        let mut batch = cf.batch("lms");
        let body: String =
            (0..20).map(|i| format!("m,hostname=h{i} v={i} {}\n", (i + 1) * 100)).collect();
        for line in &parse_batch(&body).lines {
            batch.push_raw(line);
        }
        assert!(batch.submit());
        assert!(cf.flush(Duration::from_secs(10)));
        let out = repair_database(&cf, "lms");
        assert_eq!(out.divergent, 0, "{out:?}");
        assert_eq!(out.repaired_ranges, 0);
        assert!(out.buckets_checked > 0);
        assert_eq!(out.nodes_unreachable, 0);
        for s in servers {
            s.shutdown();
        }
    }

    #[test]
    fn divergent_replica_is_healed_and_converges() {
        let (servers, handles, cf) = cluster_of(3, 2);
        let mut batch = cf.batch("lms");
        let body: String =
            (0..20).map(|i| format!("m,hostname=h{i} v={i} {}\n", (i + 1) * 100)).collect();
        for line in &parse_batch(&body).lines {
            batch.push_raw(line);
        }
        assert!(batch.submit());
        assert!(cf.flush(Duration::from_secs(10)));

        // Inject divergence the way quarantine or a wiped data dir would:
        // one *owner* of a series holds a point its replica lacks. Write
        // it directly into the lowest-indexed owner, bypassing the router.
        let ring = HashRing::new(3, 7);
        let hash = fx_hash(&("lms", "m,hostname=extra"));
        let owners = ring.owners(hash, 2);
        let lucky = *owners.iter().min().unwrap();
        handles[lucky]
            .write_lines("lms", "m,hostname=extra v=99 5000", Default::default())
            .unwrap();

        let out = repair_database(&cf, "lms");
        assert_eq!(out.divergent, 1, "{out:?}");
        assert_eq!(out.repaired_ranges, 1, "{out:?}");
        assert!(out.lines_rewritten > 0);
        assert_eq!(out.errors, 0);
        assert!(cf.flush(Duration::from_secs(10)));

        // Both owners now hold the point; a second pass finds nothing.
        for &o in &owners {
            let r = handles[o]
                .query("lms", "SELECT v FROM m WHERE hostname = 'extra'")
                .unwrap();
            assert_eq!(r.series[0].values[0][1].as_f64(), Some(99.0), "owner {o}");
        }
        let out = repair_database(&cf, "lms");
        assert_eq!(out.divergent, 0, "second pass must converge: {out:?}");
        for s in servers {
            s.shutdown();
        }
    }

    #[test]
    fn unreachable_node_is_skipped_not_repaired() {
        let (mut servers, _handles, cf) = cluster_of(3, 2);
        let mut batch = cf.batch("lms");
        for line in &parse_batch("m,hostname=h1 v=1 100\nm,hostname=h2 v=2 200").lines {
            batch.push_raw(line);
        }
        assert!(batch.submit());
        assert!(cf.flush(Duration::from_secs(10)));
        servers.pop().unwrap().shutdown();
        let out = repair_database(&cf, "lms");
        assert_eq!(out.nodes_unreachable, 1, "{out:?}");
        assert_eq!(out.errors, 0, "{out:?}");
        for s in servers {
            s.shutdown();
        }
    }

    #[test]
    fn single_replica_clusters_are_a_no_op() {
        let (servers, _handles, cf) = cluster_of(2, 1);
        assert_eq!(repair_database(&cf, "lms"), RepairOutcome::default());
        for s in servers {
            s.shutdown();
        }
    }
}
