//! The SUB side: connect, declare topic prefixes, receive.

use crate::frame::{self, Message, CTRL_SUB, CTRL_UNSUB};
use lms_util::{Error, Result};
use std::io::BufReader;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A subscriber connection to one [`Publisher`](crate::Publisher).
///
/// `recv_timeout` reads on the calling thread; a subscriber is therefore
/// single-consumer (wrap in your own thread for background consumption —
/// the stream analyzer in `lms-analysis` does exactly that).
pub struct Subscriber {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Subscriber {
    /// Connects to a publisher.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self> {
        let addr: SocketAddr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| Error::config("address resolved to nothing"))?;
        let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Subscriber { reader, writer: stream })
    }

    /// Subscribes to a topic prefix. The empty string matches everything.
    pub fn subscribe(&mut self, prefix: &str) -> Result<()> {
        self.send_ctrl(CTRL_SUB, prefix)
    }

    /// Removes a previously registered prefix.
    pub fn unsubscribe(&mut self, prefix: &str) -> Result<()> {
        self.send_ctrl(CTRL_UNSUB, prefix)
    }

    fn send_ctrl(&mut self, ctrl: &str, prefix: &str) -> Result<()> {
        use std::io::Write as _;
        let f = frame::encode(ctrl, prefix.as_bytes())?;
        self.writer.write_all(&f)?;
        self.writer.flush()?;
        Ok(())
    }

    /// Receives the next message, waiting up to `timeout`.
    ///
    /// Returns `Ok(None)` on timeout; `Err` when the publisher went away.
    pub fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Message>> {
        use std::io::BufRead as _;
        // Peek (without consuming) so a timeout cannot strand us mid-frame.
        self.reader.get_ref().set_read_timeout(Some(timeout))?;
        match self.reader.fill_buf() {
            Ok([]) => return Err(Error::protocol("publisher closed the connection")),
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return Ok(None)
            }
            Err(e) => return Err(e.into()),
        }
        // A frame has started arriving: finish reading it with a generous
        // timeout (frames are small; the publisher writes them atomically).
        self.reader.get_ref().set_read_timeout(Some(Duration::from_secs(30)))?;
        match frame::read_frame(&mut self.reader)? {
            Some(m) => Ok(Some(m)),
            None => Err(Error::protocol("publisher closed the connection")),
        }
    }

    /// Receives, blocking indefinitely.
    pub fn recv(&mut self) -> Result<Message> {
        self.reader.get_ref().set_read_timeout(None)?;
        match frame::read_frame(&mut self.reader)? {
            Some(m) => Ok(m),
            None => Err(Error::protocol("publisher closed the connection")),
        }
    }
}
