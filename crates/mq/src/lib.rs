//! # lms-mq
//!
//! A ZeroMQ-substitute **PUB/SUB message queue** over TCP.
//!
//! The paper's router publishes meta information (job starts, tags) and
//! metrics via ZeroMQ so that "other tools like aggregators and stream
//! analyzers" can attach. ZeroMQ is not in the offline dependency set, so
//! this crate reimplements the slice LMS uses, with the same semantics:
//!
//! - **topic prefix filtering** — a subscription to `"job."` receives
//!   `"job.start"` and `"job.end"`,
//! - **fire-and-forget fan-out** — publishing never blocks on a subscriber,
//! - **high-water mark** — a slow subscriber's queue fills up and further
//!   messages *for that subscriber* are dropped (counted, observable),
//! - **slow-joiner behaviour** — messages published before a subscription
//!   is registered are not delivered.
//!
//! Wire format per frame: `u32` big-endian total length, topic bytes, one
//! `0x00` separator, payload bytes. Subscriptions travel on the same socket
//! as frames with topic `\x01SUB`/`\x01UNSUB` and the pattern as payload.
//!
//! ```
//! use lms_mq::{Publisher, Subscriber};
//! use std::time::Duration;
//!
//! let publisher = Publisher::bind("127.0.0.1:0").unwrap();
//! let mut sub = Subscriber::connect(publisher.addr()).unwrap();
//! sub.subscribe("metrics.").unwrap();
//! publisher.wait_for_subscribers(1, Duration::from_secs(2)).unwrap();
//!
//! publisher.publish("metrics.cpu", b"cpu,hostname=h1 value=0.5");
//! let msg = sub.recv_timeout(Duration::from_secs(2)).unwrap().unwrap();
//! assert_eq!(msg.topic, "metrics.cpu");
//! ```

mod frame;
mod publisher;
mod subscriber;

pub use frame::Message;
pub use publisher::{Publisher, PublisherStats};
pub use subscriber::Subscriber;

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    const WAIT: Duration = Duration::from_secs(5);

    #[test]
    fn prefix_filtering() {
        let p = Publisher::bind("127.0.0.1:0").unwrap();
        let mut sub = Subscriber::connect(p.addr()).unwrap();
        sub.subscribe("job.").unwrap();
        p.wait_for_subscribers(1, WAIT).unwrap();

        p.publish("metrics.cpu", b"nope");
        p.publish("job.start", b"yes");
        let m = sub.recv_timeout(WAIT).unwrap().unwrap();
        assert_eq!(m.topic, "job.start");
        assert_eq!(m.payload, b"yes");
        // The filtered message must never arrive.
        assert!(sub.recv_timeout(Duration::from_millis(200)).unwrap().is_none());
    }

    #[test]
    fn empty_subscription_receives_everything() {
        let p = Publisher::bind("127.0.0.1:0").unwrap();
        let mut sub = Subscriber::connect(p.addr()).unwrap();
        sub.subscribe("").unwrap();
        p.wait_for_subscribers(1, WAIT).unwrap();
        p.publish("a", b"1");
        p.publish("b", b"2");
        assert_eq!(sub.recv_timeout(WAIT).unwrap().unwrap().topic, "a");
        assert_eq!(sub.recv_timeout(WAIT).unwrap().unwrap().topic, "b");
    }

    #[test]
    fn multiple_subscribers_fan_out() {
        let p = Publisher::bind("127.0.0.1:0").unwrap();
        let mut s1 = Subscriber::connect(p.addr()).unwrap();
        let mut s2 = Subscriber::connect(p.addr()).unwrap();
        s1.subscribe("x").unwrap();
        s2.subscribe("x").unwrap();
        p.wait_for_subscribers(2, WAIT).unwrap();
        p.publish("x", b"fan");
        assert_eq!(s1.recv_timeout(WAIT).unwrap().unwrap().payload, b"fan");
        assert_eq!(s2.recv_timeout(WAIT).unwrap().unwrap().payload, b"fan");
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let p = Publisher::bind("127.0.0.1:0").unwrap();
        let mut sub = Subscriber::connect(p.addr()).unwrap();
        sub.subscribe("t").unwrap();
        p.wait_for_subscribers(1, WAIT).unwrap();
        p.publish("t", b"1");
        assert!(sub.recv_timeout(WAIT).unwrap().is_some());
        sub.unsubscribe("t").unwrap();
        // Give the unsubscribe time to land, then publish.
        std::thread::sleep(Duration::from_millis(100));
        p.publish("t", b"2");
        assert!(sub.recv_timeout(Duration::from_millis(200)).unwrap().is_none());
    }

    #[test]
    fn slow_joiner_misses_early_messages() {
        let p = Publisher::bind("127.0.0.1:0").unwrap();
        p.publish("t", b"early");
        let mut sub = Subscriber::connect(p.addr()).unwrap();
        sub.subscribe("t").unwrap();
        p.wait_for_subscribers(1, WAIT).unwrap();
        p.publish("t", b"late");
        let m = sub.recv_timeout(WAIT).unwrap().unwrap();
        assert_eq!(m.payload, b"late");
    }

    #[test]
    fn disconnected_subscriber_is_dropped() {
        let p = Publisher::bind("127.0.0.1:0").unwrap();
        let mut sub = Subscriber::connect(p.addr()).unwrap();
        sub.subscribe("t").unwrap();
        p.wait_for_subscribers(1, WAIT).unwrap();
        drop(sub);
        // Publishing to a dead subscriber must not error or wedge; the
        // publisher eventually reaps it.
        for _ in 0..50 {
            p.publish("t", b"x");
            std::thread::sleep(Duration::from_millis(10));
            if p.subscriber_count() == 0 {
                return;
            }
        }
        panic!("dead subscriber never reaped");
    }

    #[test]
    fn stats_count_published_and_dropped() {
        let p = Publisher::bind_with_hwm("127.0.0.1:0", 4).unwrap();
        let mut sub = Subscriber::connect(p.addr()).unwrap();
        sub.subscribe("t").unwrap();
        p.wait_for_subscribers(1, WAIT).unwrap();
        // Stall the subscriber (never recv) and flood past the HWM.
        for i in 0..1000 {
            p.publish("t", format!("{i}").as_bytes());
        }
        let stats = p.stats();
        assert_eq!(stats.published, 1000);
        assert!(stats.dropped > 0, "HWM of 4 must drop under a 1000-message flood");
        // The subscriber still receives *some* messages.
        assert!(sub.recv_timeout(WAIT).unwrap().is_some());
    }

    #[test]
    fn binary_payloads_survive() {
        let p = Publisher::bind("127.0.0.1:0").unwrap();
        let mut sub = Subscriber::connect(p.addr()).unwrap();
        sub.subscribe("bin").unwrap();
        p.wait_for_subscribers(1, WAIT).unwrap();
        let payload: Vec<u8> = (0..=255).collect();
        p.publish("bin", &payload);
        assert_eq!(sub.recv_timeout(WAIT).unwrap().unwrap().payload, payload);
    }
}
