//! The PUB side: accept subscribers, fan out with per-subscriber queues.

use crate::frame::{self, CTRL_SUB, CTRL_UNSUB};
use crossbeam_channel::{bounded, Sender, TrySendError};
use lms_util::Result;
use parking_lot::Mutex;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Delivery statistics of a publisher.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PublisherStats {
    /// Messages passed to [`Publisher::publish`].
    pub published: u64,
    /// (message × subscriber) deliveries dropped at the high-water mark.
    pub dropped: u64,
}

struct SubscriberHandle {
    /// Topic prefixes this subscriber wants.
    topics: Arc<Mutex<Vec<String>>>,
    /// Encoded frames queued for the writer thread.
    queue: Sender<Arc<Vec<u8>>>,
    /// Set when the connection died; reaped on next publish.
    dead: Arc<AtomicBool>,
}

struct Shared {
    subscribers: Mutex<Vec<SubscriberHandle>>,
    published: AtomicU64,
    dropped: AtomicU64,
    stop: AtomicBool,
    hwm: usize,
}

/// The publishing end of the queue. Cloneable via `Arc` if needed; all
/// methods take `&self`.
pub struct Publisher {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<std::thread::JoinHandle<()>>,
}

impl Publisher {
    /// Binds with the default high-water mark (1024 frames per subscriber).
    pub fn bind<A: ToSocketAddrs>(addr: A) -> Result<Self> {
        Self::bind_with_hwm(addr, 1024)
    }

    /// Binds with an explicit per-subscriber high-water mark.
    pub fn bind_with_hwm<A: ToSocketAddrs>(addr: A, hwm: usize) -> Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            subscribers: Mutex::new(Vec::new()),
            published: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            hwm: hwm.max(1),
        });
        let acceptor = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("lms-mq-acceptor".into())
                .spawn(move || accept_loop(listener, shared))
                .expect("spawn mq acceptor")
        };
        Ok(Publisher { addr: local, shared, acceptor: Some(acceptor) })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Publishes one message: encode once, fan out to matching subscribers,
    /// never block. Encoding errors (NUL in topic) are returned; delivery
    /// failures are not errors, they are drops.
    pub fn publish(&self, topic: &str, payload: &[u8]) {
        self.shared.published.fetch_add(1, Ordering::Relaxed);
        let frame = match frame::encode(topic, payload) {
            Ok(f) => Arc::new(f),
            Err(_) => return, // NUL in topic: cannot happen for LMS topics
        };
        let mut subs = self.shared.subscribers.lock();
        subs.retain(|s| !s.dead.load(Ordering::Acquire));
        for sub in subs.iter() {
            let wants = sub.topics.lock().iter().any(|t| topic.starts_with(t.as_str()));
            if !wants {
                continue;
            }
            match sub.queue.try_send(frame.clone()) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                    self.shared.dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Number of currently connected subscribers (dead ones reaped lazily).
    pub fn subscriber_count(&self) -> usize {
        let mut subs = self.shared.subscribers.lock();
        subs.retain(|s| !s.dead.load(Ordering::Acquire));
        subs.len()
    }

    /// Blocks until at least `n` subscribers are connected *and have at
    /// least one subscription registered*, or the timeout expires.
    pub fn wait_for_subscribers(&self, n: usize, timeout: Duration) -> Result<()> {
        let deadline = Instant::now() + timeout;
        loop {
            {
                let subs = self.shared.subscribers.lock();
                let ready =
                    subs.iter().filter(|s| !s.topics.lock().is_empty()).count();
                if ready >= n {
                    return Ok(());
                }
            }
            if Instant::now() >= deadline {
                return Err(lms_util::Error::invalid(format!(
                    "timed out waiting for {n} subscribers"
                )));
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Current delivery statistics.
    pub fn stats(&self) -> PublisherStats {
        PublisherStats {
            published: self.shared.published.load(Ordering::Relaxed),
            dropped: self.shared.dropped.load(Ordering::Relaxed),
        }
    }
}

impl Drop for Publisher {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        let _ = TcpStream::connect(self.addr); // unblock accept
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        // Subscriber writer/reader threads exit when their sockets close
        // (queues disconnect as handles drop with the subscriber list).
        self.shared.subscribers.lock().clear();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    for conn in listener.incoming() {
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let _ = stream.set_nodelay(true);
        let topics = Arc::new(Mutex::new(Vec::new()));
        let dead = Arc::new(AtomicBool::new(false));
        let (tx, rx) = bounded::<Arc<Vec<u8>>>(shared.hwm);

        // Writer thread: drain the queue onto the socket.
        {
            let stream = match stream.try_clone() {
                Ok(s) => s,
                Err(_) => continue,
            };
            let dead = dead.clone();
            std::thread::Builder::new()
                .name("lms-mq-writer".into())
                .spawn(move || {
                    let mut w = std::io::BufWriter::new(stream);
                    while let Ok(f) = rx.recv() {
                        use std::io::Write as _;
                        if frame::write_all(&mut w, &f).is_err() || w.flush().is_err() {
                            dead.store(true, Ordering::Release);
                            return;
                        }
                    }
                })
                .expect("spawn mq writer");
        }

        // Reader thread: apply subscription control frames; detect close.
        {
            let topics = topics.clone();
            let dead = dead.clone();
            std::thread::Builder::new()
                .name("lms-mq-reader".into())
                .spawn(move || {
                    let mut r = std::io::BufReader::new(stream);
                    loop {
                        match frame::read_frame(&mut r) {
                            Ok(Some(msg)) if msg.topic == CTRL_SUB => {
                                let pat = String::from_utf8_lossy(&msg.payload).into_owned();
                                let mut t = topics.lock();
                                if !t.contains(&pat) {
                                    t.push(pat);
                                }
                            }
                            Ok(Some(msg)) if msg.topic == CTRL_UNSUB => {
                                let pat = String::from_utf8_lossy(&msg.payload).into_owned();
                                topics.lock().retain(|p| *p != pat);
                            }
                            Ok(Some(_)) => {} // subscribers don't send data
                            Ok(None) | Err(_) => {
                                dead.store(true, Ordering::Release);
                                return;
                            }
                        }
                    }
                })
                .expect("spawn mq reader");
        }

        shared.subscribers.lock().push(SubscriberHandle { topics, queue: tx, dead });
    }
}
