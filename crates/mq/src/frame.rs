//! Wire framing: `u32` BE length, topic, `0x00`, payload.

use lms_util::{Error, Result};
use std::io::{Read, Write};

/// Control topic prefix for subscription management frames.
pub(crate) const CTRL_SUB: &str = "\u{1}SUB";
/// Control topic for unsubscription frames.
pub(crate) const CTRL_UNSUB: &str = "\u{1}UNSUB";

/// Frames larger than this are rejected (corrupt length guard).
const MAX_FRAME: usize = 16 * 1024 * 1024;

/// One pub/sub message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Topic the message was published under.
    pub topic: String,
    /// Raw payload bytes.
    pub payload: Vec<u8>,
}

/// Serializes a frame into a fresh buffer.
pub(crate) fn encode(topic: &str, payload: &[u8]) -> Result<Vec<u8>> {
    if topic.as_bytes().contains(&0) {
        return Err(Error::invalid("topic must not contain NUL"));
    }
    let body_len = topic.len() + 1 + payload.len();
    if body_len > MAX_FRAME {
        return Err(Error::invalid(format!("frame of {body_len} bytes exceeds limit")));
    }
    let mut buf = Vec::with_capacity(4 + body_len);
    buf.extend_from_slice(&(body_len as u32).to_be_bytes());
    buf.extend_from_slice(topic.as_bytes());
    buf.push(0);
    buf.extend_from_slice(payload);
    Ok(buf)
}

/// Reads one frame from a stream. `Ok(None)` on clean EOF at a frame
/// boundary.
pub(crate) fn read_frame(r: &mut impl Read) -> Result<Option<Message>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(Error::protocol(format!("frame length {len} exceeds limit")));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    let sep = body
        .iter()
        .position(|&b| b == 0)
        .ok_or_else(|| Error::protocol("frame missing topic separator"))?;
    let topic = std::str::from_utf8(&body[..sep])?.to_string();
    let payload = body[sep + 1..].to_vec();
    Ok(Some(Message { topic, payload }))
}

/// Writes a pre-encoded frame.
pub(crate) fn write_all(w: &mut impl Write, frame: &[u8]) -> Result<()> {
    w.write_all(frame)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn round_trip() {
        let frame = encode("job.start", b"payload bytes").unwrap();
        let mut cur = Cursor::new(frame);
        let m = read_frame(&mut cur).unwrap().unwrap();
        assert_eq!(m.topic, "job.start");
        assert_eq!(m.payload, b"payload bytes");
        assert!(read_frame(&mut cur).unwrap().is_none());
    }

    #[test]
    fn empty_topic_and_payload() {
        let frame = encode("", b"").unwrap();
        let m = read_frame(&mut Cursor::new(frame)).unwrap().unwrap();
        assert_eq!(m.topic, "");
        assert!(m.payload.is_empty());
    }

    #[test]
    fn nul_in_topic_rejected() {
        assert!(encode("a\0b", b"x").is_err());
    }

    #[test]
    fn truncated_frame_is_error() {
        let mut frame = encode("t", b"payload").unwrap();
        frame.truncate(6);
        assert!(read_frame(&mut Cursor::new(frame)).is_err());
    }

    #[test]
    fn oversized_length_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        assert!(read_frame(&mut Cursor::new(buf)).is_err());
    }

    #[test]
    fn missing_separator_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&3u32.to_be_bytes());
        buf.extend_from_slice(b"abc"); // no NUL
        assert!(read_frame(&mut Cursor::new(buf)).is_err());
    }
}
