//! Record framing for spool segments.
//!
//! Each record is one length+CRC frame:
//!
//! ```text
//! [payload_len: u32 LE][crc32(payload): u32 LE][payload]
//! payload = [db_len: u16 LE][db: UTF-8][body: UTF-8]
//! ```
//!
//! The CRC covers the payload only; the length field is validated by bounds
//! checks (a corrupt length either exceeds [`MAX_PAYLOAD`] or runs past the
//! buffer, both of which read as a torn/corrupt tail). Decoding is
//! prefix-safe: [`decode_all`] consumes frames until the first torn or
//! corrupt one and reports how many bytes were cleanly consumed, so crash
//! recovery can truncate a segment to its last intact record.

/// Frame header size: payload length + CRC.
pub const HEADER_LEN: usize = 8;

/// Upper bound on one payload (db + body); larger lengths are treated as
/// corruption. 64 MiB is far above any realistic forwarder batch.
pub const MAX_PAYLOAD: usize = 64 * 1024 * 1024;

/// One spooled delivery: a line-protocol batch destined for `db`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Target database name.
    pub db: String,
    /// Line-protocol batch body.
    pub body: String,
}

/// IEEE CRC-32 (the zlib/PNG polynomial) — shared with the TSM storage
/// engine via `lms-util`.
pub use lms_util::hash::crc32;

/// Bytes one record occupies on disk.
pub fn encoded_len(db: &str, body: &str) -> usize {
    HEADER_LEN + 2 + db.len() + body.len()
}

/// Appends the framed record to `out`. Panics if `db` exceeds `u16::MAX`
/// bytes or the payload exceeds [`MAX_PAYLOAD`] (callers pass database names
/// and forwarder batches, both far smaller).
pub fn encode_record(db: &str, body: &str, out: &mut Vec<u8>) {
    assert!(db.len() <= u16::MAX as usize, "db name too long to spool");
    let payload_len = 2 + db.len() + body.len();
    assert!(payload_len <= MAX_PAYLOAD, "record too large to spool");
    out.reserve(HEADER_LEN + payload_len);
    let payload_start = out.len() + HEADER_LEN;
    out.extend_from_slice(&(payload_len as u32).to_le_bytes());
    out.extend_from_slice(&[0; 4]); // CRC back-patched below
    out.extend_from_slice(&(db.len() as u16).to_le_bytes());
    out.extend_from_slice(db.as_bytes());
    out.extend_from_slice(body.as_bytes());
    let crc = crc32(&out[payload_start..]);
    out[payload_start - 4..payload_start].copy_from_slice(&crc.to_le_bytes());
}

/// Result of scanning a segment's bytes.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct DecodeOutcome {
    /// Cleanly decoded records, in append order.
    pub records: Vec<Record>,
    /// Bytes occupied by those records — everything past this offset is a
    /// torn tail (crash mid-append) or corruption and must be discarded.
    pub clean_len: usize,
}

/// Decodes every intact record from `buf`, stopping at the first torn or
/// corrupt frame.
pub fn decode_all(buf: &[u8]) -> DecodeOutcome {
    let mut records = Vec::new();
    let mut off = 0;
    loop {
        let Some((record, next)) = decode_one(buf, off) else {
            return DecodeOutcome { records, clean_len: off };
        };
        records.push(record);
        off = next;
    }
}

/// Decodes the record at `off`; `None` on a torn/corrupt frame or clean EOF.
fn decode_one(buf: &[u8], off: usize) -> Option<(Record, usize)> {
    let rest = &buf[off.min(buf.len())..];
    if rest.len() < HEADER_LEN {
        return None;
    }
    let payload_len = u32::from_le_bytes(rest[0..4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
    if !(2..=MAX_PAYLOAD).contains(&payload_len) || rest.len() < HEADER_LEN + payload_len {
        return None;
    }
    let payload = &rest[HEADER_LEN..HEADER_LEN + payload_len];
    if crc32(payload) != crc {
        return None;
    }
    let db_len = u16::from_le_bytes(payload[0..2].try_into().unwrap()) as usize;
    if 2 + db_len > payload.len() {
        return None;
    }
    let db = std::str::from_utf8(&payload[2..2 + db_len]).ok()?;
    let body = std::str::from_utf8(&payload[2 + db_len..]).ok()?;
    Some((
        Record { db: db.to_string(), body: body.to_string() },
        off + HEADER_LEN + payload_len,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encode(records: &[(&str, &str)]) -> Vec<u8> {
        let mut buf = Vec::new();
        for (db, body) in records {
            encode_record(db, body, &mut buf);
        }
        buf
    }

    #[test]
    fn crc32_known_vectors() {
        // Reference values from the zlib crc32() implementation.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"hello"), 0x3610_A686);
    }

    #[test]
    fn round_trip_multiple_records() {
        let buf = encode(&[("lms", "m v=1 1\nm v=2 2"), ("user_alice", ""), ("lms", "x y=3 3")]);
        let out = decode_all(&buf);
        assert_eq!(out.clean_len, buf.len());
        assert_eq!(out.records.len(), 3);
        assert_eq!(out.records[0].db, "lms");
        assert_eq!(out.records[0].body, "m v=1 1\nm v=2 2");
        assert_eq!(out.records[1].body, "");
        assert_eq!(buf.len(), encoded_len("lms", "m v=1 1\nm v=2 2")
            + encoded_len("user_alice", "")
            + encoded_len("lms", "x y=3 3"));
    }

    #[test]
    fn torn_tail_keeps_intact_prefix() {
        let buf = encode(&[("lms", "a v=1 1"), ("lms", "b v=2 2")]);
        let first_len = encoded_len("lms", "a v=1 1");
        for cut in first_len..buf.len() {
            let out = decode_all(&buf[..cut]);
            assert_eq!(out.records.len(), 1, "cut at {cut}");
            assert_eq!(out.clean_len, first_len);
        }
        // Cutting inside the first record loses everything.
        let out = decode_all(&buf[..first_len - 1]);
        assert_eq!(out.records.len(), 0);
        assert_eq!(out.clean_len, 0);
    }

    #[test]
    fn corrupt_crc_stops_decoding() {
        let mut buf = encode(&[("lms", "a v=1 1"), ("lms", "b v=2 2")]);
        let first_len = encoded_len("lms", "a v=1 1");
        buf[first_len + HEADER_LEN + 3] ^= 0xFF; // flip a payload byte of record 2
        let out = decode_all(&buf);
        assert_eq!(out.records.len(), 1);
        assert_eq!(out.clean_len, first_len);
    }

    #[test]
    fn corrupt_length_is_not_trusted() {
        let mut buf = encode(&[("lms", "a v=1 1")]);
        buf[0..4].copy_from_slice(&u32::MAX.to_le_bytes()); // absurd length
        let out = decode_all(&buf);
        assert_eq!(out.records.len(), 0);
        assert_eq!(out.clean_len, 0);
    }

    #[test]
    fn empty_buffer_is_clean() {
        assert_eq!(decode_all(&[]), DecodeOutcome::default());
    }
}
