//! Record framing for spool segments.
//!
//! Each record is one length+CRC frame:
//!
//! ```text
//! [payload_len: u32 LE][crc32(payload): u32 LE][payload]
//! payload = [db_len: u16 LE][db: UTF-8][body: UTF-8]
//! ```
//!
//! The CRC covers the payload only; the length field is validated by bounds
//! checks (a corrupt length either exceeds [`MAX_PAYLOAD`] or runs past the
//! buffer, both of which read as a torn tail). [`decode_all`] distinguishes
//! the two failure modes:
//!
//! - a **torn tail** (short or length-implausible frame — a crash
//!   mid-append) stops the scan; `clean_len` marks the last intact byte so
//!   recovery can truncate the segment there;
//! - a **corrupt frame** (bounds-valid length but the CRC or payload
//!   encoding does not verify — a bit flip at rest) is counted in
//!   `corrupt_records`, skipped by its declared length, and the scan
//!   resynchronizes at the next frame, so one damaged record does not take
//!   the rest of the segment with it.

/// Frame header size: payload length + CRC.
pub const HEADER_LEN: usize = 8;

/// Upper bound on one payload (db + body); larger lengths are treated as
/// corruption. 64 MiB is far above any realistic forwarder batch.
pub const MAX_PAYLOAD: usize = 64 * 1024 * 1024;

/// One spooled delivery: a line-protocol batch destined for `db`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Target database name.
    pub db: String,
    /// Line-protocol batch body.
    pub body: String,
}

/// IEEE CRC-32 (the zlib/PNG polynomial) — shared with the TSM storage
/// engine via `lms-util`.
pub use lms_util::hash::crc32;

/// Bytes one record occupies on disk.
pub fn encoded_len(db: &str, body: &str) -> usize {
    HEADER_LEN + 2 + db.len() + body.len()
}

/// Appends the framed record to `out`. Panics if `db` exceeds `u16::MAX`
/// bytes or the payload exceeds [`MAX_PAYLOAD`] (callers pass database names
/// and forwarder batches, both far smaller).
pub fn encode_record(db: &str, body: &str, out: &mut Vec<u8>) {
    assert!(db.len() <= u16::MAX as usize, "db name too long to spool");
    let payload_len = 2 + db.len() + body.len();
    assert!(payload_len <= MAX_PAYLOAD, "record too large to spool");
    out.reserve(HEADER_LEN + payload_len);
    let payload_start = out.len() + HEADER_LEN;
    out.extend_from_slice(&(payload_len as u32).to_le_bytes());
    out.extend_from_slice(&[0; 4]); // CRC back-patched below
    out.extend_from_slice(&(db.len() as u16).to_le_bytes());
    out.extend_from_slice(db.as_bytes());
    out.extend_from_slice(body.as_bytes());
    let crc = crc32(&out[payload_start..]);
    out[payload_start - 4..payload_start].copy_from_slice(&crc.to_le_bytes());
}

/// Result of scanning a segment's bytes.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct DecodeOutcome {
    /// Cleanly decoded records, in append order.
    pub records: Vec<Record>,
    /// Bounds-valid frames skipped because their CRC (or payload encoding)
    /// did not verify. Each one loses exactly its own record; the frames
    /// around it still decode.
    pub corrupt_records: u64,
    /// Bytes scanned (decoded or skipped-as-corrupt) — everything past this
    /// offset is a torn tail (crash mid-append) and must be discarded.
    pub clean_len: usize,
}

/// Decodes every intact record from `buf`, skipping (and counting) corrupt
/// frames and stopping at the first torn one.
pub fn decode_all(buf: &[u8]) -> DecodeOutcome {
    let mut out = DecodeOutcome::default();
    let mut off = 0;
    loop {
        match decode_one(buf, off) {
            Frame::Intact(record, next) => {
                out.records.push(record);
                off = next;
            }
            Frame::Corrupt(next) => {
                out.corrupt_records += 1;
                off = next;
            }
            Frame::Torn => {
                out.clean_len = off;
                return out;
            }
        }
    }
}

/// Classification of the frame at one offset.
enum Frame {
    /// A verified record; the scan continues at the contained offset.
    Intact(Record, usize),
    /// A bounds-valid frame whose CRC or payload encoding failed; the scan
    /// resynchronizes at the contained offset (the frame's declared end).
    Corrupt(usize),
    /// Short or length-implausible — a torn tail (or clean EOF); stop.
    Torn,
}

/// Decodes the frame at `off`.
fn decode_one(buf: &[u8], off: usize) -> Frame {
    let rest = &buf[off.min(buf.len())..];
    if rest.len() < HEADER_LEN {
        return Frame::Torn;
    }
    let payload_len = u32::from_le_bytes(rest[0..4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
    if !(2..=MAX_PAYLOAD).contains(&payload_len) || rest.len() < HEADER_LEN + payload_len {
        return Frame::Torn;
    }
    let next = off + HEADER_LEN + payload_len;
    let payload = &rest[HEADER_LEN..HEADER_LEN + payload_len];
    if crc32(payload) != crc {
        return Frame::Corrupt(next);
    }
    // CRC verified: a malformed payload here means corruption that
    // collided with the checksum (or an encoder bug) — still one frame,
    // still skippable.
    let db_len = u16::from_le_bytes(payload[0..2].try_into().unwrap()) as usize;
    if 2 + db_len > payload.len() {
        return Frame::Corrupt(next);
    }
    let (Ok(db), Ok(body)) = (
        std::str::from_utf8(&payload[2..2 + db_len]),
        std::str::from_utf8(&payload[2 + db_len..]),
    ) else {
        return Frame::Corrupt(next);
    };
    Frame::Intact(Record { db: db.to_string(), body: body.to_string() }, next)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encode(records: &[(&str, &str)]) -> Vec<u8> {
        let mut buf = Vec::new();
        for (db, body) in records {
            encode_record(db, body, &mut buf);
        }
        buf
    }

    #[test]
    fn crc32_known_vectors() {
        // Reference values from the zlib crc32() implementation.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"hello"), 0x3610_A686);
    }

    #[test]
    fn round_trip_multiple_records() {
        let buf = encode(&[("lms", "m v=1 1\nm v=2 2"), ("user_alice", ""), ("lms", "x y=3 3")]);
        let out = decode_all(&buf);
        assert_eq!(out.clean_len, buf.len());
        assert_eq!(out.records.len(), 3);
        assert_eq!(out.records[0].db, "lms");
        assert_eq!(out.records[0].body, "m v=1 1\nm v=2 2");
        assert_eq!(out.records[1].body, "");
        assert_eq!(buf.len(), encoded_len("lms", "m v=1 1\nm v=2 2")
            + encoded_len("user_alice", "")
            + encoded_len("lms", "x y=3 3"));
    }

    #[test]
    fn torn_tail_keeps_intact_prefix() {
        let buf = encode(&[("lms", "a v=1 1"), ("lms", "b v=2 2")]);
        let first_len = encoded_len("lms", "a v=1 1");
        for cut in first_len..buf.len() {
            let out = decode_all(&buf[..cut]);
            assert_eq!(out.records.len(), 1, "cut at {cut}");
            assert_eq!(out.clean_len, first_len);
        }
        // Cutting inside the first record loses everything.
        let out = decode_all(&buf[..first_len - 1]);
        assert_eq!(out.records.len(), 0);
        assert_eq!(out.clean_len, 0);
    }

    #[test]
    fn corrupt_frame_is_skipped_and_counted() {
        let mut buf = encode(&[("lms", "a v=1 1"), ("lms", "b v=2 2"), ("lms", "c v=3 3")]);
        let first_len = encoded_len("lms", "a v=1 1");
        buf[first_len + HEADER_LEN + 3] ^= 0xFF; // flip a payload byte of record 2
        let out = decode_all(&buf);
        // The damaged frame loses only itself: its neighbors survive.
        assert_eq!(out.records.len(), 2);
        assert_eq!(out.records[0].body, "a v=1 1");
        assert_eq!(out.records[1].body, "c v=3 3");
        assert_eq!(out.corrupt_records, 1);
        assert_eq!(out.clean_len, buf.len());
    }

    #[test]
    fn corrupt_crc_field_skips_only_its_frame() {
        let mut buf = encode(&[("lms", "a v=1 1"), ("lms", "b v=2 2")]);
        buf[4] ^= 0x01; // flip a CRC byte of record 1
        let out = decode_all(&buf);
        assert_eq!(out.records.len(), 1);
        assert_eq!(out.records[0].body, "b v=2 2");
        assert_eq!(out.corrupt_records, 1);
        assert_eq!(out.clean_len, buf.len());
    }

    #[test]
    fn corrupt_length_is_not_trusted() {
        let mut buf = encode(&[("lms", "a v=1 1")]);
        buf[0..4].copy_from_slice(&u32::MAX.to_le_bytes()); // absurd length
        let out = decode_all(&buf);
        assert_eq!(out.records.len(), 0);
        assert_eq!(out.clean_len, 0);
    }

    #[test]
    fn empty_buffer_is_clean() {
        assert_eq!(decode_all(&[]), DecodeOutcome::default());
    }
}
