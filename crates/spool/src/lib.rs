//! # lms-spool
//!
//! A durable, segmented, append-only on-disk spool for the router's
//! delivery path. When the database is unreachable for longer than the
//! retry window, the forwarder spills batches here instead of dropping
//! them; a drainer replays them in order once the database is healthy
//! again. The paper's operational requirement — the router "must keep
//! accepting metrics while the database hiccups" — thus holds without
//! silent data loss.
//!
//! ## On-disk format
//!
//! The spool directory holds segment files named `<seq:016x>.seg` with a
//! strictly increasing sequence number (hex-padded so lexicographic order
//! is replay order). Each segment is a run of length+CRC frames (see
//! [`frame`]); segments rotate at a configurable size and the directory is
//! bounded by a byte cap enforced by evicting whole oldest segments.
//!
//! ## Crash recovery
//!
//! [`Spool::open`] scans the directory, decodes every segment, truncates
//! torn tails (a crash mid-append leaves a half-written frame) and deletes
//! empty segments. A mid-segment frame that fails its CRC (a bit flip at
//! rest) is skipped and counted in [`SpoolStats::corrupt_records`] rather
//! than truncated: the records around it still replay, mirroring the
//! storage engine's segment-quarantine behavior of never amplifying one
//! damaged record into losing a whole file. Replay progress within the
//! head segment is *not*
//! persisted, so a crash between delivery and acknowledgement re-delivers
//! that segment: the spool is an **at-least-once** buffer (idempotent for
//! LMS because a re-written point overwrites the same series+timestamp).

pub mod frame;

pub use frame::Record;

use lms_util::Result;
use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::PathBuf;
use std::sync::Mutex;

/// Spool configuration.
#[derive(Debug, Clone)]
pub struct SpoolConfig {
    /// Directory holding segment files (created if missing).
    pub dir: PathBuf,
    /// Rotate the active segment once it reaches this size.
    pub segment_bytes: usize,
    /// Total on-disk cap; exceeding it evicts whole oldest segments
    /// (clamped to at least two segments' worth).
    pub max_bytes: u64,
    /// `fsync` segment data on rotation (durability/throughput trade-off;
    /// appends are always flushed to the OS).
    pub sync_on_rotate: bool,
}

impl SpoolConfig {
    /// Defaults: 4 MiB segments, 256 MiB cap, fsync on rotate.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        SpoolConfig {
            dir: dir.into(),
            segment_bytes: 4 * 1024 * 1024,
            max_bytes: 256 * 1024 * 1024,
            sync_on_rotate: true,
        }
    }
}

/// Spool counters (monotonic except `pending`/`segments`/`bytes`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpoolStats {
    /// Records ever appended.
    pub appended: u64,
    /// Records replayed and acknowledged.
    pub replayed: u64,
    /// Records lost to cap eviction.
    pub evicted: u64,
    /// Bytes discarded during crash recovery (torn tails — a half-written
    /// frame truncated away, or a tail made unscannable by corruption).
    pub torn_bytes: u64,
    /// Mid-segment frames skipped because their CRC did not verify (a bit
    /// flip at rest). Each skip loses one record; the records around it
    /// keep replaying.
    pub corrupt_records: u64,
    /// Rotation fsyncs that failed (the segment stays replayable — its
    /// frames were already flushed to the OS — but its durability across
    /// a power loss is no longer guaranteed).
    pub sync_failures: u64,
    /// Records currently on disk awaiting replay.
    pub pending: u64,
    /// Segment files currently on disk.
    pub segments: u64,
    /// Bytes currently on disk.
    pub bytes: u64,
}

/// A record handed out by [`Spool::peek`]; pass it back to [`Spool::ack`]
/// after successful delivery.
#[derive(Debug, Clone)]
pub struct Entry {
    /// Target database.
    pub db: String,
    /// Line-protocol batch.
    pub body: String,
    gen: u64,
}

#[derive(Debug)]
struct SegMeta {
    seq: u64,
    path: PathBuf,
    bytes: u64,
    records: u64,
    /// Corrupt frames already counted for this segment — the head decode
    /// re-scans the file, so only *new* corruption increments the counter.
    corrupt: u64,
}

struct Active {
    meta: SegMeta,
    file: File,
}

struct Head {
    meta: SegMeta,
    records: VecDeque<Record>,
    gen: u64,
}

struct Inner {
    cfg: SpoolConfig,
    /// Closed segments awaiting replay, oldest first (excludes `head`).
    closed: VecDeque<SegMeta>,
    /// The oldest segment, decoded for replay.
    head: Option<Head>,
    /// The segment currently being appended to.
    active: Option<Active>,
    next_seq: u64,
    next_gen: u64,
    appended: u64,
    replayed: u64,
    evicted: u64,
    torn_bytes: u64,
    corrupt_records: u64,
    sync_failures: u64,
    scratch: Vec<u8>,
}

/// The durable spill-to-disk spool. All methods take `&self`; a single
/// internal lock serializes writers (forwarder workers) and the reader
/// (the drainer).
pub struct Spool {
    inner: Mutex<Inner>,
}

impl Spool {
    /// Opens (or creates) the spool at `cfg.dir`, recovering existing
    /// segments: torn tails are truncated away, empty segments deleted.
    pub fn open(cfg: SpoolConfig) -> Result<Spool> {
        let mut cfg = cfg;
        cfg.segment_bytes = cfg.segment_bytes.max(4 * 1024);
        cfg.max_bytes = cfg.max_bytes.max(cfg.segment_bytes as u64 * 2);
        std::fs::create_dir_all(&cfg.dir)?;

        let mut segments: Vec<SegMeta> = Vec::new();
        let mut torn_bytes = 0u64;
        let mut corrupt_records = 0u64;
        for entry in std::fs::read_dir(&cfg.dir)? {
            let entry = entry?;
            let path = entry.path();
            let Some(seq) = segment_seq(&path) else { continue };
            let data = std::fs::read(&path)?;
            let out = frame::decode_all(&data);
            corrupt_records += out.corrupt_records;
            if out.clean_len < data.len() {
                torn_bytes += (data.len() - out.clean_len) as u64;
                let f = OpenOptions::new().write(true).open(&path)?;
                f.set_len(out.clean_len as u64)?;
                f.sync_data()?;
            }
            if out.records.is_empty() {
                std::fs::remove_file(&path)?;
                continue;
            }
            segments.push(SegMeta {
                seq,
                path,
                bytes: out.clean_len as u64,
                records: out.records.len() as u64,
                corrupt: out.corrupt_records,
            });
        }
        segments.sort_by_key(|s| s.seq);
        let next_seq = segments.last().map_or(0, |s| s.seq + 1);
        Ok(Spool {
            inner: Mutex::new(Inner {
                cfg,
                closed: segments.into(),
                head: None,
                active: None,
                next_seq,
                next_gen: 0,
                appended: 0,
                replayed: 0,
                evicted: 0,
                torn_bytes,
                corrupt_records,
                sync_failures: 0,
                scratch: Vec::new(),
            }),
        })
    }

    /// Durably appends one batch. Rotates and evicts as configured.
    pub fn append(&self, db: &str, body: &str) -> Result<()> {
        let inner = &mut *self.inner.lock().expect("spool lock");
        if inner.active.is_none() {
            let seq = inner.next_seq;
            inner.next_seq += 1;
            let path = inner.cfg.dir.join(format!("{seq:016x}.seg"));
            let file = OpenOptions::new().create(true).append(true).open(&path)?;
            inner.active = Some(Active {
                meta: SegMeta { seq, path, bytes: 0, records: 0, corrupt: 0 },
                file,
            });
        }
        let mut buf = std::mem::take(&mut inner.scratch);
        buf.clear();
        frame::encode_record(db, body, &mut buf);
        let active = inner.active.as_mut().expect("just ensured");
        active.file.write_all(&buf)?;
        active.file.flush()?;
        active.meta.bytes += buf.len() as u64;
        active.meta.records += 1;
        inner.scratch = buf;
        inner.appended += 1;
        if active.meta.bytes >= inner.cfg.segment_bytes as u64 {
            // The record is already framed and flushed: a rotation fsync
            // failure must not fail the append, or the caller would count
            // a replayable record as dropped. rotate() keeps the segment
            // accounted and bumps `sync_failures` on error.
            let _ = inner.rotate();
        }
        inner.enforce_cap();
        Ok(())
    }

    /// The oldest unreplayed record, if any. Does not remove it — call
    /// [`ack`](Self::ack) after successful delivery. Rotates the active
    /// segment when it is the only data left, so appends never starve the
    /// reader.
    pub fn peek(&self) -> Option<Entry> {
        let inner = &mut *self.inner.lock().expect("spool lock");
        inner.ensure_head();
        let head = inner.head.as_ref()?;
        let rec = head.records.front()?;
        Some(Entry { db: rec.db.clone(), body: rec.body.clone(), gen: head.gen })
    }

    /// Acknowledges delivery of the record returned by the matching
    /// [`peek`](Self::peek); deletes the head segment once fully replayed.
    /// Stale acknowledgements (the segment was evicted in between) are
    /// ignored.
    pub fn ack(&self, entry: &Entry) {
        let inner = &mut *self.inner.lock().expect("spool lock");
        let Some(head) = inner.head.as_mut() else { return };
        if head.gen != entry.gen || head.records.is_empty() {
            return;
        }
        head.records.pop_front();
        inner.replayed += 1;
        if inner.head.as_ref().is_some_and(|h| h.records.is_empty()) {
            let head = inner.head.take().expect("just checked");
            let _ = std::fs::remove_file(&head.meta.path);
        }
    }

    /// Records awaiting replay.
    pub fn pending(&self) -> u64 {
        self.stats().pending
    }

    /// True when nothing awaits replay.
    pub fn is_empty(&self) -> bool {
        self.pending() == 0
    }

    /// Current statistics.
    pub fn stats(&self) -> SpoolStats {
        let inner = &*self.inner.lock().expect("spool lock");
        let head_records = inner.head.as_ref().map_or(0, |h| h.records.len() as u64);
        let head_bytes = inner.head.as_ref().map_or(0, |h| h.meta.bytes);
        let closed_records: u64 = inner.closed.iter().map(|s| s.records).sum();
        let closed_bytes: u64 = inner.closed.iter().map(|s| s.bytes).sum();
        let active_records = inner.active.as_ref().map_or(0, |a| a.meta.records);
        let active_bytes = inner.active.as_ref().map_or(0, |a| a.meta.bytes);
        SpoolStats {
            appended: inner.appended,
            replayed: inner.replayed,
            evicted: inner.evicted,
            torn_bytes: inner.torn_bytes,
            corrupt_records: inner.corrupt_records,
            sync_failures: inner.sync_failures,
            pending: head_records + closed_records + active_records,
            segments: inner.head.is_some() as u64
                + inner.closed.len() as u64
                + inner.active.is_some() as u64,
            bytes: head_bytes + closed_bytes + active_bytes,
        }
    }
}

impl Inner {
    /// Closes the active segment, making it available to the reader. The
    /// segment stays accounted (pushed to `closed`) even when the
    /// rotation fsync fails: its frames are already flushed to the OS and
    /// remain replayable now and recoverable after a restart, so dropping
    /// the meta would desynchronize in-memory accounting from the disk.
    fn rotate(&mut self) -> Result<()> {
        let Some(active) = self.active.take() else { return Ok(()) };
        if active.meta.records == 0 {
            let _ = std::fs::remove_file(&active.meta.path);
            return Ok(());
        }
        let synced =
            if self.cfg.sync_on_rotate { active.file.sync_data() } else { Ok(()) };
        self.closed.push_back(active.meta);
        if synced.is_err() {
            self.sync_failures += 1;
        }
        synced.map_err(Into::into)
    }

    /// Loads the oldest segment into `head` for replay.
    fn ensure_head(&mut self) {
        if self.head.is_some() {
            return;
        }
        if self.closed.is_empty() {
            // Reader caught up with the writer: rotate the active segment
            // (if it holds records) so they become replayable. Even a
            // failed rotation fsync leaves the segment in `closed`.
            if self.active.as_ref().is_some_and(|a| a.meta.records > 0) {
                let _ = self.rotate();
            }
        }
        let Some(mut meta) = self.closed.pop_front() else { return };
        let data = std::fs::read(&meta.path).unwrap_or_default();
        let out = frame::decode_all(&data);
        // Decoding short means on-disk damage since the segment was
        // written; surface what survives and account the loss. Corrupt
        // frames are counted as a delta against what this segment already
        // reported at open, so a re-scan does not double-bill them.
        self.torn_bytes += (data.len() as u64).saturating_sub(out.clean_len as u64);
        self.corrupt_records += out.corrupt_records.saturating_sub(meta.corrupt);
        meta.corrupt = out.corrupt_records;
        self.evicted += meta.records.saturating_sub(out.records.len() as u64);
        meta.records = out.records.len() as u64;
        if out.records.is_empty() {
            let _ = std::fs::remove_file(&meta.path);
            // Try the next segment rather than reporting empty.
            return self.ensure_head();
        }
        self.next_gen += 1;
        self.head = Some(Head { meta, records: out.records.into(), gen: self.next_gen });
    }

    /// Evicts whole oldest segments until the cap holds. The active
    /// segment is never evicted (the cap is clamped to ≥ 2 segments).
    fn enforce_cap(&mut self) {
        loop {
            let total = self.head.as_ref().map_or(0, |h| h.meta.bytes)
                + self.closed.iter().map(|s| s.bytes).sum::<u64>()
                + self.active.as_ref().map_or(0, |a| a.meta.bytes);
            if total <= self.cfg.max_bytes {
                return;
            }
            if let Some(head) = self.head.take() {
                self.evicted += head.records.len() as u64;
                let _ = std::fs::remove_file(&head.meta.path);
            } else if let Some(meta) = self.closed.pop_front() {
                self.evicted += meta.records;
                let _ = std::fs::remove_file(&meta.path);
            } else {
                return;
            }
        }
    }
}

/// Parses `<seq:016x>.seg` file names; `None` for anything else.
fn segment_seq(path: &std::path::Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let stem = name.strip_suffix(".seg")?;
    if stem.len() != 16 {
        return None;
    }
    u64::from_str_radix(stem, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmpdir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "lms-spool-{}-{}-{}",
            std::process::id(),
            tag,
            N.fetch_add(1, Ordering::SeqCst)
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn small(dir: &PathBuf) -> SpoolConfig {
        SpoolConfig { segment_bytes: 0, max_bytes: 0, ..SpoolConfig::new(dir) }
    }

    #[test]
    fn append_peek_ack_in_order() {
        let dir = tmpdir("order");
        let spool = Spool::open(SpoolConfig::new(&dir)).unwrap();
        for i in 0..5 {
            spool.append("lms", &format!("m v={i} {i}")).unwrap();
        }
        assert_eq!(spool.pending(), 5);
        for i in 0..5 {
            let e = spool.peek().unwrap();
            assert_eq!(e.body, format!("m v={i} {i}"));
            assert_eq!(e.db, "lms");
            spool.ack(&e);
        }
        assert!(spool.is_empty());
        assert_eq!(spool.stats().replayed, 5);
        // Fully replayed segments are deleted from disk.
        assert_eq!(spool.stats().segments, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn peek_without_ack_repeats_same_record() {
        let dir = tmpdir("peek");
        let spool = Spool::open(SpoolConfig::new(&dir)).unwrap();
        spool.append("lms", "a v=1 1").unwrap();
        spool.append("lms", "b v=2 2").unwrap();
        assert_eq!(spool.peek().unwrap().body, "a v=1 1");
        assert_eq!(spool.peek().unwrap().body, "a v=1 1");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_produces_multiple_segments_and_preserves_order() {
        let dir = tmpdir("rotate");
        // 4 KiB floor on segment size: payloads below make each segment
        // hold a couple of records. Cap stays large so nothing is evicted.
        let spool =
            Spool::open(SpoolConfig { segment_bytes: 0, ..SpoolConfig::new(&dir) }).unwrap();
        let blob = "x".repeat(3000);
        for i in 0..6 {
            spool.append("lms", &format!("{i}:{blob}")).unwrap();
        }
        assert!(spool.stats().segments >= 3, "{:?}", spool.stats());
        for i in 0..6 {
            let e = spool.peek().unwrap();
            assert!(e.body.starts_with(&format!("{i}:")), "record {i} out of order");
            spool.ack(&e);
        }
        assert!(spool.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_replays_after_reopen() {
        let dir = tmpdir("recover");
        {
            let spool = Spool::open(SpoolConfig::new(&dir)).unwrap();
            for i in 0..4 {
                spool.append("db", &format!("m v={i} {i}")).unwrap();
            }
        }
        let spool = Spool::open(SpoolConfig::new(&dir)).unwrap();
        assert_eq!(spool.pending(), 4);
        for i in 0..4 {
            let e = spool.peek().unwrap();
            assert_eq!(e.body, format!("m v={i} {i}"));
            spool.ack(&e);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_truncates_torn_tail() {
        let dir = tmpdir("torn");
        let path;
        {
            let spool = Spool::open(SpoolConfig::new(&dir)).unwrap();
            spool.append("db", "good v=1 1").unwrap();
            let inner = spool.inner.lock().unwrap();
            path = inner.active.as_ref().unwrap().meta.path.clone();
        }
        // Simulate a crash mid-append: garbage half-frame at the tail.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0x55; 11]).unwrap();
        drop(f);

        let spool = Spool::open(SpoolConfig::new(&dir)).unwrap();
        assert_eq!(spool.stats().torn_bytes, 11);
        assert_eq!(spool.pending(), 1);
        let e = spool.peek().unwrap();
        assert_eq!(e.body, "good v=1 1");
        spool.ack(&e);
        assert!(spool.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_skips_and_counts_mid_segment_corruption() {
        let dir = tmpdir("flip");
        let path;
        {
            let spool = Spool::open(SpoolConfig::new(&dir)).unwrap();
            spool.append("db", "a v=1 1").unwrap();
            spool.append("db", "b v=2 2").unwrap();
            spool.append("db", "c v=3 3").unwrap();
            let inner = spool.inner.lock().unwrap();
            path = inner.active.as_ref().unwrap().meta.path.clone();
        }
        // A bit flip at rest inside the middle record's payload.
        let mut data = std::fs::read(&path).unwrap();
        let first_len = frame::encoded_len("db", "a v=1 1");
        data[first_len + frame::HEADER_LEN + 3] ^= 0x01;
        std::fs::write(&path, &data).unwrap();

        let spool = Spool::open(SpoolConfig::new(&dir)).unwrap();
        let s = spool.stats();
        assert_eq!(s.corrupt_records, 1, "{s:?}");
        assert_eq!(s.torn_bytes, 0, "{s:?}");
        assert_eq!(s.pending, 2, "{s:?}");
        // The neighbors replay in order; the re-scan at head load does not
        // double-count the already-reported corruption.
        for body in ["a v=1 1", "c v=3 3"] {
            let e = spool.peek().unwrap();
            assert_eq!(e.body, body);
            spool.ack(&e);
        }
        assert!(spool.is_empty());
        assert_eq!(spool.stats().corrupt_records, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_drops_fully_corrupt_segment() {
        let dir = tmpdir("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("0000000000000000.seg"), [0xAB; 64]).unwrap();
        let spool = Spool::open(SpoolConfig::new(&dir)).unwrap();
        assert_eq!(spool.pending(), 0);
        assert_eq!(spool.stats().torn_bytes, 64);
        // The empty (post-truncation) segment is removed.
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cap_evicts_oldest_segments() {
        let dir = tmpdir("evict");
        // 4 KiB segments (floor), 8 KiB cap (floor): ~2 records per
        // segment at 3 KiB payloads, at most 2 segments on disk.
        let spool = Spool::open(small(&dir)).unwrap();
        let blob = "y".repeat(3000);
        for i in 0..10 {
            spool.append("lms", &format!("{i}:{blob}")).unwrap();
        }
        let s = spool.stats();
        assert!(s.evicted > 0, "{s:?}");
        assert!(s.bytes <= 8 * 1024, "{s:?}");
        assert_eq!(s.pending + s.evicted, s.appended, "{s:?}");
        // Survivors are the newest records, still in order.
        let first = spool.peek().unwrap();
        let first_idx: usize = first.body.split(':').next().unwrap().parse().unwrap();
        assert!(first_idx > 0, "oldest records were evicted");
        let mut expect = first_idx;
        while let Some(e) = spool.peek() {
            assert!(e.body.starts_with(&format!("{expect}:")));
            spool.ack(&e);
            expect += 1;
        }
        assert_eq!(expect, 10);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_segment_files_are_ignored() {
        let dir = tmpdir("ignore");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("README"), b"not a segment").unwrap();
        std::fs::write(dir.join("short.seg"), b"x").unwrap();
        let spool = Spool::open(SpoolConfig::new(&dir)).unwrap();
        assert_eq!(spool.pending(), 0);
        spool.append("lms", "m v=1 1").unwrap();
        assert_eq!(spool.pending(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    mod properties {
        use super::*;
        use crate::frame::{decode_all, encode_record, encoded_len};
        use proptest::prelude::*;

        fn record_strategy() -> impl Strategy<Value = (String, String)> {
            (
                proptest::string::string_regex("[a-z_][a-z0-9_]{0,12}").unwrap(),
                proptest::string::string_regex("[ -~\n]{0,64}").unwrap(),
            )
        }

        proptest! {
            /// encode ∘ decode == identity over record sequences.
            #[test]
            fn frame_round_trip(records in proptest::collection::vec(record_strategy(), 0..12)) {
                let mut buf = Vec::new();
                for (db, body) in &records {
                    encode_record(db, body, &mut buf);
                }
                let out = decode_all(&buf);
                prop_assert_eq!(out.clean_len, buf.len());
                prop_assert_eq!(out.records.len(), records.len());
                for (rec, (db, body)) in out.records.iter().zip(&records) {
                    prop_assert_eq!(&rec.db, db);
                    prop_assert_eq!(&rec.body, body);
                }
            }

            /// Truncating at any byte yields the longest intact prefix —
            /// never a panic, never a partial record.
            #[test]
            fn truncated_tail_recovers_prefix(
                records in proptest::collection::vec(record_strategy(), 1..8),
                cut_frac in 0.0f64..1.0,
            ) {
                let mut buf = Vec::new();
                let mut boundaries = vec![0usize];
                for (db, body) in &records {
                    encode_record(db, body, &mut buf);
                    boundaries.push(boundaries.last().unwrap() + encoded_len(db, body));
                }
                let cut = (buf.len() as f64 * cut_frac) as usize;
                let out = decode_all(&buf[..cut]);
                // clean_len is the largest record boundary ≤ cut.
                let expect_n = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
                prop_assert_eq!(out.records.len(), expect_n);
                prop_assert_eq!(out.clean_len, boundaries[expect_n]);
            }

            /// A flipped byte never panics the decoder and never yields a
            /// record that was not written (the CRC bars fabrication); the
            /// frames before the flip always survive, and a skipped frame
            /// is always counted.
            #[test]
            fn corrupted_byte_never_fabricates_or_silently_drops(
                records in proptest::collection::vec(record_strategy(), 1..8),
                pos_frac in 0.0f64..1.0,
                flip in 1u8..255,
            ) {
                let mut buf = Vec::new();
                let mut boundaries = vec![0usize];
                for (db, body) in &records {
                    encode_record(db, body, &mut buf);
                    boundaries.push(boundaries.last().unwrap() + encoded_len(db, body));
                }
                let pos = ((buf.len() - 1) as f64 * pos_frac) as usize;
                buf[pos] ^= flip;
                let out = decode_all(&buf);
                prop_assert!(out.clean_len <= buf.len());
                // Frames entirely before the flip decode untouched, in order.
                let intact = boundaries[1..].iter().filter(|&&b| b <= pos).count();
                prop_assert!(out.records.len() >= intact);
                for (rec, (db, body)) in out.records.iter().take(intact).zip(&records) {
                    prop_assert_eq!(&rec.db, db);
                    prop_assert_eq!(&rec.body, body);
                }
                // Every decoded record was actually written.
                for rec in &out.records {
                    prop_assert!(
                        records.iter().any(|(db, body)| rec.db == *db && rec.body == *body),
                        "fabricated record {rec:?}"
                    );
                }
                // Losses are visible: every written record either decodes,
                // is inside a counted-corrupt region, or sits past the torn
                // point where recovery truncates (torn bytes are accounted
                // by the caller from clean_len).
                if out.clean_len == buf.len() && out.records.len() < records.len() {
                    prop_assert!(out.corrupt_records > 0, "silent loss: {out:?}");
                }
            }

            /// Spool-level: appends survive a reopen in order.
            #[test]
            fn spool_reopen_round_trip(records in proptest::collection::vec(record_strategy(), 1..10)) {
                let dir = tmpdir("prop");
                {
                    let spool = Spool::open(small(&dir)).unwrap();
                    for (db, body) in &records {
                        spool.append(db, body).unwrap();
                    }
                }
                let spool = Spool::open(small(&dir)).unwrap();
                prop_assert_eq!(spool.pending(), records.len() as u64);
                for (db, body) in &records {
                    let e = spool.peek().unwrap();
                    prop_assert_eq!(&e.db, db);
                    prop_assert_eq!(&e.body, body);
                    spool.ack(&e);
                }
                prop_assert!(spool.is_empty());
                let _ = std::fs::remove_dir_all(&dir);
            }
        }
    }
}
