//! Application-transparent monitors.
//!
//! The paper ships "automatically preloadable libraries that provide
//! monitoring data in an application-transparent way. The libraries
//! overload common functions for thread affinity and data allocation."
//! The Rust analogs:
//!
//! - [`CountingAlloc`] wraps any [`GlobalAlloc`] with atomic counters —
//!   install it as the `#[global_allocator]` and every allocation in the
//!   process is observed, exactly like an LD_PRELOAD `malloc` shim.
//! - [`AffinityRegistry`] records thread→cpuset pins (the `likwid-pin` /
//!   `pthread_setaffinity_np` interposition path) and reports them.
//!
//! Both hand their state to a [`UserMetric`] client on `report()`, so the
//! data flows through the same batched line-protocol channel as explicit
//! annotations.

use crate::client::UserMetric;
use lms_topology::CpuSet;
use parking_lot::Mutex;
use std::alloc::{GlobalAlloc, Layout};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// A snapshot of allocation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocCounters {
    /// Allocations performed.
    pub allocs: u64,
    /// Deallocations performed.
    pub deallocs: u64,
    /// Bytes currently live (allocated − freed).
    pub live_bytes: usize,
    /// High-water mark of live bytes.
    pub peak_bytes: usize,
    /// Total bytes ever allocated.
    pub total_bytes: u64,
}

/// A counting wrapper around a [`GlobalAlloc`].
///
/// ```
/// use lms_usermetric::CountingAlloc;
/// use std::alloc::System;
///
/// // In an application: #[global_allocator] static A: CountingAlloc<System> = …
/// static A: CountingAlloc<System> = CountingAlloc::new(System);
/// let before = A.snapshot();
/// let v: Vec<u8> = Vec::with_capacity(1024);
/// // (v was allocated through the *test harness* allocator here, so we
/// //  exercise the wrapper directly instead:)
/// drop(v);
/// let _ = before;
/// ```
pub struct CountingAlloc<A> {
    inner: A,
    allocs: AtomicU64,
    deallocs: AtomicU64,
    live: AtomicUsize,
    peak: AtomicUsize,
    total: AtomicU64,
}

impl<A> CountingAlloc<A> {
    /// Wraps an allocator.
    pub const fn new(inner: A) -> Self {
        CountingAlloc {
            inner,
            allocs: AtomicU64::new(0),
            deallocs: AtomicU64::new(0),
            live: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
            total: AtomicU64::new(0),
        }
    }

    /// Current counter values.
    pub fn snapshot(&self) -> AllocCounters {
        AllocCounters {
            allocs: self.allocs.load(Ordering::Relaxed),
            deallocs: self.deallocs.load(Ordering::Relaxed),
            live_bytes: self.live.load(Ordering::Relaxed),
            peak_bytes: self.peak.load(Ordering::Relaxed),
            total_bytes: self.total.load(Ordering::Relaxed),
        }
    }

    /// Sends the counters as a `memory_alloc` point through `um`
    /// ("allocated memory size" is one of the paper's elementary metrics).
    pub fn report(&self, um: &UserMetric) {
        let s = self.snapshot();
        um.metrics(
            "memory_alloc",
            &[
                ("allocs", s.allocs as f64),
                ("deallocs", s.deallocs as f64),
                ("live_bytes", s.live_bytes as f64),
                ("peak_bytes", s.peak_bytes as f64),
                ("total_bytes", s.total_bytes as f64),
            ],
        );
    }

    fn on_alloc(&self, size: usize) {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(size as u64, Ordering::Relaxed);
        let live = self.live.fetch_add(size, Ordering::Relaxed) + size;
        self.peak.fetch_max(live, Ordering::Relaxed);
    }

    fn on_dealloc(&self, size: usize) {
        self.deallocs.fetch_add(1, Ordering::Relaxed);
        self.live.fetch_sub(size.min(self.live.load(Ordering::Relaxed)), Ordering::Relaxed);
    }
}

// SAFETY: delegates directly to the wrapped allocator; the counters are
// lock-free atomics and never allocate.
unsafe impl<A: GlobalAlloc> GlobalAlloc for CountingAlloc<A> {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { self.inner.alloc(layout) };
        if !p.is_null() {
            self.on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { self.inner.dealloc(ptr, layout) };
        self.on_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { self.inner.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            self.on_dealloc(layout.size());
            self.on_alloc(new_size);
        }
        p
    }
}

/// Records thread→cpu pinning, the affinity half of the transparent
/// monitors.
#[derive(Default)]
pub struct AffinityRegistry {
    pins: Mutex<Vec<(String, CpuSet)>>,
}

impl AffinityRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `thread_name` was pinned to `cpus` (called by the
    /// application's pinning wrapper).
    pub fn record_pin(&self, thread_name: &str, cpus: CpuSet) {
        let mut pins = self.pins.lock();
        if let Some(slot) = pins.iter_mut().find(|(n, _)| n == thread_name) {
            slot.1 = cpus;
        } else {
            pins.push((thread_name.to_string(), cpus));
        }
    }

    /// Number of recorded pins.
    pub fn len(&self) -> usize {
        self.pins.lock().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.pins.lock().is_empty()
    }

    /// Sends one `thread_affinity` event per pinned thread, tagged with
    /// the thread so simultaneous reports stay distinct series.
    pub fn report(&self, um: &UserMetric) {
        for (name, cpus) in self.pins.lock().iter() {
            um.event_with_tags(
                "thread_affinity",
                &format!("thread {name} pinned to cpus {}", cpus.to_compact_string()),
                &[("thread", name.as_str())],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::UserMetricConfig;
    use lms_topology::Topology;
    use lms_util::{Clock, Timestamp};
    use std::alloc::System;
    use std::sync::Arc;

    #[test]
    fn counting_alloc_tracks_alloc_free_and_peak() {
        let a: CountingAlloc<System> = CountingAlloc::new(System);
        unsafe {
            let l1 = Layout::from_size_align(1000, 8).unwrap();
            let l2 = Layout::from_size_align(500, 8).unwrap();
            let p1 = a.alloc(l1);
            let p2 = a.alloc(l2);
            let s = a.snapshot();
            assert_eq!(s.allocs, 2);
            assert_eq!(s.live_bytes, 1500);
            assert_eq!(s.peak_bytes, 1500);
            a.dealloc(p1, l1);
            let s = a.snapshot();
            assert_eq!(s.deallocs, 1);
            assert_eq!(s.live_bytes, 500);
            assert_eq!(s.peak_bytes, 1500, "peak survives frees");
            assert_eq!(s.total_bytes, 1500);
            a.dealloc(p2, l2);
        }
    }

    #[test]
    fn counting_alloc_realloc() {
        let a: CountingAlloc<System> = CountingAlloc::new(System);
        unsafe {
            let l = Layout::from_size_align(100, 8).unwrap();
            let p = a.alloc(l);
            let p = a.realloc(p, l, 400);
            let s = a.snapshot();
            assert_eq!(s.live_bytes, 400);
            assert_eq!(s.total_bytes, 500);
            a.dealloc(p, Layout::from_size_align(400, 8).unwrap());
        }
        let s = a.snapshot();
        assert_eq!(s.live_bytes, 0);
    }

    #[test]
    fn alloc_report_flows_through_usermetric() {
        let captured: Arc<parking_lot::Mutex<Vec<String>>> = Arc::default();
        let sink = captured.clone();
        let um = UserMetric::to_fn(
            UserMetricConfig::default(),
            Clock::simulated(Timestamp::from_secs(1)),
            move |b| sink.lock().push(b.to_string()),
        );
        let a: CountingAlloc<System> = CountingAlloc::new(System);
        unsafe {
            let l = Layout::from_size_align(64, 8).unwrap();
            let p = a.alloc(l);
            a.dealloc(p, l);
        }
        a.report(&um);
        um.flush();
        let body = captured.lock()[0].clone();
        assert!(body.contains("memory_alloc allocs=1,deallocs=1"), "{body}");
    }

    #[test]
    fn affinity_registry_records_and_reports() {
        let topo = Topology::preset_desktop_4c();
        let reg = AffinityRegistry::new();
        assert!(reg.is_empty());
        reg.record_pin("worker-0", CpuSet::parse("0-1", &topo).unwrap());
        reg.record_pin("worker-1", CpuSet::parse("2-3", &topo).unwrap());
        reg.record_pin("worker-0", CpuSet::parse("0", &topo).unwrap()); // re-pin replaces
        assert_eq!(reg.len(), 2);

        let captured: Arc<parking_lot::Mutex<Vec<String>>> = Arc::default();
        let sink = captured.clone();
        let um = UserMetric::to_fn(
            UserMetricConfig::default(),
            Clock::simulated(Timestamp::from_secs(1)),
            move |b| sink.lock().push(b.to_string()),
        );
        reg.report(&um);
        um.flush();
        let body = captured.lock()[0].clone();
        assert!(body.contains("thread worker-0 pinned to cpus 0\""), "{body}");
        assert!(body.contains("thread worker-1 pinned to cpus 2-3"), "{body}");
    }
}
