//! `umetric` — the libusermetric command-line tool.
//!
//! "For use in batch scripts, a command line application can send metrics
//! and events from the shell." (Paper Sec. IV — the start/end events in
//! Fig. 3 are sent exactly this way around the miniMD invocation.)
//!
//! ```text
//! umetric --url 127.0.0.1:8086 --db lms [--tag k=v]... metric <name> <value>
//! umetric --url 127.0.0.1:8086 --db lms [--tag k=v]... event <name> <text>...
//! ```

use lms_lineproto::Point;
use lms_util::{Clock, Error, Result};

fn usage() -> String {
    "usage: umetric --url <host:port> [--db <db>] [--tag k=v]... <metric|event> <name> <value|text...>"
        .to_string()
}

struct Args {
    url: String,
    db: String,
    tags: Vec<(String, String)>,
    command: String,
    name: String,
    rest: Vec<String>,
}

fn parse_args(argv: &[String]) -> Result<Args> {
    let mut url = None;
    let mut db = "lms".to_string();
    let mut tags = Vec::new();
    let mut positional = Vec::new();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--url" => url = Some(it.next().ok_or_else(|| Error::config(usage()))?.clone()),
            "--db" => db = it.next().ok_or_else(|| Error::config(usage()))?.clone(),
            "--tag" => {
                let kv = it.next().ok_or_else(|| Error::config(usage()))?;
                let (k, v) = kv
                    .split_once('=')
                    .ok_or_else(|| Error::config(format!("bad tag `{kv}`, expected k=v")))?;
                tags.push((k.to_string(), v.to_string()));
            }
            "--help" | "-h" => return Err(Error::config(usage())),
            other => positional.push(other.to_string()),
        }
    }
    if positional.len() < 3 {
        return Err(Error::config(usage()));
    }
    Ok(Args {
        url: url.ok_or_else(|| Error::config(usage()))?,
        db,
        tags,
        command: positional[0].clone(),
        name: positional[1].clone(),
        rest: positional[2..].to_vec(),
    })
}

fn build_point(args: &Args, clock: &Clock) -> Result<Point> {
    let mut p = Point::new(args.name.as_str());
    for (k, v) in &args.tags {
        p.add_tag(k.as_str(), v.as_str());
    }
    match args.command.as_str() {
        "metric" => {
            let value: f64 = args.rest[0]
                .parse()
                .map_err(|_| Error::config(format!("`{}` is not a number", args.rest[0])))?;
            p.add_field("value", value);
        }
        "event" => {
            p.add_field("text", args.rest.join(" ").as_str());
        }
        other => return Err(Error::config(format!("unknown command `{other}`\n{}", usage()))),
    }
    p.set_timestamp(clock.now().nanos());
    Ok(p)
}

fn run() -> Result<()> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = parse_args(&argv)?;
    let clock = Clock::system();
    let point = build_point(&args, &clock)?;
    let mut client = lms_http::HttpClient::connect(args.url.as_str())?;
    client
        .post_text(&format!("/write?db={}", args.db), &point.to_line())?
        .into_result()?;
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("umetric: {e}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lms_util::Timestamp;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_metric_command() {
        let a = parse_args(&argv(&[
            "--url", "127.0.0.1:1", "--db", "udb", "--tag", "jobid=42", "metric", "pressure",
            "1.71",
        ]))
        .unwrap();
        assert_eq!(a.url, "127.0.0.1:1");
        assert_eq!(a.db, "udb");
        let p = build_point(&a, &Clock::simulated(Timestamp::from_secs(7))).unwrap();
        assert_eq!(p.to_line(), "pressure,jobid=42 value=1.71 7000000000");
    }

    #[test]
    fn parses_event_with_multiword_text() {
        let a = parse_args(&argv(&[
            "--url", "x:1", "event", "run", "miniMD", "starting", "now",
        ]))
        .unwrap();
        let p = build_point(&a, &Clock::simulated(Timestamp::from_secs(1))).unwrap();
        assert_eq!(p.to_line(), "run text=\"miniMD starting now\" 1000000000");
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&argv(&["metric", "m", "1"])).is_err()); // no url
        assert!(parse_args(&argv(&["--url", "x:1", "metric", "m"])).is_err()); // no value
        assert!(parse_args(&argv(&["--url", "x:1", "--tag", "novalue", "metric", "m", "1"]))
            .is_err());
        let a = parse_args(&argv(&["--url", "x:1", "metric", "m", "abc"])).unwrap();
        assert!(build_point(&a, &Clock::system()).is_err());
        let a = parse_args(&argv(&["--url", "x:1", "bogus", "m", "1"])).unwrap();
        assert!(build_point(&a, &Clock::system()).is_err());
    }
}
