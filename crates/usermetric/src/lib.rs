//! # lms-usermetric
//!
//! **libusermetric** — the application-level monitoring library of the LMS
//! (paper Sec. IV): "a lightweight library which buffers and sends batched
//! messages using the InfluxDB line protocol. Default tags can be specified
//! and added to each message. Besides metric name, value, default tags and
//! time stamp, arbitrary tags can be supplied, such as a thread identifier."
//!
//! - [`client::UserMetric`] — the buffered, batched, thread-safe client
//!   (Fig. 3's miniMD instrumentation uses it),
//! - [`transparent`] — application-transparent monitors, the Rust analog of
//!   the paper's LD_PRELOAD interposition libraries: a counting allocator
//!   wrapper (data allocation) and an affinity registry (thread pinning),
//! - `umetric` — the command-line tool "for use in batch scripts" (the
//!   events in Fig. 3 are sent with it).
//!
//! ```
//! use lms_usermetric::{UserMetric, UserMetricConfig};
//! use lms_util::{Clock, Timestamp};
//! use std::sync::{Arc, Mutex};
//!
//! let captured = Arc::new(Mutex::new(String::new()));
//! let sink = captured.clone();
//! let mut config = UserMetricConfig::default();
//! config.default_tags.push(("jobid".into(), "42".into()));
//! let um = UserMetric::to_fn(config, Clock::simulated(Timestamp::from_secs(1)),
//!     move |batch| sink.lock().unwrap().push_str(batch));
//!
//! um.metric("pressure", 1.713);
//! um.event("phase", "warmup done");
//! um.flush();
//! let text = captured.lock().unwrap().clone();
//! assert!(text.contains("pressure,jobid=42 value=1.713"));
//! assert!(text.contains("phase,jobid=42 text=\"warmup done\""));
//! ```

pub mod client;
pub mod paramon;
pub mod transparent;

pub use client::{UserMetric, UserMetricConfig};
pub use paramon::{MpiCall, MpiProfiler, OmpProfiler};
pub use transparent::{AffinityRegistry, AllocCounters, CountingAlloc};
