//! The buffered, batched metric/event client.

use lms_http::HttpClient;
use lms_lineproto::{BatchBuilder, FieldValue, Point};
use lms_util::{Clock, Result};
use parking_lot::Mutex;
use std::net::SocketAddr;
use std::sync::Arc;

/// Configuration of a [`UserMetric`] client.
#[derive(Debug, Clone)]
pub struct UserMetricConfig {
    /// Tags attached to every message (job id, user, rank, ...).
    pub default_tags: Vec<(String, String)>,
    /// Flush automatically once this many lines are buffered.
    pub flush_lines: usize,
    /// Tag each message with the calling thread's name (`thread=<name>`).
    pub thread_tag: bool,
}

impl Default for UserMetricConfig {
    fn default() -> Self {
        UserMetricConfig { default_tags: Vec::new(), flush_lines: 100, thread_tag: false }
    }
}

enum Sink {
    Http { client: HttpClient, db: String },
    Func(Box<dyn FnMut(&str) + Send>),
    Null,
}

struct Inner {
    batch: BatchBuilder,
    sink: Sink,
    flushes: u64,
    send_errors: u64,
}

/// The libusermetric client. Cloneable; clones share one buffer, so all
/// application threads batch into the same stream (one flush per
/// `flush_lines` messages, as the paper's "batched messages" intends).
#[derive(Clone)]
pub struct UserMetric {
    inner: Arc<Mutex<Inner>>,
    config: Arc<UserMetricConfig>,
    clock: Clock,
}

impl UserMetric {
    /// A client POSTing batches to `/write?db=<db>` at `addr`.
    pub fn to_http(
        config: UserMetricConfig,
        clock: Clock,
        addr: SocketAddr,
        db: &str,
    ) -> Result<Self> {
        Ok(Self::build(
            config,
            clock,
            Sink::Http { client: HttpClient::connect(addr)?, db: db.to_string() },
        ))
    }

    /// A client handing batches to a closure (embedded mode, tests).
    pub fn to_fn(
        config: UserMetricConfig,
        clock: Clock,
        f: impl FnMut(&str) + Send + 'static,
    ) -> Self {
        Self::build(config, clock, Sink::Func(Box::new(f)))
    }

    /// A client that discards batches (overhead benchmarking).
    pub fn to_null(config: UserMetricConfig, clock: Clock) -> Self {
        Self::build(config, clock, Sink::Null)
    }

    fn build(config: UserMetricConfig, clock: Clock, sink: Sink) -> Self {
        UserMetric {
            inner: Arc::new(Mutex::new(Inner {
                batch: BatchBuilder::with_capacity(4096),
                sink,
                flushes: 0,
                send_errors: 0,
            })),
            config: Arc::new(config),
            clock,
        }
    }

    fn point(&self, name: &str, extra_tags: &[(&str, &str)]) -> Point {
        let mut p = Point::new(name);
        for (k, v) in &self.config.default_tags {
            p.add_tag(k.as_str(), v.as_str());
        }
        if self.config.thread_tag {
            let t = std::thread::current();
            p.add_tag("thread", t.name().unwrap_or("unnamed"));
        }
        for (k, v) in extra_tags {
            p.add_tag(*k, *v);
        }
        p.set_timestamp(self.clock.now().nanos());
        p
    }

    fn record(&self, p: &Point) {
        let mut inner = self.inner.lock();
        inner.batch.push(p);
        if inner.batch.len() >= self.config.flush_lines {
            flush_locked(&mut inner);
        }
    }

    /// Records a numeric metric (field `value`).
    pub fn metric(&self, name: &str, value: f64) {
        let mut p = self.point(name, &[]);
        p.add_field("value", value);
        self.record(&p);
    }

    /// Records a numeric metric with extra tags (e.g. a thread identifier).
    pub fn metric_with_tags(&self, name: &str, value: f64, tags: &[(&str, &str)]) {
        let mut p = self.point(name, tags);
        p.add_field("value", value);
        self.record(&p);
    }

    /// Records multiple fields under one measurement in one message.
    pub fn metrics(&self, name: &str, fields: &[(&str, f64)]) {
        let mut p = self.point(name, &[]);
        for (k, v) in fields {
            p.add_field(*k, *v);
        }
        self.record(&p);
    }

    /// Records an event (string field `text`) — rendered as a dashed
    /// annotation line by the dashboards (paper Fig. 3).
    pub fn event(&self, name: &str, text: &str) {
        self.event_with_tags(name, text, &[]);
    }

    /// Records an event with extra tags. Distinct tags keep simultaneous
    /// events in distinct series (same-instant events in one series
    /// overwrite each other — InfluxDB semantics).
    pub fn event_with_tags(&self, name: &str, text: &str, tags: &[(&str, &str)]) {
        let mut p = self.point(name, tags);
        p.add_field_value("text", FieldValue::Text(text.to_string()));
        self.record(&p);
    }

    /// Flushes the buffer to the sink now.
    pub fn flush(&self) {
        flush_locked(&mut self.inner.lock());
    }

    /// Buffered line count.
    pub fn buffered(&self) -> usize {
        self.inner.lock().batch.len()
    }

    /// `(flushes, send errors)`.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.flushes, inner.send_errors)
    }
}

fn flush_locked(inner: &mut Inner) {
    if inner.batch.is_empty() {
        return;
    }
    let body = inner.batch.take();
    inner.flushes += 1;
    match &mut inner.sink {
        Sink::Http { client, db } => {
            let target = format!("/write?db={db}");
            match client.post_text(&target, &body) {
                Ok(resp) if resp.is_success() => {}
                _ => inner.send_errors += 1,
            }
        }
        Sink::Func(f) => f(&body),
        Sink::Null => {}
    }
}

impl Drop for UserMetric {
    fn drop(&mut self) {
        // Last clone out flushes the remaining buffer (don't lose the tail
        // of a run — Fig. 3's final data points).
        if Arc::strong_count(&self.inner) == 1 {
            self.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lms_util::Timestamp;
    use std::sync::Arc as StdArc;

    fn capture() -> (StdArc<Mutex<Vec<String>>>, UserMetric, Clock) {
        let clock = Clock::simulated(Timestamp::from_secs(10));
        let captured: StdArc<Mutex<Vec<String>>> = StdArc::new(Mutex::new(Vec::new()));
        let sink = captured.clone();
        let um = UserMetric::to_fn(
            UserMetricConfig::default(),
            clock.clone(),
            move |b| sink.lock().push(b.to_string()),
        );
        (captured, um, clock)
    }

    #[test]
    fn batches_until_flush() {
        let (captured, um, _clock) = capture();
        um.metric("a", 1.0);
        um.metric("b", 2.0);
        assert_eq!(um.buffered(), 2);
        assert!(captured.lock().is_empty());
        um.flush();
        assert_eq!(um.buffered(), 0);
        let got = captured.lock();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].lines().count(), 2);
        assert!(got[0].starts_with("a value=1 10000000000"));
    }

    #[test]
    fn auto_flush_at_threshold() {
        let clock = Clock::simulated(Timestamp::from_secs(1));
        let captured: StdArc<Mutex<Vec<String>>> = StdArc::new(Mutex::new(Vec::new()));
        let sink = captured.clone();
        let config = UserMetricConfig { flush_lines: 5, ..Default::default() };
        let um = UserMetric::to_fn(config, clock, move |b| sink.lock().push(b.to_string()));
        for i in 0..12 {
            um.metric("m", i as f64);
        }
        let got = captured.lock();
        assert_eq!(got.len(), 2, "two auto-flushes at 5 and 10");
        assert_eq!(um.buffered(), 2);
        assert_eq!(um.stats().0, 2);
    }

    #[test]
    fn default_and_extra_tags() {
        let clock = Clock::simulated(Timestamp::from_secs(1));
        let captured: StdArc<Mutex<Vec<String>>> = StdArc::new(Mutex::new(Vec::new()));
        let sink = captured.clone();
        let config = UserMetricConfig {
            default_tags: vec![("jobid".into(), "42".into()), ("rank".into(), "0".into())],
            ..Default::default()
        };
        let um = UserMetric::to_fn(config, clock, move |b| sink.lock().push(b.to_string()));
        um.metric_with_tags("pressure", 1.5, &[("tid", "3")]);
        um.flush();
        let line = captured.lock()[0].clone();
        assert_eq!(line.trim_end(), "pressure,jobid=42,rank=0,tid=3 value=1.5 1000000000");
    }

    #[test]
    fn thread_tag() {
        let clock = Clock::simulated(Timestamp::from_secs(1));
        let captured: StdArc<Mutex<Vec<String>>> = StdArc::new(Mutex::new(Vec::new()));
        let sink = captured.clone();
        let config = UserMetricConfig { thread_tag: true, ..Default::default() };
        let um = UserMetric::to_fn(config, clock, move |b| sink.lock().push(b.to_string()));
        let um2 = um.clone();
        std::thread::Builder::new()
            .name("worker-7".into())
            .spawn(move || um2.metric("x", 1.0))
            .unwrap()
            .join()
            .unwrap();
        um.flush();
        assert!(captured.lock()[0].contains("thread=worker-7"));
    }

    #[test]
    fn multi_field_and_events() {
        let (captured, um, _clock) = capture();
        um.metrics("minimd", &[("temp", 1.98), ("energy", -6.29)]);
        um.event("run", "miniMD start");
        um.flush();
        let body = captured.lock()[0].clone();
        assert!(body.contains("minimd temp=1.98,energy=-6.29"));
        assert!(body.contains("run text=\"miniMD start\""));
    }

    #[test]
    fn clones_share_one_buffer() {
        let (captured, um, _clock) = capture();
        let threads: Vec<_> = (0..4)
            .map(|i| {
                let um = um.clone();
                std::thread::spawn(move || {
                    for j in 0..25 {
                        um.metric("concurrent", (i * 25 + j) as f64);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        um.flush();
        let total: usize = captured.lock().iter().map(|b| b.lines().count()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn drop_flushes_tail() {
        let captured: StdArc<Mutex<Vec<String>>> = StdArc::new(Mutex::new(Vec::new()));
        let sink = captured.clone();
        {
            let um = UserMetric::to_fn(
                UserMetricConfig::default(),
                Clock::simulated(Timestamp::from_secs(1)),
                move |b| sink.lock().push(b.to_string()),
            );
            um.metric("tail", 9.0);
        }
        assert_eq!(captured.lock().len(), 1);
    }

    #[test]
    fn http_sink_round_trip() {
        use lms_http::{Response, Server};
        let received: StdArc<Mutex<Vec<String>>> = StdArc::new(Mutex::new(Vec::new()));
        let sink = received.clone();
        let server = Server::bind("127.0.0.1:0", 1, move |req| {
            sink.lock().push(req.body_str().into_owned());
            Response::no_content()
        })
        .unwrap();
        let um = UserMetric::to_http(
            UserMetricConfig::default(),
            Clock::simulated(Timestamp::from_secs(1)),
            server.addr(),
            "lms",
        )
        .unwrap();
        um.metric("over_http", 3.0);
        um.flush();
        assert!(received.lock()[0].contains("over_http value=3"));
        server.shutdown();
    }
}
