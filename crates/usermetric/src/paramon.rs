//! Parallel-runtime tooling interfaces (the paper's Sec. IV outlook).
//!
//! "Moreover, further information is planned to be gathered through the
//! tooling interfaces of common parallelization solutions like MPI or
//! OpenMP." This module implements that plan for the reproduction:
//!
//! - [`MpiProfiler`] — the PMPI-shim analog: applications (or an
//!   interposition layer) report each communication call; the profiler
//!   aggregates per-rank call counts, byte volumes and time, and emits
//!   them through the usual batched libusermetric channel.
//! - [`OmpProfiler`] — the OMPT analog: parallel-region enter/exit
//!   tracking with per-thread imbalance accounting.
//!
//! Both are pure aggregation layers: cheap enough to call from inner
//! communication loops (atomics only), reporting on demand.

use crate::client::UserMetric;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// MPI call classes tracked by the profiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MpiCall {
    /// Point-to-point sends (`MPI_Send`, `MPI_Isend`, ...).
    Send,
    /// Point-to-point receives.
    Recv,
    /// All-to-all style collectives (`MPI_Alltoall`, ...).
    AllToAll,
    /// Reductions (`MPI_Allreduce`, `MPI_Reduce`, ...).
    Reduce,
    /// Broadcasts and gathers/scatters.
    Broadcast,
    /// Barriers.
    Barrier,
    /// Blocking waits (`MPI_Wait*`).
    Wait,
}

impl MpiCall {
    const COUNT: usize = 7;

    fn index(self) -> usize {
        match self {
            MpiCall::Send => 0,
            MpiCall::Recv => 1,
            MpiCall::AllToAll => 2,
            MpiCall::Reduce => 3,
            MpiCall::Broadcast => 4,
            MpiCall::Barrier => 5,
            MpiCall::Wait => 6,
        }
    }

    fn name(self) -> &'static str {
        match self {
            MpiCall::Send => "send",
            MpiCall::Recv => "recv",
            MpiCall::AllToAll => "alltoall",
            MpiCall::Reduce => "reduce",
            MpiCall::Broadcast => "bcast",
            MpiCall::Barrier => "barrier",
            MpiCall::Wait => "wait",
        }
    }
}

#[derive(Default)]
struct CallCounters {
    calls: AtomicU64,
    bytes: AtomicU64,
    nanos: AtomicU64,
}

/// Per-rank MPI communication profile (the PMPI-shim analog).
pub struct MpiProfiler {
    rank: u32,
    size: u32,
    counters: [CallCounters; MpiCall::COUNT],
}

/// A snapshot of one call class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MpiCallStats {
    /// Number of calls.
    pub calls: u64,
    /// Bytes moved.
    pub bytes: u64,
    /// Time spent inside the calls.
    pub time_nanos: u64,
}

impl MpiProfiler {
    /// A profiler for `rank` of `size` ranks.
    pub fn new(rank: u32, size: u32) -> Self {
        assert!(size > 0 && rank < size, "rank {rank} of {size}");
        MpiProfiler { rank, size, counters: Default::default() }
    }

    /// This profiler's rank.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// Records one call. Call from the interposition wrapper after the
    /// real call returns; `bytes` is the message/collective volume as seen
    /// by this rank.
    pub fn record(&self, call: MpiCall, bytes: u64, elapsed: Duration) {
        let c = &self.counters[call.index()];
        c.calls.fetch_add(1, Ordering::Relaxed);
        c.bytes.fetch_add(bytes, Ordering::Relaxed);
        c.nanos.fetch_add(elapsed.as_nanos().min(u64::MAX as u128) as u64, Ordering::Relaxed);
    }

    /// Snapshot of one call class.
    pub fn stats(&self, call: MpiCall) -> MpiCallStats {
        let c = &self.counters[call.index()];
        MpiCallStats {
            calls: c.calls.load(Ordering::Relaxed),
            bytes: c.bytes.load(Ordering::Relaxed),
            time_nanos: c.nanos.load(Ordering::Relaxed),
        }
    }

    /// Total communication time across all classes.
    pub fn total_comm_time(&self) -> Duration {
        Duration::from_nanos(
            self.counters.iter().map(|c| c.nanos.load(Ordering::Relaxed)).sum(),
        )
    }

    /// Emits one `mpi_comm` point per active call class, tagged with the
    /// rank (the "arbitrary tags … such as a thread identifier" pattern).
    pub fn report(&self, um: &UserMetric) {
        let rank_tag = self.rank.to_string();
        let size_tag = self.size.to_string();
        for call in [
            MpiCall::Send,
            MpiCall::Recv,
            MpiCall::AllToAll,
            MpiCall::Reduce,
            MpiCall::Broadcast,
            MpiCall::Barrier,
            MpiCall::Wait,
        ] {
            let s = self.stats(call);
            if s.calls == 0 {
                continue;
            }
            um.metric_with_tags(
                "mpi_comm_calls",
                s.calls as f64,
                &[("rank", &rank_tag), ("ranks", &size_tag), ("call", call.name())],
            );
            um.metric_with_tags(
                "mpi_comm_bytes",
                s.bytes as f64,
                &[("rank", &rank_tag), ("ranks", &size_tag), ("call", call.name())],
            );
            um.metric_with_tags(
                "mpi_comm_seconds",
                s.time_nanos as f64 / 1e9,
                &[("rank", &rank_tag), ("ranks", &size_tag), ("call", call.name())],
            );
        }
    }
}

/// Per-thread accumulator of one parallel region (OMPT analog).
#[derive(Debug, Default, Clone)]
struct RegionState {
    /// Per-thread busy time within the current/last region, nanos.
    thread_nanos: Vec<u64>,
    regions: u64,
    total_nanos: u64,
}

/// OpenMP-style parallel-region profiler.
#[derive(Default)]
pub struct OmpProfiler {
    state: Mutex<RegionState>,
}

impl OmpProfiler {
    /// A fresh profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed parallel region: per-thread busy durations
    /// (the wrapper measures each worker's fork→join time).
    pub fn record_region(&self, per_thread: &[Duration]) {
        let mut s = self.state.lock();
        s.regions += 1;
        if s.thread_nanos.len() < per_thread.len() {
            s.thread_nanos.resize(per_thread.len(), 0);
        }
        let mut region_max = 0u64;
        for (slot, d) in s.thread_nanos.iter_mut().zip(per_thread) {
            let n = d.as_nanos().min(u64::MAX as u128) as u64;
            *slot += n;
            region_max = region_max.max(n);
        }
        s.total_nanos += region_max; // region wall time = slowest thread
    }

    /// Number of recorded regions.
    pub fn regions(&self) -> u64 {
        self.state.lock().regions
    }

    /// Load imbalance across threads: `(max − min) / max` of accumulated
    /// busy time, 0 when perfectly balanced or unmeasured.
    pub fn imbalance(&self) -> f64 {
        let s = self.state.lock();
        let (Some(&max), Some(&min)) =
            (s.thread_nanos.iter().max(), s.thread_nanos.iter().min())
        else {
            return 0.0;
        };
        if max == 0 {
            return 0.0;
        }
        (max - min) as f64 / max as f64
    }

    /// Emits `omp_parallel` metrics: region count, total parallel wall
    /// time, imbalance, per-thread busy seconds.
    pub fn report(&self, um: &UserMetric) {
        let s = self.state.lock();
        if s.regions == 0 {
            return;
        }
        um.metrics(
            "omp_parallel",
            &[
                ("regions", s.regions as f64),
                ("wall_seconds", s.total_nanos as f64 / 1e9),
                ("imbalance", {
                    let max = s.thread_nanos.iter().copied().max().unwrap_or(0);
                    let min = s.thread_nanos.iter().copied().min().unwrap_or(0);
                    if max == 0 { 0.0 } else { (max - min) as f64 / max as f64 }
                }),
            ],
        );
        for (tid, &nanos) in s.thread_nanos.iter().enumerate() {
            um.metric_with_tags(
                "omp_thread_busy_seconds",
                nanos as f64 / 1e9,
                &[("thread", &tid.to_string())],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::UserMetricConfig;
    use lms_util::{Clock, Timestamp};
    use std::sync::Arc;

    fn capture() -> (Arc<Mutex<Vec<String>>>, UserMetric) {
        let captured: Arc<Mutex<Vec<String>>> = Arc::default();
        let sink = captured.clone();
        let um = UserMetric::to_fn(
            UserMetricConfig::default(),
            Clock::simulated(Timestamp::from_secs(1)),
            move |b| sink.lock().push(b.to_string()),
        );
        (captured, um)
    }

    #[test]
    fn mpi_profiler_aggregates_per_class() {
        let p = MpiProfiler::new(3, 16);
        assert_eq!(p.rank(), 3);
        p.record(MpiCall::Send, 8192, Duration::from_micros(12));
        p.record(MpiCall::Send, 8192, Duration::from_micros(14));
        p.record(MpiCall::Reduce, 64, Duration::from_micros(150));
        let s = p.stats(MpiCall::Send);
        assert_eq!(s.calls, 2);
        assert_eq!(s.bytes, 16_384);
        assert_eq!(s.time_nanos, 26_000);
        assert_eq!(p.stats(MpiCall::Barrier), MpiCallStats::default());
        assert_eq!(p.total_comm_time(), Duration::from_micros(176));
    }

    #[test]
    fn mpi_report_emits_tagged_points() {
        let (captured, um) = capture();
        let p = MpiProfiler::new(0, 4);
        p.record(MpiCall::AllToAll, 1 << 20, Duration::from_millis(3));
        p.report(&um);
        um.flush();
        let body = captured.lock().join("");
        assert!(body.contains("mpi_comm_calls,call=alltoall,rank=0,ranks=4 value=1"), "{body}");
        assert!(body.contains("mpi_comm_bytes,call=alltoall,rank=0,ranks=4 value=1048576"));
        assert!(body.contains("mpi_comm_seconds,call=alltoall,rank=0,ranks=4 value=0.003"));
        // Untouched classes are not reported.
        assert!(!body.contains("call=barrier"));
    }

    #[test]
    fn mpi_profiler_is_thread_safe() {
        let p = Arc::new(MpiProfiler::new(0, 2));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let p = p.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        p.record(MpiCall::Recv, 100, Duration::from_nanos(50));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(p.stats(MpiCall::Recv).calls, 4000);
        assert_eq!(p.stats(MpiCall::Recv).bytes, 400_000);
    }

    #[test]
    #[should_panic(expected = "rank 5 of 4")]
    fn mpi_rejects_bad_rank() {
        MpiProfiler::new(5, 4);
    }

    #[test]
    fn omp_profiler_tracks_imbalance() {
        let p = OmpProfiler::new();
        assert_eq!(p.imbalance(), 0.0);
        // Balanced region.
        p.record_region(&[Duration::from_millis(10); 4]);
        assert_eq!(p.imbalance(), 0.0);
        // Imbalanced region: thread 0 does double work.
        p.record_region(&[
            Duration::from_millis(20),
            Duration::from_millis(10),
            Duration::from_millis(10),
            Duration::from_millis(10),
        ]);
        assert_eq!(p.regions(), 2);
        // Thread 0: 30ms, others 20ms → (30-20)/30 = 1/3.
        assert!((p.imbalance() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn omp_report_emits_region_and_thread_metrics() {
        let (captured, um) = capture();
        let p = OmpProfiler::new();
        p.record_region(&[Duration::from_millis(8), Duration::from_millis(10)]);
        p.report(&um);
        um.flush();
        let body = captured.lock().join("");
        assert!(body.contains("omp_parallel regions=1,wall_seconds=0.01,imbalance=0.2"), "{body}");
        assert!(body.contains("omp_thread_busy_seconds,thread=0 value=0.008"));
        assert!(body.contains("omp_thread_busy_seconds,thread=1 value=0.01"));
    }

    #[test]
    fn omp_empty_report_is_silent() {
        let (captured, um) = capture();
        OmpProfiler::new().report(&um);
        um.flush();
        assert!(captured.lock().is_empty());
    }
}
