//! The Webviewer: HTTP access to generated dashboards (Fig. 1's
//! "Webviewer" box, with "User View" and "Admin View").
//!
//! | endpoint | behaviour |
//! |---|---|
//! | `GET /ping` | liveness |
//! | `GET /jobs` | running jobs as JSON |
//! | `GET /dashboard?job=<id>` | the job's generated dashboard (Grafana-style JSON) |
//! | `GET /render?job=<id>` | the dashboard rendered to text (headless view) |
//! | `GET /admin` | the administrators' overview as text |

use crate::render::RenderOptions;
use crate::viewer::{JobInfo, ViewerAgent};
use lms_http::{Request, Response, Server};
use lms_influx::QuerySource;
use lms_util::{Clock, Json, Result};
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::Arc;

/// Source of job information for the viewer (fed by the scheduler or the
/// router's tag store).
pub trait JobDirectory: Send + Sync {
    /// The currently running jobs.
    fn running_jobs(&self) -> Vec<JobInfo>;

    /// Looks a job up by id (running or recently completed).
    fn job(&self, jobid: &str) -> Option<JobInfo>;
}

/// Produces a fresh query handle per request (the embedded [`lms_influx::Influx`]
/// clones cheaply; a remote deployment would open an `InfluxClient`).
pub type SourceFactory = Arc<dyn Fn() -> Box<dyn QuerySource + Send> + Send + Sync>;

/// A running webviewer server.
pub struct ViewerServer {
    server: Server,
}

impl ViewerServer {
    /// Starts serving.
    pub fn start<A: ToSocketAddrs>(
        addr: A,
        agent: Arc<ViewerAgent>,
        source_factory: SourceFactory,
        directory: Arc<dyn JobDirectory>,
        clock: Clock,
    ) -> Result<Self> {
        let server = Server::bind(addr, 32, move |req| {
            handle(&agent, &source_factory, &*directory, &clock, req)
        })?;
        Ok(ViewerServer { server })
    }

    /// Bound address.
    pub fn addr(&self) -> SocketAddr {
        self.server.addr()
    }

    /// Stops the server.
    pub fn shutdown(self) {
        self.server.shutdown();
    }
}

fn job_json(job: &JobInfo) -> Json {
    Json::obj([
        ("jobid", Json::str(&job.jobid)),
        ("user", Json::str(&job.user)),
        ("hosts", Json::arr(job.hosts.iter().map(|h| Json::str(h.as_str())))),
        ("start", Json::from(job.start.nanos())),
        (
            "end",
            job.end.map(|e| Json::from(e.nanos())).unwrap_or(Json::Null),
        ),
    ])
}

fn handle(
    agent: &ViewerAgent,
    source_factory: &SourceFactory,
    directory: &dyn JobDirectory,
    clock: &Clock,
    req: Request,
) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/ping") | ("HEAD", "/ping") => Response::no_content(),
        ("GET", "/jobs") => {
            let jobs = directory.running_jobs();
            Response::json(200, Json::arr(jobs.iter().map(job_json)).to_string())
        }
        ("GET", "/dashboard") | ("GET", "/render") => {
            let Some(jobid) = req.query_param("job") else {
                return Response::bad_request("missing `job` parameter");
            };
            let Some(job) = directory.job(jobid) else {
                return Response::not_found(&format!("job {jobid}"));
            };
            let mut source = source_factory();
            let now = clock.now();
            match agent.job_dashboard(source.as_mut(), &job, now) {
                Ok(dashboard) if req.path == "/dashboard" => {
                    Response::json(200, dashboard.to_json().to_pretty())
                }
                Ok(dashboard) => {
                    match agent.render_dashboard(
                        source.as_mut(),
                        &dashboard,
                        RenderOptions::default(),
                    ) {
                        Ok(text) => Response::text(200, text),
                        Err(e) => Response::text(500, e.to_string()),
                    }
                }
                Err(e) => Response::text(500, e.to_string()),
            }
        }
        ("GET", "/admin") => {
            let jobs = directory.running_jobs();
            let mut source = source_factory();
            match agent.admin_view(source.as_mut(), &jobs, clock.now()) {
                Ok(view) => Response::text(200, view.text),
                Err(e) => Response::text(500, e.to_string()),
            }
        }
        _ => Response::not_found("unknown endpoint"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::templates::TemplateStore;
    use lms_analysis::evaluation::NodePeaks;
    use lms_http::HttpClient;
    use lms_influx::Influx;
    use lms_util::Timestamp;
    use parking_lot::RwLock;

    struct StaticDirectory(RwLock<Vec<JobInfo>>);

    impl JobDirectory for StaticDirectory {
        fn running_jobs(&self) -> Vec<JobInfo> {
            self.0.read().clone()
        }

        fn job(&self, jobid: &str) -> Option<JobInfo> {
            self.0.read().iter().find(|j| j.jobid == jobid).cloned()
        }
    }

    fn fixture() -> (Influx, JobInfo) {
        let ix = Influx::new(Clock::simulated(Timestamp::from_secs(4000)));
        let mut batch = String::new();
        for s in (0..1800).step_by(60) {
            let ts = s as i64 * 1_000_000_000;
            batch.push_str(&format!(
                "cpu_total,hostname=h1 busy=0.9 {ts}\n\
                 hpm_flops_dp,hostname=h1 dp_mflop_s=120000,ipc=2.0,vectorization_ratio=90 {ts}\n"
            ));
        }
        ix.write_lines("lms", &batch, Default::default()).unwrap();
        (
            ix,
            JobInfo {
                jobid: "42".into(),
                user: "alice".into(),
                hosts: vec!["h1".into()],
                start: Timestamp::from_secs(0),
                end: None,
            },
        )
    }

    fn start() -> (ViewerServer, HttpClient) {
        let (ix, job) = fixture();
        let agent = Arc::new(ViewerAgent::new(
            "lms",
            TemplateStore::builtin(),
            NodePeaks { flops_mflops: 350_000.0, membw_mbytes: 84_000.0 },
        ));
        let factory: SourceFactory = {
            let ix = ix.clone();
            Arc::new(move || Box::new(ix.clone()) as Box<dyn QuerySource + Send>)
        };
        let directory = Arc::new(StaticDirectory(RwLock::new(vec![job])));
        let server = ViewerServer::start(
            "127.0.0.1:0",
            agent,
            factory,
            directory,
            Clock::simulated(Timestamp::from_secs(1800)),
        )
        .unwrap();
        let client = HttpClient::connect(server.addr()).unwrap();
        (server, client)
    }

    #[test]
    fn jobs_endpoint_lists_running() {
        let (server, mut c) = start();
        let r = c.get("/jobs").unwrap();
        assert_eq!(r.status, 200);
        let json = Json::parse(&r.body_str()).unwrap();
        assert_eq!(json.idx(0).unwrap().get("jobid").unwrap().as_str(), Some("42"));
        assert_eq!(json.idx(0).unwrap().get("user").unwrap().as_str(), Some("alice"));
        assert!(json.idx(0).unwrap().get("end").unwrap().is_null());
        server.shutdown();
    }

    #[test]
    fn dashboard_endpoint_returns_grafana_json() {
        let (server, mut c) = start();
        let r = c.get("/dashboard?job=42").unwrap();
        assert_eq!(r.status, 200);
        let json = Json::parse(&r.body_str()).unwrap();
        let dashboard = crate::model::Dashboard::from_json(&json).unwrap();
        assert_eq!(dashboard.title, "Job 42 (alice)");
        assert!(dashboard.rows.len() >= 2);
        server.shutdown();
    }

    #[test]
    fn render_endpoint_returns_text_charts() {
        let (server, mut c) = start();
        let r = c.get("/render?job=42").unwrap();
        assert_eq!(r.status, 200);
        let text = r.body_str();
        assert!(text.contains("##### Job 42 (alice) #####"));
        assert!(text.contains("DP FLOP rate h1"), "{text}");
        server.shutdown();
    }

    #[test]
    fn admin_endpoint() {
        let (server, mut c) = start();
        let r = c.get("/admin").unwrap();
        assert_eq!(r.status, 200);
        assert!(r.body_str().contains("alice"));
        server.shutdown();
    }

    #[test]
    fn errors() {
        let (server, mut c) = start();
        assert_eq!(c.get("/dashboard").unwrap().status, 400);
        assert_eq!(c.get("/dashboard?job=999").unwrap().status, 404);
        assert_eq!(c.get("/nope").unwrap().status, 404);
        assert_eq!(c.get("/ping").unwrap().status, 204);
        server.shutdown();
    }
}
