//! # lms-dashboard
//!
//! The web-visualization layer of the LMS reproduction — a Grafana
//! substitute plus the paper's **Dashboard Agent** (Sec. III-D).
//!
//! "Grafana is not configured manually but we developed a Grafana Agent
//! that generates the dashboards out of templates, based on available
//! databases and the metrics in them. … The dashboard, row and panel
//! templates are combined to a full dashboard and some settings are
//! adjusted for the current job. As a header, analysis results of the job
//! are presented …. The main view for administrators contains all
//! currently running jobs."
//!
//! - [`model`] — the dashboard/row/panel/target object model with a
//!   Grafana-style JSON representation,
//! - [`templates`] — the template store and `$variable` instantiation,
//! - [`viewer`] — the Viewer Agent: metric discovery, template selection,
//!   dashboard composition per job, plus the admin overview,
//! - [`render`] — a headless ASCII renderer that draws panels (time-series
//!   charts with event annotations as dashed lines) from live query data —
//!   this is what regenerates the paper's Figs. 2–4 in a terminal.

pub mod model;
pub mod render;
pub mod server;
pub mod templates;
pub mod viewer;

pub use model::{Dashboard, Panel, PanelKind, Row, Target};
pub use templates::TemplateStore;
pub use server::{JobDirectory, ViewerServer};
pub use viewer::{AdminView, JobInfo, ViewerAgent};
