//! The dashboard object model and its Grafana-style JSON form.

use lms_util::{Error, Json, Result};

/// What a panel displays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanelKind {
    /// Time-series line graph.
    Graph,
    /// Single aggregated number.
    SingleStat,
    /// Text/markdown (the evaluation header uses this).
    Text,
    /// Value histogram.
    Histogram,
}

impl PanelKind {
    fn as_str(self) -> &'static str {
        match self {
            PanelKind::Graph => "graph",
            PanelKind::SingleStat => "singlestat",
            PanelKind::Text => "text",
            PanelKind::Histogram => "histogram",
        }
    }

    fn parse(s: &str) -> Result<Self> {
        Ok(match s {
            "graph" => PanelKind::Graph,
            "singlestat" => PanelKind::SingleStat,
            "text" => PanelKind::Text,
            "histogram" => PanelKind::Histogram,
            other => return Err(Error::protocol(format!("unknown panel type `{other}`"))),
        })
    }
}

/// One query a panel plots.
#[derive(Debug, Clone, PartialEq)]
pub struct Target {
    /// Database to query.
    pub db: String,
    /// InfluxQL query text.
    pub query: String,
    /// Legend label.
    pub alias: String,
    /// Result column to plot (e.g. `mean` or a raw field name).
    pub column: String,
}

/// One panel.
#[derive(Debug, Clone, PartialEq)]
pub struct Panel {
    /// Display title.
    pub title: String,
    /// Kind of visualization.
    pub kind: PanelKind,
    /// Queries to plot (empty for text panels).
    pub targets: Vec<Target>,
    /// Y-axis unit label.
    pub unit: String,
    /// Static content (text panels).
    pub content: String,
    /// Measurement whose string events annotate the chart as dashed lines
    /// (paper Fig. 3), if any.
    pub annotation_measurement: Option<String>,
}

impl Panel {
    /// A graph panel with one target.
    pub fn graph(title: &str, target: Target, unit: &str) -> Self {
        Panel {
            title: title.to_string(),
            kind: PanelKind::Graph,
            targets: vec![target],
            unit: unit.to_string(),
            content: String::new(),
            annotation_measurement: None,
        }
    }

    /// A text panel.
    pub fn text(title: &str, content: &str) -> Self {
        Panel {
            title: title.to_string(),
            kind: PanelKind::Text,
            targets: Vec::new(),
            unit: String::new(),
            content: content.to_string(),
            annotation_measurement: None,
        }
    }
}

/// One row of panels.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Row {
    /// Row title.
    pub title: String,
    /// The panels, left to right.
    pub panels: Vec<Panel>,
}

/// A complete dashboard.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Dashboard {
    /// Dashboard title.
    pub title: String,
    /// Tags (the viewer marks them `lms`, `job`, the job id …).
    pub tags: Vec<String>,
    /// Display time range `(from, to)` in ns since the epoch.
    pub time_range: (i64, i64),
    /// Rows, top to bottom.
    pub rows: Vec<Row>,
}

impl Dashboard {
    /// Serializes to the Grafana-style JSON the agent stores.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("title", Json::str(&self.title)),
            ("tags", Json::arr(self.tags.iter().map(Json::str))),
            (
                "time",
                Json::obj([
                    ("from", Json::from(self.time_range.0)),
                    ("to", Json::from(self.time_range.1)),
                ]),
            ),
            (
                "rows",
                Json::arr(self.rows.iter().map(|row| {
                    Json::obj([
                        ("title", Json::str(&row.title)),
                        (
                            "panels",
                            Json::arr(row.panels.iter().map(|p| {
                                let mut obj = vec![
                                    ("title".to_string(), Json::str(&p.title)),
                                    ("type".to_string(), Json::str(p.kind.as_str())),
                                    ("unit".to_string(), Json::str(&p.unit)),
                                    (
                                        "targets".to_string(),
                                        Json::arr(p.targets.iter().map(|t| {
                                            Json::obj([
                                                ("db", Json::str(&t.db)),
                                                ("query", Json::str(&t.query)),
                                                ("alias", Json::str(&t.alias)),
                                                ("column", Json::str(&t.column)),
                                            ])
                                        })),
                                    ),
                                ];
                                if !p.content.is_empty() {
                                    obj.push(("content".to_string(), Json::str(&p.content)));
                                }
                                if let Some(m) = &p.annotation_measurement {
                                    obj.push(("annotations".to_string(), Json::str(m)));
                                }
                                Json::Obj(obj)
                            })),
                        ),
                    ])
                })),
            ),
        ])
    }

    /// Parses a dashboard from its JSON form.
    pub fn from_json(json: &Json) -> Result<Dashboard> {
        let title = json
            .get("title")
            .and_then(Json::as_str)
            .ok_or_else(|| Error::protocol("dashboard missing title"))?
            .to_string();
        let tags = json
            .get("tags")
            .and_then(Json::as_arr)
            .map(|a| a.iter().filter_map(|t| t.as_str().map(String::from)).collect())
            .unwrap_or_default();
        let time_range = match json.get("time") {
            Some(t) => (
                t.get("from").and_then(Json::as_i64).unwrap_or(0),
                t.get("to").and_then(Json::as_i64).unwrap_or(0),
            ),
            None => (0, 0),
        };
        let mut rows = Vec::new();
        for row_json in json.get("rows").and_then(Json::as_arr).unwrap_or(&[]) {
            let mut row = Row {
                title: row_json
                    .get("title")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string(),
                panels: Vec::new(),
            };
            for p in row_json.get("panels").and_then(Json::as_arr).unwrap_or(&[]) {
                let kind = PanelKind::parse(
                    p.get("type").and_then(Json::as_str).unwrap_or("graph"),
                )?;
                let mut targets = Vec::new();
                for t in p.get("targets").and_then(Json::as_arr).unwrap_or(&[]) {
                    targets.push(Target {
                        db: t.get("db").and_then(Json::as_str).unwrap_or("lms").to_string(),
                        query: t
                            .get("query")
                            .and_then(Json::as_str)
                            .ok_or_else(|| Error::protocol("target missing query"))?
                            .to_string(),
                        alias: t.get("alias").and_then(Json::as_str).unwrap_or("").to_string(),
                        column: t
                            .get("column")
                            .and_then(Json::as_str)
                            .unwrap_or("mean")
                            .to_string(),
                    });
                }
                row.panels.push(Panel {
                    title: p.get("title").and_then(Json::as_str).unwrap_or("").to_string(),
                    kind,
                    targets,
                    unit: p.get("unit").and_then(Json::as_str).unwrap_or("").to_string(),
                    content: p
                        .get("content")
                        .and_then(Json::as_str)
                        .unwrap_or("")
                        .to_string(),
                    annotation_measurement: p
                        .get("annotations")
                        .and_then(Json::as_str)
                        .map(String::from),
                });
            }
            rows.push(row);
        }
        Ok(Dashboard { title, tags, time_range, rows })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dashboard {
        Dashboard {
            title: "Job 42 (alice)".into(),
            tags: vec!["lms".into(), "job".into(), "42".into()],
            time_range: (1_000_000_000, 2_000_000_000),
            rows: vec![Row {
                title: "CPU".into(),
                panels: vec![
                    Panel::text("Evaluation", "all good"),
                    Panel {
                        annotation_measurement: Some("events".into()),
                        ..Panel::graph(
                            "DP FLOP rate",
                            Target {
                                db: "lms".into(),
                                query: "SELECT mean(dp_mflop_s) FROM hpm_flops_dp".into(),
                                alias: "h1".into(),
                                column: "mean".into(),
                            },
                            "MFLOP/s",
                        )
                    },
                ],
            }],
        }
    }

    #[test]
    fn json_round_trip() {
        let d = sample();
        let json = d.to_json();
        let back = Dashboard::from_json(&json).unwrap();
        assert_eq!(back, d);
        // And through text.
        let reparsed = Json::parse(&json.to_pretty()).unwrap();
        assert_eq!(Dashboard::from_json(&reparsed).unwrap(), d);
    }

    #[test]
    fn panel_kinds_round_trip() {
        for k in
            [PanelKind::Graph, PanelKind::SingleStat, PanelKind::Text, PanelKind::Histogram]
        {
            assert_eq!(PanelKind::parse(k.as_str()).unwrap(), k);
        }
        assert!(PanelKind::parse("piechart3d").is_err());
    }

    #[test]
    fn from_json_validates() {
        assert!(Dashboard::from_json(&Json::parse("{}").unwrap()).is_err());
        let bad = Json::parse(
            r#"{"title":"x","rows":[{"panels":[{"type":"graph","targets":[{"db":"lms"}]}]}]}"#,
        )
        .unwrap();
        assert!(Dashboard::from_json(&bad).is_err(), "target without query");
    }

    #[test]
    fn missing_optional_fields_default() {
        let j = Json::parse(r#"{"title":"minimal"}"#).unwrap();
        let d = Dashboard::from_json(&j).unwrap();
        assert_eq!(d.title, "minimal");
        assert!(d.rows.is_empty());
        assert_eq!(d.time_range, (0, 0));
    }
}
