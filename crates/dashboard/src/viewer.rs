//! The Viewer Agent: template-driven dashboard generation per job, and the
//! administrators' overview of all running jobs.

use crate::model::{Dashboard, Panel, Row, Target};
use crate::render::{render_panel, sparkline, RenderOptions};
use crate::templates::TemplateStore;
use lms_analysis::evaluation::{JobEvaluation, NodePeaks};
use lms_influx::QuerySource;
use lms_util::{Result, Timestamp};

/// What the agent needs to know about one job (fed from the router's
/// `/jobs` endpoint or the scheduler).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobInfo {
    /// Job identifier.
    pub jobid: String,
    /// Owning user.
    pub user: String,
    /// Participating hostnames.
    pub hosts: Vec<String>,
    /// Allocation time.
    pub start: Timestamp,
    /// Deallocation time (`None` while running).
    pub end: Option<Timestamp>,
}

/// The rendered admin overview.
#[derive(Debug, Clone)]
pub struct AdminView {
    /// One line per job: id, user, nodes, FLOP-rate thumbnail.
    pub text: String,
    /// Number of jobs shown.
    pub jobs: usize,
}

/// The dashboard-generating agent.
pub struct ViewerAgent {
    db: String,
    store: TemplateStore,
    peaks: NodePeaks,
}

impl ViewerAgent {
    /// An agent reading from database `db` with the given templates.
    pub fn new(db: &str, store: TemplateStore, peaks: NodePeaks) -> Self {
        ViewerAgent { db: db.to_string(), store, peaks }
    }

    /// The template store (for registering site templates).
    pub fn templates_mut(&mut self) -> &mut TemplateStore {
        &mut self.store
    }

    /// Generates the dashboard for one job: evaluation header (Fig. 2) +
    /// one templated row per available metric family + generic panels for
    /// application-level measurements (Sec. IV) discovered in the database.
    pub fn job_dashboard(
        &self,
        source: &mut dyn QuerySource,
        job: &JobInfo,
        now: Timestamp,
    ) -> Result<Dashboard> {
        let end = job.end.unwrap_or(now);
        let from = job.start.nanos().to_string();
        let to = end.nanos().to_string();

        // "based on available databases and the metrics in them".
        let available: Vec<String> = source
            .query_source(&self.db, "SHOW MEASUREMENTS")?
            .series
            .first()
            .map(|s| {
                s.values
                    .iter()
                    .filter_map(|row| row.first().and_then(|v| v.as_str()).map(String::from))
                    .collect()
            })
            .unwrap_or_default();

        let mut dashboard = Dashboard {
            title: format!("Job {} ({})", job.jobid, job.user),
            tags: vec!["lms".into(), "job".into(), job.jobid.clone()],
            time_range: (job.start.nanos(), end.nanos()),
            rows: Vec::new(),
        };

        // Header row: online evaluation results (Fig. 2).
        let evaluation = JobEvaluation::evaluate(
            source,
            &self.db,
            &job.jobid,
            &job.hosts,
            job.start,
            end,
            self.peaks,
        )?;
        dashboard.rows.push(Row {
            title: "Evaluation".into(),
            panels: vec![Panel::text("Job evaluation", &evaluation.render_table())],
        });

        // Templated rows for the metric families present in the database.
        let base_vars: Vec<(&str, &str)> = vec![
            ("db", self.db.as_str()),
            ("jobid", job.jobid.as_str()),
            ("user", job.user.as_str()),
            ("from", from.as_str()),
            ("to", to.as_str()),
        ];
        let mut covered: Vec<&str> = vec!["events"];
        for row_template in self.store.rows() {
            covered.push(&row_template.requires_measurement);
            if available.iter().any(|m| m == &row_template.requires_measurement) {
                dashboard
                    .rows
                    .push(self.store.instantiate_row(row_template, &job.hosts, &base_vars)?);
            }
        }

        // Application-level measurements get generic per-job panels —
        // "with application-level monitoring additional metrics may be
        // available" (Sec. III-D). Heuristic: uncovered measurements that
        // are not part of the standard system/HPM families.
        let standard_prefixes = ["hpm_", "cpu", "memory", "network", "disk", "load", "ganglia_"];
        let mut app_row = Row { title: "Application metrics".into(), panels: Vec::new() };
        for measurement in &available {
            let is_covered = covered.iter().any(|c| c == measurement);
            let is_standard = standard_prefixes.iter().any(|p| measurement.starts_with(p));
            if is_covered || is_standard {
                continue;
            }
            app_row.panels.push(Panel {
                annotation_measurement: Some("events".into()),
                ..Panel::graph(
                    measurement,
                    Target {
                        db: self.db.clone(),
                        query: format!(
                            "SELECT mean(value) FROM {measurement} WHERE time >= {from} AND time <= {to} GROUP BY time(30s)"
                        ),
                        alias: measurement.clone(),
                        column: "mean".into(),
                    },
                    "",
                )
            });
        }
        if !app_row.panels.is_empty() {
            dashboard.rows.push(app_row);
        }

        Ok(dashboard)
    }

    /// Renders a whole dashboard to text (all panels).
    pub fn render_dashboard(
        &self,
        source: &mut dyn QuerySource,
        dashboard: &Dashboard,
        opts: RenderOptions,
    ) -> Result<String> {
        let mut out = format!("##### {} #####\n", dashboard.title);
        for row in &dashboard.rows {
            out.push_str(&format!("\n--- {} ---\n", row.title));
            for panel in &row.panels {
                out.push_str(&render_panel(panel, source, opts)?);
            }
        }
        Ok(out)
    }

    /// The administrators' main view: all running jobs with thumbnails of
    /// the job's DP FLOP rate.
    pub fn admin_view(
        &self,
        source: &mut dyn QuerySource,
        jobs: &[JobInfo],
        now: Timestamp,
    ) -> Result<AdminView> {
        let mut text = String::from("RUNNING JOBS\n");
        text.push_str(&format!(
            "{:<8} {:<10} {:<6} {:<24} {}\n",
            "jobid", "user", "nodes", "runtime", "DP FLOP rate"
        ));
        for job in jobs {
            let end = job.end.unwrap_or(now);
            let runtime = lms_util::fmt::duration(end.since(job.start));
            // Thumbnail from the job's first host (a representative trace;
            // the full dashboard shows every node).
            let host = job.hosts.first().map(String::as_str).unwrap_or("");
            let q = format!(
                "SELECT mean(dp_mflop_s) FROM hpm_flops_dp WHERE hostname = '{host}' AND time >= {} AND time <= {} GROUP BY time(1m)",
                job.start.nanos(),
                end.nanos()
            );
            let series = lms_analysis::TimeSeries::from_result(
                &source.query_source(&self.db, &q)?,
                "mean",
            );
            let thumb = sparkline(&series.values());
            text.push_str(&format!(
                "{:<8} {:<10} {:<6} {:<24} {}\n",
                job.jobid,
                job.user,
                job.hosts.len(),
                runtime,
                if thumb.is_empty() { "(no data)".to_string() } else { thumb }
            ));
        }
        Ok(AdminView { text, jobs: jobs.len() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::templates::TemplateStore;
    use lms_influx::Influx;
    use lms_util::Clock;

    fn fixture() -> (Influx, JobInfo) {
        let ix = Influx::new(Clock::simulated(Timestamp::from_secs(4000)));
        let mut batch = String::new();
        for s in (0..3600).step_by(60) {
            let ts = s as i64 * 1_000_000_000;
            for host in ["h1", "h2"] {
                batch.push_str(&format!(
                    "cpu_total,hostname={host} busy=0.9 {ts}\n\
                     load,hostname={host} load1=8 {ts}\n\
                     memory,hostname={host} used_frac=0.4 {ts}\n\
                     network,hostname={host} rx_bytes_per_s=1000,tx_bytes_per_s=1000 {ts}\n\
                     disk,hostname={host} read_bytes_per_s=10,write_bytes_per_s=10 {ts}\n\
                     hpm_flops_dp,hostname={host} dp_mflop_s=150000,ipc=2.0,vectorization_ratio=90 {ts}\n\
                     hpm_mem,hostname={host} memory_bandwidth_mbytes_s=20000 {ts}\n\
                     minimd_pressure,hostname={host},jobid=42 value=1.7 {ts}\n"
                ));
            }
        }
        batch.push_str("events,hostname=h1,jobid=42,kind=job_start text=\"job_start job 42\" 0\n");
        ix.write_lines("lms", &batch, Default::default()).unwrap();
        let job = JobInfo {
            jobid: "42".into(),
            user: "alice".into(),
            hosts: vec!["h1".into(), "h2".into()],
            start: Timestamp::from_secs(0),
            end: None,
        };
        (ix, job)
    }

    fn agent() -> ViewerAgent {
        ViewerAgent::new(
            "lms",
            TemplateStore::builtin(),
            NodePeaks { flops_mflops: 350_000.0, membw_mbytes: 84_000.0 },
        )
    }

    #[test]
    fn generates_rows_for_available_metrics_only() {
        let (mut ix, job) = fixture();
        let d = agent().job_dashboard(&mut ix, &job, Timestamp::from_secs(3600)).unwrap();
        assert_eq!(d.title, "Job 42 (alice)");
        let titles: Vec<&str> = d.rows.iter().map(|r| r.title.as_str()).collect();
        assert_eq!(
            titles,
            vec!["Evaluation", "CPU", "FLOPS", "Memory", "Network", "Application metrics"]
        );
        // Per-host instantiation: FLOPS row has one panel per host.
        let flops_row = &d.rows[2];
        assert_eq!(flops_row.panels.len(), 2);
        assert!(flops_row.panels[0].targets[0].query.contains("'h1'"));
        assert!(flops_row.panels[1].targets[0].query.contains("'h2'"));
    }

    #[test]
    fn header_contains_the_evaluation_table() {
        let (mut ix, job) = fixture();
        let d = agent().job_dashboard(&mut ix, &job, Timestamp::from_secs(3600)).unwrap();
        let header = &d.rows[0].panels[0];
        assert_eq!(header.kind, crate::model::PanelKind::Text);
        assert!(header.content.contains("h1"));
        assert!(header.content.contains("DP [MFLOP/s]"));
        assert!(header.content.contains("Pattern:"));
    }

    #[test]
    fn application_metrics_discovered() {
        let (mut ix, job) = fixture();
        let d = agent().job_dashboard(&mut ix, &job, Timestamp::from_secs(3600)).unwrap();
        let app_row = d.rows.last().unwrap();
        assert_eq!(app_row.title, "Application metrics");
        assert_eq!(app_row.panels.len(), 1);
        assert_eq!(app_row.panels[0].title, "minimd_pressure");
    }

    #[test]
    fn dashboard_renders_end_to_end() {
        let (mut ix, job) = fixture();
        let a = agent();
        let d = a.job_dashboard(&mut ix, &job, Timestamp::from_secs(3600)).unwrap();
        let text = a
            .render_dashboard(&mut ix, &d, RenderOptions { width: 48, height: 8 })
            .unwrap();
        assert!(text.contains("##### Job 42 (alice) #####"));
        assert!(text.contains("--- FLOPS ---"));
        assert!(text.contains("DP FLOP rate h1"));
        assert!(text.contains('*'), "charts rendered");
    }

    #[test]
    fn admin_view_lists_jobs_with_thumbnails() {
        let (mut ix, job) = fixture();
        let other = JobInfo {
            jobid: "43".into(),
            user: "bob".into(),
            hosts: vec!["h9".into()],
            start: Timestamp::from_secs(100),
            end: None,
        };
        let view = agent()
            .admin_view(&mut ix, &[job, other], Timestamp::from_secs(3600))
            .unwrap();
        assert_eq!(view.jobs, 2);
        assert!(view.text.contains("42"));
        assert!(view.text.contains("alice"));
        assert!(view.text.contains('▁') || view.text.contains('█'), "{}", view.text);
        assert!(view.text.lines().count() >= 4);
    }

    #[test]
    fn empty_database_still_builds_a_dashboard() {
        let mut ix = Influx::new(Clock::simulated(Timestamp::from_secs(10)));
        ix.create_database("lms");
        let job = JobInfo {
            jobid: "7".into(),
            user: "x".into(),
            hosts: vec!["h1".into()],
            start: Timestamp::from_secs(0),
            end: Some(Timestamp::from_secs(5)),
        };
        let d = agent().job_dashboard(&mut ix, &job, Timestamp::from_secs(10)).unwrap();
        assert_eq!(d.rows.len(), 1, "only the evaluation header");
        assert_eq!(d.time_range, (0, 5_000_000_000));
    }
}
