//! Headless panel rendering: live query data → ASCII charts.
//!
//! Grafana draws the panels in a browser; this renderer draws them in a
//! terminal so the paper's figures regenerate in CI. Graph panels become
//! line charts with a y-axis, a time axis, one marker glyph per series and
//! event annotations as dashed vertical lines (`¦`) — the visual language
//! of Fig. 3 and Fig. 4.

use crate::model::{Panel, PanelKind};
use lms_analysis::stats::Histogram;
use lms_analysis::TimeSeries;
use lms_influx::QuerySource;
use lms_util::{Result, Timestamp};

/// Rendering options.
#[derive(Debug, Clone, Copy)]
pub struct RenderOptions {
    /// Chart width in columns (plot area, excluding the y-axis gutter).
    pub width: usize,
    /// Chart height in rows.
    pub height: usize,
}

impl Default for RenderOptions {
    fn default() -> Self {
        RenderOptions { width: 72, height: 12 }
    }
}

/// Marker glyphs assigned to series in order.
const MARKERS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];

/// A compact one-line sparkline (admin-view thumbnails).
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return String::new();
    }
    let min = finite.iter().copied().fold(f64::INFINITY, f64::min);
    let max = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(f64::MIN_POSITIVE);
    finite
        .iter()
        .map(|v| BARS[(((v - min) / span) * 7.0).round() as usize])
        .collect()
}

/// Renders a panel against a data source.
pub fn render_panel(
    panel: &Panel,
    source: &mut dyn QuerySource,
    opts: RenderOptions,
) -> Result<String> {
    match panel.kind {
        PanelKind::Text => Ok(format!("== {} ==\n{}\n", panel.title, panel.content)),
        PanelKind::SingleStat => {
            let mut out = format!("== {} ==\n", panel.title);
            for target in &panel.targets {
                let ts = TimeSeries::from_result(
                    &source.query_source(&target.db, &target.query)?,
                    &target.column,
                );
                match ts.last() {
                    Some((_, v)) => {
                        out.push_str(&format!("{}: {v:.4} {}\n", target.alias, panel.unit))
                    }
                    None => out.push_str(&format!("{}: no data\n", target.alias)),
                }
            }
            Ok(out)
        }
        PanelKind::Histogram => {
            let mut values = Vec::new();
            for target in &panel.targets {
                let ts = TimeSeries::from_result(
                    &source.query_source(&target.db, &target.query)?,
                    &target.column,
                );
                values.extend(ts.values());
            }
            Ok(render_histogram(panel, &values, opts))
        }
        PanelKind::Graph => render_graph(panel, source, opts),
    }
}

fn render_histogram(panel: &Panel, values: &[f64], opts: RenderOptions) -> String {
    let mut out = format!("== {} ==\n", panel.title);
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        out.push_str("(no data)\n");
        return out;
    }
    let min = finite.iter().copied().fold(f64::INFINITY, f64::min);
    let max = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let hi = if max > min { max + (max - min) * 1e-9 } else { min + 1.0 };
    let bins = opts.height.max(4);
    let mut h = Histogram::new(min, hi, bins);
    for v in finite {
        h.add(v);
    }
    let peak = h.bins().iter().copied().max().unwrap_or(1).max(1);
    for (center, count) in h.centers() {
        let bar = "#".repeat((count as f64 / peak as f64 * opts.width as f64) as usize);
        out.push_str(&format!("{center:>12.3} | {bar} {count}\n"));
    }
    out
}

fn render_graph(
    panel: &Panel,
    source: &mut dyn QuerySource,
    opts: RenderOptions,
) -> Result<String> {
    let mut series: Vec<(String, TimeSeries)> = Vec::new();
    for target in &panel.targets {
        let result = source.query_source(&target.db, &target.query)?;
        if result.series.len() > 1 {
            // GROUP BY tag queries: one plotted series per group.
            for (tag, ts) in TimeSeries::per_tag(&result, "hostname", &target.column) {
                let label =
                    if tag.is_empty() { target.alias.clone() } else { tag.to_string() };
                series.push((label, ts));
            }
        } else {
            series.push((
                target.alias.clone(),
                TimeSeries::from_result(&result, &target.column),
            ));
        }
    }
    series.retain(|(_, ts)| !ts.is_empty());

    let mut out = format!("== {} ==", panel.title);
    if !panel.unit.is_empty() {
        out.push_str(&format!("  [{}]", panel.unit));
    }
    out.push('\n');
    if series.is_empty() {
        out.push_str("(no data)\n");
        return Ok(out);
    }

    // Global extents.
    let (mut t_min, mut t_max) = (i64::MAX, i64::MIN);
    let (mut v_min, mut v_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for (_, ts) in &series {
        for &(t, v) in &ts.points {
            t_min = t_min.min(t.nanos());
            t_max = t_max.max(t.nanos());
            if v.is_finite() {
                v_min = v_min.min(v);
                v_max = v_max.max(v);
            }
        }
    }
    if !v_min.is_finite() {
        out.push_str("(no finite data)\n");
        return Ok(out);
    }
    if v_max <= v_min {
        v_max = v_min + 1.0;
    }
    if t_max <= t_min {
        t_max = t_min + 1;
    }
    // Include zero in the axis when close (charts read better).
    if v_min > 0.0 && v_min < 0.25 * v_max {
        v_min = 0.0;
    }

    let (w, h) = (opts.width.max(16), opts.height.max(4));
    let mut grid = vec![vec![' '; w]; h];

    // Event annotations: dashed vertical lines where events fall. The
    // window extends a little past the data so begin/end events sent just
    // outside the sampled range (Fig. 3's bracketing events) still show.
    let mut annotations: Vec<(i64, String)> = Vec::new();
    if let Some(measurement) = &panel.annotation_measurement {
        if let Some(target) = panel.targets.first() {
            let margin = ((t_max - t_min) / 10).max(1);
            let (a_min, a_max) =
                (t_min.saturating_sub(margin), t_max.saturating_add(margin));
            let q = format!(
                "SELECT text FROM {measurement} WHERE time >= {a_min} AND time <= {a_max}"
            );
            if let Ok(result) = source.query_source(&target.db, &q) {
                let ts = TimeSeries::from_result(&result, "text");
                // Text column isn't numeric; pull times straight from rows.
                let _ = ts;
                for s in &result.series {
                    for row in &s.values {
                        if let (Some(t), Some(text)) = (
                            row.first().and_then(|v| v.as_i64()),
                            row.get(1).and_then(|v| v.as_str()),
                        ) {
                            annotations.push((t, text.to_string()));
                        }
                    }
                }
            }
        }
    }
    let col_of = |t: i64| -> usize {
        let c = ((t - t_min) as f64 / (t_max - t_min) as f64) * (w - 1) as f64;
        (c.round().max(0.0) as usize).min(w - 1) // out-of-range events clamp
    };
    let row_of = |v: f64| -> usize {
        let frac = (v - v_min) / (v_max - v_min);
        ((1.0 - frac) * (h - 1) as f64).round() as usize
    };
    for (t, _) in &annotations {
        let c = col_of(*t);
        for (r, grid_row) in grid.iter_mut().enumerate() {
            if r % 2 == 0 {
                grid_row[c] = '¦';
            }
        }
    }
    // Series markers (drawn after annotations so data wins the cell).
    for (si, (_, ts)) in series.iter().enumerate() {
        let marker = MARKERS[si % MARKERS.len()];
        for &(t, v) in &ts.points {
            if !v.is_finite() {
                continue;
            }
            grid[row_of(v)][col_of(t.nanos())] = marker;
        }
    }

    // Compose with a y-axis gutter.
    for (r, grid_row) in grid.iter().enumerate() {
        let label = if r % 3 == 0 || r == h - 1 {
            let v = v_max - (v_max - v_min) * r as f64 / (h - 1) as f64;
            format!("{v:>10.2}")
        } else {
            " ".repeat(10)
        };
        out.push_str(&label);
        out.push_str(" |");
        out.extend(grid_row.iter());
        out.push('\n');
    }
    out.push_str(&" ".repeat(10));
    out.push_str(" +");
    out.push_str(&"-".repeat(w));
    out.push('\n');
    out.push_str(&format!(
        "{:>12}{}{:>w$}\n",
        Timestamp(t_min).to_string(),
        " ".repeat(2),
        Timestamp(t_max).to_string(),
        w = w.saturating_sub(14)
    ));
    // Legend.
    for (si, (label, ts)) in series.iter().enumerate() {
        out.push_str(&format!(
            "  {} {}  (n={})\n",
            MARKERS[si % MARKERS.len()],
            label,
            ts.len()
        ));
    }
    for (t, text) in &annotations {
        out.push_str(&format!("  ¦ {} @ {}\n", text, Timestamp(*t)));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Target;
    use lms_influx::Influx;
    use lms_util::Clock;

    fn fixture() -> Influx {
        let ix = Influx::new(Clock::simulated(Timestamp::from_secs(1000)));
        let mut batch = String::new();
        for s in 0..60 {
            let v = (s as f64 / 10.0).sin() * 50.0 + 100.0;
            batch.push_str(&format!("m,hostname=h1 value={v} {}\n", s * 1_000_000_000i64));
        }
        batch.push_str("events,hostname=h1 text=\"run start\" 5000000000\n");
        batch.push_str("events,hostname=h1 text=\"run end\" 55000000000\n");
        ix.write_lines("lms", &batch, Default::default()).unwrap();
        ix
    }

    fn graph_panel() -> Panel {
        Panel {
            annotation_measurement: Some("events".into()),
            ..Panel::graph(
                "Pressure",
                Target {
                    db: "lms".into(),
                    query: "SELECT value FROM m WHERE hostname = 'h1'".into(),
                    alias: "h1".into(),
                    column: "value".into(),
                },
                "units",
            )
        }
    }

    #[test]
    fn graph_renders_axes_markers_and_annotations() {
        let mut ix = fixture();
        let text = render_panel(&graph_panel(), &mut ix, RenderOptions::default()).unwrap();
        assert!(text.contains("== Pressure ==  [units]"));
        assert!(text.contains('*'), "series markers present");
        assert!(text.contains('¦'), "annotation lines present");
        assert!(text.contains("run start"));
        assert!(text.contains("(n=60)"));
        // Y-axis labels include the data range.
        assert!(text.contains("150") || text.contains("149"), "{text}");
        let plot_rows = text.lines().filter(|l| l.contains('|')).count();
        assert!(plot_rows >= 12);
    }

    #[test]
    fn graph_without_data() {
        let mut ix = fixture();
        let panel = Panel::graph(
            "Empty",
            Target {
                db: "lms".into(),
                query: "SELECT value FROM ghost".into(),
                alias: "x".into(),
                column: "value".into(),
            },
            "",
        );
        let text = render_panel(&panel, &mut ix, RenderOptions::default()).unwrap();
        assert!(text.contains("(no data)"));
    }

    #[test]
    fn group_by_hostname_renders_multiple_series() {
        let ix = Influx::new(Clock::simulated(Timestamp::from_secs(100)));
        ix.write_lines(
            "lms",
            "m,hostname=h1 value=1 1000000000\nm,hostname=h2 value=2 1000000000\n\
             m,hostname=h1 value=3 2000000000\nm,hostname=h2 value=4 2000000000",
            Default::default(),
        )
        .unwrap();
        let panel = Panel::graph(
            "Multi",
            Target {
                db: "lms".into(),
                query: "SELECT mean(value) FROM m WHERE time >= 0 AND time <= 3000000000 GROUP BY time(1s), hostname".into(),
                alias: "all".into(),
                column: "mean".into(),
            },
            "",
        );
        let mut src = ix;
        let text = render_panel(&panel, &mut src, RenderOptions::default()).unwrap();
        assert!(text.contains("  * h1"));
        assert!(text.contains("  o h2"));
    }

    #[test]
    fn singlestat_and_text_panels() {
        let mut ix = fixture();
        let p = Panel {
            kind: PanelKind::SingleStat,
            ..Panel::graph(
                "Last value",
                Target {
                    db: "lms".into(),
                    query: "SELECT last(value) FROM m".into(),
                    alias: "m".into(),
                    column: "last".into(),
                },
                "u",
            )
        };
        let text = render_panel(&p, &mut ix, RenderOptions::default()).unwrap();
        assert!(text.contains("m: "), "{text}");
        let t = Panel::text("Header", "job is healthy");
        let text = render_panel(&t, &mut ix, RenderOptions::default()).unwrap();
        assert!(text.contains("job is healthy"));
    }

    #[test]
    fn histogram_panel() {
        let mut ix = fixture();
        let p = Panel {
            kind: PanelKind::Histogram,
            ..Panel::graph(
                "Value histogram",
                Target {
                    db: "lms".into(),
                    query: "SELECT value FROM m".into(),
                    alias: "m".into(),
                    column: "value".into(),
                },
                "",
            )
        };
        let text = render_panel(&p, &mut ix, RenderOptions::default()).unwrap();
        assert!(text.contains('#'));
        assert!(text.lines().count() >= 5);
    }

    #[test]
    fn sparklines() {
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(s.chars().count(), 4);
        assert!(s.starts_with('▁') && s.ends_with('█'));
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[5.0, 5.0]).chars().count(), 2);
    }
}
